"""Aggregated commuter flows (the Meratnia–de By construction).

The paper's related work describes aggregating trajectories by dividing
the study area into homogeneous spatial units and counting how many
objects pass through each.  This example runs that construction on
simulated commuter traffic: a flow grid counts passes per cell, prints a
terminal heat map, and chains the dominant transitions into one
aggregated trajectory.

Run with::

    python examples/commuter_flows.py
"""

from repro.geometry import BoundingBox
from repro.mo.flow import FlowGrid
from repro.synth import commuter_moft

BOX = BoundingBox(0, 0, 100, 100)
GRID = 12
HEAT = " .:-=+*#%@"


def heat_map(grid: FlowGrid) -> str:
    peak = max(grid.counts().values(), default=1)
    lines = []
    for row in reversed(range(GRID)):  # north on top
        cells = []
        for col in range(GRID):
            level = grid.count((col, row)) / peak
            cells.append(HEAT[min(int(level * (len(HEAT) - 1)), len(HEAT) - 1)])
        lines.append("".join(cells))
    return "\n".join(lines)


def main() -> None:
    commuters = commuter_moft(BOX, n_objects=120, n_instants=14, morning_end=9)
    grid = FlowGrid(BOX, GRID, GRID)
    grid.add_moft(commuters)

    print(f"Flow grid over {grid.objects_seen} commuters "
          f"({GRID}x{GRID} cells):\n")
    print(heat_map(grid))

    print("\nHottest cells (col,row -> passes):")
    for cell, count in grid.hottest_cells(5):
        print(f"  {cell} -> {count}")

    path = grid.aggregated_trajectory()
    print(f"\nAggregated trajectory: {len(path)} cells, "
          f"from ({path[0].x:.0f},{path[0].y:.0f}) "
          f"to ({path[-1].x:.0f},{path[-1].y:.0f})")
    # Commuters travel south -> north; the aggregated flow should too.
    assert path[-1].y >= path[0].y - 1e-9 or len(path) < 3

    # "Identify similar trajectories" (the step before merging): the two
    # commuters with the closest Fréchet distance.
    from repro.mo import MOFT, most_similar_pair

    few = MOFT()
    for oid, t, x, y in commuters.tuples():
        if oid in {f"commuter{i}" for i in range(12)}:
            few.add(oid, t, x, y)
    oid_a, oid_b, distance = most_similar_pair(few)
    print(f"Most similar pair among 12 commuters: {oid_a} / {oid_b} "
          f"(Fréchet distance {distance:.1f})")


if __name__ == "__main__":
    main()
