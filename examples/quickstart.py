"""Quickstart: the paper's running example, end to end.

Builds the exact Figure 1 / Table 1 world, asks the running query of
Section 1.2 — "number of buses per hour in the morning in the Antwerp
neighborhoods with a monthly income of less than 1,500" — and checks the
paper's answer of 4/3 (Remark 1).  Run with::

    python examples/quickstart.py
"""

from repro.query import (
    AggregateSpec,
    MovingObjectAggregateQuery,
    QueryType,
    RegionBuilder,
    classify,
    count_per_group,
)
from repro.synth import LOW_INCOME_THRESHOLD, figure1_instance
from repro.viz import render_figure1


def main() -> None:
    # The world: four neighborhoods with incomes, a river, two schools,
    # the six buses of Table 1, and instants 1..6 with morning = {2,3,4}.
    world = figure1_instance()
    ctx = world.context()

    # Regenerate Figure 1 itself: '#' shades low income, '~' is the river,
    # digits are the buses' sampled positions.
    print(render_figure1(width=60, height=20))
    print()
    print("Figure 1 world")
    print(f"  neighborhoods: {sorted(world.gis.alpha_members('neighborhood'))}")
    print(f"  low income (< {LOW_INCOME_THRESHOLD}): "
          f"{sorted(world.low_income_neighborhoods)}")
    print(f"  buses: {sorted(world.moft.objects())} "
          f"({len(world.moft)} MOFT samples)")

    # The region C of Section 3.1: pairs (Oid, t) with a morning instant
    # and a sampled position inside a low-income neighborhood.
    region = (
        RegionBuilder()
        .from_moft("FMbus")
        .during("timeOfDay", "Morning")
        .in_attribute_polygon(
            "neighborhood", value_filter=("income", "<", LOW_INCOME_THRESHOLD)
        )
        .build(world.gis)
    )
    print(f"\nQuery type: {classify(region)!r} "
          f"({classify(region).description})")
    print("Region C:", sorted(region.evaluate_tuples(ctx)))

    # Aggregate: COUNT(C) normalized by the 3-hour morning span.
    query = MovingObjectAggregateQuery(
        region,
        AggregateSpec(per_span_level="timeOfDay", per_span_member="Morning"),
    )
    answer = query.run_scalar(ctx)
    print(f"\nBuses per hour in the morning in low-income neighborhoods: "
          f"{answer:.4f}")
    assert abs(answer - 4 / 3) < 1e-12, "Remark 1 expects 4/3"
    print("Matches Remark 1: 4/3  (O1 contributes 3 times, O2 once, "
          "over a 3-hour span)")

    per_object = count_per_group(region, ctx, ["oid"])
    print("Per-object contributions:", {k[0]: v for k, v in per_object.items()})


if __name__ == "__main__":
    main()
