"""School proximity: sampled vs interpolated semantics, and uncertainty.

Example query 6 of the paper asks for the "number of cars per hour within a
radius of 100m from schools, in the morning" and then points out that an
object whose *trajectory* passes near a school without being *sampled*
there is missed by the sample-only reading.  This example quantifies that
gap on simulated bus traffic, and closes with the Hornsby–Egenhofer
lifeline-bead view of where a bus could have been between samples.

Run with::

    python examples/school_proximity.py
"""

from datetime import datetime

from repro.geometry import Point, Polyline
from repro.mo import Lifeline
from repro.query import (
    EvaluationContext,
    RegionBuilder,
    time_near_node,
)
from repro.synth import CityConfig, build_city, route_following_moft
from repro.temporal import TimeDimension, hourly

RADIUS = 2.0
N_INSTANTS = 10


def main() -> None:
    city = build_city(CityConfig(cols=4, rows=4, seed=99))
    # Buses shuttle along the two central streets (a cross).
    mid = city.bounding_box.max_x / 2
    routes = [
        Polyline([Point(0, mid), Point(city.bounding_box.max_x, mid)]),
        Polyline([Point(mid, 0), Point(mid, city.bounding_box.max_y)]),
    ]
    moft = route_following_moft(
        routes, objects_per_route=5, n_instants=N_INSTANTS, speed=9.0
    )
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 6, 0)), range(N_INSTANTS)
    )
    ctx = EvaluationContext(city.gis, time_dim, moft)

    sampled = (
        RegionBuilder()
        .from_moft("FM")
        .near_attribute_node("school", RADIUS)
        .output("oid")
        .build(city.gis)
    )
    interpolated = (
        RegionBuilder()
        .from_moft("FM")
        .trajectory_near_attribute_node("school", RADIUS)
        .output("oid")
        .build(city.gis)
    )
    sampled_oids = {row["oid"] for row in sampled.evaluate(ctx)}
    interpolated_oids = {row["oid"] for row in interpolated.evaluate(ctx)}
    print(f"Buses within {RADIUS} of a school")
    print(f"  sample-only semantics:   {len(sampled_oids):2d} objects")
    print(f"  interpolated semantics:  {len(interpolated_oids):2d} objects")
    missed = interpolated_oids - sampled_oids
    print(f"  missed by sampling only: {sorted(missed)}")
    assert sampled_oids <= interpolated_oids

    # Time spent near the school closest to the route crossing.
    crossing = Point(mid, mid)
    nearest = min(
        city.schools,
        key=lambda name: city.gis.layer("Ls")
        .element("node", city.gis.alpha("school", name))
        .distance_to(crossing),
    )
    durations = time_near_node(ctx, "school", nearest, RADIUS * 2)
    busiest = sorted(durations.items(), key=lambda kv: -kv[1])[:3]
    print(f"\nTime near school {nearest!r} (radius {RADIUS * 2}):")
    for oid, duration in busiest:
        print(f"  {oid}: {duration:.2f} hours")

    # Uncertainty: what the samples alone cannot exclude.
    some_bus = sorted(moft.objects())[0]
    sample = moft.trajectory_sample(some_bus)
    lifeline = Lifeline(sample, max_speed=12.0)
    school_points = [
        city.gis.layer("Ls").element("node", city.gis.alpha("school", name))
        for name in city.schools
    ]
    possible = [
        p for p in school_points if lifeline.could_have_visited(p)
    ]
    print(f"\nLifeline beads for {some_bus} (max speed 12):")
    print(f"  schools it COULD have visited between samples: "
          f"{len(possible)} of {len(school_points)}")
    print(f"  footprint area of the beads: {lifeline.footprint_area():.0f}")


if __name__ == "__main__":
    main()
