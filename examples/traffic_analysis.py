"""Traffic analysis over a synthetic city.

The paper motivates the model with "traffic analysis, like truck fleet
behavior analysis or commuter traffic in a city".  This example builds a
6×6-block city with neighborhoods, cities, streets, a river and stores,
simulates commuter traffic plus random car traffic, and runs the kinds of
aggregate queries the paper characterizes:

* cars per hour in low-income neighborhoods (the running query, Type 4);
* the Section 5 pipeline — cars passing through cities crossed by the
  river and containing a store — via both the Python API and Piet-QL;
* street occupancy (example query 2's reading (b));
* the overlay vs naive strategy timing comparison.

Run with::

    python examples/traffic_analysis.py
"""

from datetime import datetime
import time

from repro.gis import NODE, POLYGON, POLYLINE
from repro.pietql import LayerBinding, PietQLExecutor
from repro.query import (
    EvaluationContext,
    RegionBuilder,
    count_objects_through,
    count_per_group,
)
from repro.synth import (
    CityConfig,
    build_city,
    commuter_moft,
    random_waypoint_moft,
)
from repro.temporal import TimeDimension, hourly

N_INSTANTS = 12


def main() -> None:
    city = build_city(CityConfig(cols=6, rows=6, seed=2006))
    print(f"City: {len(city.neighborhoods)} neighborhoods, "
          f"{len(city.cities)} cities, {len(city.streets)} streets, "
          f"{len(city.stores)} stores")

    # Commuters go south -> north over the morning; cars wander all day.
    commuters = commuter_moft(
        city.bounding_box, n_objects=40, n_instants=N_INSTANTS, morning_end=6
    )
    cars = random_waypoint_moft(
        city.bounding_box, n_objects=60, n_instants=N_INSTANTS, speed=8.0
    )
    moft = commuters
    for oid, t, x, y in cars.tuples():
        moft.add(oid, t, x, y)
    print(f"MOFT: {len(moft)} samples from {len(moft.objects())} objects")

    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 6, 0)), range(N_INSTANTS)
    )
    ctx = EvaluationContext(city.gis, time_dim, moft)

    # -- Type 4: cars per hour in low-income neighborhoods ---------------------
    threshold = 1500
    low = city.low_income_neighborhoods(threshold)
    print(f"\nLow-income neighborhoods (< {threshold}): {len(low)}")
    query = (
        RegionBuilder()
        .from_moft("FM")
        .during("timeOfDay", "Morning")
        .in_attribute_polygon(
            "neighborhood", value_filter=("income", "<", threshold)
        )
        .count_query(per_span=("timeOfDay", "Morning"), gis=city.gis)
    )
    print(f"Cars per hour in them during the morning: "
          f"{query.run_scalar(ctx):.2f}")

    # -- Section 5 pipeline: through cities crossed by the river w/ stores -----
    count = count_objects_through(
        ctx,
        ("Lc", POLYGON),
        [("intersects", ("Lr", POLYLINE)), ("contains", ("Lsto", NODE))],
    )
    print(f"\nObjects passing through river-crossed, store-equipped cities: "
          f"{count}")

    # The same query in Piet-QL.
    executor = PietQLExecutor(
        ctx,
        {
            "cities": LayerBinding("Lc", POLYGON),
            "rivers": LayerBinding("Lr", POLYLINE),
            "stores": LayerBinding("Lsto", NODE),
        },
    )
    result = executor.execute(
        "SELECT layer.cities, layer.rivers, layer.stores FROM CitySchema "
        "WHERE intersection(layer.rivers, layer.cities) "
        "AND contains(layer.cities, layer.stores) "
        "| COUNT OBJECTS FROM FM THROUGH RESULT"
    )
    print(f"Same via Piet-QL: {result.count:.0f} objects through "
          f"{len(result.geometry_ids)} qualifying cities")
    assert result.count == count

    # -- Example query 2 (b): busiest (street, hour) ---------------------------
    # Commuters move along straight lines, so street hits are sparse; count
    # samples near each street instead by testing polyline containment.
    region = (
        RegionBuilder()
        .from_moft("FM")
        .in_attribute_geometry("street", POLYLINE)
        .build(city.gis)
    )
    rows = region.evaluate(ctx)
    if rows:
        counts = count_per_group(region, ctx, ["t"])
        peak = max(counts.items(), key=lambda kv: kv[1])
        print(f"\nPeak on-street samples: {peak[1]:.0f} at instant {peak[0][0]}")
    else:
        print("\nNo samples fell exactly on a street polyline "
              "(continuous positions rarely do)")

    # -- Overlay vs naive strategy ----------------------------------------------
    for use_overlay, label in ((True, "overlay"), (False, "naive")):
        strategy_ctx = EvaluationContext(
            city.gis, time_dim, moft, use_overlay=use_overlay
        )
        if use_overlay:
            city.gis.overlay().precompute_all()
        start = time.perf_counter()
        for _ in range(3):
            count_objects_through(
                strategy_ctx,
                ("Lc", POLYGON),
                [
                    ("intersects", ("Lr", POLYLINE)),
                    ("contains", ("Lsto", NODE)),
                ],
            )
        elapsed = (time.perf_counter() - start) / 3
        print(f"Strategy {label:>7}: {elapsed * 1000:.2f} ms per query")


if __name__ == "__main__":
    main()
