"""Moving regions: a storm cell sweeping across the city.

The paper explicitly fixes regions in time ("we do not address here the
problem of moving regions") and cites Tøssebro & Güting's sliced
representation as the way to lift that restriction.  This example uses the
:class:`~repro.mo.movingregion.MovingRegion` extension: a storm polygon
interpolated between radar snapshots sweeps west-to-east while traffic
moves below, and we ask the moving-region analogue of the paper's region
query — which objects were inside the storm *at their own sample
instants* — plus an exposure-duration aggregate.

Run with::

    python examples/moving_storm.py
"""

from repro.geometry import Point, Polygon
from repro.mo.movingregion import MovingRegion
from repro.olap import AggregateFunction
from repro.synth import CityConfig, build_city, random_waypoint_moft

N_INSTANTS = 24


def main() -> None:
    city = build_city(CityConfig(cols=6, rows=6, seed=404))
    box = city.bounding_box
    traffic = random_waypoint_moft(
        box, n_objects=80, n_instants=N_INSTANTS, speed=6.0, seed=404
    )

    # Radar snapshots: the storm enters in the west, grows, exits east.
    third = box.width / 3
    storm = MovingRegion(
        [
            (0, Polygon.rectangle(-third, 10, 0 + 4, box.height - 10)),
            (8, Polygon.rectangle(third / 2, 5, third * 1.5, box.height - 5)),
            (16, Polygon.rectangle(third * 1.5, 0, third * 2.8, box.height)),
            (23, Polygon.rectangle(box.width - 4, 10, box.width + third, box.height - 10)),
        ]
    )
    print(f"Storm time domain: {storm.time_domain}")
    for t in (0, 6, 12, 18, 23):
        print(f"  t={t:2d}: storm area {storm.area_at(t):7.1f}, "
              f"centroid x {storm.polygon_at(t).centroid.x:6.1f}")

    hits = storm.samples_inside(traffic)
    objects_hit = {oid for oid, _ in hits}
    print(f"\nSamples caught in the storm: {len(hits)}")
    print(f"Objects hit at least once:   {len(objects_hit)} "
          f"of {len(traffic.objects())}")

    # Exposure per object (count of sampled instants inside) -> aggregate.
    exposure = {}
    for oid, _ in hits:
        exposure[oid] = exposure.get(oid, 0) + 1
    if exposure:
        values = list(exposure.values())
        print(f"Exposure instants per hit object: "
              f"max {AggregateFunction.MAX.apply(values):.0f}, "
              f"avg {AggregateFunction.AVG.apply(values):.2f}")

    # Sanity: the static-region reading differs — a fixed region equal to
    # the storm's first snapshot catches a different set.
    static = storm.polygon_at(0)
    static_hits = {
        (oid, t)
        for oid, t, x, y in traffic.tuples()
        if static.contains_point(Point(x, y))
    }
    print(f"\nStatic first-snapshot region would catch {len(static_hits)} "
          f"samples — the moving region caught {len(hits)}")


if __name__ == "__main__":
    main()
