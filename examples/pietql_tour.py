"""A tour of Piet-QL, the query language of Section 5.

Walks through the language on the Figure 1 world: pure geometric queries,
the paper's own example text, and combined geometric | moving-objects
queries with temporal restrictions.

Run with::

    python examples/pietql_tour.py
"""

from repro.gis import NODE, POLYGON, POLYLINE
from repro.pietql import LayerBinding, PietQLExecutor, parse
from repro.synth import figure1_instance


def show(executor: PietQLExecutor, title: str, text: str) -> None:
    print(f"\n-- {title}")
    print("   " + " ".join(text.split()))
    result = executor.execute(text)
    print(f"   geometry ids: {sorted(result.geometry_ids)}")
    if result.count is not None:
        print(f"   count: {result.count:.0f} "
              f"(objects: {sorted(result.matched_objects)})")


def main() -> None:
    world = figure1_instance()
    executor = PietQLExecutor(
        world.context(),
        {
            "neighborhoods": LayerBinding("Ln", POLYGON),
            "rivers": LayerBinding("Lr", POLYLINE),
            "schools": LayerBinding("Ls", NODE),
        },
    )

    # The paper's own query text parses unchanged (modulo layer names).
    paper_text = """
        SELECT layer.usa_rivers,layer.usa_cities,
        layer.usa_stores;
        FROM PietSchema;
        WHERE intersection(layer.usa_rivers,
        layer.usa_cities,sublevel.Linestring)
        AND(layer.usa_cities)
        CONTAINS(layer.usa_cities,
        layer.usa_stores, sublevel.Point);
    """
    query = parse(paper_text)
    print("Paper's Section 5 query parses; target =", query.geometric.target)

    show(
        executor,
        "all neighborhoods",
        "SELECT layer.neighborhoods FROM Fig1",
    )
    show(
        executor,
        "neighborhoods crossed by the river",
        "SELECT layer.neighborhoods FROM Fig1 "
        "WHERE intersection(layer.rivers, layer.neighborhoods)",
    )
    show(
        executor,
        "…additionally containing a school (the Section 5 pipeline)",
        "SELECT layer.neighborhoods FROM Fig1 "
        "WHERE intersection(layer.rivers, layer.neighborhoods) "
        "AND contains(layer.neighborhoods, layer.schools)",
    )
    show(
        executor,
        "buses passing through those neighborhoods",
        "SELECT layer.neighborhoods FROM Fig1 "
        "WHERE intersection(layer.rivers, layer.neighborhoods) "
        "AND contains(layer.neighborhoods, layer.schools) "
        "| COUNT OBJECTS FROM FMbus THROUGH RESULT",
    )
    show(
        executor,
        "…restricted to the morning",
        "SELECT layer.neighborhoods FROM Fig1 "
        "WHERE contains(layer.neighborhoods, layer.schools) "
        "| COUNT OBJECTS FROM FMbus THROUGH RESULT "
        "DURING timeOfDay = 'Morning'",
    )
    show(
        executor,
        "sample count in the morning (no geometry)",
        "SELECT layer.neighborhoods FROM Fig1 "
        "| COUNT SAMPLES FROM FMbus DURING timeOfDay = 'Morning'",
    )


if __name__ == "__main__":
    main()
