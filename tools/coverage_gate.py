#!/usr/bin/env python
"""Dependency-free line-coverage measurement and gate for ``src/repro``.

CI measures coverage with ``pytest-cov`` (see ``.github/workflows/
ci.yml``), but the local toolchain deliberately has no coverage
dependency — this script fills the gap with a ``sys.settrace`` tracer so
the floor can be measured and checked anywhere:

* the universe of executable lines comes from compiling every module
  under ``src/repro`` and walking its code objects (``co_lines``);
* the tracer only pays line-event cost inside ``repro`` frames (every
  other frame opts out at its call event), and is installed via
  ``threading.settrace`` too so thread-backend workers are counted;
* worker *processes* are not traced — the measured figure is therefore a
  slight undercount, which is the safe direction for a floor.

Usage::

    python tools/coverage_gate.py                  # measure, print report
    python tools/coverage_gate.py --check 85.0     # exit 1 below the floor
    python tools/coverage_gate.py -- -m "not slow" # extra pytest args

The gate value used by CI lives in the workflow file; keep the two in
sync when the floor moves (measure here, set ``--cov-fail-under``
there).
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path
from types import CodeType
from typing import Dict, Set

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
PKG = SRC / "repro"


def executable_lines() -> Dict[str, Set[int]]:
    """filename -> set of executable line numbers, for every repro module."""
    universe: Dict[str, Set[int]] = {}
    for path in sorted(PKG.rglob("*.py")):
        code = compile(path.read_text(), str(path), "exec")
        lines: Set[int] = set()
        stack = [code]
        while stack:
            obj = stack.pop()
            for _start, _end, line in obj.co_lines():
                if line is not None:
                    lines.add(line)
            for const in obj.co_consts:
                if isinstance(const, CodeType):
                    stack.append(const)
        universe[str(path)] = lines
    return universe


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        type=float,
        default=None,
        metavar="PCT",
        help="fail (exit 1) if total coverage is below this percentage",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        default=[],
        help="extra arguments passed to pytest (prefix with --)",
    )
    args = parser.parse_args(argv)

    universe = executable_lines()
    hits: Dict[str, Set[int]] = {name: set() for name in universe}
    prefix = str(PKG)

    def tracer(frame, event, arg):
        if not frame.f_code.co_filename.startswith(prefix):
            return None  # opt this frame out of line events entirely
        if event == "line":
            file_hits = hits.get(frame.f_code.co_filename)
            if file_hits is not None:
                file_hits.add(frame.f_lineno)
        return tracer

    sys.path.insert(0, str(SRC))
    import pytest

    pytest_args = list(args.pytest_args) or ["-q", "-m", "not slow"]
    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print(f"coverage gate: test run failed (pytest exit {exit_code})")
        return int(exit_code) or 1

    total = sum(len(lines) for lines in universe.values())
    covered = sum(
        len(hits[name] & lines) for name, lines in universe.items()
    )
    percent = 100.0 * covered / total if total else 100.0
    print()
    print("coverage of src/repro (settrace measurement, worst files first):")
    per_file = sorted(
        (
            (
                100.0 * len(hits[name] & lines) / len(lines)
                if lines
                else 100.0,
                name,
            )
            for name, lines in universe.items()
        ),
    )
    for file_percent, name in per_file[:10]:
        rel = Path(name).relative_to(REPO)
        print(f"  {file_percent:6.1f}%  {rel}")
    print(f"TOTAL: {covered}/{total} lines = {percent:.1f}%")
    if args.check is not None and percent < args.check:
        print(f"coverage gate FAILED: {percent:.1f}% < floor {args.check}%")
        return 1
    if args.check is not None:
        print(f"coverage gate ok: {percent:.1f}% >= floor {args.check}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
