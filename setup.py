"""Legacy setup shim.

PEP 660 editable installs need the ``wheel`` package; offline environments
without it can fall back to the legacy develop path::

    pip install -e . --no-build-isolation --no-use-pep517

which requires this file.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
