"""Suite-wide pytest/hypothesis configuration.

Registers hypothesis profiles: ``dev`` (the default settings, used
locally) and ``ci`` (deeper search for the nightly differential job —
select with ``pytest --hypothesis-profile=ci``).
"""

from hypothesis import HealthCheck, settings

settings.register_profile("dev", settings.default)
settings.register_profile(
    "ci",
    max_examples=500,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
