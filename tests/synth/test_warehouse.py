"""Tests for the classical warehouse and its GIS integration."""

from datetime import datetime

import pytest

from repro.errors import SchemaError
from repro.gis import POLYGON, POLYLINE
from repro.query import EvaluationContext, geometric_subquery
from repro.synth import CityConfig, build_city
from repro.synth.warehouse import (
    revenue_of_cities,
    sales_cube,
    sales_fact_table,
    stores_dimension,
)
from repro.temporal import TimeDimension, hourly

DAYS = ["2006-01-09", "2006-01-10", "2006-01-11"]


@pytest.fixture(scope="module")
def city():
    return build_city(CityConfig(cols=4, rows=4, city_span=2, seed=55))


@pytest.fixture(scope="module")
def table(city):
    return sales_fact_table(city, DAYS, seed=55)


@pytest.fixture(scope="module")
def time_dim():
    return TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(72)
    )


class TestStoresDimension:
    def test_every_store_registered(self, city):
        dim = stores_dimension(city)
        assert dim.members("store") == set(city.stores)

    def test_rollup_matches_geometry(self, city):
        """The warehouse rollup agrees with the GIS containment."""
        dim = stores_dimension(city)
        overlay_pairs = city.gis.overlay().pairs(
            "Lc:polygon", "Lsto:node", "contains"
        )
        geometric = {}
        for city_gid, store_gid in overlay_pairs:
            (city_name,) = city.gis.alpha_inverse("city", city_gid)
            (store_name,) = city.gis.alpha_inverse("store", store_gid)
            geometric[store_name] = city_name
        for store in city.stores:
            assert dim.rollup(store, "store", "city") == geometric[store]

    def test_consistency(self, city):
        stores_dimension(city).check_consistency()


class TestSalesFactTable:
    def test_shape(self, city, table):
        assert len(table) == len(city.stores) * len(DAYS)
        assert table.schema.measures == ("revenue",)

    def test_deterministic(self, city):
        a = sales_fact_table(city, DAYS, seed=1)
        b = sales_fact_table(city, DAYS, seed=1)
        assert list(a.rows()) == list(b.rows())

    def test_validation(self, city):
        with pytest.raises(SchemaError):
            sales_fact_table(city, [])
        with pytest.raises(SchemaError):
            sales_fact_table(city, DAYS, revenue_low=10, revenue_high=1)


class TestSalesCube:
    def test_rollup_to_city(self, city, table, time_dim):
        cube = sales_cube(city, table, time_dim)
        by_city = cube.rollup({"store": "city"}, "SUM", "revenue")
        total = sum(by_city.values())
        direct = sum(row["revenue"] for row in table.rows())
        assert total == pytest.approx(direct)
        assert set(k[0] for k in by_city) == set(city.cities)

    def test_rollup_day_to_month(self, city, table, time_dim):
        cube = sales_cube(city, table, time_dim)
        by_month = cube.rollup({"day": "month"}, "SUM", "revenue")
        assert set(k[0] for k in by_month) == {"2006-01"}

    def test_slice_by_day(self, city, table, time_dim):
        cube = sales_cube(city, table, time_dim).slice("day", DAYS[0])
        assert len(cube) == len(city.stores)


class TestGisOlapCombination:
    def test_revenue_of_river_crossed_cities(self, city, table, time_dim):
        """The paper's signature combination: a geometric subquery selects
        cities, the warehouse aggregates their stores' revenue."""
        ctx = EvaluationContext(city.gis, time_dim, None)
        crossed_ids = geometric_subquery(
            ctx, ("Lc", POLYGON), [("intersects", ("Lr", POLYLINE))]
        )
        crossed_names = {
            name
            for gid in crossed_ids
            for name in city.gis.alpha_inverse("city", gid)
        }
        assert crossed_names  # the river crosses the middle of the city
        via_helper = revenue_of_cities(city, table, crossed_names)
        # Cross-check through the cube.
        cube = sales_cube(city, table, time_dim)
        by_city = cube.rollup({"store": "city"}, "SUM", "revenue")
        via_cube = sum(
            value
            for (city_name,), value in by_city.items()
            if city_name in crossed_names
        )
        assert via_helper == pytest.approx(via_cube)

    def test_empty_city_set(self, city, table):
        assert revenue_of_cities(city, table, set()) == 0.0
