"""Tests that the concrete Figure 1 / Table 1 instance matches the paper."""

import pytest

from repro.geometry import Point, Segment
from repro.gis import POLYGON
from repro.mo import LinearInterpolationTrajectory, passes_through
from repro.synth.paperdata import (
    INCOMES,
    LOW_INCOME_THRESHOLD,
    MORNING_INSTANTS,
    TABLE1_SAMPLES,
    figure1_instance,
    figure2_schema,
    neighborhood_polygons,
    table1_moft,
)


@pytest.fixture(scope="module")
def world():
    return figure1_instance()


class TestTable1:
    def test_twelve_samples_six_objects(self):
        moft = table1_moft()
        assert len(moft) == 12
        assert moft.objects() == {"O1", "O2", "O3", "O4", "O5", "O6"}

    def test_sample_counts_match_table(self):
        moft = table1_moft()
        expected = {"O1": 4, "O2": 3, "O3": 1, "O4": 1, "O5": 1, "O6": 2}
        for oid, count in expected.items():
            assert moft.sample_count(oid) == count

    def test_instants_match_table(self):
        moft = table1_moft()
        assert [t for t, _, _ in moft.history("O1")] == [1, 2, 3, 4]
        assert [t for t, _, _ in moft.history("O2")] == [2, 3, 4]
        assert [t for t, _, _ in moft.history("O6")] == [2, 3]


class TestNeighborhoods:
    def test_partition_covers_city(self):
        polys = neighborhood_polygons()
        total = sum(p.area for p in polys.values())
        assert total == pytest.approx(400.0)  # the 20x20 city

    def test_no_pairwise_interior_overlap(self):
        polys = list(neighborhood_polygons().values())
        from repro.geometry import polygon_intersection_area

        for i in range(len(polys)):
            for j in range(i + 1, len(polys)):
                assert polygon_intersection_area(
                    polys[i], polys[j], resolution=64
                ) == pytest.approx(0.0, abs=1.0)

    def test_low_income_set(self, world):
        assert world.low_income_neighborhoods == {"zuid", "berchem"}
        for name, income in INCOMES.items():
            assert (income < LOW_INCOME_THRESHOLD) == (
                name in world.low_income_neighborhoods
            )


class TestFigure1Narrative:
    """Each bullet of the paper's description of Figure 1."""

    def locate(self, world, x, y):
        hits = world.gis.point_rollup("Ln", POLYGON, Point(x, y))
        assert len(hits) == 1
        (gid,) = hits
        (member,) = world.gis.alpha_inverse("neighborhood", gid)
        return member

    def test_o1_always_low_income(self, world):
        for t, x, y in world.moft.history("O1"):
            assert self.locate(world, x, y) in world.low_income_neighborhoods

    def test_o2_high_low_high(self, world):
        members = [
            self.locate(world, x, y) for _, x, y in world.moft.history("O2")
        ]
        low = world.low_income_neighborhoods
        assert members[0] not in low
        assert members[1] in low
        assert members[2] not in low

    def test_o3_o4_o5_always_high(self, world):
        for oid in ("O3", "O4", "O5"):
            for _, x, y in world.moft.history(oid):
                assert (
                    self.locate(world, x, y)
                    not in world.low_income_neighborhoods
                )

    def test_o6_passes_through_low_income_unsampled(self, world):
        # Neither sample is in a low-income area...
        for _, x, y in world.moft.history("O6"):
            assert (
                self.locate(world, x, y) not in world.low_income_neighborhoods
            )
        # ...but the interpolated trajectory crosses Berchem's bump.
        lit = LinearInterpolationTrajectory(world.moft.trajectory_sample("O6"))
        berchem = world.gis.layer("Ln").element(
            POLYGON, world.gis.alpha("neighborhood", "berchem")
        )
        assert passes_through(lit, berchem)


class TestTimeDimension:
    def test_morning_is_three_hours(self, world):
        assert world.time.instants_where("timeOfDay", "Morning") == set(
            MORNING_INSTANTS
        )
        assert world.time.span("timeOfDay", "Morning") == 3

    def test_all_instants_registered(self, world):
        assert world.time.instants == {1, 2, 3, 4, 5, 6}

    def test_monday_weekday(self, world):
        assert world.time.rollup(2, "dayOfWeek") == "Monday"
        assert world.time.rollup(2, "typeOfDay") == "Weekday"


class TestFigure2Schema:
    def test_layers(self):
        # The paper's three layers plus the follow-up paper's Lp
        # place-of-interest layer (empty unless with_pois is requested).
        schema = figure2_schema()
        assert schema.layer_names == ["Ln", "Lp", "Lr", "Ls"]

    def test_river_hierarchy_matches_example2(self):
        # H1(Lr) = point -> line -> polyline -> All (Example 2).
        hierarchy = figure2_schema().hierarchy("Lr")
        assert set(hierarchy.edges()) == {
            ("point", "line"),
            ("line", "polyline"),
            ("polyline", "All"),
        }

    def test_placements_match_example2(self):
        schema = figure2_schema()
        assert schema.placement("neighborhood").kind == "polygon"
        assert schema.placement("river").kind == "polyline"
        assert schema.placement("school").kind == "node"

    def test_application_dimensions(self):
        schema = figure2_schema()
        neigh = schema.application_dimension("Neighbourhoods")
        assert neigh.rolls_up_to("neighborhood", "city")
