"""Reproducibility of the synthetic generators under explicit RNGs.

The differential-oracle suite compares serial and parallel query paths on
generated worlds; that comparison is only meaningful when the worlds are
byte-identical across runs.  These tests pin the contract of
``repro.synth.rng``: equal generator states produce equal worlds, the
legacy seed path is untouched, and distinct streams actually differ.
"""

import random

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.geometry import BoundingBox
from repro.synth import (
    CityConfig,
    NumpyRandomSource,
    adversarial_moft,
    build_city,
    commuter_moft,
    random_waypoint_moft,
    resolve_rng,
    route_following_moft,
    sales_fact_table,
)

BOX = BoundingBox(0.0, 0.0, 60.0, 60.0)


def city_fingerprint(city):
    polygons = city.gis.layer("Ln").elements("polygon")
    incomes = {
        name: city.gis.member_value("neighborhood", name, "income")
        for name in city.neighborhoods
    }
    stores = {
        gid: (point.x, point.y)
        for gid, point in city.gis.layer("Lsto").elements("node").items()
    }
    return (sorted(polygons), incomes, stores)


class TestResolveRng:
    def test_default_is_legacy_seed_stream(self):
        assert resolve_rng(7).random() == random.Random(7).random()

    def test_generator_wins_over_seed(self):
        source = resolve_rng(7, np.random.default_rng(1))
        assert isinstance(source, NumpyRandomSource)
        assert source.random() == np.random.default_rng(1).random()

    def test_int_rng_is_default_rng_shorthand(self):
        a = resolve_rng(7, 123).random()
        b = resolve_rng(99, np.random.default_rng(123)).random()
        assert a == b

    def test_random_random_passes_through(self):
        shared = random.Random(3)
        assert resolve_rng(0, shared) is shared

    def test_randint_is_inclusive_and_in_range(self):
        source = resolve_rng(0, np.random.default_rng(5))
        draws = {source.randint(1, 3) for _ in range(200)}
        assert draws == {1, 2, 3}

    def test_rejects_junk(self):
        with pytest.raises(SchemaError):
            resolve_rng(0, "not-an-rng")


class TestMovementDeterminism:
    @pytest.mark.parametrize(
        "generate",
        [
            lambda rng: random_waypoint_moft(BOX, 6, 8, rng=rng),
            lambda rng: commuter_moft(BOX, 6, 8, morning_end=4, rng=rng),
            lambda rng: adversarial_moft(BOX, 4, 6, rng=rng),
        ],
    )
    def test_equal_generators_equal_mofts(self, generate):
        a = generate(np.random.default_rng(2024))
        b = generate(np.random.default_rng(2024))
        assert list(a.tuples()) == list(b.tuples())
        different = generate(np.random.default_rng(2025))
        assert list(a.tuples()) != list(different.tuples())

    def test_route_following_reproducible(self):
        from repro.geometry import Point, Polyline

        routes = [Polyline([Point(0, 0), Point(30, 0), Point(30, 30)])]
        a = route_following_moft(routes, 4, 6, rng=np.random.default_rng(9))
        b = route_following_moft(routes, 4, 6, rng=np.random.default_rng(9))
        assert list(a.tuples()) == list(b.tuples())

    def test_legacy_seed_stream_unchanged(self):
        """rng=None must keep the historical random.Random(seed) stream."""
        legacy = random_waypoint_moft(BOX, 3, 4, seed=11)
        explicit = random_waypoint_moft(BOX, 3, 4, rng=random.Random(11))
        assert list(legacy.tuples()) == list(explicit.tuples())

    def test_spawned_streams_are_independent(self):
        parent = np.random.default_rng(7)
        first, second = parent.spawn(2)
        a = random_waypoint_moft(BOX, 3, 4, rng=first)
        b = random_waypoint_moft(BOX, 3, 4, rng=second)
        assert list(a.tuples()) != list(b.tuples())


class TestCityAndWarehouseDeterminism:
    def test_equal_generators_equal_cities(self):
        config = CityConfig(cols=4, rows=4)
        a = build_city(config, rng=np.random.default_rng(31))
        b = build_city(config, rng=np.random.default_rng(31))
        assert city_fingerprint(a) == city_fingerprint(b)

    def test_legacy_city_stream_unchanged(self):
        config = CityConfig(cols=4, rows=4, seed=7)
        assert city_fingerprint(build_city(config)) == city_fingerprint(
            build_city(config, rng=random.Random(7))
        )

    def test_sales_fact_table_reproducible(self):
        city = build_city(CityConfig(cols=4, rows=4))
        days = ["2006-01-09", "2006-01-10"]
        a = sales_fact_table(city, days, rng=np.random.default_rng(55))
        b = sales_fact_table(city, days, rng=np.random.default_rng(55))
        assert list(a.rows()) == list(b.rows())
