"""Tests for the movement simulators."""

import pytest

from repro.errors import SchemaError
from repro.geometry import BoundingBox, Point, Polyline
from repro.synth import (
    adversarial_moft,
    commuter_moft,
    random_waypoint_moft,
    route_following_moft,
)

BOX = BoundingBox(0, 0, 100, 100)


class TestRandomWaypoint:
    def test_shape(self):
        moft = random_waypoint_moft(BOX, n_objects=5, n_instants=10)
        assert len(moft) == 50
        assert len(moft.objects()) == 5
        assert moft.instants() == set(float(t) for t in range(10))

    def test_positions_inside_box(self):
        moft = random_waypoint_moft(BOX, n_objects=5, n_instants=20)
        for row in moft.rows():
            assert BOX.contains_point(Point(row["x"], row["y"]))

    def test_speed_bound_respected(self):
        speed = 3.0
        moft = random_waypoint_moft(BOX, 4, 20, speed=speed, seed=5)
        for oid in moft.objects():
            history = moft.history(oid)
            for (t0, x0, y0), (t1, x1, y1) in zip(history, history[1:]):
                dist = ((x1 - x0) ** 2 + (y1 - y0) ** 2) ** 0.5
                assert dist <= speed * (t1 - t0) + 1e-9

    def test_deterministic(self):
        a = random_waypoint_moft(BOX, 3, 5, seed=9)
        b = random_waypoint_moft(BOX, 3, 5, seed=9)
        assert list(a.tuples()) == list(b.tuples())

    def test_validation(self):
        with pytest.raises(SchemaError):
            random_waypoint_moft(BOX, 0, 10)
        with pytest.raises(SchemaError):
            random_waypoint_moft(BOX, 1, 1)
        with pytest.raises(SchemaError):
            random_waypoint_moft(BOX, 1, 10, speed=0)


class TestRouteFollowing:
    ROUTE = Polyline([Point(0, 50), Point(100, 50)])

    def test_positions_on_route(self):
        moft = route_following_moft([self.ROUTE], 3, 10, speed=7.0)
        for row in moft.rows():
            assert row["y"] == pytest.approx(50.0)
            assert 0 <= row["x"] <= 100

    def test_object_naming_by_route(self):
        routes = [self.ROUTE, Polyline([Point(50, 0), Point(50, 100)])]
        moft = route_following_moft(routes, 2, 5)
        assert len(moft.objects()) == 4
        assert any(oid.startswith("bus0_") for oid in moft.objects())
        assert any(oid.startswith("bus1_") for oid in moft.objects())

    def test_bounce_at_endpoints(self):
        # Speed longer than the route forces reflection.
        short = Polyline([Point(0, 0), Point(10, 0)])
        moft = route_following_moft([short], 1, 50, speed=7.0, seed=1)
        for row in moft.rows():
            assert -1e-9 <= row["x"] <= 10 + 1e-9

    def test_validation(self):
        with pytest.raises(SchemaError):
            route_following_moft([], 1, 10)
        with pytest.raises(SchemaError):
            route_following_moft([self.ROUTE], 1, 10, speed=0)
        degenerate = Polyline([Point(0, 0), Point(0, 0)])
        with pytest.raises(SchemaError):
            route_following_moft([degenerate], 1, 10)


class TestCommuter:
    def test_south_to_north(self):
        moft = commuter_moft(BOX, 10, 10, morning_end=5, seed=2)
        for oid in moft.objects():
            history = moft.history(oid)
            start_y = history[0][2]
            end_y = history[-1][2]
            assert start_y <= BOX.min_y + BOX.height / 3
            assert end_y >= BOX.max_y - BOX.height / 3

    def test_parked_after_morning(self):
        moft = commuter_moft(BOX, 5, 10, morning_end=4, seed=2)
        for oid in moft.objects():
            history = moft.history(oid)
            positions_after = {(x, y) for t, x, y in history if t >= 4}
            assert len(positions_after) == 1

    def test_validation(self):
        with pytest.raises(SchemaError):
            commuter_moft(BOX, 5, 10, morning_end=0)
        with pytest.raises(SchemaError):
            commuter_moft(BOX, 5, 10, morning_end=10)


class TestAdversarial:
    def test_avoids_box(self):
        moft = adversarial_moft(BOX, 5, 10, margin=5.0)
        for row in moft.rows():
            assert row["x"] >= BOX.max_x + 5.0

    def test_validation(self):
        with pytest.raises(SchemaError):
            adversarial_moft(BOX, 5, 10, margin=0)

    def test_full_scan_required(self):
        """Every trajectory is checked to the end without a hit (Section 5's
        worst case)."""
        from repro.geometry import Polygon
        from repro.query import EvaluationStats, TrajectoryIntersectionCounter

        moft = adversarial_moft(BOX, 5, 20)
        counter = TrajectoryIntersectionCounter(
            {"city": Polygon.from_box(BOX)}, use_index=False
        )
        stats = EvaluationStats()
        assert counter.count(moft, stats) == 0
        # 19 segments per object, all visited (rejected by bbox or tested
        # exactly) — no early exit is ever possible.
        assert stats.segment_checks + stats.bbox_rejections == 5 * 19
