"""Tests for the synthetic city generator."""

import pytest

from repro.errors import SchemaError
from repro.geometry import Point
from repro.gis import LINE, NODE, POLYGON, POLYLINE
from repro.synth import CityConfig, build_city


@pytest.fixture(scope="module")
def city():
    return build_city(CityConfig(cols=4, rows=4, city_span=2, seed=3))


class TestConfig:
    def test_validation(self):
        with pytest.raises(SchemaError):
            CityConfig(cols=0)
        with pytest.raises(SchemaError):
            CityConfig(block_size=0)
        with pytest.raises(SchemaError):
            CityConfig(city_span=0)

    def test_deterministic(self):
        a = build_city(CityConfig(cols=3, rows=3, seed=42))
        b = build_city(CityConfig(cols=3, rows=3, seed=42))
        for name in a.neighborhoods:
            assert a.gis.member_value(
                "neighborhood", name, "income"
            ) == b.gis.member_value("neighborhood", name, "income")

    def test_seed_changes_world(self):
        a = build_city(CityConfig(cols=3, rows=3, seed=1))
        b = build_city(CityConfig(cols=3, rows=3, seed=2))
        incomes_a = [
            a.gis.member_value("neighborhood", n, "income")
            for n in a.neighborhoods
        ]
        incomes_b = [
            b.gis.member_value("neighborhood", n, "income")
            for n in b.neighborhoods
        ]
        assert incomes_a != incomes_b


class TestStructure:
    def test_counts(self, city):
        assert len(city.neighborhoods) == 16
        assert len(city.cities) == 4
        # 5 horizontal + 5 vertical streets on a 4x4 grid.
        assert len(city.streets) == 10
        assert len(city.schools) == 4 * 2
        assert len(city.stores) == 4 * 3
        assert len(city.gas_stations) == 4 * 1

    def test_layers_populated(self, city):
        assert city.gis.layer("Ln").size(POLYGON) == 16
        assert city.gis.layer("Lc").size(POLYGON) == 4
        assert city.gis.layer("Lst").size(POLYLINE) == 10
        assert city.gis.layer("Lst").size(LINE) == 10 * 4
        assert city.gis.layer("Lr").size(POLYLINE) == 1
        assert city.gis.layer("Ls").size(NODE) == 8

    def test_line_polyline_rollup_relation(self, city):
        relation = city.gis.rollup_relation("Lst", LINE, POLYLINE)
        # Every street has 4 composing lines on a 4-block grid.
        assert len(relation) == 40
        per_street = {}
        for line_id, street_id in relation:
            per_street.setdefault(street_id, 0)
            per_street[street_id] += 1
        assert all(count == 4 for count in per_street.values())

    def test_neighborhoods_partition_bbox(self, city):
        total = sum(
            geom.area
            for geom in city.gis.layer("Ln").elements(POLYGON).values()
        )
        assert total == pytest.approx(city.bounding_box.area)

    def test_city_population_is_sum_of_neighborhoods(self, city):
        app = city.gis.application_instance("Neighbourhoods")
        for city_name in city.cities:
            members = app.descendants(city_name, "city", "neighborhood")
            total = sum(
                city.gis.member_value("neighborhood", n, "population")
                for n in members
            )
            assert city.gis.member_value(
                "city", city_name, "population"
            ) == total

    def test_nodes_inside_their_city(self, city):
        for name in city.schools:
            gid = city.gis.alpha("school", name)
            node = city.gis.layer("Ls").element(NODE, gid)
            __, ci, cj, __ = name.split("_")
            city_gid = city.gis.alpha("city", f"city_{ci}_{cj}")
            polygon = city.gis.layer("Lc").element(POLYGON, city_gid)
            assert polygon.contains_point(node)

    def test_river_crosses_full_width(self, city):
        river = city.gis.layer("Lr").element(POLYLINE, "pl_river")
        assert river.bbox.min_x == 0
        assert river.bbox.max_x == city.bounding_box.max_x

    def test_low_income_helper(self, city):
        low = city.low_income_neighborhoods(2000)
        for name in low:
            assert city.gis.member_value("neighborhood", name, "income") < 2000
        high = set(city.neighborhoods) - set(low)
        for name in high:
            assert (
                city.gis.member_value("neighborhood", name, "income") >= 2000
            )

    def test_point_location_works(self, city):
        hits = city.gis.point_rollup("Ln", POLYGON, Point(5, 5))
        assert hits == {"pg_nb_0_0"}
