"""Tests for the ASCII renderer."""

import pytest

from repro.errors import GeometryError
from repro.geometry import BoundingBox, Point, Polygon, Polyline
from repro.mo import MOFT
from repro.viz import AsciiMap, render_figure1, render_world


class TestAsciiMap:
    def test_dimension_validation(self):
        extent = BoundingBox(0, 0, 10, 10)
        with pytest.raises(GeometryError):
            AsciiMap(extent, width=1)
        with pytest.raises(GeometryError):
            AsciiMap(BoundingBox(0, 0, 0, 10), 10, 10)

    def test_empty_render(self):
        ascii_map = AsciiMap(BoundingBox(0, 0, 10, 10), 8, 4)
        lines = ascii_map.render().splitlines()
        assert len(lines) == 4
        assert all(line == "." * 8 for line in lines)

    def test_shade_polygon_bottom_half(self):
        ascii_map = AsciiMap(BoundingBox(0, 0, 10, 10), 10, 10)
        ascii_map.shade_polygon(Polygon.rectangle(0, 0, 10, 5))
        lines = ascii_map.render().splitlines()
        assert lines[0] == "." * 10  # top row unshaded
        assert lines[-1] == "#" * 10  # bottom row shaded

    def test_plot_point_and_orientation(self):
        ascii_map = AsciiMap(BoundingBox(0, 0, 10, 10), 10, 10)
        ascii_map.plot_point(Point(0.5, 9.5), "X")
        lines = ascii_map.render().splitlines()
        assert lines[0][0] == "X"  # top-left in raster = max y, min x

    def test_plot_point_outside_ignored(self):
        ascii_map = AsciiMap(BoundingBox(0, 0, 10, 10), 10, 10)
        ascii_map.plot_point(Point(50, 50), "X")
        assert "X" not in ascii_map.render()

    def test_draw_polyline(self):
        ascii_map = AsciiMap(BoundingBox(0, 0, 10, 10), 10, 10)
        ascii_map.draw_polyline(Polyline([Point(0, 5), Point(10, 5)]))
        lines = ascii_map.render().splitlines()
        assert any(set(line) == {"~"} for line in lines)


class TestRenderWorld:
    def test_requires_polygons(self):
        with pytest.raises(GeometryError):
            render_world({})

    def test_moft_glyphs_plotted(self):
        polygons = {"zone": Polygon.rectangle(0, 0, 10, 10)}
        moft = MOFT()
        moft.add("O7", 0, 5.0, 5.0)
        art = render_world(polygons, moft=moft, width=20, height=10)
        assert "7" in art

    def test_shading_predicate(self):
        polygons = {
            "poor": Polygon.rectangle(0, 0, 10, 10),
            "rich": Polygon.rectangle(10, 0, 20, 10),
        }
        art = render_world(
            polygons, shaded=lambda m: m == "poor", width=20, height=4
        )
        lines = art.splitlines()
        assert lines[0][:10].count("#") == 10
        assert lines[0][10:].count("#") == 0


class TestFigure1:
    def test_renders_deterministically(self):
        assert render_figure1() == render_figure1()

    def test_contains_expected_elements(self):
        art = render_figure1(width=60, height=24)
        # The low-income south is shaded, the river drawn, buses plotted.
        assert "#" in art
        assert "~" in art
        for digit in "123456":
            assert digit in art

    def test_shading_fraction_matches_geography(self):
        art = render_figure1(width=40, height=40)
        shaded = art.count("#")
        total = 40 * 40
        # Low-income area is 208 of 400 world units ≈ 52%; allow slack for
        # rasterization and glyph overwrites.
        assert 0.35 < shaded / total < 0.65
