"""End-to-end tests of the ``python -m repro`` command line.

Run as real subprocesses (the module is its own program; its exit codes
and stderr discipline are the interface under test): ``--help`` and the
demo exit 0, bad input exits 2 with a single ``error: ...`` line on
stderr and never a traceback.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def run_cli(*args: str, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=120,
    )


class TestHelp:
    def test_help_exits_zero(self):
        result = run_cli("--help")
        assert result.returncode == 0
        assert "demo" in result.stdout and "info" in result.stdout

    def test_unknown_command_exits_nonzero(self):
        result = run_cli("frobnicate")
        assert result.returncode != 0
        assert "Traceback" not in result.stderr


class TestDemo:
    def test_default_invocation_runs_the_quickstart(self):
        result = run_cli()
        assert result.returncode == 0
        assert "Remark 1: 4/3" in result.stdout
        assert "1.3333" in result.stdout
        assert result.stderr == ""

    def test_explicit_demo_subcommand(self):
        result = run_cli("demo")
        assert result.returncode == 0
        assert "Remark 1: 4/3" in result.stdout


class TestInfo:
    def test_summarizes_a_valid_moft_csv(self, tmp_path):
        csv = tmp_path / "moft.csv"
        csv.write_text(
            "oid,t,x,y\nO1,0,1.0,2.0\nO1,1,2.0,3.0\nO2,0,5.0,5.0\n"
        )
        result = run_cli("info", str(csv))
        assert result.returncode == 0
        assert "rows:    3" in result.stdout
        assert "objects: 2" in result.stdout

    def test_nonexistent_path_exits_2_with_clean_error(self, tmp_path):
        result = run_cli("info", str(tmp_path / "nope.csv"))
        assert result.returncode == 2
        assert result.stderr.startswith("error: ")
        assert "Traceback" not in result.stderr
        assert result.stdout == ""

    @pytest.mark.parametrize(
        "content",
        [
            "",  # empty file
            "oid,t,x,y\nO1,0,abc,2\n",  # non-numeric coordinate
            "oid,t,x,y\nO1,0\n",  # truncated row
            "oid,t,x,x,y\nO1,0,1,2,3\n",  # duplicate header column
            "a,b,c\n1,2,3\n",  # wrong columns entirely
        ],
        ids=[
            "empty",
            "non-numeric",
            "truncated-row",
            "duplicate-header",
            "wrong-columns",
        ],
    )
    def test_malformed_csv_exits_2_with_clean_error(self, tmp_path, content):
        csv = tmp_path / "bad.csv"
        csv.write_text(content)
        result = run_cli("info", str(csv))
        assert result.returncode == 2
        assert result.stderr.startswith("error: ")
        assert "Traceback" not in result.stderr


class TestConvert:
    # Already in write_csv's canonical float rendering, so the
    # csv -> columnar -> csv round-trip below compares byte-identical.
    CSV = "oid,t,x,y\nO1,0.0,1.0,2.0\nO1,1.0,2.0,3.0\nO2,0.0,5.0,5.0\n"

    def test_csv_to_columnar_and_back_is_byte_identical(self, tmp_path):
        csv = tmp_path / "moft.csv"
        csv.write_text(self.CSV)
        col = tmp_path / "moft.moft"
        result = run_cli("convert", str(csv), str(col))
        assert result.returncode == 0
        assert "3 rows" in result.stdout and "2 objects" in result.stdout
        assert col.stat().st_size > 0

        back = tmp_path / "back.csv"
        result = run_cli("convert", str(col), str(back))
        assert result.returncode == 0
        assert back.read_text() == self.CSV

    def test_info_reads_columnar_files(self, tmp_path):
        csv = tmp_path / "moft.csv"
        csv.write_text(self.CSV)
        col = tmp_path / "moft.moft"
        assert run_cli("convert", str(csv), str(col)).returncode == 0
        result = run_cli("info", str(col))
        assert result.returncode == 0
        assert "columnar" in result.stdout
        assert "rows:    3" in result.stdout
        assert "objects: 2" in result.stdout

    def test_no_index_flag_writes_smaller_file(self, tmp_path):
        csv = tmp_path / "moft.csv"
        csv.write_text(self.CSV)
        full = tmp_path / "full.moft"
        lean = tmp_path / "lean.moft"
        assert run_cli("convert", str(csv), str(full)).returncode == 0
        assert (
            run_cli("convert", "--no-index", str(csv), str(lean)).returncode
            == 0
        )
        assert lean.stat().st_size < full.stat().st_size

    def test_corrupt_columnar_exits_2_with_clean_error(self, tmp_path):
        bad = tmp_path / "bad.moft"
        bad.write_bytes(b"MOFTCOL\x00" + b"\xff" * 16)
        result = run_cli("info", str(bad))
        assert result.returncode == 2
        assert result.stderr.startswith("error: ")
        assert "Traceback" not in result.stderr

    def test_missing_source_exits_2_with_clean_error(self, tmp_path):
        result = run_cli(
            "convert", str(tmp_path / "nope.csv"), str(tmp_path / "out.moft")
        )
        assert result.returncode == 2
        assert result.stderr.startswith("error: ")
        assert "Traceback" not in result.stderr


class TestServiceVerbsSubprocess:
    """submit → serve --drain → status → result as real processes.

    The durable queue file is the hand-off: the submit process exits
    before the serve process starts, so this is the cross-process
    contract itself under test, not a convenience wrapper.
    """

    def test_full_job_lifecycle_across_processes(self, tmp_path):
        db = str(tmp_path / "jobs.db")
        submitted = run_cli(
            "submit", "--db", db,
            "--through", "Ln:polygon",
            "--constraint", "intersects:Lr:polyline",
            "--constraint", "contains:Ls:node",
            "--moft", "FMbus",
        )
        assert submitted.returncode == 0
        job_id = submitted.stdout.strip()
        assert job_id == "J000001"
        assert "queued" in submitted.stderr

        served = run_cli("serve", "--db", db, "--drain", "--workers", "2")
        assert served.returncode == 0
        assert "done=1" in served.stdout

        status = run_cli("status", "--db", db, job_id)
        assert status.returncode == 0
        assert f"job {job_id}: done" in status.stdout
        assert "attempts: 1" in status.stdout

        result = run_cli("result", "--db", db, job_id, "--explain")
        assert result.returncode == 0
        assert result.stdout.strip() == '{"count":5,"kind":"through"}'
        assert "QueryPlan" in result.stderr

    def test_pietql_submission_round_trip(self, tmp_path):
        db = str(tmp_path / "jobs.db")
        submitted = run_cli(
            "submit", "--db", db,
            "SELECT layer.schools FROM Fig1",
        )
        assert submitted.returncode == 0
        job_id = submitted.stdout.strip()
        assert run_cli("serve", "--db", db, "--drain").returncode == 0
        result = run_cli("result", "--db", db, job_id)
        assert result.returncode == 0
        assert '"kind":"pietql"' in result.stdout
        assert "nd_school_north" in result.stdout

    def test_unknown_job_id_exits_2(self, tmp_path):
        db = str(tmp_path / "jobs.db")
        run_cli("submit", "--db", db, "--through", "Ln:polygon")
        for verb in ("status", "result"):
            proc = run_cli(verb, "--db", db, "J999999")
            assert proc.returncode == 2
            assert proc.stderr.startswith("error: ")
            assert "Traceback" not in proc.stderr

    def test_rejected_admission_exits_2(self, tmp_path):
        db = str(tmp_path / "jobs.db")
        first = run_cli(
            "submit", "--db", db, "--max-depth", "1",
            "--through", "Ln:polygon",
        )
        assert first.returncode == 0
        second = run_cli(
            "submit", "--db", db, "--max-depth", "1",
            "--through", "Ln:polygon",
        )
        assert second.returncode == 2
        assert second.stderr.startswith("error: queue is full")
        assert "Traceback" not in second.stderr
        assert second.stdout == ""

    def test_pending_result_exits_2(self, tmp_path):
        db = str(tmp_path / "jobs.db")
        job_id = run_cli(
            "submit", "--db", db, "--through", "Ln:polygon"
        ).stdout.strip()
        proc = run_cli("result", "--db", db, job_id)
        assert proc.returncode == 2
        assert "no result yet" in proc.stderr

    def test_malformed_spec_arguments_exit_2(self, tmp_path):
        db = str(tmp_path / "jobs.db")
        for args in (
            ["--through", "not-layer-kind"],
            ["--through", "Ln:polygon", "--constraint", "bad"],
            ["--through", "Ln:polygon", "--window", "a:b"],
            ["--through", "Ln:polygon", "SELECT both FROM given"],
            [],  # nothing to submit at all
        ):
            proc = run_cli("submit", "--db", db, *args)
            assert proc.returncode == 2, args
            assert proc.stderr.startswith("error: ")
            assert "Traceback" not in proc.stderr


class TestServiceVerbsInProcess:
    """The same verbs through main([...]) — fast, and measured by
    coverage (subprocesses are not)."""

    @pytest.fixture()
    def main(self):
        from repro.__main__ import main as cli_main

        return cli_main

    def test_lifecycle_in_process(self, tmp_path, main, capsys):
        db = str(tmp_path / "jobs.db")
        assert main([
            "submit", "--db", db,
            "--through", "Ln:polygon",
            "--constraint", "intersects:Lr:polyline",
            "--constraint", "contains:Ls:node",
            "--moft", "FMbus",
            "--window", "0:9",
        ]) == 0
        job_id = capsys.readouterr().out.strip()
        assert main(["serve", "--db", db, "--drain"]) == 0
        assert main(["status", "--db", db, job_id]) == 0
        assert f"job {job_id}: done" in capsys.readouterr().out
        assert main(["result", "--db", db, job_id, "--explain"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == '{"count":5,"kind":"through"}'
        assert "QueryPlan" in captured.err

    def test_failed_job_result_reports_error(self, tmp_path, main, capsys):
        db = str(tmp_path / "jobs.db")
        assert main(["submit", "--db", db, "SELECT !! nonsense"]) == 0
        job_id = capsys.readouterr().out.strip()
        assert main(["serve", "--db", db, "--drain"]) == 0
        assert main(["status", "--db", db, job_id]) == 0
        assert "failed" in capsys.readouterr().out
        assert main(["result", "--db", db, job_id]) == 2
        assert "error: job" in capsys.readouterr().err

    def test_throttled_client_in_process(self, tmp_path, main, capsys):
        db = str(tmp_path / "jobs.db")
        assert main([
            "submit", "--db", db, "--max-inflight", "1",
            "--client", "alice", "--through", "Ln:polygon",
        ]) == 0
        assert main([
            "submit", "--db", db, "--max-inflight", "1",
            "--client", "alice", "--through", "Ln:polygon",
        ]) == 2
        assert "in flight" in capsys.readouterr().err


class TestIngest:
    """The ``ingest`` verb: stream a CSV into a named world."""

    @pytest.fixture()
    def fig1_csv(self, tmp_path):
        from repro.mo.io import write_csv
        from repro.synth import figure1_instance

        path = tmp_path / "fig1.csv"
        write_csv(figure1_instance().context().moft("FMbus"), path)
        return str(path)

    def test_streams_a_csv_and_reports_accounting(self, fig1_csv):
        result = run_cli(
            "ingest", fig1_csv, "--world", "fig1",
            "--batch-size", "4", "--lateness", "12",
        )
        assert result.returncode == 0
        assert "12 submitted, 12 ingested, 0 late" in result.stdout
        assert "1 segment(s)" in result.stdout  # close() compacts

    def test_late_samples_are_reported_not_dropped(self, fig1_csv):
        result = run_cli(
            "ingest", fig1_csv, "--world", "fig1",
            "--batch-size", "3", "--lateness", "2", "--compact-every", "2",
        )
        assert result.returncode == 0
        out = result.stdout
        assert "12 submitted" in out
        submitted_line = next(
            line for line in out.splitlines() if "submitted" in line
        )
        ingested = int(submitted_line.split("submitted,")[1].split()[0])
        late = int(submitted_line.split("ingested,")[1].split()[0])
        assert ingested + late == 12

    def test_nonexistent_csv_exits_2_with_clean_error(self, tmp_path):
        result = run_cli("ingest", str(tmp_path / "nope.csv"))
        assert result.returncode == 2
        assert result.stderr.startswith("error: ")
        assert "Traceback" not in result.stderr

    def test_unknown_world_is_rejected_by_argparse(self, fig1_csv):
        result = run_cli("ingest", fig1_csv, "--world", "mars")
        assert result.returncode != 0
        assert "Traceback" not in result.stderr


class TestPoiVerbInProcess:
    """`python -m repro poi` through main([...]) — measured by coverage."""

    @pytest.fixture()
    def main(self):
        from repro.__main__ import main as cli_main

        return cli_main

    def test_fig1_world(self, main, capsys):
        assert main(["poi", "--world", "fig1", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "poi_market" in out
        assert "QueryPlan" in out
        assert "stop_episodes" in out

    def test_synth_world_with_knobs(self, main, capsys):
        assert main([
            "poi", "--world", "synth",
            "--objects", "10", "--k", "2", "--min-dwell", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "places" in out
        assert "top-2" in out or "TOP" in out or "top" in out

    def test_poi_subprocess_smoke(self):
        result = run_cli("poi", "--world", "fig1")
        assert result.returncode == 0
        assert "Traceback" not in result.stderr
