"""End-to-end tests of the ``python -m repro`` command line.

Run as real subprocesses (the module is its own program; its exit codes
and stderr discipline are the interface under test): ``--help`` and the
demo exit 0, bad input exits 2 with a single ``error: ...`` line on
stderr and never a traceback.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def run_cli(*args: str, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=120,
    )


class TestHelp:
    def test_help_exits_zero(self):
        result = run_cli("--help")
        assert result.returncode == 0
        assert "demo" in result.stdout and "info" in result.stdout

    def test_unknown_command_exits_nonzero(self):
        result = run_cli("frobnicate")
        assert result.returncode != 0
        assert "Traceback" not in result.stderr


class TestDemo:
    def test_default_invocation_runs_the_quickstart(self):
        result = run_cli()
        assert result.returncode == 0
        assert "Remark 1: 4/3" in result.stdout
        assert "1.3333" in result.stdout
        assert result.stderr == ""

    def test_explicit_demo_subcommand(self):
        result = run_cli("demo")
        assert result.returncode == 0
        assert "Remark 1: 4/3" in result.stdout


class TestInfo:
    def test_summarizes_a_valid_moft_csv(self, tmp_path):
        csv = tmp_path / "moft.csv"
        csv.write_text(
            "oid,t,x,y\nO1,0,1.0,2.0\nO1,1,2.0,3.0\nO2,0,5.0,5.0\n"
        )
        result = run_cli("info", str(csv))
        assert result.returncode == 0
        assert "rows:    3" in result.stdout
        assert "objects: 2" in result.stdout

    def test_nonexistent_path_exits_2_with_clean_error(self, tmp_path):
        result = run_cli("info", str(tmp_path / "nope.csv"))
        assert result.returncode == 2
        assert result.stderr.startswith("error: ")
        assert "Traceback" not in result.stderr
        assert result.stdout == ""

    @pytest.mark.parametrize(
        "content",
        [
            "",  # empty file
            "oid,t,x,y\nO1,0,abc,2\n",  # non-numeric coordinate
            "oid,t,x,y\nO1,0\n",  # truncated row
            "oid,t,x,x,y\nO1,0,1,2,3\n",  # duplicate header column
            "a,b,c\n1,2,3\n",  # wrong columns entirely
        ],
        ids=[
            "empty",
            "non-numeric",
            "truncated-row",
            "duplicate-header",
            "wrong-columns",
        ],
    )
    def test_malformed_csv_exits_2_with_clean_error(self, tmp_path, content):
        csv = tmp_path / "bad.csv"
        csv.write_text(content)
        result = run_cli("info", str(csv))
        assert result.returncode == 2
        assert result.stderr.startswith("error: ")
        assert "Traceback" not in result.stderr
