"""Tests for the uncertainty-aware PossiblyThrough atom (lifeline beads)."""

import pytest

from repro.errors import EvaluationError
from repro.geometry import Point, Polygon
from repro.mo import MOFT, Lifeline, TrajectorySample
from repro.query.ast import And, Moft, PossiblyThrough, Const, Var
from repro.query.region import SpatioTemporalRegion
from repro.synth.paperdata import figure1_instance

OID, T, X, Y = Var("oid"), Var("t"), Var("x"), Var("y")


@pytest.fixture(scope="module")
def world():
    return figure1_instance()


class TestEllipsePolygon:
    def test_intersects_overlapping(self):
        from repro.mo.beads import Ellipse

        ellipse = Ellipse(Point(0, 0), 4.0, 2.0, 0.0)
        assert ellipse.intersects_polygon(Polygon.rectangle(3, -1, 6, 1))
        assert not ellipse.intersects_polygon(Polygon.rectangle(10, 10, 12, 12))

    def test_polygon_inside_ellipse(self):
        from repro.mo.beads import Ellipse

        ellipse = Ellipse(Point(0, 0), 10.0, 10.0, 0.0)
        assert ellipse.intersects_polygon(Polygon.rectangle(-1, -1, 1, 1))

    def test_ellipse_inside_polygon(self):
        from repro.mo.beads import Ellipse

        ellipse = Ellipse(Point(0, 0), 1.0, 0.5, 0.0)
        assert ellipse.intersects_polygon(Polygon.rectangle(-5, -5, 5, 5))

    def test_boundary_points_on_ellipse(self):
        from repro.mo.beads import Ellipse

        ellipse = Ellipse(Point(1, 2), 3.0, 1.0, 0.7)
        for p in ellipse.boundary_points(16):
            assert ellipse.contains_point(p)


class TestCouldHaveEntered:
    def test_straight_line_bead(self):
        sample = TrajectorySample([(0, 0.0, 0.0), (10, 10.0, 0.0)])
        lifeline = Lifeline(sample, max_speed=2.0)
        # Region near the path but off it: reachable within the bead.
        assert lifeline.could_have_entered(Polygon.rectangle(4, 3, 6, 5))
        # Region far beyond the speed bound: provably never entered.
        assert not lifeline.could_have_entered(
            Polygon.rectangle(4, 50, 6, 52)
        )

    def test_tight_speed_excludes_detour(self):
        sample = TrajectorySample([(0, 0.0, 0.0), (10, 10.0, 0.0)])
        region = Polygon.rectangle(4, 4, 6, 6)
        assert Lifeline(sample, max_speed=3.0).could_have_entered(region)
        assert not Lifeline(sample, max_speed=1.01).could_have_entered(region)


class TestPossiblyThroughAtom:
    def region(self, max_speed: float) -> SpatioTemporalRegion:
        return SpatioTemporalRegion(
            ("oid",),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                PossiblyThrough(
                    OID,
                    "Ln",
                    "polygon",
                    Const("pg_berchem"),
                    max_speed,
                    "FMbus",
                ),
            ),
        )

    def test_superset_of_interpolation(self, world):
        """Any object whose LIT crosses the region could also have crossed
        it under the bead model (for a feasible speed)."""
        ctx = world.context()
        # O6's straight path crosses Berchem's bump: speed 6/h suffices
        # (samples 6 units apart, one hour).
        possible = {
            row["oid"] for row in self.region(7.0).evaluate(ctx)
        }
        assert "O6" in possible

    def test_generous_speed_admits_more(self, world):
        ctx = world.context()
        slow = {row["oid"] for row in self.region(7.0).evaluate(ctx)}
        fast = {row["oid"] for row in self.region(30.0).evaluate(ctx)}
        assert slow <= fast
        assert len(fast) > len(slow)

    def test_single_sample_point_check(self, world):
        ctx = world.context()
        # O3's single sample is at (15,15) in noord, not in berchem.
        # (Project on t since the object id is a constant here.)
        region = SpatioTemporalRegion(
            ("t",),
            And(
                Moft(Const("O3"), T, X, Y, "FMbus"),
                PossiblyThrough(
                    Const("O3"),
                    "Ln",
                    "polygon",
                    Const("pg_berchem"),
                    10.0,
                    "FMbus",
                ),
            ),
        )
        assert region.evaluate(ctx) == []

    def test_node_target(self, world):
        ctx = world.context()
        region = SpatioTemporalRegion(
            ("oid",),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                PossiblyThrough(
                    OID, "Ls", "node", Const("nd_school_north"), 20.0, "FMbus"
                ),
            ),
        )
        oids = {row["oid"] for row in region.evaluate(ctx)}
        assert "O3" in oids  # sampled exactly at the school

    def test_enumerates_geometries(self, world):
        ctx = world.context()
        region = SpatioTemporalRegion(
            ("oid", "g"),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                PossiblyThrough(OID, "Ln", "polygon", Var("g"), 5.0, "FMbus"),
            ),
        )
        rows = region.evaluate(ctx)
        assert any(row["oid"] == "O1" and row["g"] == "pg_zuid" for row in rows)
