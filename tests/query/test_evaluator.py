"""Tests for the Section 5 evaluation pipeline."""

import pytest

from repro.errors import EvaluationError
from repro.geometry import Point, Polygon, Polyline
from repro.mo import MOFT
from repro.query import (
    EvaluationStats,
    TrajectoryIntersectionCounter,
    count_objects_through,
    geometric_subquery,
)
from repro.synth.paperdata import figure1_instance


@pytest.fixture(scope="module")
def world():
    return figure1_instance()


class TestTrajectoryIntersectionCounter:
    def squares(self):
        return {
            "a": Polygon.rectangle(0, 0, 10, 10),
            "b": Polygon.rectangle(100, 100, 110, 110),
        }

    def moft(self) -> MOFT:
        moft = MOFT()
        moft.add_many(
            [
                ("inside", 0, 5.0, 5.0),
                ("inside", 1, 6.0, 6.0),
                ("crossing", 0, -5.0, 5.0),
                ("crossing", 1, 15.0, 5.0),
                ("outside", 0, 50.0, 50.0),
                ("outside", 1, 60.0, 60.0),
                ("single-hit", 0, 3.0, 3.0),
                ("single-miss", 0, 55.0, 3.0),
            ]
        )
        return moft

    def test_requires_geometries(self):
        with pytest.raises(EvaluationError):
            TrajectoryIntersectionCounter({})

    def test_matching_objects(self):
        counter = TrajectoryIntersectionCounter(self.squares())
        matched = counter.matching_objects(self.moft())
        assert matched == {"inside", "crossing", "single-hit"}

    def test_count(self):
        counter = TrajectoryIntersectionCounter(self.squares())
        assert counter.count(self.moft()) == 3

    def test_all_strategy_combinations_agree(self):
        expected = {"inside", "crossing", "single-hit"}
        for use_index in (True, False):
            for early_exit in (True, False):
                counter = TrajectoryIntersectionCounter(
                    self.squares(), use_index=use_index, early_exit=early_exit
                )
                assert counter.matching_objects(self.moft()) == expected

    def test_stats_populated(self):
        stats = EvaluationStats()
        counter = TrajectoryIntersectionCounter(self.squares(), use_index=False)
        counter.matching_objects(self.moft(), stats)
        assert stats.objects_scanned == 5
        assert stats.objects_matched == 3
        assert stats.segment_checks > 0
        assert stats.elapsed_seconds >= 0
        assert stats.count("scan_rows") == len(self.moft())
        assert set(stats.as_dict()) == {
            "segment_checks",
            "bbox_rejections",
            "objects_scanned",
            "objects_matched",
            "elapsed_seconds",
            "scan_rows",
        }

    def test_early_exit_fewer_checks(self):
        moft = MOFT()
        # Long trajectory inside the polygon: early exit stops at piece 1.
        for i in range(50):
            moft.add("runner", i, 1.0 + 0.1 * i, 1.0)
        eager = EvaluationStats()
        TrajectoryIntersectionCounter(
            self.squares(), early_exit=True
        ).matching_objects(moft, eager)
        lazy = EvaluationStats()
        TrajectoryIntersectionCounter(
            self.squares(), early_exit=False
        ).matching_objects(moft, lazy)
        assert eager.segment_checks < lazy.segment_checks


class TestGeometricSubquery:
    def test_cities_crossed_by_river(self, world):
        ctx = world.context()
        ids = geometric_subquery(
            ctx,
            ("Ln", "polygon"),
            [("intersects", ("Lr", "polyline"))],
        )
        # The river along y=10 touches all four neighborhoods.
        assert ids == {"pg_zuid", "pg_berchem", "pg_centrum", "pg_noord"}

    def test_conjunctive_constraints(self, world):
        ctx = world.context()
        ids = geometric_subquery(
            ctx,
            ("Ln", "polygon"),
            [
                ("intersects", ("Lr", "polyline")),
                ("contains", ("Ls", "node")),
            ],
        )
        # Only zuid and noord contain a school node.
        assert ids == {"pg_zuid", "pg_noord"}

    def test_no_constraints_returns_all(self, world):
        ctx = world.context()
        ids = geometric_subquery(ctx, ("Ls", "node"), [])
        assert ids == {"nd_school_south", "nd_school_north"}

    def test_unsatisfiable_returns_empty(self, world):
        ctx = world.context()
        ids = geometric_subquery(
            ctx,
            ("Ls", "node"),
            [("contains", ("Ln", "polygon"))],  # nodes contain no polygons
        )
        assert ids == set()

    def test_overlay_and_naive_agree(self, world):
        constraints = [
            ("intersects", ("Lr", "polyline")),
            ("contains", ("Ls", "node")),
        ]
        overlay_ids = geometric_subquery(
            world.context(use_overlay=True), ("Ln", "polygon"), constraints
        )
        naive_ids = geometric_subquery(
            world.context(use_overlay=False), ("Ln", "polygon"), constraints
        )
        assert overlay_ids == naive_ids


class TestFullPipeline:
    def test_count_objects_through(self, world):
        """Section 5's example: objects through cities crossed by a river
        containing at least one store (here: a school)."""
        ctx = world.context()
        count = count_objects_through(
            ctx,
            ("Ln", "polygon"),
            [
                ("intersects", ("Lr", "polyline")),
                ("contains", ("Ls", "node")),
            ],
            moft_name="FMbus",
        )
        # Qualifying: zuid and noord.  O1, O2 touch zuid; O3, O5, O6 in
        # noord; O4 stays in centrum.
        assert count == 5

    def test_empty_geometric_answer_counts_zero(self, world):
        ctx = world.context()
        count = count_objects_through(
            ctx,
            ("Ls", "node"),
            [("contains", ("Ln", "polygon"))],
            moft_name="FMbus",
        )
        assert count == 0

    def test_stats_flow_through(self, world):
        ctx = world.context()
        stats = EvaluationStats()
        count_objects_through(
            ctx,
            ("Ln", "polygon"),
            [("intersects", ("Lr", "polyline"))],
            moft_name="FMbus",
            stats=stats,
        )
        assert stats.objects_scanned == 6
