"""Differential tests: the solver vs an independent brute-force reference.

A tiny reference implementation evaluates the running-query shape with
plain loops (no AST, no solver, no overlay); hypothesis generates small
random worlds and the two implementations must agree exactly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point, Polygon
from repro.gis import (
    ALL,
    POINT,
    POLYGON,
    AttributePlacement,
    GISDimensionInstance,
    GISDimensionSchema,
    LayerHierarchy,
)
from repro.mo import MOFT
from repro.query import EvaluationContext, RegionBuilder
from repro.temporal import TimeDimension

GRID = 4  # 4x4 neighborhoods of size 10


def build_world(incomes, samples, morning):
    """A GRIDxGRID world with given per-cell incomes and MOFT samples."""
    schema = GISDimensionSchema(
        [LayerHierarchy("Ln", [(POINT, POLYGON), (POLYGON, ALL)])],
        [AttributePlacement("neighborhood", POLYGON, "Ln")],
    )
    gis = GISDimensionInstance(schema)
    for index, income in enumerate(incomes):
        i, j = index % GRID, index // GRID
        name = f"nb{i}_{j}"
        gis.add_geometry(
            "Ln",
            POLYGON,
            f"pg_{name}",
            Polygon.rectangle(i * 10, j * 10, (i + 1) * 10, (j + 1) * 10),
        )
        gis.set_alpha("neighborhood", name, f"pg_{name}")
        gis.set_member_value("neighborhood", name, "income", income)
    moft = MOFT("FM")
    for oid_index, t, x, y in samples:
        moft.add(f"obj{oid_index}", t, x, y)
    rollups = []
    for t in range(8):
        rollups.append(("timeId", t, "hour", t))
        rollups.append(
            ("hour", t, "timeOfDay", "Morning" if t in morning else "Other")
        )
    time = TimeDimension.from_explicit_rollups(rollups)
    return gis, time, moft


def reference_answer(incomes, samples, morning, threshold):
    """Brute force: loops and arithmetic only."""
    result = set()
    for oid_index, t, x, y in samples:
        if t not in morning:
            continue
        for index, income in enumerate(incomes):
            if income >= threshold:
                continue
            i, j = index % GRID, index // GRID
            if i * 10 <= x <= (i + 1) * 10 and j * 10 <= y <= (j + 1) * 10:
                result.add((f"obj{oid_index}", float(t)))
                break
    return result


world_strategy = st.tuples(
    st.lists(
        st.integers(min_value=500, max_value=3000),
        min_size=GRID * GRID,
        max_size=GRID * GRID,
    ),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # object index
            st.integers(min_value=0, max_value=7),  # instant
            st.floats(min_value=0.5, max_value=39.5),
            st.floats(min_value=0.5, max_value=39.5),
        ),
        min_size=1,
        max_size=25,
        unique_by=lambda s: (s[0], s[1]),
    ),
    st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=4),
    st.integers(min_value=400, max_value=3100),
)


class TestDifferential:
    @settings(max_examples=40, deadline=None)
    @given(world_strategy)
    def test_solver_matches_reference(self, data):
        incomes, samples, morning, threshold = data
        gis, time, moft = build_world(incomes, samples, morning)
        ctx = EvaluationContext(gis, time, moft)
        region = (
            RegionBuilder()
            .from_moft("FM")
            .during("timeOfDay", "Morning")
            .in_attribute_polygon(
                "neighborhood", value_filter=("income", "<", threshold)
            )
            .build(gis)
        )
        solver_answer = region.evaluate_tuples(ctx)
        expected = reference_answer(incomes, samples, morning, threshold)
        # Samples exactly on shared boundaries belong to both cells; the
        # strategy avoids integral boundaries, so answers must be equal.
        assert solver_answer == expected

    @settings(max_examples=20, deadline=None)
    @given(world_strategy)
    def test_overlay_and_naive_match_reference(self, data):
        incomes, samples, morning, threshold = data
        gis, time, moft = build_world(incomes, samples, morning)
        region = (
            RegionBuilder()
            .from_moft("FM")
            .during("timeOfDay", "Morning")
            .in_attribute_polygon(
                "neighborhood", value_filter=("income", "<", threshold)
            )
            .build(gis)
        )
        expected = reference_answer(incomes, samples, morning, threshold)
        for use_overlay in (True, False):
            ctx = EvaluationContext(gis, time, moft, use_overlay=use_overlay)
            assert region.evaluate_tuples(ctx) == expected
