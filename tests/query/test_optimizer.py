"""Tests for time push-down optimization."""

import pytest

from repro.query import RegionBuilder
from repro.query.ast import And, Const, Moft, Or, TimeRollup, Var
from repro.query.optimizer import FilteredMoft, push_down_time
from repro.query.region import SpatioTemporalRegion
from repro.synth.paperdata import LOW_INCOME_THRESHOLD, figure1_instance

OID, T, X, Y = Var("oid"), Var("t"), Var("x"), Var("y")


@pytest.fixture(scope="module")
def world():
    return figure1_instance()


def running_query_region(world):
    return (
        RegionBuilder()
        .from_moft("FMbus")
        .during("timeOfDay", "Morning")
        .in_attribute_polygon(
            "neighborhood", value_filter=("income", "<", LOW_INCOME_THRESHOLD)
        )
        .build(world.gis)
    )


class TestRewrite:
    def test_rewrites_moft_to_filtered(self, world):
        region = running_query_region(world)
        optimized = push_down_time(region, world.context())
        kinds = [type(c).__name__ for c in optimized.formula.children]
        assert "FilteredMoft" in kinds
        assert "Moft" not in kinds

    def test_instants_are_the_morning(self, world):
        region = running_query_region(world)
        optimized = push_down_time(region, world.context())
        filtered = next(
            c
            for c in optimized.formula.children
            if isinstance(c, FilteredMoft)
        )
        assert filtered.instants == frozenset({2.0, 3.0, 4.0})

    def test_same_answers(self, world):
        ctx = world.context()
        region = running_query_region(world)
        optimized = push_down_time(region, ctx)
        assert optimized.evaluate_tuples(ctx) == region.evaluate_tuples(ctx)

    def test_compare_constraints_intersected(self, world):
        region = SpatioTemporalRegion(
            ("oid", "t"),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                TimeRollup(T, "timeOfDay", Const("Morning")),
            ),
        )
        builder_region = (
            RegionBuilder()
            .from_moft("FMbus")
            .during("timeOfDay", "Morning")
            .where_time("hour", ">=", 3)
            .build(world.gis)
        )
        ctx = world.context()
        optimized = push_down_time(builder_region, ctx)
        filtered = next(
            c
            for c in optimized.formula.children
            if isinstance(c, FilteredMoft)
        )
        assert filtered.instants == frozenset({3.0, 4.0})
        assert optimized.evaluate_tuples(ctx) == builder_region.evaluate_tuples(
            ctx
        )


class TestNoRewrite:
    def test_no_temporal_atoms(self, world):
        region = SpatioTemporalRegion(
            ("oid", "t"), And(Moft(OID, T, X, Y, "FMbus"))
        )
        assert push_down_time(region, world.context()) is region

    def test_constant_instant_untouched(self, world):
        region = SpatioTemporalRegion(
            ("oid",),
            And(
                Moft(OID, Const(3.0), X, Y, "FMbus"),
                TimeRollup(Const(3.0), "timeOfDay", Const("Morning")),
            ),
        )
        assert push_down_time(region, world.context()) is region

    def test_non_conjunction_untouched(self, world):
        region = SpatioTemporalRegion(
            ("oid", "t"),
            Or(
                Moft(OID, T, X, Y, "FMbus"),
                Moft(OID, T, X, Y, "FMbus"),
            ),
        )
        assert push_down_time(region, world.context()) is region

    def test_variable_member_untouched(self, world):
        region = SpatioTemporalRegion(
            ("oid", "t", "part"),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                TimeRollup(T, "timeOfDay", Var("part")),
            ),
        )
        optimized = push_down_time(region, world.context())
        assert optimized is region


class TestFilteredMoftAtom:
    def test_check_rejects_outside_instants(self, world):
        ctx = world.context()
        inner = Moft(Const("O1"), Const(1.0), Const(2.0), Const(2.0), "FMbus")
        filtered = FilteredMoft(inner, frozenset({2.0, 3.0}))
        assert not filtered.check(ctx, {})
        inner_ok = Moft(
            Const("O1"), Const(2.0), Const(4.0), Const(2.0), "FMbus"
        )
        assert FilteredMoft(inner_ok, frozenset({2.0})).check(ctx, {})

    def test_enumeration_restricted(self, world):
        ctx = world.context()
        inner = Moft(OID, T, X, Y, "FMbus")
        filtered = FilteredMoft(inner, frozenset({5.0, 6.0}))
        rows = list(filtered.enumerate_bindings(ctx, {}))
        assert {row["oid"] for row in rows} == {"O3", "O4"}

    def test_check_tolerates_ulp_drift(self, world):
        """Regression: membership was exact float set lookup.

        Instants that drifted a few ulp through interpolation or
        granule arithmetic (e.g. ``0.1 + 0.2`` vs ``0.3``) were
        silently dropped, so push-down could change answers.  The
        predicate is now the same sorted-array, ulp-tolerant check as
        ``MOFT.restrict_instants``.
        """
        import numpy as np

        ctx = world.context()
        drifted = np.nextafter(np.nextafter(2.0, np.inf), np.inf)
        assert drifted != 2.0
        inner = Moft(
            Const("O1"), Const(drifted), Const(4.0), Const(2.0), "FMbus"
        )
        # The MOFT row check itself uses Const equality, so probe the
        # membership predicate through an instant set containing the
        # drifted value and a query at the nominal one, and vice versa.
        filtered = FilteredMoft(
            Moft(Const("O1"), Const(2.0), Const(4.0), Const(2.0), "FMbus"),
            frozenset({drifted, 5.0}),
        )
        assert filtered.check(ctx, {})

    def test_check_rejects_genuinely_different_instants(self, world):
        ctx = world.context()
        inner = Moft(Const("O1"), Const(2.0), Const(4.0), Const(2.0), "FMbus")
        filtered = FilteredMoft(inner, frozenset({2.5, 5.0}))
        assert not filtered.check(ctx, {})

    def test_classic_float_arithmetic_case(self, world):
        """0.1 + 0.2 must count as a member of {0.3}."""
        from repro.mo.moft import is_member_instant, sorted_instants

        arr = sorted_instants({0.3, 1.0})
        assert 0.1 + 0.2 != 0.3
        assert is_member_instant(0.1 + 0.2, arr)
        assert not is_member_instant(0.31, arr)

    def test_describe_summarizes_instants(self, world):
        inner = Moft(OID, T, X, Y, "FMbus")
        filtered = FilteredMoft(inner, frozenset({1.0, 2.0, 3.0}))
        line = filtered._describe_line()
        assert "instants=3" in line
        assert "1.0" not in line  # the set itself is not dumped
