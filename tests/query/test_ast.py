"""Tests for the constraint AST: terms, connectives, atoms."""

import pytest

from repro.errors import QueryError
from repro.query import ast
from repro.query.ast import And, Compare, Const, Exists, MemberValue, Not, Or, Var


class TestTerms:
    def test_as_term_coercion(self):
        assert ast.as_term(5) == Const(5)
        assert ast.as_term(Var("x")) == Var("x")
        assert ast.as_term(Const("a")) == Const("a")

    def test_term_value(self):
        env = {"x": 42}
        assert ast.term_value(Var("x"), env) == 42
        assert ast.term_value(Const(7), env) == 7

    def test_unbound_raises(self):
        with pytest.raises(QueryError):
            ast.term_value(Var("y"), {})

    def test_is_bound(self):
        assert ast.is_bound(Const(1), {})
        assert ast.is_bound(Var("x"), {"x": 1})
        assert not ast.is_bound(Var("x"), {})

    def test_operator_parsing(self):
        assert ast.parse_operator("<")(1, 2)
        assert ast.parse_operator(">=")(2, 2)
        assert ast.parse_operator("=")(3, 3)
        assert ast.parse_operator("!=")(3, 4)
        with pytest.raises(QueryError):
            ast.parse_operator("~~")


class TestConnectives:
    ATOM_A = Compare(Var("a"), "=", Const(1))
    ATOM_B = Compare(Var("b"), "=", Const(2))

    def test_and_flattens(self):
        composite = And(And(self.ATOM_A, self.ATOM_B), self.ATOM_A)
        assert len(composite.children) == 3

    def test_and_needs_children(self):
        with pytest.raises(QueryError):
            And()

    def test_or_needs_children(self):
        with pytest.raises(QueryError):
            Or()

    def test_free_variables(self):
        f = And(self.ATOM_A, self.ATOM_B)
        assert f.free_variables() == {"a", "b"}
        assert Not(self.ATOM_A).free_variables() == {"a"}

    def test_exists_binds(self):
        f = Exists(Var("a"), ast.ExplicitDomain([1, 2]), And(self.ATOM_A, self.ATOM_B))
        assert f.free_variables() == {"b"}

    def test_operator_sugar(self):
        f = self.ATOM_A & self.ATOM_B
        assert isinstance(f, And)
        g = self.ATOM_A | self.ATOM_B
        assert isinstance(g, Or)
        n = ~self.ATOM_A
        assert isinstance(n, Not)

    def test_member_value_free_vars(self):
        expr = MemberValue("neighborhood", Var("n"), "income")
        f = Compare(expr, "<", Const(1500))
        assert f.free_variables() == {"n"}

    def test_member_value_repr(self):
        expr = MemberValue("neighborhood", Var("n"), "income")
        assert "income" in repr(expr)


class TestDomains:
    def test_explicit_domain(self):
        domain = ast.ExplicitDomain([3, 1, 2])
        assert set(domain.values(None)) == {1, 2, 3}
