"""Regression tests for the Section 5 pipeline hot-path fixes.

Each test pins one bug fixed alongside the columnar storage engine:
bbox rejections silently uncounted on the indexed path, the grid index
rebuilt on every query, and the vectorized fast path's oid recovery
materializing the whole table.
"""

import numpy as np
import pytest

from repro.geometry import Point, Polygon
from repro.gis import NODE, POLYGON, POLYLINE
from repro.mo import MOFT
from repro.query import (
    EvaluationStats,
    TrajectoryIntersectionCounter,
    count_objects_through,
    samples_in_polygons,
)
from repro.synth.paperdata import figure1_instance

CONSTRAINTS = [
    ("intersects", ("Lr", POLYLINE)),
    ("contains", ("Ls", NODE)),
]


def two_far_polygons():
    return {
        "west": Polygon.rectangle(0, 0, 1, 1),
        "east": Polygon.rectangle(100, 0, 101, 1),
    }


def crossing_moft():
    moft = MOFT()
    # O1 crosses the west polygon; O2 stays far away from both.
    moft.add_many(
        [
            ("O1", 1, -1.0, 0.5),
            ("O1", 2, 2.0, 0.5),
            ("O2", 1, 50.0, 50.0),
            ("O2", 2, 51.0, 50.0),
        ]
    )
    return moft


class TestIndexedBboxRejections:
    def test_indexed_path_counts_pruning(self):
        """Regression: with the grid index on, candidate-set pruning was
        never counted, so the indexed ablation reported zero rejections."""
        counter = TrajectoryIntersectionCounter(
            two_far_polygons(), use_index=True
        )
        stats = EvaluationStats()
        counter.matching_objects(crossing_moft(), stats)
        assert stats.bbox_rejections > 0

    def test_naive_path_still_counts(self):
        counter = TrajectoryIntersectionCounter(
            two_far_polygons(), use_index=False
        )
        stats = EvaluationStats()
        counter.matching_objects(crossing_moft(), stats)
        assert stats.bbox_rejections > 0

    def test_strategies_agree_on_matches(self):
        indexed = TrajectoryIntersectionCounter(
            two_far_polygons(), use_index=True
        )
        naive = TrajectoryIntersectionCounter(
            two_far_polygons(), use_index=False
        )
        moft = crossing_moft()
        assert indexed.matching_objects(moft) == naive.matching_objects(moft)


class TestGridIndexCache:
    def test_repeated_queries_reuse_index(self):
        """Acceptance: repeated count_objects_through calls hit the
        per-id-set grid-index cache instead of rebuilding."""
        world = figure1_instance()
        ctx = world.context()
        first = count_objects_through(ctx, ("Ln", POLYGON), CONSTRAINTS, "FMbus")
        assert ctx.obs.count("grid_index_builds") == 1
        assert ctx.obs.count("grid_index_cache_hits") == 0
        second = count_objects_through(ctx, ("Ln", POLYGON), CONSTRAINTS, "FMbus")
        assert second == first
        assert ctx.obs.count("grid_index_builds") == 1
        assert ctx.obs.count("grid_index_cache_hits") == 1
        assert ctx.obs.stages["index_build"].calls == 1

    def test_distinct_id_sets_get_distinct_indexes(self):
        world = figure1_instance()
        ctx = world.context()
        count_objects_through(ctx, ("Ln", POLYGON), CONSTRAINTS, "FMbus")
        count_objects_through(ctx, ("Ln", POLYGON), [], "FMbus")
        assert ctx.obs.count("grid_index_builds") == 2

    def test_pietql_executor_uses_cache(self):
        from repro.pietql import LayerBinding, PietQLExecutor

        world = figure1_instance()
        ctx = world.context()
        executor = PietQLExecutor(
            ctx,
            {
                "neighborhoods": LayerBinding("Ln", POLYGON),
                "rivers": LayerBinding("Lr", POLYLINE),
                "schools": LayerBinding("Ls", NODE),
            },
        )
        text = (
            "SELECT layer.neighborhoods FROM Fig1 "
            "WHERE intersection(layer.rivers, layer.neighborhoods) "
            "| COUNT OBJECTS FROM FMbus THROUGH RESULT"
        )
        first = executor.execute(text)
        second = executor.execute(text)
        assert first.count == second.count
        assert ctx.obs.count("grid_index_builds") == 1
        assert ctx.obs.count("grid_index_cache_hits") >= 1
        assert ctx.obs.stages["geometric_subquery"].calls >= 2


class TestVectorizedPrefilter:
    def test_prefilter_agrees_with_segment_scan(self):
        geometries = two_far_polygons()
        moft = crossing_moft()
        plain = TrajectoryIntersectionCounter(
            geometries, vectorized_prefilter=False
        )
        fast = TrajectoryIntersectionCounter(
            geometries, vectorized_prefilter=True
        )
        assert plain.matching_objects(moft) == fast.matching_objects(moft)

    def test_prefilter_counts_accepts(self):
        moft = MOFT()
        moft.add_many([("O1", 1, 0.5, 0.5), ("O1", 2, 0.6, 0.5)])
        counter = TrajectoryIntersectionCounter(
            two_far_polygons(), vectorized_prefilter=True
        )
        stats = EvaluationStats()
        assert counter.matching_objects(moft, stats) == {"O1"}
        assert stats.count("vectorized_accepts") == 1
        # The accepted object never entered the per-segment scan.
        assert stats.segment_checks == 0

    def test_prefilter_skipped_for_non_polygons(self):
        from repro.geometry import Polyline

        geometries = {"line": Polyline([Point(0, 0), Point(1, 1)])}
        counter = TrajectoryIntersectionCounter(
            geometries, vectorized_prefilter=True
        )
        stats = EvaluationStats()
        counter.matching_objects(crossing_moft(), stats)
        assert stats.count("vectorized_accepts") == 0

    def test_pipeline_matches_with_and_without_prefilter(self):
        world = figure1_instance()
        with_fast = count_objects_through(
            world.context(), ("Ln", POLYGON), CONSTRAINTS, "FMbus",
            vectorized=True,
        )
        without = count_objects_through(
            world.context(), ("Ln", POLYGON), CONSTRAINTS, "FMbus",
            vectorized=False,
        )
        assert with_fast == without


class TestSamplesInPolygonsOidRecovery:
    def test_hits_recovered_from_oid_column(self):
        """Regression: hit rows used to be recovered by materializing
        every row via moft.tuples(); now the oid column is indexed with
        np.flatnonzero directly.  Semantics must be unchanged."""
        moft = MOFT()
        moft.add_many(
            [
                ("O1", 1, 0.5, 0.5),
                ("O1", 2, 5.0, 5.0),
                ("O2", 1, 0.25, 0.25),
                ("O3", 1, 9.0, 9.0),
            ]
        )
        unit = Polygon.rectangle(0, 0, 1, 1)
        hits = samples_in_polygons(moft, [unit])
        assert hits == {("O1", 1.0), ("O2", 1.0)}

    def test_instant_filter_still_applies(self):
        moft = MOFT()
        moft.add_many([("O1", 1, 0.5, 0.5), ("O1", 2, 0.5, 0.5)])
        unit = Polygon.rectangle(0, 0, 1, 1)
        assert samples_in_polygons(moft, [unit], instants={2}) == {
            ("O1", 2.0)
        }

    def test_tuple_oids(self):
        moft = MOFT()
        moft.add(("fleet", 7), 1, 0.5, 0.5)
        unit = Polygon.rectangle(0, 0, 1, 1)
        assert samples_in_polygons(moft, [unit]) == {(("fleet", 7), 1.0)}
