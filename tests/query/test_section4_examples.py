"""The seven example queries of Section 4, executed end to end.

Each test carries the paper's query text and declared type.  Queries about
features absent from the Figure 1 world (streets, big cities, tram stops)
run against purpose-built mini-worlds; the substitutions are noted inline.
"""

from datetime import datetime

import pytest

from repro.geometry import BoundingBox, Point, Polygon, Polyline
from repro.gis import (
    ALL,
    NODE,
    POINT,
    POLYGON,
    POLYLINE,
    AttributePlacement,
    GISDimensionInstance,
    GISDimensionSchema,
    LayerHierarchy,
)
from repro.mo import MOFT
from repro.olap import DimensionSchema
from repro.query import (
    AggregateSpec,
    EvaluationContext,
    MovingObjectAggregateQuery,
    QueryType,
    RegionBuilder,
    aggregate_trajectory_measure,
    classify,
    count_per_group,
    objects_passing_through,
    presence_intervals,
    time_near_node,
    time_spent_in,
)
from repro.query.ast import (
    Alpha,
    And,
    Compare,
    Const,
    MemberValue,
    Moft,
    Not,
    PointIn,
    TimeRollup,
    Var,
)
from repro.query.region import SpatioTemporalRegion
from repro.synth import build_city, CityConfig, figure1_instance
from repro.temporal import TimeDimension, hourly

OID, T, X, Y = Var("oid"), Var("t"), Var("x"), Var("y")


@pytest.fixture(scope="module")
def world():
    return figure1_instance()


class TestQuery1RegionCount:
    """Q1 (Type 4): 'Give me the number of cars in region South of Antwerp
    on Wednesday morning.'  Region South := the low-income southern
    neighborhood 'zuid'; the toy calendar's single day stands in for
    Wednesday."""

    def test_count(self, world):
        ctx = world.context()
        query = (
            RegionBuilder()
            .from_moft("FMbus")
            .during("timeOfDay", "Morning")
            .during("typeOfDay", "Weekday")
            .in_attribute_polygon("neighborhood", member="zuid")
            .count_query(distinct_objects=True, gis=world.gis)
        )
        # O1 (t=2,3,4) and O2 (t=3) are sampled in zuid in the morning.
        assert query.run_scalar(ctx) == 2

    def test_type(self, world):
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .during("timeOfDay", "Morning")
            .in_attribute_polygon("neighborhood", member="zuid")
            .build(world.gis)
        )
        assert classify(region) is QueryType.SAMPLES_WITH_GEOMETRY


class TestQuery2StreetDensity:
    """Q2 (Type 4): 'Give me the maximal density of cars on all roads in
    Antwerp on Monday morning.'  C returns (Oid, instant, street) triples;
    the three readings (a)–(c) aggregate them differently."""

    @pytest.fixture(scope="class")
    def street_world(self):
        city = build_city(CityConfig(cols=2, rows=2, block_size=10, seed=5))
        moft = MOFT("FM")
        # Three cars on street h1 (y=10), one car on street v1 (x=10).
        moft.add_many(
            [
                ("carA", 0, 2.0, 10.0),
                ("carA", 1, 5.0, 10.0),
                ("carB", 0, 8.0, 10.0),
                ("carB", 1, 12.0, 10.0),
                ("carC", 1, 15.0, 10.0),
                ("carD", 0, 10.0, 3.0),
                ("carD", 1, 10.0, 7.0),
            ]
        )
        time = TimeDimension.from_explicit_rollups(
            [("timeId", t, "hour", t) for t in (0, 1)]
            + [("hour", t, "timeOfDay", "Morning") for t in (0, 1)]
        )
        ctx = EvaluationContext(city.gis, time, moft)
        return city, ctx

    def region(self, city):
        street = Var("s")
        pl = Var("pl")
        return SpatioTemporalRegion(
            ("oid", "t", "s"),
            And(
                Moft(OID, T, X, Y),
                TimeRollup(T, "timeOfDay", Const("Morning")),
                PointIn(X, Y, "Lst", "polyline", pl),
                Alpha("street", street, pl),
            ),
        )

    def test_triples_capture_street_memberships(self, street_world):
        city, ctx = street_world
        rows = self.region(city).evaluate(ctx)
        streets_hit = {row["s"] for row in rows}
        assert "h1" in streets_hit
        assert "v1" in streets_hit

    def test_reading_a_count_per_street_over_morning(self, street_world):
        """(a) count all cars per street over the whole morning, divide by
        street length, return the densest street."""
        city, ctx = street_world
        rows = self.region(city).evaluate(ctx)
        per_street = {}
        for row in rows:
            per_street.setdefault(row["s"], set()).add(row["oid"])
        densities = {
            street: len(cars)
            / city.gis.member_value("street", street, "length")
            for street, cars in per_street.items()
        }
        best = max(densities, key=densities.get)
        assert best == "h1"  # three cars on a 20-length street

    def test_reading_b_per_street_and_instant(self, street_world):
        """(b) density per (street, instant); return the peak moment."""
        city, ctx = street_world
        counts = count_per_group(self.region(city), ctx, ["s", "t"])
        assert counts[("h1", 1.0)] == 3  # carA, carB, carC at t=1
        assert counts[("h1", 0.0)] == 2

    def test_reading_c_citywide_per_instant(self, street_world):
        """(c) total cars on roads per instant / total network length."""
        city, ctx = street_world
        counts = count_per_group(self.region(city), ctx, ["t"])
        total_length = sum(
            city.gis.member_value("street", s, "length") for s in city.streets
        )
        densities = {t: c / total_length for (t,), c in counts.items()}
        assert densities[1.0] > densities[0.0]


class TestQuery3CompletelyThrough:
    """Q3 (Type 4): 'Total number of cars passing completely through cities
    with a population of more than 50,000 on Wednesday morning' — a
    positive condition plus a negated existential (never sampled in a small
    city)."""

    @pytest.fixture(scope="class")
    def city_world(self):
        schema = GISDimensionSchema(
            [LayerHierarchy("Lc", [(POINT, POLYGON), (POLYGON, ALL)])],
            [AttributePlacement("city", POLYGON, "Lc")],
            [DimensionSchema("Cities", [("city", "country")])],
        )
        gis = GISDimensionInstance(schema)
        gis.add_geometry("Lc", POLYGON, "pg_big", Polygon.rectangle(0, 0, 10, 10))
        gis.add_geometry(
            "Lc", POLYGON, "pg_small", Polygon.rectangle(10, 0, 20, 10)
        )
        gis.set_alpha("city", "bigtown", "pg_big")
        gis.set_alpha("city", "smallville", "pg_small")
        gis.set_member_value("city", "bigtown", "pop", 80_000)
        gis.set_member_value("city", "smallville", "pop", 20_000)
        moft = MOFT("FM")
        moft.add_many(
            [
                # Only ever sampled in bigtown: qualifies.
                ("loyal", 0, 2.0, 5.0),
                ("loyal", 1, 8.0, 5.0),
                # Sampled in bigtown but also in smallville: excluded.
                ("tourist", 0, 5.0, 5.0),
                ("tourist", 1, 15.0, 5.0),
                # Never in bigtown: excluded.
                ("stranger", 0, 18.0, 5.0),
                ("stranger", 1, 19.0, 5.0),
            ]
        )
        time = TimeDimension.from_explicit_rollups(
            [("timeId", t, "hour", t) for t in (0, 1)]
            + [("hour", t, "timeOfDay", "Morning") for t in (0, 1)]
        )
        return EvaluationContext(gis, time, moft)

    def test_negated_existential(self, city_world):
        ctx = city_world
        c, pg = Var("c"), Var("pg")
        t1, x1, y1, pg1, c1 = (
            Var("t1"),
            Var("x1"),
            Var("y1"),
            Var("pg1"),
            Var("c1"),
        )
        inner = And(
            Moft(OID, t1, x1, y1),
            PointIn(x1, y1, "Lc", "polygon", pg1),
            Alpha("city", c1, pg1),
            Compare(MemberValue("city", c1, "pop"), "<", Const(50_000)),
        )
        region = SpatioTemporalRegion(
            ("oid",),
            And(
                Moft(OID, T, X, Y),
                TimeRollup(T, "timeOfDay", Const("Morning")),
                PointIn(X, Y, "Lc", "polygon", pg),
                Alpha("city", c, pg),
                Compare(MemberValue("city", c, "pop"), ">=", Const(50_000)),
                Not(inner),
            ),
        )
        oids = {row["oid"] for row in region.evaluate(ctx)}
        assert oids == {"loyal"}


class TestQuery4StaticSnapshot:
    """Q4 (Type 6): 'How many cars are there in the Berchem neighborhood at
    9:15 on Jan 7th, 2006?' — the instant is fixed, the trajectory is used
    as a static object."""

    def test_empty_berchem_at_t3(self, world):
        ctx = world.context()
        query = (
            RegionBuilder()
            .from_moft("FMbus", at_instant=3)
            .in_attribute_polygon("neighborhood", member="berchem")
            .count_query(gis=world.gis)
        )
        assert query.run_scalar(ctx) == 0

    def test_zuid_at_t3(self, world):
        ctx = world.context()
        query = (
            RegionBuilder()
            .from_moft("FMbus", at_instant=3)
            .in_attribute_polygon("neighborhood", member="zuid")
            .count_query(gis=world.gis)
        )
        # O1 at (6,2) and O2 at (4,6) are both in zuid at t=3.
        assert query.run_scalar(ctx) == 2

    def test_object_ids_equal_positions_count(self, world):
        """The paper: counting (x, y) or counting Oid gives the same number
        since an object is at one point at an instant."""
        ctx = world.context()
        by_oid = (
            RegionBuilder()
            .from_moft("FMbus", at_instant=3)
            .in_attribute_polygon("neighborhood", member="zuid")
            .output("oid")
            .build(world.gis)
        )
        by_pos = (
            RegionBuilder()
            .from_moft("FMbus", at_instant=3)
            .in_attribute_polygon("neighborhood", member="zuid")
            .output("x", "y")
            .build(world.gis)
        )
        assert len(by_oid.evaluate(ctx)) == len(by_pos.evaluate(ctx))

    def test_type_classification(self, world):
        region = (
            RegionBuilder()
            .from_moft("FMbus", at_instant=3)
            .in_attribute_polygon("neighborhood", member="berchem")
            .build(world.gis)
        )
        assert classify(region) is QueryType.TRAJECTORY_AS_SPATIAL_OBJECT


class TestQuery5TimeSpentContinuously:
    """Q5 (Type 7): 'Total amount of time spent continuously (without
    leaving the city) by cars in Antwerp on January 7th, 2006' —
    interpolation gives entry/exit times."""

    @pytest.fixture(scope="class")
    def antwerp_world(self):
        schema = GISDimensionSchema(
            [LayerHierarchy("Lc", [(POINT, POLYGON), (POLYGON, ALL)])],
            [AttributePlacement("city", POLYGON, "Lc")],
        )
        gis = GISDimensionInstance(schema)
        gis.add_geometry(
            "Lc", POLYGON, "pg_antwerp", Polygon.rectangle(0, 0, 10, 10)
        )
        gis.set_alpha("city", "antwerp", "pg_antwerp")
        moft = MOFT("FM")
        moft.add_many(
            [
                # Crosses: inside between t=2.5 and t=7.5 -> 5 time units.
                ("crosser", 0, -5.0, 5.0),
                ("crosser", 10, 15.0, 5.0),
                # Stays inside the whole time: 10 units.
                ("resident", 0, 2.0, 2.0),
                ("resident", 10, 8.0, 8.0),
                # Never enters: 0.
                ("forain", 0, 50.0, 50.0),
                ("forain", 10, 60.0, 60.0),
            ]
        )
        time = TimeDimension.from_explicit_rollups(
            [("timeId", t, "hour", t) for t in (0, 10)]
        )
        return EvaluationContext(gis, time, moft)

    def test_per_object_durations(self, antwerp_world):
        durations = time_spent_in(antwerp_world, "city", "antwerp")
        assert durations["crosser"] == pytest.approx(5.0)
        assert durations["resident"] == pytest.approx(10.0)
        assert durations["forain"] == 0.0

    def test_total_time(self, antwerp_world):
        durations = time_spent_in(antwerp_world, "city", "antwerp")
        assert aggregate_trajectory_measure(durations, "SUM") == pytest.approx(
            15.0
        )

    def test_presence_intervals(self, antwerp_world):
        intervals = presence_intervals(antwerp_world, "city", "antwerp")
        assert intervals["crosser"] == [(2.5, 7.5)]
        assert intervals["resident"] == [(0.0, 10.0)]
        assert intervals["forain"] == []


class TestQuery6NearSchools:
    """Q6 (Type 7): 'Number of cars per hour within a radius of 100m from
    schools, in the morning' — first sample-only, then with interpolation
    catching unsampled pass-throughs."""

    def test_sampled_semantics(self, world):
        ctx = world.context()
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .during("timeOfDay", "Morning")
            .near_attribute_node("school", 3.0)
            .build(world.gis)
        )
        tuples = region.evaluate_tuples(ctx)
        # O1 samples at (4,2) and (6,2) are within 3 of the south school
        # at (5,5)?  distance((4,2),(5,5)) = sqrt(10) > 3 — so only
        # samples strictly close count; verify against direct computation.
        from repro.geometry import Point as P

        expected = set()
        schools = [P(5, 5), P(15, 15)]
        for oid, t, x, y in world.moft.tuples():
            if t in (2.0, 3.0, 4.0) and any(
                P(x, y).distance_to(s) <= 3.0 for s in schools
            ):
                expected.add((oid, t))
        assert tuples == expected

    def test_interpolated_catches_more(self, world):
        ctx = world.context()
        sampled = (
            RegionBuilder()
            .from_moft("FMbus")
            .near_attribute_node("school", 3.0)
            .output("oid")
            .build(world.gis)
        )
        interpolated = (
            RegionBuilder()
            .from_moft("FMbus")
            .trajectory_near_attribute_node("school", 3.0, moft_name="FMbus")
            .output("oid")
            .build(world.gis)
        )
        sampled_oids = {r["oid"] for r in sampled.evaluate(ctx)}
        interpolated_oids = {r["oid"] for r in interpolated.evaluate(ctx)}
        assert sampled_oids <= interpolated_oids

    def test_time_near_node(self, world):
        ctx = world.context()
        durations = time_near_node(
            ctx, "school", "south-school", 5.0, moft_name="FMbus"
        )
        # O1 travels along y=2 from (2,2) to (8,2); the school is at (5,5);
        # within distance 5 iff |x-5| <= 4, and [2,8] ⊂ [1,9], so the whole
        # three-hour trajectory qualifies.
        assert durations["O1"] == pytest.approx(3.0, abs=1e-9)
        assert durations["O3"] == 0.0


class TestQuery7TramStop:
    """Q7 (Type 4): 'Total number of persons waiting for the tram at
    Groenplaats, by minute and between 8:00 and 10:00 on weekday mornings'
    — a person waits if within four meters of the stop."""

    @pytest.fixture(scope="class")
    def tram_world(self):
        schema = GISDimensionSchema(
            [LayerHierarchy("Lbus", [(POINT, NODE), (NODE, ALL)])],
            [AttributePlacement("stop", NODE, "Lbus")],
        )
        gis = GISDimensionInstance(schema)
        gis.add_geometry("Lbus", NODE, "nd_groenplaats", Point(50.0, 50.0))
        gis.set_alpha("stop", "Groenplaats", "nd_groenplaats")
        moft = MOFT("FM")
        # Hourly instants over Monday 2006-01-09; hours 8, 9, 10 matter.
        # waiter1 near the stop at hours 8 and 9; waiter2 at 9; walker far.
        moft.add_many(
            [
                ("waiter1", 8, 51.0, 50.0),
                ("waiter1", 9, 50.5, 49.5),
                ("waiter2", 9, 48.0, 50.0),
                ("waiter2", 10, 47.0, 50.0),
                ("walker", 8, 10.0, 10.0),
                ("walker", 9, 90.0, 90.0),
            ]
        )
        mapping = hourly(datetime(2006, 1, 9, 0, 0))
        time = TimeDimension.from_mapping(mapping, range(24))
        return EvaluationContext(gis, time, moft)

    def test_waiting_counts_per_instant(self, tram_world):
        ctx = tram_world
        region = (
            RegionBuilder()
            .from_moft("FM")
            .during("timeOfDay", "Morning")
            .during("typeOfDay", "Weekday")
            .where_time("hour", ">=", 8)
            .where_time("hour", "<=", 10)
            .near_attribute_node("stop", 4.0, member="Groenplaats")
            .build()
        )
        counts = count_per_group(region, ctx, ["t"])
        assert counts == {(8.0,): 1, (9.0,): 2, (10.0,): 1}

    def test_weekend_excluded(self, tram_world):
        ctx = tram_world
        # Same constraint but requiring the (nonexistent) weekend: empty.
        region = (
            RegionBuilder()
            .from_moft("FM")
            .during("typeOfDay", "Weekend")
            .near_attribute_node("stop", 4.0, member="Groenplaats")
            .build()
        )
        assert region.evaluate(ctx) == []
