"""Tests for the columnar Type-4 fast path, incl. solver equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point, Polygon
from repro.mo import MOFT
from repro.query import RegionBuilder
from repro.query.vectorized import polygon_contains_batch, samples_in_polygons
from repro.synth import LOW_INCOME_THRESHOLD, figure1_instance
from repro.synth.movement import random_waypoint_moft
from repro.geometry import BoundingBox


@pytest.fixture(scope="module")
def world():
    return figure1_instance()


class TestBatchContainment:
    def test_matches_scalar_on_square(self):
        square = Polygon.rectangle(0, 0, 10, 10)
        xs = np.array([5.0, -1.0, 10.0, 0.0, 15.0])
        ys = np.array([5.0, 5.0, 5.0, 0.0, 15.0])
        batch = polygon_contains_batch(square, xs, ys)
        for i in range(len(xs)):
            assert batch[i] == square.contains_point(Point(xs[i], ys[i]))

    def test_boundary_points_inside(self):
        square = Polygon.rectangle(0, 0, 10, 10)
        xs = np.array([0.0, 10.0, 5.0])
        ys = np.array([5.0, 10.0, 0.0])
        assert polygon_contains_batch(square, xs, ys).all()

    def test_hole_excluded(self):
        poly = Polygon(
            [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)],
            holes=[[Point(4, 4), Point(6, 4), Point(6, 6), Point(4, 6)]],
        )
        xs = np.array([5.0, 2.0, 4.0])
        ys = np.array([5.0, 2.0, 5.0])
        result = polygon_contains_batch(poly, xs, ys)
        assert list(result) == [False, True, True]  # hole boundary counts

    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-15, max_value=15),
                st.floats(min_value=-15, max_value=15),
            ),
            min_size=1,
            max_size=50,
        ),
        st.integers(min_value=3, max_value=9),
    )
    def test_batch_equals_scalar_property(self, coords, sides):
        polygon = Polygon.regular(Point(0, 0), 8.0, sides)
        xs = np.array([c[0] for c in coords])
        ys = np.array([c[1] for c in coords])
        batch = polygon_contains_batch(polygon, xs, ys)
        for i, (px, py) in enumerate(coords):
            assert batch[i] == polygon.contains_point(Point(px, py))


class TestSamplesInPolygons:
    def test_running_query_equivalence(self, world):
        """The fast path reproduces the solver's Remark 1 region."""
        ctx = world.context()
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .during("timeOfDay", "Morning")
            .in_attribute_polygon(
                "neighborhood",
                value_filter=("income", "<", LOW_INCOME_THRESHOLD),
            )
            .build(world.gis)
        )
        solver_answer = region.evaluate_tuples(ctx)
        low_polygons = [
            world.gis.layer("Ln").element(
                "polygon", world.gis.alpha("neighborhood", member)
            )
            for member in world.low_income_neighborhoods
        ]
        fast_answer = samples_in_polygons(
            world.moft,
            low_polygons,
            world.time.instants_where("timeOfDay", "Morning"),
        )
        assert fast_answer == solver_answer

    def test_no_time_filter(self, world):
        low_polygons = [
            world.gis.layer("Ln").element(
                "polygon", world.gis.alpha("neighborhood", member)
            )
            for member in world.low_income_neighborhoods
        ]
        answer = samples_in_polygons(world.moft, low_polygons)
        assert ("O1", 1.0) in answer

    def test_empty_inputs(self, world):
        assert samples_in_polygons(MOFT(), [Polygon.rectangle(0, 0, 1, 1)]) == set()
        assert samples_in_polygons(world.moft, []) == set()
        assert (
            samples_in_polygons(
                world.moft, [Polygon.rectangle(0, 0, 1, 1)], instants=[]
            )
            == set()
        )

    def test_random_world_equivalence(self, world):
        """Fast path equals per-sample scalar checks on random traffic."""
        moft = random_waypoint_moft(
            BoundingBox(0, 0, 20, 20), n_objects=15, n_instants=10, seed=3
        )
        polygons = [
            world.gis.layer("Ln").element(
                "polygon", world.gis.alpha("neighborhood", m)
            )
            for m in ("zuid", "noord")
        ]
        fast = samples_in_polygons(moft, polygons)
        slow = {
            (oid, t)
            for oid, t, x, y in moft.tuples()
            if any(p.contains_point(Point(x, y)) for p in polygons)
        }
        assert fast == slow
