"""Tests for region evaluation against the Figure 1 instance."""

import pytest

from repro.errors import EvaluationError, QueryError
from repro.query import EvaluationContext, SpatioTemporalRegion
from repro.query.ast import (
    Alpha,
    And,
    Compare,
    Const,
    Exists,
    ExplicitDomain,
    ForAll,
    MemberValue,
    Moft,
    Not,
    Or,
    PointIn,
    TimeRollup,
    TimeRollupCompare,
    Var,
    WithinDistance,
)
from repro.synth.paperdata import figure1_instance

OID, T, X, Y = Var("oid"), Var("t"), Var("x"), Var("y")
PG, N = Var("pg"), Var("n")


@pytest.fixture(scope="module")
def world():
    return figure1_instance()


@pytest.fixture()
def ctx(world):
    return world.context()


class TestBasicEvaluation:
    def test_moft_enumeration(self, ctx):
        region = SpatioTemporalRegion(
            ("oid", "t"), And(Moft(OID, T, X, Y, "FMbus"))
        )
        rows = region.evaluate(ctx)
        assert len(rows) == 12

    def test_projection_dedupes(self, ctx):
        region = SpatioTemporalRegion(("oid",), And(Moft(OID, T, X, Y, "FMbus")))
        rows = region.evaluate(ctx)
        assert len(rows) == 6

    def test_output_var_must_be_free(self):
        with pytest.raises(QueryError):
            SpatioTemporalRegion(("zzz",), And(Moft(OID, T, X, Y)))

    def test_needs_output(self):
        with pytest.raises(QueryError):
            SpatioTemporalRegion((), And(Moft(OID, T, X, Y)))

    def test_unknown_moft_raises(self, ctx):
        region = SpatioTemporalRegion(("oid",), And(Moft(OID, T, X, Y, "nope")))
        with pytest.raises(EvaluationError):
            region.evaluate(ctx)


class TestTimeConstraints:
    def test_time_rollup_filter(self, ctx):
        region = SpatioTemporalRegion(
            ("oid", "t"),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                TimeRollup(T, "timeOfDay", Const("Morning")),
            ),
        )
        tuples = region.evaluate_tuples(ctx)
        assert all(t in (2.0, 3.0, 4.0) for _, t in tuples)
        # O1 x3, O2 x3, O5 x1, O6 x2 in the morning instants.
        assert len(tuples) == 9

    def test_time_rollup_binding_member(self, ctx):
        region = SpatioTemporalRegion(
            ("oid", "part"),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                TimeRollup(T, "timeOfDay", Var("part")),
            ),
        )
        parts = {p for _, p in region.evaluate_tuples(ctx)}
        assert parts == {"Morning", "Other"}

    def test_time_rollup_compare(self, ctx):
        region = SpatioTemporalRegion(
            ("oid", "t"),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                TimeRollupCompare(T, "hour", ">=", 5),
            ),
        )
        assert region.evaluate_tuples(ctx) == {("O3", 5.0), ("O4", 6.0)}


class TestSpatialConstraints:
    def low_income_formula(self):
        return And(
            Moft(OID, T, X, Y, "FMbus"),
            PointIn(X, Y, "Ln", "polygon", PG),
            Alpha("neighborhood", N, PG),
            Compare(MemberValue("neighborhood", N, "income"), "<", Const(1500)),
        )

    def test_running_query_region(self, ctx):
        # The paper's C with the morning constraint added.
        region = SpatioTemporalRegion(
            ("oid", "t"),
            And(
                TimeRollup(T, "timeOfDay", Const("Morning")),
                self.low_income_formula(),
            ),
        )
        assert region.evaluate_tuples(ctx) == {
            ("O1", 2.0),
            ("O1", 3.0),
            ("O1", 4.0),
            ("O2", 3.0),
        }

    def test_without_time_constraint(self, ctx):
        region = SpatioTemporalRegion(("oid", "t"), self.low_income_formula())
        # O1 at t=1 also counts without the morning restriction.
        assert region.evaluate_tuples(ctx) == {
            ("O1", 1.0),
            ("O1", 2.0),
            ("O1", 3.0),
            ("O1", 4.0),
            ("O2", 3.0),
        }

    def test_region_with_geometry_output(self, ctx):
        region = SpatioTemporalRegion(
            ("oid", "t", "pg"),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                PointIn(X, Y, "Ln", "polygon", PG),
            ),
        )
        rows = region.evaluate(ctx)
        assert len(rows) == 12  # every sample is in exactly one polygon
        assert {"oid", "t", "pg"} == set(rows[0])

    def test_within_distance(self, ctx):
        # Samples within 8 units of the southern school at (5, 5).
        region = SpatioTemporalRegion(
            ("oid", "t"),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                WithinDistance(
                    X, Y, "Ls", "node", Const("nd_school_south"), 8.0
                ),
            ),
        )
        tuples = region.evaluate_tuples(ctx)
        # O1's four samples and O2's (4, 6) are within 8 of (5, 5).
        assert ("O1", 1.0) in tuples
        assert ("O2", 3.0) in tuples
        assert ("O3", 5.0) not in tuples

    def test_within_distance_enumerates_schools(self, ctx):
        region = SpatioTemporalRegion(
            ("oid", "school"),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                WithinDistance(X, Y, "Ls", "node", Var("school"), 8.0),
            ),
        )
        schools = {s for _, s in region.evaluate_tuples(ctx)}
        assert schools == {"nd_school_south", "nd_school_north"}


class TestQuantifiersAndNegation:
    def test_not_excludes(self, ctx):
        # Objects sampled in the morning but never in a low-income area
        # at that instant.
        inner = And(
            PointIn(X, Y, "Ln", "polygon", PG),
            Alpha("neighborhood", N, PG),
            Compare(MemberValue("neighborhood", N, "income"), "<", Const(1500)),
        )
        region = SpatioTemporalRegion(
            ("oid", "t"),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                TimeRollup(T, "timeOfDay", Const("Morning")),
                Not(inner),
            ),
        )
        tuples = region.evaluate_tuples(ctx)
        assert ("O1", 2.0) not in tuples
        assert ("O2", 2.0) in tuples  # O2 in centrum at t=2
        assert ("O5", 3.0) in tuples
        assert ("O6", 2.0) in tuples

    def test_unsafe_output_in_negation_rejected(self, ctx):
        # Negation as failure: a satisfied ¬ cannot bind output variables.
        region = SpatioTemporalRegion(
            ("oid",),
            And(Not(Moft(OID, Const(99.0), X, Y, "FMbus"))),
        )
        with pytest.raises(EvaluationError, match="unsafe"):
            region.evaluate(ctx)

    def test_negation_false_gives_empty(self, ctx):
        # ¬∃(any row) is false on a non-empty MOFT: no solutions, no error.
        region = SpatioTemporalRegion(
            ("oid",),
            And(Not(Moft(OID, T, X, Y, "FMbus"))),
        )
        assert region.evaluate(ctx) == []

    def test_exists_domain(self, ctx):
        # ∃ n ∈ neighborhoods: sample in n's polygon and n is low income.
        formula = And(
            Moft(OID, T, X, Y, "FMbus"),
            Exists(
                N,
                ExplicitDomain(["zuid", "berchem"]),
                And(
                    Alpha("neighborhood", N, PG),
                    PointIn(X, Y, "Ln", "polygon", PG),
                ),
            ),
        )
        region = SpatioTemporalRegion(("oid", "t"), formula)
        tuples = region.evaluate_tuples(ctx)
        assert ("O1", 1.0) in tuples
        assert ("O2", 3.0) in tuples
        assert ("O3", 5.0) not in tuples

    def test_forall(self, ctx):
        # Objects all of whose morning instants... use ForAll over a tiny
        # explicit domain: every instant in {2, 3} must see the object in
        # the MOFT (true for O1, O2, O6 which have samples at both).
        t2 = Var("t2")
        formula = And(
            Moft(OID, T, X, Y, "FMbus"),
            ForAll(
                t2,
                ExplicitDomain([2.0, 3.0]),
                Exists(
                    Var("x2"),
                    ExplicitDomain([]),  # placeholder replaced below
                    Compare(Const(1), "=", Const(1)),
                ),
            ),
        )
        # Simpler, directly meaningful ForAll: every instant in {2,3} has
        # some sample of the object.
        x2, y2 = Var("x2"), Var("y2")
        formula = And(
            Moft(OID, T, X, Y, "FMbus"),
            ForAll(
                t2,
                ExplicitDomain([2.0, 3.0]),
                Moft(OID, t2, x2, y2, "FMbus"),
            ),
        )
        region = SpatioTemporalRegion(("oid",), formula)
        oids = {o for (o,) in region.evaluate_tuples(ctx)}
        assert oids == {"O1", "O2", "O6"}

    def test_disjunction(self, ctx):
        region = SpatioTemporalRegion(
            ("oid", "t"),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                Or(
                    Compare(T, "=", Const(5.0)),
                    Compare(T, "=", Const(6.0)),
                ),
            ),
        )
        assert region.evaluate_tuples(ctx) == {("O3", 5.0), ("O4", 6.0)}


class TestStrategies:
    def test_overlay_and_naive_agree(self, world):
        from repro.query.ast import GeometryRelation

        region = SpatioTemporalRegion(
            ("pg",),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                GeometryRelation(
                    "Ln",
                    "polygon",
                    PG,
                    "intersects",
                    "Lr",
                    "polyline",
                    Const("pl_scheldt"),
                ),
                PointIn(X, Y, "Ln", "polygon", PG),
            ),
        )
        with_overlay = region.evaluate_tuples(world.context(use_overlay=True))
        naive = region.evaluate_tuples(world.context(use_overlay=False))
        assert with_overlay == naive
        assert with_overlay  # the river touches every neighborhood boundary

    def test_stats_tracked(self, world):
        ctx = world.context(use_overlay=False)
        ctx.geometry_pairs("Ln", "polygon", "intersects", "Lr", "polyline")
        assert ctx.stats["geometry_checks"] > 0
        ctx2 = world.context(use_overlay=True)
        ctx2.geometry_pairs("Ln", "polygon", "intersects", "Lr", "polyline")
        assert ctx2.stats["overlay_hits"] == 1
