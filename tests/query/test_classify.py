"""Tests for the Section 3.1 query-type taxonomy."""

import pytest

from repro.query import QueryType, RegionBuilder, classify
from repro.query.ast import (
    Alpha,
    And,
    Compare,
    Const,
    MemberValue,
    Moft,
    PointIn,
    TimeRollup,
    TrajectoryIntersects,
    Var,
)
from repro.query.region import SpatioTemporalRegion
from repro.synth.paperdata import figure1_instance

OID, T, X, Y = Var("oid"), Var("t"), Var("x"), Var("y")
PG, N = Var("pg"), Var("n")


@pytest.fixture(scope="module")
def world():
    return figure1_instance()


class TestDescriptions:
    def test_every_type_described(self):
        for query_type in QueryType:
            assert query_type.description

    def test_int_values_match_paper(self):
        assert QueryType.SPATIAL_AGGREGATION == 1
        assert QueryType.TRAJECTORY_AGGREGATION == 8


class TestClassification:
    def test_type1_spatial_only(self):
        region = SpatioTemporalRegion(
            ("pg",),
            And(
                Alpha("neighborhood", N, PG),
            ),
        )
        assert classify(region) is QueryType.SPATIAL_AGGREGATION

    def test_type2_spatial_with_numeric(self):
        region = SpatioTemporalRegion(
            ("pg",),
            And(
                Alpha("neighborhood", N, PG),
                Compare(
                    MemberValue("neighborhood", N, "income"), "<", Const(1500)
                ),
            ),
        )
        assert classify(region) is QueryType.SPATIAL_WITH_NUMERIC

    def test_type3_samples_only(self):
        region = SpatioTemporalRegion(
            ("oid", "t"),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                TimeRollup(T, "timeOfDay", Const("Morning")),
            ),
        )
        assert classify(region) is QueryType.TRAJECTORY_SAMPLES

    def test_type4_samples_with_geometry(self, world):
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .during("timeOfDay", "Morning")
            .in_attribute_polygon("neighborhood")
            .build(world.gis)
        )
        assert classify(region) is QueryType.SAMPLES_WITH_GEOMETRY

    def test_type5_aggregated_region_flag(self, world):
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .in_attribute_polygon("neighborhood")
            .build(world.gis)
        )
        assert (
            classify(region, region_uses_aggregation=True)
            is QueryType.SAMPLES_WITH_AGGREGATED_REGION
        )

    def test_type6_time_fixed(self, world):
        region = (
            RegionBuilder()
            .from_moft("FMbus", at_instant=3)
            .in_attribute_polygon("neighborhood", member="berchem")
            .build(world.gis)
        )
        assert classify(region) is QueryType.TRAJECTORY_AS_SPATIAL_OBJECT

    def test_type7_trajectory(self, world):
        region = SpatioTemporalRegion(
            ("oid",),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                TrajectoryIntersects(OID, "Ln", "polygon", PG, "FMbus"),
            ),
        )
        assert classify(region) is QueryType.TRAJECTORY_QUERY

    def test_type8_flag(self, world):
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .in_attribute_polygon("neighborhood")
            .build(world.gis)
        )
        assert (
            classify(region, aggregates_trajectory_measure=True)
            is QueryType.TRAJECTORY_AGGREGATION
        )

    def test_builder_trajectory_through(self, world):
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .trajectory_through_attribute("neighborhood", moft_name="FMbus")
            .build(world.gis)
        )
        assert classify(region) is QueryType.TRAJECTORY_QUERY
