"""Unit tests for the cost-based planner (repro.query.planner).

The differential guarantees (every strategy returns the serial answer)
live in ``tests/parallel/test_planner_differential.py``; this module
pins the planner's own mechanics — statistics, cost-model arithmetic,
plan-tree shapes, forced strategies, and the EXPLAIN renderings.
"""

import pytest

from repro.errors import EvaluationError
from repro.gis import NODE, POLYGON, POLYLINE
from repro.mo.moft import MOFT
from repro.parallel import ShardedExecutor
from repro.preagg import PreAggStore
from repro.query import RegionBuilder
from repro.query.ast import And, Const, Exists, Moft, Not, Or, TimeRollup, Var
from repro.query.evaluator import count_objects_through
from repro.query.planner import (
    STRATEGIES,
    CostModel,
    PlanNode,
    explain,
    geometry_statistics,
    plan_count_objects_through,
    planned_count_objects_through,
    table_statistics,
)
from repro.synth.paperdata import figure1_instance

TARGET = ("Ln", POLYGON)
CONSTRAINTS = [
    ("intersects", ("Lr", POLYLINE)),
    ("contains", ("Ls", NODE)),
]


@pytest.fixture()
def context():
    """A fresh Figure 1 context per test (planning mutates caches)."""
    return figure1_instance().context()


@pytest.fixture()
def preagg_context():
    context = figure1_instance().context()
    moft = context.moft("FMbus")
    elements = context.gis.layer("Ln").elements(POLYGON)
    store = PreAggStore(
        moft, context.time, "hour", elements, layer="Ln", kind=POLYGON
    )
    context.register_preagg(store)
    return context


class TestStatistics:
    def test_table_statistics(self, context):
        stats = table_statistics(context.moft("FMbus"))
        assert stats.name == "FMbus"
        assert stats.rows == 12
        assert stats.objects == 6
        assert stats.time_min == 1.0
        assert stats.time_max == 6.0

    def test_empty_table(self):
        stats = table_statistics(MOFT(name="empty"))
        assert stats.rows == 0
        assert stats.objects == 0
        assert stats.time_min is None and stats.time_max is None

    def test_geometry_statistics_empty_ids(self, context):
        stats = geometry_statistics(
            context, TARGET, set(), context.moft("FMbus")
        )
        assert stats.count == 0
        assert stats.coverage == 0.0

    def test_geometry_coverage_clamped(self, context):
        moft = context.moft("FMbus")
        ids = set(context.gis.layer("Ln").elements(POLYGON))
        stats = geometry_statistics(context, TARGET, ids, moft)
        assert stats.count == len(ids)
        assert 0.0 < stats.coverage <= 1.0


class TestCostModel:
    def test_serial_scan_scales_with_geometries(self):
        model = CostModel()
        assert model.scan_cost(
            1000, 10, 0.5, indexed=False
        ) > model.scan_cost(1000, 2, 0.5, indexed=False)

    def test_index_discounts_by_coverage(self):
        model = CostModel()
        serial = model.scan_cost(10_000, 20, 0.1, indexed=False)
        grid = model.scan_cost(10_000, 20, 0.1, indexed=True)
        assert grid < serial

    def test_uncached_index_pays_build(self):
        model = CostModel()
        cached = model.scan_cost(100, 5, 0.5, indexed=True)
        cold = model.scan_cost(100, 5, 0.5, indexed=True, index_cached=False)
        assert cold == cached + 5 * model.index_build_per_geometry

    def test_process_backend_ships_rows(self):
        model = CostModel()
        threads = model.sharded_cost(1e6, "threads", 4, 10_000)
        processes = model.sharded_cost(1e6, "processes", 4, 10_000)
        assert processes != threads
        assert processes >= 4 * model.process_task_overhead

    def test_serial_backend_has_no_speedup(self):
        model = CostModel()
        assert model.sharded_cost(100.0, "serial", 2, 100) == pytest.approx(
            100.0 + 2 * model.serial_task_overhead
        )

    def test_preagg_cost_sliver_adds_scan(self):
        model = CostModel()
        aligned = model.preagg_cost(3, 4, 0, 0.5)
        hybrid = model.preagg_cost(3, 4, 100, 0.5)
        assert aligned == pytest.approx(3 * 4 * model.granule_cost)
        assert hybrid > aligned

    def test_choose_shard_count_bounds(self):
        model = CostModel()
        assert model.choose_shard_count(0, 8) == 1
        assert model.choose_shard_count(10, 8) == 1
        # Enough rows for every cpu:
        assert model.choose_shard_count(
            model.min_rows_per_shard * 64, 8
        ) == 8


class TestPlanning:
    def test_plan_has_known_strategy(self, context):
        plan = plan_count_objects_through(
            context, TARGET, CONSTRAINTS, moft_name="FMbus"
        )
        assert plan.strategy in STRATEGIES
        assert plan.est_cost >= 0.0
        assert plan.root.op == "Aggregate"
        assert plan.root.find("GeometricSubquery") is not None

    def test_alternatives_are_costlier_or_equal(self, context):
        plan = plan_count_objects_through(
            context, TARGET, CONSTRAINTS, moft_name="FMbus"
        )
        for _, cost in plan.alternatives:
            assert cost >= plan.est_cost

    def test_sharded_candidate_requires_executor(self, context):
        plan = plan_count_objects_through(
            context, TARGET, CONSTRAINTS, moft_name="FMbus"
        )
        names = {name for name, _ in plan.alternatives} | {plan.strategy}
        assert "sharded" not in names
        executor = ShardedExecutor(backend="serial", n_shards=2)
        plan = plan_count_objects_through(
            context, TARGET, CONSTRAINTS, moft_name="FMbus",
            executor=executor,
        )
        names = {name for name, _ in plan.alternatives} | {plan.strategy}
        assert "sharded" in names

    def test_preagg_candidate_requires_fresh_store(
        self, context, preagg_context
    ):
        bare = plan_count_objects_through(
            context, TARGET, CONSTRAINTS, moft_name="FMbus"
        )
        names = {name for name, _ in bare.alternatives} | {bare.strategy}
        assert "preagg" not in names
        stored = plan_count_objects_through(
            preagg_context, TARGET, CONSTRAINTS, moft_name="FMbus"
        )
        names = {name for name, _ in stored.alternatives} | {stored.strategy}
        assert "preagg" in names

    def test_force_unknown_strategy_raises(self, context):
        with pytest.raises(EvaluationError, match="unknown strategy"):
            plan_count_objects_through(
                context, TARGET, CONSTRAINTS, moft_name="FMbus",
                force_strategy="quantum",
            )

    def test_force_inapplicable_strategy_raises(self, context):
        with pytest.raises(EvaluationError, match="not applicable"):
            plan_count_objects_through(
                context, TARGET, CONSTRAINTS, moft_name="FMbus",
                force_strategy="preagg",
            )

    def test_plan_shape_sharded(self, context):
        executor = ShardedExecutor(backend="threads", n_shards=3)
        plan = plan_count_objects_through(
            context, TARGET, CONSTRAINTS, moft_name="FMbus",
            executor=executor, force_strategy="sharded",
        )
        fanout = plan.root.find("ShardFanout")
        assert fanout is not None
        assert "backend=threads" in fanout.detail
        assert fanout.children[0].op == "GridScan"
        assert plan.shard_backend == "threads"
        assert plan.shard_count >= 1

    def test_plan_shape_preagg(self, preagg_context):
        plan = plan_count_objects_through(
            preagg_context, TARGET, CONSTRAINTS, moft_name="FMbus",
            force_strategy="preagg",
        )
        lookup = plan.root.find("PreAggLookup")
        assert lookup is not None
        assert "store=" in lookup.detail

    def test_empty_geometric_answer_costs_zero(self, context):
        # No polygon contains a node AND is contained in one: impossible
        # constraint set yields an empty geometric answer.
        plan = plan_count_objects_through(
            context,
            ("Ls", NODE),
            [("contains", ("Ln", POLYGON))],
            moft_name="FMbus",
        )
        assert plan.geometry.count == 0
        assert plan.est_cost == 0.0


class TestPlannedExecution:
    def test_matches_direct_evaluator(self, context):
        reference = count_objects_through(
            context, TARGET, CONSTRAINTS, moft_name="FMbus"
        )
        count, plan = planned_count_objects_through(
            context, TARGET, CONSTRAINTS, moft_name="FMbus"
        )
        assert count == reference == 5
        assert plan.executed
        assert plan.result_count == count
        assert plan.root.actual_rows == count
        assert plan.root.actual_seconds >= 0.0

    def test_actual_rows_filled_on_scan_nodes(self, context):
        count, plan = planned_count_objects_through(
            context, TARGET, CONSTRAINTS, moft_name="FMbus",
            force_strategy="grid",
        )
        scan = plan.root.find("GridScan")
        assert scan.actual_rows == len(context.moft("FMbus"))
        assert scan.actual_seconds >= 0.0

    def test_sharded_without_executor_fails_at_execution(self, context):
        executor = ShardedExecutor(backend="serial", n_shards=2)
        plan = plan_count_objects_through(
            context, TARGET, CONSTRAINTS, moft_name="FMbus",
            executor=executor, force_strategy="sharded",
        )
        from repro.query.planner import execute_plan

        with pytest.raises(EvaluationError, match="no executor"):
            execute_plan(
                plan, context, TARGET, CONSTRAINTS, moft_name="FMbus"
            )


class TestExplain:
    def test_explain_renders_plan(self, context):
        text = explain(context, TARGET, CONSTRAINTS, moft_name="FMbus")
        assert text.startswith("QueryPlan strategy=")
        assert "GeometricSubquery" in text
        assert "est_cost=" in text
        assert "executed" not in text

    def test_explain_analyze_adds_actuals(self, context):
        text = explain(
            context, TARGET, CONSTRAINTS, moft_name="FMbus", analyze=True
        )
        assert "(executed: count=5)" in text
        assert "actual_rows=" in text
        assert "actual_s=" in text

    def test_rejected_line_lists_alternatives(self, preagg_context):
        text = explain(
            preagg_context, TARGET, CONSTRAINTS, moft_name="FMbus"
        )
        assert "rejected:" in text


class TestPlanNode:
    def test_walk_and_find(self):
        leaf = PlanNode(op="Leaf", detail="x")
        root = PlanNode(op="Root", detail="y", children=(leaf,))
        assert [n.op for n in root.walk()] == ["Root", "Leaf"]
        assert root.find("Leaf") is leaf
        assert root.find("Missing") is None

    def test_render_indents_children(self):
        leaf = PlanNode(op="Leaf", detail="x", est_rows=3)
        root = PlanNode(op="Root", detail="y", children=(leaf,))
        lines = root.render()
        assert lines[0] == "Root[y]"
        assert lines[1] == "  Leaf[x]  (est_rows=3)"


class TestDescribeAndBuilderExplain:
    def test_formula_describe_tree(self):
        oid, t, x, y = Var("oid"), Var("t"), Var("x"), Var("y")
        formula = And(
            Moft(oid, t, x, y, "FMbus"),
            Not(TimeRollup(t, "timeOfDay", Const("Morning"))),
            Or(
                TimeRollup(t, "day", Const(1)),
                TimeRollup(t, "day", Const(2)),
            ),
        )
        text = formula.describe()
        assert text.splitlines()[0] == "And"
        assert "  Not" in text
        assert "  Or" in text
        # Leaves are indented one level deeper than their connective.
        assert any(
            line.startswith("    ") for line in text.splitlines()
        )

    def test_exists_shows_variable(self):
        from repro.query.ast import ExplicitDomain

        t = Var("t")
        inner = TimeRollup(t, "timeOfDay", Const("Morning"))
        domain = ExplicitDomain([1.0, 2.0])
        text = Exists(t, domain, inner).describe()
        first = text.splitlines()[0]
        assert first.startswith("Exists")
        assert "ExplicitDomain" in first

    def test_builder_explain_shows_rewrite(self, context):
        builder = (
            RegionBuilder()
            .from_moft("FMbus")
            .during("timeOfDay", "Morning")
        )
        text = builder.explain(context)
        assert text.startswith("Region(outputs=oid, t")
        assert "Rewritten by push_down_time:" in text
        assert "FilteredMoft" in text

    def test_builder_explain_no_rewrite(self, context):
        builder = RegionBuilder().from_moft("FMbus")
        text = builder.explain(context)
        assert "push_down_time: not applicable" in text
