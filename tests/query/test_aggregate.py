"""Tests for aggregation over regions, including Remark 1."""

import pytest

from repro.errors import QueryError
from repro.olap import AggregateFunction
from repro.query import (
    AggregateSpec,
    MovingObjectAggregateQuery,
    RegionBuilder,
    count_distinct_objects,
    count_per_group,
)
from repro.query.ast import And, Moft, TimeRollup, Const, Var
from repro.query.region import SpatioTemporalRegion
from repro.synth.paperdata import LOW_INCOME_THRESHOLD, figure1_instance

OID, T, X, Y = Var("oid"), Var("t"), Var("x"), Var("y")


@pytest.fixture(scope="module")
def world():
    return figure1_instance()


@pytest.fixture()
def ctx(world):
    return world.context()


def low_income_region(world):
    return (
        RegionBuilder()
        .from_moft("FMbus")
        .during("timeOfDay", "Morning")
        .in_attribute_polygon(
            "neighborhood", value_filter=("income", "<", LOW_INCOME_THRESHOLD)
        )
        .build(world.gis)
    )


class TestAggregateSpec:
    def test_function_parsed_from_string(self):
        spec = AggregateSpec(function="sum", measure="t")
        assert spec.function is AggregateFunction.SUM

    def test_distinct_needs_measure(self):
        with pytest.raises(QueryError):
            AggregateSpec(distinct=True)

    def test_per_span_needs_both(self):
        with pytest.raises(QueryError):
            AggregateSpec(per_span_level="timeOfDay")


class TestValidation:
    def test_group_by_must_be_output(self, world):
        region = low_income_region(world)
        with pytest.raises(QueryError):
            MovingObjectAggregateQuery(
                region, AggregateSpec(group_by=("zzz",))
            )

    def test_measure_must_be_output(self, world):
        region = low_income_region(world)
        with pytest.raises(QueryError):
            MovingObjectAggregateQuery(
                region, AggregateSpec(function="SUM", measure="zzz")
            )

    def test_run_scalar_rejects_grouped(self, world, ctx):
        region = low_income_region(world)
        query = MovingObjectAggregateQuery(
            region, AggregateSpec(group_by=("oid",))
        )
        with pytest.raises(QueryError):
            query.run_scalar(ctx)


class TestRemark1:
    def test_answer_is_four_thirds(self, world, ctx):
        """Remark 1: the running query evaluates to 4/3 ≈ 1.333."""
        query = MovingObjectAggregateQuery(
            low_income_region(world),
            AggregateSpec(per_span_level="timeOfDay", per_span_member="Morning"),
        )
        assert query.run_scalar(ctx) == pytest.approx(4 / 3)

    def test_contributions(self, world, ctx):
        """O1 contributes three times, O2 once (the paper's breakdown)."""
        per_object = count_per_group(low_income_region(world), ctx, ["oid"])
        assert per_object == {("O1",): 3, ("O2",): 1}

    def test_raw_count_is_four(self, world, ctx):
        query = MovingObjectAggregateQuery(
            low_income_region(world), AggregateSpec()
        )
        assert query.run_scalar(ctx) == 4


class TestAggregations:
    def test_count_distinct_objects(self, world, ctx):
        assert count_distinct_objects(low_income_region(world), ctx) == 2

    def test_grouped_per_hour(self, world, ctx):
        counts = count_per_group(low_income_region(world), ctx, ["t"])
        assert counts == {(2.0,): 1, (3.0,): 2, (4.0,): 1}

    def test_min_max_over_instants(self, world, ctx):
        region = low_income_region(world)
        earliest = MovingObjectAggregateQuery(
            region, AggregateSpec(function="MIN", measure="t")
        ).run_scalar(ctx)
        latest = MovingObjectAggregateQuery(
            region, AggregateSpec(function="MAX", measure="t")
        ).run_scalar(ctx)
        assert (earliest, latest) == (2.0, 4.0)

    def test_empty_region_count_zero(self, world, ctx):
        region = SpatioTemporalRegion(
            ("oid", "t"),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                TimeRollup(T, "timeOfDay", Const("Midnightish")),
            ),
        )
        query = MovingObjectAggregateQuery(region, AggregateSpec())
        assert query.run_scalar(ctx) == 0.0

    def test_empty_region_sum_raises(self, world, ctx):
        region = SpatioTemporalRegion(
            ("oid", "t"),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                TimeRollup(T, "timeOfDay", Const("Midnightish")),
            ),
        )
        query = MovingObjectAggregateQuery(
            region, AggregateSpec(function="SUM", measure="t")
        )
        with pytest.raises(QueryError):
            query.run_scalar(ctx)

    def test_distinct_grouped(self, world, ctx):
        region = low_income_region(world)
        query = MovingObjectAggregateQuery(
            region,
            AggregateSpec(measure="oid", distinct=True, group_by=("t",)),
        )
        result = query.run(ctx)
        assert result == {(2.0,): 1.0, (3.0,): 2.0, (4.0,): 1.0}
