"""Property tests on the region solver: order independence, monotonicity."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.query.ast import (
    Alpha,
    And,
    Compare,
    Const,
    MemberValue,
    Moft,
    PointIn,
    TimeRollup,
    Var,
)
from repro.query.region import SpatioTemporalRegion
from repro.synth.paperdata import figure1_instance

OID, T, X, Y = Var("oid"), Var("t"), Var("x"), Var("y")
PG, N = Var("pg"), Var("n")


@pytest.fixture(scope="module")
def world():
    return figure1_instance()


def running_query_conjuncts():
    return [
        Moft(OID, T, X, Y, "FMbus"),
        TimeRollup(T, "timeOfDay", Const("Morning")),
        PointIn(X, Y, "Ln", "polygon", PG),
        Alpha("neighborhood", N, PG),
        Compare(
            MemberValue("neighborhood", N, "income"), "<", Const(1500)
        ),
    ]


class TestOrderIndependence:
    def test_all_permutations_agree(self, world):
        """The conjunct order affects cost, never the answer."""
        ctx = world.context()
        conjuncts = running_query_conjuncts()
        reference = None
        for permutation in itertools.permutations(range(len(conjuncts))):
            formula = And(*[conjuncts[i] for i in permutation])
            region = SpatioTemporalRegion(("oid", "t"), formula)
            answer = region.evaluate_tuples(ctx)
            if reference is None:
                reference = answer
            else:
                assert answer == reference
        assert reference == {
            ("O1", 2.0),
            ("O1", 3.0),
            ("O1", 4.0),
            ("O2", 3.0),
        }


class TestMonotonicity:
    @given(st.integers(min_value=0, max_value=5000))
    @settings(max_examples=20)
    def test_tighter_income_filter_shrinks_region(self, world, threshold):
        ctx = world.context()

        def region_for(limit):
            return SpatioTemporalRegion(
                ("oid", "t"),
                And(
                    Moft(OID, T, X, Y, "FMbus"),
                    PointIn(X, Y, "Ln", "polygon", PG),
                    Alpha("neighborhood", N, PG),
                    Compare(
                        MemberValue("neighborhood", N, "income"),
                        "<",
                        Const(limit),
                    ),
                ),
            ).evaluate_tuples(ctx)

        tight = region_for(threshold)
        loose = region_for(threshold + 1000)
        assert tight <= loose

    def test_adding_conjuncts_never_grows(self, world):
        ctx = world.context()
        base = [Moft(OID, T, X, Y, "FMbus")]
        extras = [
            TimeRollup(T, "timeOfDay", Const("Morning")),
            PointIn(X, Y, "Ln", "polygon", PG),
        ]
        previous = SpatioTemporalRegion(
            ("oid", "t"), And(*base)
        ).evaluate_tuples(ctx)
        for extra in extras:
            base.append(extra)
            current = SpatioTemporalRegion(
                ("oid", "t"), And(*base)
            ).evaluate_tuples(ctx)
            assert current <= previous
            previous = current


class TestStrategiesAgreeProperty:
    @given(st.sampled_from(["zuid", "berchem", "centrum", "noord"]))
    def test_overlay_naive_parity_per_member(self, world, member):
        region = SpatioTemporalRegion(
            ("oid", "t"),
            And(
                Moft(OID, T, X, Y, "FMbus"),
                PointIn(X, Y, "Ln", "polygon", PG),
                Alpha("neighborhood", Const(member), PG),
            ),
        )
        with_overlay = region.evaluate_tuples(world.context(use_overlay=True))
        naive = region.evaluate_tuples(world.context(use_overlay=False))
        assert with_overlay == naive
