"""Tests for the fluent RegionBuilder."""

import pytest

from repro.errors import QueryError
from repro.query import QueryType, RegionBuilder, classify
from repro.synth.paperdata import LOW_INCOME_THRESHOLD, figure1_instance


@pytest.fixture(scope="module")
def world():
    return figure1_instance()


@pytest.fixture()
def ctx(world):
    return world.context()


class TestBasics:
    def test_requires_moft(self, world):
        with pytest.raises(QueryError):
            RegionBuilder().during("timeOfDay", "Morning").build(world.gis)

    def test_default_outputs(self, world, ctx):
        region = RegionBuilder().from_moft("FMbus").build(world.gis)
        assert region.output_variables == ("oid", "t")
        assert len(region.evaluate(ctx)) == 12

    def test_output_override(self, world, ctx):
        region = (
            RegionBuilder().from_moft("FMbus").output("oid").build(world.gis)
        )
        assert len(region.evaluate(ctx)) == 6

    def test_output_requires_columns(self):
        with pytest.raises(QueryError):
            RegionBuilder().output()


class TestTemporal:
    def test_during(self, world, ctx):
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .during("timeOfDay", "Morning")
            .build(world.gis)
        )
        assert all(
            row["t"] in (2.0, 3.0, 4.0) for row in region.evaluate(ctx)
        )

    def test_where_time(self, world, ctx):
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .where_time("hour", ">=", 5)
            .build(world.gis)
        )
        assert {row["oid"] for row in region.evaluate(ctx)} == {"O3", "O4"}

    def test_at_instant_drops_t_output(self, world, ctx):
        region = RegionBuilder().from_moft("FMbus", at_instant=3).build(world.gis)
        assert region.output_variables == ("oid",)
        oids = {row["oid"] for row in region.evaluate(ctx)}
        assert oids == {"O1", "O2", "O5", "O6"}


class TestSpatial:
    def test_in_attribute_polygon_with_filter(self, world, ctx):
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .in_attribute_polygon(
                "neighborhood",
                value_filter=("income", "<", LOW_INCOME_THRESHOLD),
            )
            .build(world.gis)
        )
        tuples = region.evaluate_tuples(ctx)
        assert tuples == {
            ("O1", 1.0),
            ("O1", 2.0),
            ("O1", 3.0),
            ("O1", 4.0),
            ("O2", 3.0),
        }

    def test_in_attribute_polygon_specific_member(self, world, ctx):
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .in_attribute_polygon("neighborhood", member="centrum")
            .build(world.gis)
        )
        oids = {row["oid"] for row in region.evaluate(ctx)}
        assert oids == {"O2", "O4"}

    def test_where_member_list(self, world, ctx):
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .where_member("neighborhood", ["zuid", "centrum"], kind="polygon")
            .build(world.gis)
        )
        oids = {row["oid"] for row in region.evaluate(ctx)}
        assert oids == {"O1", "O2", "O4"}

    def test_near_attribute_node(self, world, ctx):
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .near_attribute_node("school", 8.0, member="south-school")
            .build(world.gis)
        )
        oids = {row["oid"] for row in region.evaluate(ctx)}
        assert "O1" in oids
        assert "O3" not in oids

    def test_deferred_resolution_without_gis(self, world, ctx):
        # build() without a GIS leaves deferred atoms; evaluation resolves
        # them through the context.
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .in_attribute_polygon("neighborhood", member="zuid")
            .build()
        )
        tuples = region.evaluate_tuples(ctx)
        assert ("O1", 1.0) in tuples


class TestTrajectory:
    def test_trajectory_through_attribute_catches_o6(self, world, ctx):
        """O6 passes through low-income Berchem between its samples."""
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .trajectory_through_attribute(
                "neighborhood",
                value_filter=("income", "<", LOW_INCOME_THRESHOLD),
                moft_name="FMbus",
            )
            .output("oid")
            .build(world.gis)
        )
        oids = {row["oid"] for row in region.evaluate(ctx)}
        # O1 (sampled inside), O2 (sampled inside), O6 (interpolated only).
        assert oids == {"O1", "O2", "O6"}

    def test_sampled_vs_interpolated_semantics(self, world, ctx):
        """The paper's O6 point: sample semantics misses pass-throughs."""
        sampled = (
            RegionBuilder()
            .from_moft("FMbus")
            .in_attribute_polygon(
                "neighborhood",
                value_filter=("income", "<", LOW_INCOME_THRESHOLD),
            )
            .output("oid")
            .build(world.gis)
        )
        sampled_oids = {row["oid"] for row in sampled.evaluate(ctx)}
        assert "O6" not in sampled_oids

    def test_trajectory_near_node(self, world, ctx):
        # O3 sampled at (15,15) = the north school; O5 and O6 pass nearby.
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .trajectory_near_attribute_node(
                "school", 1.0, member="north-school", moft_name="FMbus"
            )
            .output("oid")
            .build(world.gis)
        )
        oids = {row["oid"] for row in region.evaluate(ctx)}
        assert "O3" in oids
        assert "O1" not in oids


class TestCountQuery:
    def test_count_query_shortcut(self, world, ctx):
        query = (
            RegionBuilder()
            .from_moft("FMbus")
            .during("timeOfDay", "Morning")
            .in_attribute_polygon(
                "neighborhood",
                value_filter=("income", "<", LOW_INCOME_THRESHOLD),
            )
            .count_query(per_span=("timeOfDay", "Morning"), gis=world.gis)
        )
        assert query.run_scalar(ctx) == pytest.approx(4 / 3)

    def test_count_distinct(self, world, ctx):
        query = (
            RegionBuilder()
            .from_moft("FMbus")
            .during("timeOfDay", "Morning")
            .count_query(distinct_objects=True, gis=world.gis)
        )
        assert query.run_scalar(ctx) == 4  # O1, O2, O5, O6 sampled then

    def test_classification_of_built_queries(self, world):
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .during("timeOfDay", "Morning")
            .build(world.gis)
        )
        assert classify(region) is QueryType.TRAJECTORY_SAMPLES
