"""Round-trip tests: format(parse(q)) and parse(format(ast)) are inverse."""

import pytest
from hypothesis import given, strategies as st

from repro.pietql import parse
from repro.pietql.ast import (
    DuringClause,
    GeoCondition,
    GeometricQuery,
    LayerRef,
    MovingObjectQuery,
    OlapQuery,
    PietQLQuery,
)
from repro.pietql.format import format_query

ident = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s.upper()
    not in {
        "SELECT", "FROM", "WHERE", "AND", "COUNT", "OBJECTS", "SAMPLES",
        "DISTINCT", "THROUGH", "RESULT", "DURING", "LAYER", "SUBLEVEL",
        "AGGREGATE", "BY",
    }
)

layer_refs = st.builds(LayerRef, ident)


@st.composite
def geometric_queries(draw):
    target = draw(layer_refs)
    others = draw(st.lists(layer_refs, min_size=0, max_size=2))
    conditions = []
    for other in others:
        predicate = draw(
            st.sampled_from(["intersection", "contains", "within"])
        )
        sublevel = draw(
            st.one_of(st.none(), st.sampled_from(["node", "polyline", "polygon"]))
        )
        conditions.append(GeoCondition(predicate, target, other, sublevel))
    select = [target] + [c.right for c in conditions]
    return GeometricQuery(tuple(select), draw(ident), tuple(conditions))


@st.composite
def full_queries(draw):
    geo = draw(geometric_queries())
    olap = draw(
        st.one_of(
            st.none(),
            st.builds(
                OlapQuery,
                st.sampled_from(["sum", "min", "max", "avg", "count"]),
                ident,
                st.one_of(st.none(), ident),
            ),
        )
    )
    mo = draw(
        st.one_of(
            st.none(),
            st.builds(
                MovingObjectQuery,
                st.sampled_from(["OBJECTS", "SAMPLES"]),
                ident,
                st.booleans(),
                st.lists(
                    st.builds(DuringClause, ident, ident),
                    max_size=2,
                ).map(tuple),
            ),
        )
    )
    return PietQLQuery(geo, mo, olap)


class TestRoundTrip:
    @given(full_queries())
    def test_parse_format_inverse(self, query):
        text = format_query(query)
        reparsed = parse(text)
        assert reparsed == query

    def test_format_of_paper_query(self):
        text = """
        SELECT layer.usa_rivers,layer.usa_cities, layer.usa_stores;
        FROM PietSchema;
        WHERE intersection(layer.usa_rivers, layer.usa_cities,sublevel.Linestring)
        AND(layer.usa_cities) CONTAINS(layer.usa_cities, layer.usa_stores, sublevel.Point);
        """
        query = parse(text)
        canonical = format_query(query)
        assert parse(canonical) == query
        assert "contains(" in canonical

    def test_canonical_is_stable(self):
        text = (
            "SELECT layer.cities FROM S "
            "WHERE intersection(layer.cities, layer.rivers) "
            "| AGGREGATE sum(population) BY country "
            "| COUNT OBJECTS FROM FM THROUGH RESULT DURING hour = '9'"
        )
        once = format_query(parse(text))
        twice = format_query(parse(once))
        assert once == twice
