"""Tests for the Piet-QL tokenizer."""

import pytest

from repro.errors import PietQLSyntaxError
from repro.pietql import Token, TokenType, tokenize


def types(text):
    return [t.type for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasics:
    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_keywords_case_insensitive(self):
        for text in ("select", "SELECT", "Select"):
            token = tokenize(text)[0]
            assert token.type is TokenType.KEYWORD
            assert token.value == "SELECT"

    def test_identifiers(self):
        token = tokenize("usa_rivers")[0]
        assert token.type is TokenType.IDENT
        assert token.value == "usa_rivers"

    def test_punctuation(self):
        assert types("( ) , ; | . =")[:-1] == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COMMA,
            TokenType.SEMICOLON,
            TokenType.PIPE,
            TokenType.DOT,
            TokenType.EQUALS,
        ]

    def test_dotted_reference(self):
        assert values("layer.usa_cities") == ["LAYER", ".", "usa_cities"]

    def test_numbers(self):
        assert values("42 3.25 -7") == ["42", "3.25", "-7"]

    def test_number_then_dot_reference(self):
        # "3.x" must not swallow the dot into the number.
        tokens = tokenize("3.x")
        assert tokens[0].value == "3"
        assert tokens[1].type is TokenType.DOT

    def test_strings_single_and_double(self):
        assert tokenize("'Morning'")[0].value == "Morning"
        assert tokenize('"Morning"')[0].value == "Morning"

    def test_unterminated_string(self):
        with pytest.raises(PietQLSyntaxError):
            tokenize("'oops")
        with pytest.raises(PietQLSyntaxError):
            tokenize("'new\nline'")

    def test_unexpected_character(self):
        with pytest.raises(PietQLSyntaxError):
            tokenize("SELECT @")

    def test_line_tracking(self):
        tokens = tokenize("SELECT\nFROM")
        assert tokens[0].line == 1
        assert tokens[1].line == 2

    def test_is_keyword_helper(self):
        token = tokenize("COUNT")[0]
        assert token.is_keyword("count")
        assert not token.is_keyword("select")


class TestPaperExample:
    def test_paper_query_tokenizes(self):
        text = """
        SELECT layer.usa_rivers,layer.usa_cities,
        layer.usa_stores;
        FROM PietSchema;
        WHERE intersection(layer.usa_rivers,
        layer.usa_cities,sublevel.Linestring)
        AND(layer.usa_cities)
        CONTAINS(layer.usa_cities,
        layer.usa_stores, sublevel.Point);
        """
        tokens = tokenize(text)
        keywords = [t.value for t in tokens if t.type is TokenType.KEYWORD]
        assert keywords.count("LAYER") == 8
        assert "SELECT" in keywords
        assert "WHERE" in keywords
        assert "AND" in keywords
