"""Round-trip fuzzing of the Piet-QL parser and formatter.

For every canonical AST the two must be mutually inverse:
``parse(format_query(q)) == q``, and the canonical text is a fixed point
of a second format/parse cycle.  Hypothesis builds ASTs directly (the
grammar is easier to sample than its text), constrained to the canonical
shapes the formatter emits: lowercase predicates/sublevels (the parser
lowercases them), identifiers that do not collide with keywords, DURING
members without quote characters, and conditions anchored on the first
selected layer so target resolution succeeds.
"""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pietql import ast
from repro.pietql.format import format_query
from repro.pietql.lexer import KEYWORDS
from repro.pietql.parser import parse

IDENT_START = string.ascii_letters + "_"
IDENT_REST = string.ascii_letters + string.digits + "_"

IDENTS = st.builds(
    lambda head, tail: head + tail,
    st.sampled_from(IDENT_START),
    st.text(alphabet=IDENT_REST, max_size=8),
).filter(lambda word: word.upper() not in KEYWORDS)

LAYER_REFS = st.builds(ast.LayerRef, IDENTS)

# The parser lowercases sublevels, so only lowercase ones round-trip.
SUBLEVELS = st.one_of(
    st.none(),
    st.sampled_from(["point", "line", "polyline", "polygon", "node"]),
)

# String literals have no escape syntax: no quotes, no newlines.
MEMBERS = st.text(
    alphabet=string.ascii_letters + string.digits + " _-.",
    min_size=1,
    max_size=12,
)


@st.composite
def geometric_queries(draw) -> ast.GeometricQuery:
    select = tuple(
        draw(st.lists(LAYER_REFS, min_size=1, max_size=3, unique=True))
    )
    target = select[0]
    conditions = tuple(
        draw(
            st.lists(
                st.builds(
                    ast.GeoCondition,
                    st.sampled_from(ast.GEO_PREDICATES),
                    st.just(target),
                    LAYER_REFS,
                    SUBLEVELS,
                ),
                max_size=3,
            )
        )
    )
    return ast.GeometricQuery(select, draw(IDENTS), conditions)


MOVING_QUERIES = st.builds(
    ast.MovingObjectQuery,
    st.sampled_from(["OBJECTS", "SAMPLES"]),
    IDENTS,
    st.booleans(),
    st.lists(
        st.builds(ast.DuringClause, IDENTS, MEMBERS), max_size=2
    ).map(tuple),
)

OLAP_QUERIES = st.builds(
    ast.OlapQuery,
    st.sampled_from(ast.OLAP_FUNCTIONS),
    IDENTS,
    st.one_of(st.none(), IDENTS),
)

QUERIES = st.builds(
    ast.PietQLQuery,
    geometric_queries(),
    st.one_of(st.none(), MOVING_QUERIES),
    st.one_of(st.none(), OLAP_QUERIES),
)


@given(query=QUERIES)
@settings(deadline=None)
def test_format_parse_roundtrip(query):
    text = format_query(query)
    assert parse(text) == query


@given(query=QUERIES)
@settings(deadline=None)
def test_canonical_text_is_a_fixed_point(query):
    text = format_query(query)
    assert format_query(parse(text)) == text


@given(query=QUERIES)
@settings(deadline=None)
def test_roundtrip_preserves_target(query):
    reparsed = parse(format_query(query))
    assert reparsed.geometric.target == query.geometric.target
