"""Tests for Piet-QL execution against the Figure 1 world and beyond."""

import pytest

from repro.errors import PietQLExecutionError
from repro.geometry import Point, Polygon, Polyline
from repro.gis import NODE, POLYGON, POLYLINE
from repro.mo import MOFT
from repro.pietql import LayerBinding, PietQLExecutor, run
from repro.query import EvaluationContext, geometric_subquery
from repro.synth.paperdata import figure1_instance


@pytest.fixture(scope="module")
def world():
    return figure1_instance()


@pytest.fixture()
def executor(world):
    bindings = {
        "neighborhoods": LayerBinding("Ln", POLYGON),
        "rivers": LayerBinding("Lr", POLYLINE),
        "schools": LayerBinding("Ls", NODE),
    }
    return PietQLExecutor(world.context(), bindings)


class TestBindingResolution:
    def test_explicit_binding(self, executor):
        from repro.pietql.ast import LayerRef

        binding = executor.resolve(LayerRef("neighborhoods"))
        assert (binding.layer, binding.kind) == ("Ln", POLYGON)

    def test_direct_gis_layer_single_kind(self, world):
        executor = PietQLExecutor(world.context())
        from repro.pietql.ast import LayerRef

        binding = executor.resolve(LayerRef("Ln"))
        assert (binding.layer, binding.kind) == ("Ln", POLYGON)

    def test_unknown_layer_raises(self, world):
        executor = PietQLExecutor(world.context())
        from repro.pietql.ast import LayerRef

        with pytest.raises(PietQLExecutionError):
            executor.resolve(LayerRef("atlantis"))

    def test_sublevel_overrides(self):
        """A sublevel override resolves when the layer holds that kind."""
        from repro.geometry import Point, Polyline, Segment
        from repro.gis import (
            ALL,
            LINE,
            POINT,
            GISDimensionInstance,
            GISDimensionSchema,
            LayerHierarchy,
        )
        from repro.pietql.ast import LayerRef
        from repro.temporal.timedim import TimeDimension

        rivers = LayerHierarchy(
            "Lr", [(POINT, LINE), (LINE, POLYLINE), (POLYLINE, ALL)]
        )
        gis = GISDimensionInstance(GISDimensionSchema([rivers], [], []))
        gis.add_geometry(
            "Lr", POLYLINE, "pl1", Polyline([Point(0, 0), Point(1, 0)])
        )
        gis.add_geometry("Lr", LINE, "ln1", Segment(Point(0, 0), Point(1, 0)))
        time = TimeDimension.from_explicit_rollups(
            [("timeId", 1, "hour", 1)]
        )
        executor = PietQLExecutor(
            EvaluationContext(gis, time),
            {"rivers": LayerBinding("Lr", POLYLINE)},
        )
        binding = executor.resolve(LayerRef("rivers"), LINE)
        assert (binding.layer, binding.kind) == ("Lr", LINE)

    def test_sublevel_unknown_kind_raises(self, executor):
        """Regression: a bad sublevel on a *bound* layer used to leak a
        raw error from deep inside the overlay instead of failing at
        resolution time."""
        from repro.pietql.ast import LayerRef

        with pytest.raises(PietQLExecutionError, match="no elements of kind"):
            executor.resolve(LayerRef("rivers"), "line")
        with pytest.raises(PietQLExecutionError, match="no elements of kind"):
            executor.execute(
                "SELECT layer.neighborhoods FROM Fig1 WHERE "
                "(layer.neighborhoods) CONTAINS "
                "(layer.neighborhoods, layer.schools, sublevel.point)"
            )


class TestGeometricExecution:
    def test_no_conditions_returns_all(self, executor):
        result = executor.execute("SELECT layer.schools FROM Fig1")
        assert result.geometry_ids == {
            "nd_school_south",
            "nd_school_north",
        }
        assert result.count is None

    def test_river_crossing_condition(self, executor):
        result = executor.execute(
            "SELECT layer.neighborhoods FROM Fig1 "
            "WHERE intersection(layer.rivers, layer.neighborhoods)"
        )
        assert result.geometry_ids == {
            "pg_zuid",
            "pg_berchem",
            "pg_centrum",
            "pg_noord",
        }

    def test_paper_pipeline_conditions(self, executor):
        result = executor.execute(
            "SELECT layer.neighborhoods FROM Fig1 "
            "WHERE intersection(layer.rivers, layer.neighborhoods) "
            "AND contains(layer.neighborhoods, layer.schools)"
        )
        assert result.geometry_ids == {"pg_zuid", "pg_noord"}

    def test_infix_contains(self, executor):
        result = executor.execute(
            "SELECT layer.neighborhoods FROM Fig1 WHERE "
            "(layer.neighborhoods) CONTAINS "
            "(layer.neighborhoods, layer.schools, sublevel.node)"
        )
        assert result.geometry_ids == {"pg_zuid", "pg_noord"}

    def test_matches_geometric_subquery_api(self, world, executor):
        text_result = executor.execute(
            "SELECT layer.neighborhoods FROM Fig1 "
            "WHERE intersection(layer.rivers, layer.neighborhoods) "
            "AND contains(layer.neighborhoods, layer.schools)"
        )
        api_result = geometric_subquery(
            world.context(),
            ("Ln", POLYGON),
            [
                ("intersects", ("Lr", POLYLINE)),
                ("contains", ("Ls", NODE)),
            ],
        )
        assert set(text_result.geometry_ids) == api_result

    def test_unsatisfiable(self, executor):
        result = executor.execute(
            "SELECT layer.schools FROM Fig1 "
            "WHERE contains(layer.schools, layer.neighborhoods)"
        )
        assert result.geometry_ids == frozenset()


class TestMovingObjectsExecution:
    def test_count_objects_through_result(self, executor):
        """Section 5's example shape: objects through qualifying regions."""
        result = executor.execute(
            "SELECT layer.neighborhoods FROM Fig1 "
            "WHERE intersection(layer.rivers, layer.neighborhoods) "
            "AND contains(layer.neighborhoods, layer.schools) "
            "| COUNT OBJECTS FROM FMbus THROUGH RESULT"
        )
        # zuid and noord qualify; O1, O2 touch zuid, O3, O5, O6 noord.
        assert result.count == 5
        assert result.matched_objects == frozenset(
            {"O1", "O2", "O3", "O5", "O6"}
        )

    def test_count_objects_no_through(self, executor):
        result = executor.execute(
            "SELECT layer.neighborhoods FROM Fig1 | COUNT OBJECTS FROM FMbus"
        )
        assert result.count == 6

    def test_count_samples(self, executor):
        result = executor.execute(
            "SELECT layer.neighborhoods FROM Fig1 | COUNT SAMPLES FROM FMbus"
        )
        assert result.count == 12

    def test_during_restricts_instants(self, executor):
        result = executor.execute(
            "SELECT layer.neighborhoods FROM Fig1 "
            "| COUNT SAMPLES FROM FMbus DURING timeOfDay = 'Morning'"
        )
        # Samples at t in {2,3,4}: O1 x3, O2 x3, O5 x1, O6 x2.
        assert result.count == 9

    def test_during_with_through(self, executor):
        result = executor.execute(
            "SELECT layer.neighborhoods FROM Fig1 "
            "WHERE contains(layer.neighborhoods, layer.schools) "
            "| COUNT OBJECTS FROM FMbus THROUGH RESULT "
            "DURING timeOfDay = 'Morning'"
        )
        # Morning samples only; zuid & noord qualify geometrically.
        # O1 (zuid), O2 (zuid at t=3), O5, O6 (noord); O3 has no morning
        # samples; O4's only sample is t=6.
        assert result.matched_objects == frozenset({"O1", "O2", "O5", "O6"})

    def test_empty_geometric_answer(self, executor):
        result = executor.execute(
            "SELECT layer.schools FROM Fig1 "
            "WHERE contains(layer.schools, layer.neighborhoods) "
            "| COUNT OBJECTS FROM FMbus THROUGH RESULT"
        )
        assert result.count == 0
        assert result.matched_objects == frozenset()

    def test_run_convenience(self, world):
        bindings = {"neighborhoods": LayerBinding("Ln", POLYGON)}
        result = run(
            "SELECT layer.neighborhoods FROM Fig1 | COUNT OBJECTS FROM FMbus",
            world.context(),
            bindings,
        )
        assert result.count == 6

    def test_unknown_moft(self, executor):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            executor.execute(
                "SELECT layer.neighborhoods FROM Fig1 | COUNT OBJECTS FROM nope"
            )
