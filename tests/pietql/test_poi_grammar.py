"""Piet-QL grammar coverage for the POI aggregation part.

Parse/format round-trips for every measure head (VISITS, DISTINCT
VISITORS, DWELL, TOP k) with and without MINDWELL and an AGGREGATE
middle part, EXPLAIN on a routed POI query, and the typed errors: a
POI part aimed at a layer whose binding is not a place-of-interest
layer, and the syntax/AST validation failures.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    PietQLError,
    PietQLExecutionError,
    PietQLSyntaxError,
)
from repro.gis import POI, POLYGON
from repro.pietql import LayerBinding, PietQLExecutor, run
from repro.pietql.ast import LayerRef, PoiAggQuery
from repro.pietql.format import format_query
from repro.pietql.parser import parse
from repro.synth.paperdata import figure1_instance

pytestmark = pytest.mark.poi

ROUND_TRIP_TEXTS = [
    "SELECT layer.Lp FROM Fig2 | VISITS FROM FMbus AT layer.Lp BY hour",
    "SELECT layer.Lp FROM Fig2 | DISTINCT VISITORS FROM FMbus "
    "AT layer.Lp BY hour MINDWELL 0.5",
    "SELECT layer.Lp FROM Fig2 | DWELL FROM FMbus AT layer.Lp BY day",
    "SELECT layer.Lp FROM Fig2 | TOP 3 FROM FMbus AT layer.Lp BY hour",
    "SELECT layer.Ln FROM Fig2 | AGGREGATE sum(income) BY city "
    "| VISITS FROM FMbus AT layer.Lp BY hour",
    "SELECT layer.Lp FROM Fig2 | TOP 2 FROM FMbus AT layer.Lp "
    "BY hour MINDWELL 1.5",
]


@pytest.fixture(scope="module")
def world():
    return figure1_instance(with_pois=True)


@pytest.fixture()
def executor(world):
    return PietQLExecutor(world.context())


class TestParse:
    def test_visits_fields(self):
        query = parse(ROUND_TRIP_TEXTS[0])
        poi = query.poi
        assert poi is not None
        assert poi.measure == "visits"
        assert poi.moft_name == "FMbus"
        assert poi.at == LayerRef("Lp")
        assert poi.by_level == "hour"
        assert poi.k is None
        assert poi.min_dwell == 0.0

    def test_distinct_visitors_with_min_dwell(self):
        poi = parse(ROUND_TRIP_TEXTS[1]).poi
        assert poi.measure == "visitors"
        assert poi.min_dwell == 0.5

    def test_topk(self):
        poi = parse(ROUND_TRIP_TEXTS[3]).poi
        assert (poi.measure, poi.k) == ("topk", 3)

    def test_after_aggregate_part(self):
        query = parse(ROUND_TRIP_TEXTS[4])
        assert query.olap is not None
        assert query.poi is not None
        assert query.moving_objects is None

    def test_poi_and_moving_parts_are_exclusive(self):
        """A pipe part is either a moving-object part or a POI part."""
        query = parse(
            "SELECT layer.Ln FROM Fig2 | COUNT OBJECTS FROM FMbus"
        )
        assert query.moving_objects is not None and query.poi is None

    @pytest.mark.parametrize(
        "bad",
        [
            # TOP needs an integer literal
            "SELECT layer.Lp FROM Fig2 | TOP FROM FMbus AT layer.Lp BY hour",
            "SELECT layer.Lp FROM Fig2 | TOP 2.5 FROM FMbus "
            "AT layer.Lp BY hour",
            # missing clauses
            "SELECT layer.Lp FROM Fig2 | VISITS FROM FMbus BY hour",
            "SELECT layer.Lp FROM Fig2 | VISITS FROM FMbus AT layer.Lp",
            # DISTINCT must be followed by VISITORS
            "SELECT layer.Lp FROM Fig2 | DISTINCT DWELL FROM FMbus "
            "AT layer.Lp BY hour",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(PietQLSyntaxError):
            parse(bad)

    def test_ast_validation(self):
        at = LayerRef("Lp")
        with pytest.raises(PietQLError):
            PoiAggQuery("teleports", "FM", at, "hour")
        with pytest.raises(PietQLError):
            PoiAggQuery("topk", "FM", at, "hour")  # k required
        with pytest.raises(PietQLError):
            PoiAggQuery("topk", "FM", at, "hour", k=0)
        with pytest.raises(PietQLError):
            PoiAggQuery("visits", "FM", at, "hour", k=3)  # k forbidden
        with pytest.raises(PietQLError):
            PoiAggQuery("visits", "FM", at, "hour", min_dwell=-1.0)
        with pytest.raises(PietQLError):
            PoiAggQuery("visits", "FM", at, "hour", min_dwell=float("nan"))


class TestRoundTrip:
    @pytest.mark.parametrize("text", ROUND_TRIP_TEXTS)
    def test_parse_format_parse_fixed_point(self, text):
        once = parse(text)
        rendered = format_query(once)
        assert parse(rendered) == once
        # format is a fixed point of its own output
        assert format_query(parse(rendered)) == rendered


class TestExecution:
    def test_visits_on_fig1(self, executor):
        result = executor.execute(ROUND_TRIP_TEXTS[0])
        assert result.poi_result == {
            ("poi_school_south", 2): 1,
            ("poi_market", 2): 1,
        }

    def test_min_dwell_filters(self, executor):
        result = executor.execute(
            "SELECT layer.Lp FROM Fig2 | VISITS FROM FMbus "
            "AT layer.Lp BY hour MINDWELL 100.0"
        )
        assert result.poi_result == {}

    def test_topk_result_shape(self, executor):
        result = executor.execute(ROUND_TRIP_TEXTS[3])
        for member, ranking in result.poi_result.items():
            assert isinstance(member, int)
            assert all(len(entry) == 2 for entry in ranking)

    def test_explain_attaches_routed_plan(self, executor):
        result = executor.execute("EXPLAIN " + ROUND_TRIP_TEXTS[0])
        assert result.plan is not None
        assert result.plan.strategy in ("serial", "sharded", "preagg")
        rendered = result.plan.render()
        assert "PoiAggregate" in rendered
        # EXPLAIN executes normally and attaches the plan alongside.
        assert result.poi_result == {
            ("poi_school_south", 2): 1,
            ("poi_market", 2): 1,
        }

    def test_non_poi_binding_is_typed_error(self, world):
        executor = PietQLExecutor(world.context())
        with pytest.raises(
            PietQLExecutionError, match="place-of-interest"
        ):
            executor.execute(
                "SELECT layer.Ln FROM Fig2 | VISITS FROM FMbus "
                "AT layer.Ln BY hour"
            )

    def test_explicit_binding_to_wrong_kind_is_typed_error(self, world):
        executor = PietQLExecutor(
            world.context(),
            {"places": LayerBinding("Ln", POLYGON)},
        )
        with pytest.raises(
            PietQLExecutionError, match="place-of-interest"
        ):
            executor.execute(
                "SELECT layer.Ln FROM Fig2 | VISITS FROM FMbus "
                "AT layer.places BY hour"
            )

    def test_explicit_poi_binding_works(self, world):
        executor = PietQLExecutor(
            world.context(), {"places": LayerBinding("Lp", POI)}
        )
        result = executor.execute(
            "SELECT layer.Lp FROM Fig2 | VISITS FROM FMbus "
            "AT layer.places BY hour"
        )
        assert sum(result.poi_result.values()) == 2

    def test_run_helper(self, world):
        result = run(
            ROUND_TRIP_TEXTS[2], world.context()
        )
        assert result.poi_result
        assert all(v > 0 for v in result.poi_result.values())
