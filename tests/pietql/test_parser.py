"""Tests for the Piet-QL parser."""

import pytest

from repro.errors import PietQLError, PietQLSyntaxError
from repro.pietql import parse
from repro.pietql.ast import DuringClause, GeoCondition, LayerRef


class TestGeometricPart:
    def test_minimal_query(self):
        query = parse("SELECT layer.cities FROM CitySchema")
        assert query.geometric.target == LayerRef("cities")
        assert query.geometric.schema_name == "CitySchema"
        assert query.geometric.conditions == ()
        assert query.moving_objects is None

    def test_select_list(self):
        query = parse(
            "SELECT layer.cities, layer.rivers, layer.stores FROM S"
        )
        assert [r.name for r in query.geometric.select] == [
            "cities",
            "rivers",
            "stores",
        ]

    def test_prefix_condition(self):
        query = parse(
            "SELECT layer.cities FROM S "
            "WHERE intersection(layer.rivers, layer.cities)"
        )
        (condition,) = query.geometric.conditions
        assert condition.predicate == "intersection"
        assert condition.left == LayerRef("rivers")
        assert condition.right == LayerRef("cities")
        assert condition.sublevel is None

    def test_sublevel(self):
        query = parse(
            "SELECT layer.cities FROM S "
            "WHERE intersection(layer.rivers, layer.cities, sublevel.Linestring)"
        )
        (condition,) = query.geometric.conditions
        assert condition.sublevel == "linestring"

    def test_infix_condition_paper_style(self):
        query = parse(
            "SELECT layer.cities FROM S WHERE "
            "(layer.cities) CONTAINS (layer.cities, layer.stores, sublevel.Point)"
        )
        (condition,) = query.geometric.conditions
        assert condition.predicate == "contains"
        assert condition.left == LayerRef("cities")
        assert condition.right == LayerRef("stores")
        assert condition.sublevel == "point"

    def test_multiple_conditions(self):
        query = parse(
            "SELECT layer.cities FROM S "
            "WHERE intersection(layer.rivers, layer.cities) "
            "AND contains(layer.cities, layer.stores)"
        )
        assert len(query.geometric.conditions) == 2

    def test_paper_example_parses(self):
        text = """
        SELECT layer.usa_rivers,layer.usa_cities,
        layer.usa_stores;
        FROM PietSchema;
        WHERE intersection(layer.usa_rivers,
        layer.usa_cities,sublevel.Linestring)
        AND(layer.usa_cities)
        CONTAINS(layer.usa_cities,
        layer.usa_stores, sublevel.Point);
        """
        query = parse(text)
        assert query.geometric.schema_name == "PietSchema"
        # The paper: "returns the identifiers of the geometric objects (in
        # this case, the cities)" — the layer involved in every condition.
        assert query.geometric.target == LayerRef("usa_cities")
        assert len(query.geometric.conditions) == 2

    def test_condition_must_involve_target(self):
        with pytest.raises(PietQLError):
            parse(
                "SELECT layer.cities FROM S "
                "WHERE intersection(layer.rivers, layer.stores)"
            )

    def test_unknown_predicate(self):
        with pytest.raises(PietQLError):
            parse(
                "SELECT layer.cities FROM S "
                "WHERE touches(layer.rivers, layer.cities)"
            )

    def test_syntax_errors(self):
        with pytest.raises(PietQLSyntaxError):
            parse("FROM S")
        with pytest.raises(PietQLSyntaxError):
            parse("SELECT layer FROM S")
        with pytest.raises(PietQLSyntaxError):
            parse("SELECT layer.cities")
        with pytest.raises(PietQLSyntaxError):
            parse("SELECT layer.cities FROM S trailing junk")


class TestMovingObjectsPart:
    def test_count_objects(self):
        query = parse("SELECT layer.cities FROM S | COUNT OBJECTS FROM FM")
        mo = query.moving_objects
        assert mo is not None
        assert mo.count_what == "OBJECTS"
        assert mo.moft_name == "FM"
        assert not mo.through_result
        assert mo.during == ()

    def test_count_samples_through_result(self):
        query = parse(
            "SELECT layer.cities FROM S | COUNT SAMPLES FROM FM THROUGH RESULT"
        )
        mo = query.moving_objects
        assert mo.count_what == "SAMPLES"
        assert mo.through_result

    def test_during_clauses(self):
        query = parse(
            "SELECT layer.cities FROM S | COUNT OBJECTS FROM FM "
            "DURING timeOfDay = 'Morning' DURING dayOfWeek = Monday"
        )
        mo = query.moving_objects
        assert mo.during == (
            DuringClause("timeOfDay", "Morning"),
            DuringClause("dayOfWeek", "Monday"),
        )

    def test_numeric_during(self):
        query = parse(
            "SELECT layer.cities FROM S | COUNT OBJECTS FROM FM DURING hour = 9"
        )
        assert query.moving_objects.during == (DuringClause("hour", "9"),)

    def test_count_requires_objects_or_samples(self):
        with pytest.raises(PietQLSyntaxError):
            parse("SELECT layer.cities FROM S | COUNT THINGS FROM FM")

    def test_through_requires_result(self):
        with pytest.raises(PietQLSyntaxError):
            parse("SELECT layer.cities FROM S | COUNT OBJECTS FROM FM THROUGH")
