"""EXPLAIN-prefixed Piet-QL: parsing, formatting, and attached plans."""

import pytest

from repro.gis import NODE, POLYGON, POLYLINE
from repro.pietql import LayerBinding, PietQLExecutor, format_query, parse
from repro.preagg import PreAggStore
from repro.synth.paperdata import figure1_instance

THROUGH_QUERY = (
    "SELECT layer.neighborhoods FROM Fig1 "
    "WHERE intersection(layer.rivers, layer.neighborhoods) "
    "AND contains(layer.neighborhoods, layer.schools) "
    "| COUNT OBJECTS FROM FMbus THROUGH RESULT"
)

BINDINGS = {
    "neighborhoods": LayerBinding("Ln", POLYGON),
    "rivers": LayerBinding("Lr", POLYLINE),
    "schools": LayerBinding("Ls", NODE),
}


@pytest.fixture()
def executor():
    return PietQLExecutor(figure1_instance().context(), BINDINGS)


@pytest.fixture()
def preagg_executor():
    context = figure1_instance().context()
    moft = context.moft("FMbus")
    elements = context.gis.layer("Ln").elements(POLYGON)
    store = PreAggStore(
        moft, context.time, "hour", elements, layer="Ln", kind=POLYGON
    )
    context.register_preagg(store)
    return PietQLExecutor(context, BINDINGS)


class TestParsing:
    def test_explain_prefix_sets_flag(self):
        query = parse("EXPLAIN " + THROUGH_QUERY)
        assert query.explain
        plain = parse(THROUGH_QUERY)
        assert not plain.explain
        # EXPLAIN changes nothing else.
        assert query.geometric == plain.geometric
        assert query.moving_objects == plain.moving_objects

    def test_explain_is_case_insensitive(self):
        assert parse("explain SELECT layer.Ln FROM S").explain

    def test_format_roundtrip(self):
        query = parse("EXPLAIN " + THROUGH_QUERY)
        text = format_query(query)
        assert text.startswith("EXPLAIN ")
        assert parse(text) == query

    def test_plain_format_has_no_prefix(self):
        assert not format_query(parse(THROUGH_QUERY)).startswith("EXPLAIN")


class TestExecution:
    def test_plain_query_has_no_plan(self, executor):
        result = executor.execute(THROUGH_QUERY)
        assert result.plan is None

    def test_explain_executes_and_attaches_plan(self, executor):
        result = executor.execute("EXPLAIN " + THROUGH_QUERY)
        # Same answer as the plain query…
        assert result.count == 5
        assert result.matched_objects == frozenset(
            {"O1", "O2", "O3", "O5", "O6"}
        )
        # …plus a plan with estimates and actuals.
        plan = result.plan
        assert plan is not None
        assert plan.executed
        assert plan.result_count == 5
        assert plan.strategy == "grid"
        scan = plan.root.find("GridScan")
        assert scan is not None
        assert scan.actual_rows == 12
        geo = plan.root.find("GeometricSubquery")
        assert geo.actual_rows == 2

    def test_explain_render_mentions_stages(self, executor):
        result = executor.execute("EXPLAIN " + THROUGH_QUERY)
        text = result.plan.render()
        assert text.startswith("QueryPlan strategy=grid")
        assert "GeometricSubquery" in text
        assert "actual_rows=" in text

    def test_preagg_route_is_reported(self, preagg_executor):
        result = preagg_executor.execute("EXPLAIN " + THROUGH_QUERY)
        assert result.count == 5
        plan = result.plan
        assert plan.strategy == "preagg"
        assert plan.root.find("PreAggLookup") is not None
        # The scan it did not run shows up as a rejected alternative.
        assert dict(plan.alternatives).keys() == {"grid"}

    def test_geometric_only_explain(self, executor):
        result = executor.execute("EXPLAIN SELECT layer.neighborhoods FROM Fig1")
        assert result.plan.strategy == "geometric"
        assert result.plan.result_count == len(result.geometry_ids) == 4

    def test_during_clause_appears_in_plan(self, executor):
        result = executor.execute(
            "EXPLAIN SELECT layer.neighborhoods FROM Fig1 "
            "| COUNT OBJECTS FROM FMbus THROUGH RESULT "
            "DURING timeOfDay = 'Morning'"
        )
        during = result.plan.root.find("DuringRestriction")
        assert during is not None
        assert "timeOfDay" in during.detail

    def test_no_through_counts_rows(self, executor):
        result = executor.execute(
            "EXPLAIN SELECT layer.neighborhoods FROM Fig1 "
            "| COUNT SAMPLES FROM FMbus"
        )
        assert result.plan.strategy == "count"
        assert result.plan.root.find("CountRows") is not None
        assert result.count == 12.0

    def test_olap_part_in_plan(self, executor):
        result = executor.execute(
            "EXPLAIN SELECT layer.neighborhoods FROM Fig1 "
            "| AGGREGATE sum(income) BY neighborhood"
        )
        node = result.plan.root.find("OlapAggregate")
        assert node is not None
        assert "sum(income)" in node.detail
