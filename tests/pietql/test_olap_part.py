"""Tests for the Piet-QL OLAP middle part (three-part queries)."""

import pytest

from repro.errors import PietQLError, PietQLExecutionError, PietQLSyntaxError
from repro.gis import NODE, POLYGON, POLYLINE
from repro.pietql import LayerBinding, PietQLExecutor, parse
from repro.pietql.ast import OlapQuery
from repro.synth.paperdata import figure1_instance


@pytest.fixture(scope="module")
def world():
    return figure1_instance()


@pytest.fixture()
def executor(world):
    return PietQLExecutor(
        world.context(),
        {
            "neighborhoods": LayerBinding("Ln", POLYGON),
            "rivers": LayerBinding("Lr", POLYLINE),
            "schools": LayerBinding("Ls", NODE),
        },
    )


class TestParsing:
    def test_olap_only(self):
        query = parse(
            "SELECT layer.neighborhoods FROM S | AGGREGATE sum(income)"
        )
        assert query.olap == OlapQuery("sum", "income", None)
        assert query.moving_objects is None

    def test_olap_with_by(self):
        query = parse(
            "SELECT layer.neighborhoods FROM S "
            "| AGGREGATE avg(income) BY city"
        )
        assert query.olap == OlapQuery("avg", "income", "city")

    def test_three_part_query(self):
        query = parse(
            "SELECT layer.neighborhoods FROM S "
            "| AGGREGATE sum(income) BY city "
            "| COUNT OBJECTS FROM FMbus THROUGH RESULT"
        )
        assert query.olap is not None
        assert query.moving_objects is not None
        assert query.moving_objects.through_result

    def test_count_function(self):
        query = parse(
            "SELECT layer.neighborhoods FROM S | AGGREGATE COUNT(income)"
        )
        assert query.olap.function == "count"

    def test_unknown_function_rejected(self):
        with pytest.raises(PietQLError):
            parse(
                "SELECT layer.neighborhoods FROM S | AGGREGATE median(income)"
            )

    def test_syntax_errors(self):
        with pytest.raises(PietQLSyntaxError):
            parse("SELECT layer.n FROM S | AGGREGATE sum income")
        with pytest.raises(PietQLSyntaxError):
            parse("SELECT layer.n FROM S | AGGREGATE sum(income) BY")


class TestExecution:
    def test_sum_incomes_of_result(self, executor):
        result = executor.execute(
            "SELECT layer.neighborhoods FROM Fig1 "
            "WHERE contains(layer.neighborhoods, layer.schools) "
            "| AGGREGATE sum(income)"
        )
        # zuid (1200) and noord (3000) contain schools.
        assert result.olap_result == {"all": 4200}

    def test_grouped_by_city(self, executor):
        result = executor.execute(
            "SELECT layer.neighborhoods FROM Fig1 "
            "| AGGREGATE sum(income) BY city"
        )
        # All four neighborhoods roll up to antwerp.
        assert result.olap_result == {
            "antwerp": 1200 + 1400 + 2500 + 3000
        }

    def test_avg_and_count(self, executor):
        result = executor.execute(
            "SELECT layer.neighborhoods FROM Fig1 | AGGREGATE avg(income)"
        )
        assert result.olap_result["all"] == pytest.approx(8100 / 4)
        result = executor.execute(
            "SELECT layer.neighborhoods FROM Fig1 | AGGREGATE count(income)"
        )
        assert result.olap_result == {"all": 4}

    def test_three_part_execution(self, executor):
        result = executor.execute(
            "SELECT layer.neighborhoods FROM Fig1 "
            "WHERE contains(layer.neighborhoods, layer.schools) "
            "| AGGREGATE min(income) "
            "| COUNT OBJECTS FROM FMbus THROUGH RESULT"
        )
        assert result.olap_result == {"all": 1200}
        assert result.count == 5

    def test_empty_result_empty_olap(self, executor):
        result = executor.execute(
            "SELECT layer.schools FROM Fig1 "
            "WHERE contains(layer.schools, layer.neighborhoods) "
            "| AGGREGATE count(income)"
        )
        assert result.olap_result == {}

    def test_no_attribute_on_target_raises(self, world):
        # Bind a name to a (layer, kind) without any placement.
        from repro.gis import LINE

        executor = PietQLExecutor(
            world.context(), {"riverlines": LayerBinding("Lr", LINE)}
        )
        with pytest.raises(PietQLExecutionError):
            executor.execute(
                "SELECT layer.riverlines FROM Fig1 | AGGREGATE sum(income)"
            )

    def test_missing_value_raises(self, executor):
        from repro.errors import InstanceError

        with pytest.raises(InstanceError):
            executor.execute(
                "SELECT layer.neighborhoods FROM Fig1 "
                "| AGGREGATE sum(nonexistent)"
            )
