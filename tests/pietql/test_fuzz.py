"""Fuzz tests: the Piet-QL front end never crashes, only raises PietQLError."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PietQLError
from repro.pietql import parse, tokenize


class TestLexerFuzz:
    @given(st.text(max_size=200))
    @settings(max_examples=200)
    def test_tokenize_total(self, text):
        """Tokenization either succeeds or raises PietQLError — never
        anything else."""
        try:
            tokens = tokenize(text)
        except PietQLError:
            return
        assert tokens[-1].type.name == "EOF"

    @given(
        st.text(
            alphabet=st.characters(
                whitelist_categories=("Lu", "Ll", "Nd"),
                whitelist_characters=" .,;|()='\"_\n",
            ),
            max_size=200,
        )
    )
    @settings(max_examples=200)
    def test_parse_total_on_token_soup(self, text):
        try:
            parse(text)
        except PietQLError:
            pass

    @given(st.lists(st.sampled_from([
        "SELECT", "FROM", "WHERE", "AND", "layer", ".", ",", "(", ")",
        "|", "COUNT", "OBJECTS", "SAMPLES", "THROUGH", "RESULT",
        "DURING", "=", "'x'", "cities", "rivers", "intersection",
        "contains", "sublevel", "AGGREGATE", "sum", "BY",
    ]), max_size=30).map(" ".join))
    @settings(max_examples=300)
    def test_parse_total_on_keyword_shuffles(self, text):
        try:
            query = parse(text)
        except PietQLError:
            return
        # Anything that parses must be a structurally valid query.
        assert query.geometric.select
