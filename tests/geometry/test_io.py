"""Tests for WKT / GeoJSON interchange."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import Point, Polygon, Polyline, Segment
from repro.geometry.io import from_geojson, from_wkt, to_geojson, to_wkt


def holed_polygon() -> Polygon:
    return Polygon(
        [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)],
        holes=[[Point(4, 4), Point(6, 4), Point(6, 6), Point(4, 6)]],
    )


class TestWKT:
    def test_point(self):
        assert to_wkt(Point(1.5, -2)) == "POINT (1.5 -2)"
        parsed = from_wkt("POINT (1.5 -2)")
        assert parsed == Point(1.5, -2.0)

    def test_segment_serializes_as_linestring(self):
        wkt = to_wkt(Segment(Point(0, 0), Point(1, 1)))
        assert wkt == "LINESTRING (0 0, 1 1)"

    def test_polyline_roundtrip(self):
        line = Polyline([Point(0, 0), Point(4, 0), Point(4, 3)])
        parsed = from_wkt(to_wkt(line))
        assert isinstance(parsed, Polyline)
        assert parsed.vertices == line.vertices

    def test_polygon_roundtrip_with_hole(self):
        polygon = holed_polygon()
        parsed = from_wkt(to_wkt(polygon))
        assert isinstance(parsed, Polygon)
        assert parsed.area == pytest.approx(polygon.area)
        assert len(parsed.holes) == 1

    def test_closing_vertex_in_wkt(self):
        wkt = to_wkt(Polygon.rectangle(0, 0, 1, 1))
        body = wkt[len("POLYGON ((") : -2]
        pairs = body.split(", ")
        assert pairs[0] == pairs[-1]  # ring closed per WKT convention

    def test_parse_case_insensitive_and_whitespace(self):
        parsed = from_wkt("  point( 3 4 ) ")
        assert parsed == Point(3.0, 4.0)

    def test_parse_errors(self):
        with pytest.raises(GeometryError):
            from_wkt("CIRCLE (0 0, 5)")
        with pytest.raises(GeometryError):
            from_wkt("POINT (1)")
        with pytest.raises(GeometryError):
            from_wkt("POLYGON ()")

    def test_unsupported_type(self):
        with pytest.raises(GeometryError):
            to_wkt("not a geometry")

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-1000, max_value=1000),
                st.integers(min_value=-1000, max_value=1000),
            ),
            min_size=2,
            max_size=10,
            unique=True,
        )
    )
    def test_polyline_roundtrip_property(self, coords):
        line = Polyline([Point(float(x), float(y)) for x, y in coords])
        parsed = from_wkt(to_wkt(line))
        assert parsed.vertices == line.vertices


class TestGeoJSON:
    def test_point_roundtrip(self):
        data = to_geojson(Point(1, 2))
        assert data == {"type": "Point", "coordinates": [1.0, 2.0]}
        assert from_geojson(data) == Point(1.0, 2.0)

    def test_linestring_roundtrip(self):
        line = Polyline([Point(0, 0), Point(1, 2)])
        parsed = from_geojson(to_geojson(line))
        assert isinstance(parsed, Polyline)
        assert parsed.vertices == line.vertices

    def test_segment_as_linestring(self):
        data = to_geojson(Segment(Point(0, 0), Point(1, 1)))
        assert data["type"] == "LineString"
        assert len(data["coordinates"]) == 2

    def test_polygon_roundtrip_with_hole(self):
        polygon = holed_polygon()
        parsed = from_geojson(to_geojson(polygon))
        assert parsed.area == pytest.approx(polygon.area)
        assert len(parsed.holes) == 1

    def test_ring_closure_in_geojson(self):
        data = to_geojson(Polygon.rectangle(0, 0, 1, 1))
        ring = data["coordinates"][0]
        assert ring[0] == ring[-1]

    def test_malformed(self):
        with pytest.raises(GeometryError):
            from_geojson({"type": "Point"})
        with pytest.raises(GeometryError):
            from_geojson({"type": "MultiPolygon", "coordinates": []})
        with pytest.raises(GeometryError):
            from_geojson({"type": "Polygon", "coordinates": []})

    def test_unsupported_type(self):
        with pytest.raises(GeometryError):
            to_geojson(42)
