"""Tests for Polyline."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import Point, Polyline, Segment

coords = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)
point_st = st.builds(Point, coords, coords)
polyline_st = st.lists(point_st, min_size=2, max_size=8, unique=True).map(Polyline)


def l_shape() -> Polyline:
    return Polyline([Point(0, 0), Point(4, 0), Point(4, 3)])


class TestConstruction:
    def test_needs_two_vertices(self):
        with pytest.raises(GeometryError):
            Polyline([Point(0, 0)])

    def test_len_and_iter(self):
        line = l_shape()
        assert len(line) == 3
        assert list(line) == [Point(0, 0), Point(4, 0), Point(4, 3)]

    def test_segments(self):
        assert l_shape().segments() == [
            Segment(Point(0, 0), Point(4, 0)),
            Segment(Point(4, 0), Point(4, 3)),
        ]

    def test_is_closed(self):
        assert not l_shape().is_closed
        ring = Polyline([Point(0, 0), Point(1, 0), Point(0, 1), Point(0, 0)])
        assert ring.is_closed


class TestMeasures:
    def test_length(self):
        assert l_shape().length == pytest.approx(7)

    def test_bbox(self):
        box = l_shape().bbox
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 4, 3)

    def test_point_at_distance(self):
        line = l_shape()
        assert line.point_at_distance(0) == Point(0, 0)
        assert line.point_at_distance(4) == Point(4, 0)
        assert line.point_at_distance(5.5) == Point(4, 1.5)
        assert line.point_at_distance(100) == Point(4, 3)
        assert line.point_at_distance(-1) == Point(0, 0)

    def test_point_at_fraction(self):
        line = l_shape()
        assert line.point_at_fraction(0.5) == Point(3.5, 0)

    @given(polyline_st, st.floats(min_value=0, max_value=1))
    def test_point_at_fraction_within_bbox(self, line, f):
        p = line.point_at_fraction(f)
        assert line.bbox.expanded(1e-6).contains_point(p)

    @given(polyline_st)
    def test_length_at_least_endpoint_distance(self, line):
        direct = line.vertices[0].distance_to(line.vertices[-1])
        assert line.length >= direct - 1e-9


class TestPredicates:
    def test_contains_vertex_and_interior(self):
        line = l_shape()
        assert line.contains_point(Point(4, 0))
        assert line.contains_point(Point(2, 0))
        assert not line.contains_point(Point(2, 1))

    def test_distance_to_point(self):
        assert l_shape().distance_to_point(Point(2, 2)) == pytest.approx(2)
        assert l_shape().distance_to_point(Point(5, 3)) == pytest.approx(1)

    def test_intersects_segment(self):
        line = l_shape()
        assert line.intersects_segment(Segment(Point(2, -1), Point(2, 1)))
        assert not line.intersects_segment(Segment(Point(0, 1), Point(3, 2)))

    def test_intersects_polyline(self):
        line = l_shape()
        crossing = Polyline([Point(3, -1), Point(3, 5)])
        parallel = Polyline([Point(0, 1), Point(3, 1)])
        assert line.intersects_polyline(crossing)
        assert not line.intersects_polyline(parallel)

    def test_intersection_points_dedupes(self):
        line = Polyline([Point(0, 0), Point(2, 0), Point(4, 0)])
        # Vertical segment through the shared vertex (2,0) touches both
        # chain segments; the crossing must be reported once.
        hits = line.intersection_points(Segment(Point(2, -1), Point(2, 1)))
        assert len(hits) == 1
        assert hits[0].x == pytest.approx(2)

    def test_intersection_points_multiple(self):
        zigzag = Polyline([Point(0, 1), Point(1, -1), Point(2, 1), Point(3, -1)])
        hits = zigzag.intersection_points(Segment(Point(-1, 0), Point(4, 0)))
        assert len(hits) == 3


class TestResampleSimplify:
    def test_resample_preserves_endpoints(self):
        line = l_shape()
        resampled = line.resampled(8)
        assert len(resampled) == 8
        assert resampled.vertices[0] == line.vertices[0]
        assert resampled.vertices[-1] == line.vertices[-1]

    def test_resample_too_few_points_raises(self):
        with pytest.raises(GeometryError):
            l_shape().resampled(1)

    def test_resample_zero_length_raises(self):
        line = Polyline([Point(0, 0), Point(0, 0)])
        with pytest.raises(GeometryError):
            line.resampled(4)

    def test_simplify_drops_collinear(self):
        line = Polyline([Point(0, 0), Point(1, 0), Point(2, 0), Point(3, 0)])
        assert len(line.simplified(0.0)) == 2

    def test_simplify_keeps_real_corner(self):
        line = Polyline([Point(0, 0), Point(2, 2), Point(4, 0)])
        assert len(line.simplified(0.5)) == 3

    def test_simplify_removes_small_wiggle(self):
        line = Polyline([Point(0, 0), Point(2, 0.01), Point(4, 0)])
        assert len(line.simplified(0.5)) == 2

    def test_simplify_negative_tolerance_raises(self):
        with pytest.raises(GeometryError):
            l_shape().simplified(-1)

    @given(polyline_st, st.floats(min_value=0, max_value=10))
    def test_simplified_never_longer(self, line, tol):
        assert line.simplified(tol).length <= line.length + 1e-9
