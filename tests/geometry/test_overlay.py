"""Tests for cross-geometry predicates and layer overlay precomputation."""

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    LayerOverlay,
    Point,
    Polygon,
    Polyline,
    Segment,
    geometries_intersect,
    geometry_bbox,
    geometry_contains,
)


def city_layers():
    """Three tiny layers mirroring the paper's Section 5 example."""
    cities = {
        "antwerp": Polygon.rectangle(0, 0, 10, 10),
        "brussels": Polygon.rectangle(20, 0, 30, 10),
        "ghent": Polygon.rectangle(0, 20, 10, 30),
    }
    rivers = {
        # Crosses antwerp and brussels, misses ghent.
        "scheldt": Polyline([Point(-5, 5), Point(15, 5), Point(35, 5)]),
    }
    stores = {
        "store1": Point(5, 5),      # in antwerp
        "store2": Point(25, 5),     # in brussels
        "store3": Point(50, 50),    # nowhere
    }
    return {"cities": cities, "rivers": rivers, "stores": stores}


class TestGeometryDispatch:
    def test_point_point(self):
        assert geometries_intersect(Point(1, 1), Point(1, 1))
        assert not geometries_intersect(Point(1, 1), Point(1, 2))

    def test_point_polygon_both_orders(self):
        square = Polygon.rectangle(0, 0, 1, 1)
        assert geometries_intersect(Point(0.5, 0.5), square)
        assert geometries_intersect(square, Point(0.5, 0.5))
        assert not geometries_intersect(square, Point(5, 5))

    def test_point_polyline(self):
        line = Polyline([Point(0, 0), Point(2, 0)])
        assert geometries_intersect(Point(1, 0), line)
        assert not geometries_intersect(Point(1, 1), line)

    def test_segment_segment(self):
        a = Segment(Point(0, 0), Point(2, 2))
        b = Segment(Point(0, 2), Point(2, 0))
        assert geometries_intersect(a, b)

    def test_segment_polygon(self):
        square = Polygon.rectangle(0, 0, 1, 1)
        assert geometries_intersect(Segment(Point(-1, 0.5), Point(2, 0.5)), square)
        assert not geometries_intersect(Segment(Point(5, 5), Point(6, 6)), square)

    def test_polyline_polygon(self):
        square = Polygon.rectangle(0, 0, 1, 1)
        assert geometries_intersect(
            Polyline([Point(-1, 0.5), Point(2, 0.5)]), square
        )

    def test_polygon_polygon(self):
        a = Polygon.rectangle(0, 0, 2, 2)
        b = Polygon.rectangle(1, 1, 3, 3)
        assert geometries_intersect(a, b)

    def test_unsupported_type_raises(self):
        with pytest.raises(GeometryError):
            geometries_intersect("not a geometry", Point(0, 0))

    def test_bbox_of_point(self):
        box = geometry_bbox(Point(3, 4))
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (3, 4, 3, 4)

    def test_bbox_unsupported_raises(self):
        with pytest.raises(GeometryError):
            geometry_bbox(42)


class TestContainsDispatch:
    def test_polygon_contains_point(self):
        assert geometry_contains(Polygon.rectangle(0, 0, 1, 1), Point(0.5, 0.5))

    def test_polygon_contains_segment(self):
        square = Polygon.rectangle(0, 0, 10, 10)
        assert geometry_contains(square, Segment(Point(1, 1), Point(9, 9)))
        assert not geometry_contains(square, Segment(Point(5, 5), Point(15, 5)))

    def test_polygon_contains_polyline(self):
        square = Polygon.rectangle(0, 0, 10, 10)
        inside = Polyline([Point(1, 1), Point(5, 5), Point(9, 1)])
        leaving = Polyline([Point(1, 1), Point(15, 1)])
        assert geometry_contains(square, inside)
        assert not geometry_contains(square, leaving)

    def test_polygon_contains_polygon(self):
        outer = Polygon.rectangle(0, 0, 10, 10)
        inner = Polygon.rectangle(1, 1, 2, 2)
        assert geometry_contains(outer, inner)
        assert not geometry_contains(inner, outer)

    def test_segment_contains_point_only(self):
        seg = Segment(Point(0, 0), Point(2, 2))
        assert geometry_contains(seg, Point(1, 1))
        assert not geometry_contains(seg, Segment(Point(0, 0), Point(1, 1)))

    def test_point_contains_point(self):
        assert geometry_contains(Point(1, 1), Point(1, 1))
        assert not geometry_contains(Point(1, 1), Point(2, 2))


class TestLayerOverlay:
    def test_empty_layers_rejected(self):
        with pytest.raises(GeometryError):
            LayerOverlay({})

    def test_layer_access(self):
        overlay = LayerOverlay(city_layers())
        assert overlay.layer_names == ["cities", "rivers", "stores"]
        assert "antwerp" in overlay.layer("cities")
        with pytest.raises(GeometryError):
            overlay.layer("nope")
        with pytest.raises(GeometryError):
            overlay.geometry("cities", "nope")

    def test_river_crosses_cities(self):
        overlay = LayerOverlay(city_layers())
        pairs = overlay.pairs("rivers", "cities", "intersects")
        assert pairs == {("scheldt", "antwerp"), ("scheldt", "brussels")}

    def test_cities_contain_stores(self):
        overlay = LayerOverlay(city_layers())
        pairs = overlay.pairs("cities", "stores", "contains")
        assert pairs == {("antwerp", "store1"), ("brussels", "store2")}

    def test_within_is_converse_of_contains(self):
        overlay = LayerOverlay(city_layers())
        within = overlay.pairs("stores", "cities", "within")
        contains = overlay.pairs("cities", "stores", "contains")
        assert within == {(b, a) for a, b in contains}

    def test_related(self):
        overlay = LayerOverlay(city_layers())
        assert overlay.related("rivers", "scheldt", "cities") == {
            "antwerp",
            "brussels",
        }
        assert overlay.related("cities", "ghent", "stores", "contains") == set()

    def test_unknown_predicate_raises(self):
        overlay = LayerOverlay(city_layers())
        with pytest.raises(GeometryError):
            overlay.pairs("cities", "rivers", "touches")

    def test_caching(self):
        overlay = LayerOverlay(city_layers())
        assert overlay.cached_relations == 0
        overlay.pairs("rivers", "cities")
        assert overlay.cached_relations == 1
        overlay.pairs("rivers", "cities")
        assert overlay.cached_relations == 1

    def test_precompute_all(self):
        overlay = LayerOverlay(city_layers())
        count = overlay.precompute_all()
        # 3 layers -> 6 ordered pairs x 3 predicates.
        assert count == 18
        assert overlay.cached_relations == 18

    def test_locate_point(self):
        overlay = LayerOverlay(city_layers())
        assert overlay.locate_point("cities", Point(5, 5)) == {"antwerp"}
        assert overlay.locate_point("cities", Point(15, 15)) == set()

    def test_locate_point_on_shared_boundary(self):
        layers = {
            "zones": {
                "left": Polygon.rectangle(0, 0, 1, 1),
                "right": Polygon.rectangle(1, 0, 2, 1),
            }
        }
        overlay = LayerOverlay(layers)
        assert overlay.locate_point("zones", Point(1, 0.5)) == {"left", "right"}

    def test_locate_point_empty_layer(self):
        overlay = LayerOverlay({"empty": {}, "full": {"p": Point(0, 0)}})
        assert overlay.locate_point("empty", Point(0, 0)) == set()
