"""Malformed-input tests for geometry interchange (WKT / GeoJSON).

The parsers must reject bad input with a typed
:class:`~repro.errors.GeometryError`; raw ``ValueError`` /
``TypeError`` / ``IndexError`` from ``float()`` calls, tuple unpacking
or list indexing must never escape.
"""

from __future__ import annotations

import pytest

from repro.errors import GeometryError
from repro.geometry.io import from_geojson, from_wkt


class TestMalformedWkt:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "CIRCLE (1 2)",
            "POINT 1 2",
            "not wkt at all",
        ],
        ids=["empty", "unknown-kind", "missing-parens", "garbage"],
    )
    def test_unparseable_shapes(self, text):
        with pytest.raises(GeometryError, match="unparseable WKT"):
            from_wkt(text)

    def test_non_numeric_point_coordinate(self):
        with pytest.raises(GeometryError, match="non-numeric"):
            from_wkt("POINT (a b)")

    def test_non_numeric_linestring_coordinate(self):
        with pytest.raises(GeometryError, match="non-numeric"):
            from_wkt("LINESTRING (0 0, x 1)")

    def test_point_with_two_pairs(self):
        with pytest.raises(GeometryError, match="exactly one"):
            from_wkt("POINT (1 2, 3 4)")

    def test_coordinate_pair_with_three_parts(self):
        with pytest.raises(GeometryError, match="coordinate pair"):
            from_wkt("LINESTRING (0 0 0, 1 1 1)")

    def test_polygon_without_rings(self):
        with pytest.raises(GeometryError, match="without rings"):
            from_wkt("POLYGON (1 2)")


class TestMalformedGeoJson:
    @pytest.mark.parametrize(
        "data",
        [
            {},
            {"type": "Point"},
            {"coordinates": [1, 2]},
            None,
            "a string",
        ],
        ids=["empty", "no-coords", "no-type", "none", "string"],
    )
    def test_missing_structure(self, data):
        with pytest.raises(GeometryError, match="malformed GeoJSON"):
            from_geojson(data)

    def test_unsupported_type(self):
        with pytest.raises(GeometryError, match="unsupported"):
            from_geojson({"type": "MultiPolygon", "coordinates": []})

    def test_point_with_non_numeric_coordinate(self):
        with pytest.raises(GeometryError, match="malformed GeoJSON Point"):
            from_geojson({"type": "Point", "coordinates": ["a", 2]})

    def test_point_with_too_few_coordinates(self):
        with pytest.raises(GeometryError, match="malformed GeoJSON Point"):
            from_geojson({"type": "Point", "coordinates": [1.0]})

    def test_linestring_with_ragged_pairs(self):
        with pytest.raises(
            GeometryError, match="malformed GeoJSON LineString"
        ):
            from_geojson(
                {"type": "LineString", "coordinates": [[0, 0], [1]]}
            )

    def test_linestring_with_non_numeric(self):
        with pytest.raises(
            GeometryError, match="malformed GeoJSON LineString"
        ):
            from_geojson(
                {"type": "LineString", "coordinates": [[0, 0], ["x", 1]]}
            )

    def test_polygon_without_rings(self):
        with pytest.raises(GeometryError, match="without rings"):
            from_geojson({"type": "Polygon", "coordinates": []})

    def test_polygon_with_non_numeric_ring(self):
        with pytest.raises(GeometryError, match="malformed GeoJSON Polygon"):
            from_geojson(
                {
                    "type": "Polygon",
                    "coordinates": [[[0, 0], [1, 0], ["?", 1]]],
                }
            )
