"""Tests for Point and BoundingBox."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import BoundingBox, Point

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
point_st = st.builds(Point, coords, coords)


class TestPoint:
    def test_as_tuple(self):
        assert Point(1.5, -2.0).as_tuple() == (1.5, -2.0)

    def test_distance_345(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_squared_distance_exact(self):
        assert Point(0, 0).squared_distance_to(Point(3, 4)) == 25

    def test_translation(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_iteration_unpacks(self):
        x, y = Point(7, 8)
        assert (x, y) == (7, 8)

    def test_equality_and_hash(self):
        assert Point(1, 2) == Point(1, 2)
        assert hash(Point(1, 2)) == hash(Point(1, 2))
        assert Point(1, 2) != Point(2, 1)

    def test_ordering_is_lexicographic(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 1) < Point(1, 2)

    @given(point_st, point_st)
    def test_distance_symmetry(self, p, q):
        assert p.distance_to(q) == pytest.approx(q.distance_to(p))

    @given(point_st, point_st, point_st)
    def test_triangle_inequality(self, p, q, r):
        assert p.distance_to(r) <= p.distance_to(q) + q.distance_to(r) + 1e-6

    @given(point_st)
    def test_distance_to_self_is_zero(self, p):
        assert p.distance_to(p) == 0.0


class TestBoundingBox:
    def test_rejects_inverted(self):
        with pytest.raises(GeometryError):
            BoundingBox(1, 0, 0, 1)

    def test_from_points(self):
        box = BoundingBox.from_points([Point(1, 5), Point(-2, 3), Point(4, 4)])
        assert box == BoundingBox(-2, 3, 4, 5)

    def test_from_empty_raises(self):
        with pytest.raises(GeometryError):
            BoundingBox.from_points([])

    def test_measures(self):
        box = BoundingBox(0, 0, 4, 2)
        assert box.width == 4
        assert box.height == 2
        assert box.area == 8
        assert box.center == Point(2, 1)

    def test_contains_point_closed(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.contains_point(Point(0, 0))
        assert box.contains_point(Point(1, 1))
        assert box.contains_point(Point(0.5, 0.5))
        assert not box.contains_point(Point(1.001, 0.5))

    def test_contains_box(self):
        outer = BoundingBox(0, 0, 10, 10)
        assert outer.contains_box(BoundingBox(1, 1, 9, 9))
        assert outer.contains_box(outer)
        assert not outer.contains_box(BoundingBox(5, 5, 11, 9))

    def test_intersects_touching_edge(self):
        assert BoundingBox(0, 0, 1, 1).intersects(BoundingBox(1, 0, 2, 1))

    def test_intersects_disjoint(self):
        assert not BoundingBox(0, 0, 1, 1).intersects(BoundingBox(2, 2, 3, 3))

    def test_union(self):
        union = BoundingBox(0, 0, 1, 1).union(BoundingBox(2, -1, 3, 0.5))
        assert union == BoundingBox(0, -1, 3, 1)

    def test_expanded(self):
        assert BoundingBox(0, 0, 1, 1).expanded(1) == BoundingBox(-1, -1, 2, 2)

    def test_expanded_negative_too_large_raises(self):
        with pytest.raises(GeometryError):
            BoundingBox(0, 0, 1, 1).expanded(-2)

    def test_corners_ccw(self):
        corners = BoundingBox(0, 0, 2, 1).corners()
        assert corners == (Point(0, 0), Point(2, 0), Point(2, 1), Point(0, 1))

    @given(st.lists(point_st, min_size=1, max_size=20))
    def test_from_points_covers_all(self, pts):
        box = BoundingBox.from_points(pts)
        assert all(box.contains_point(p) for p in pts)

    @given(st.lists(point_st, min_size=2, max_size=10))
    def test_union_is_commutative_and_covering(self, pts):
        a = BoundingBox.from_points(pts[: len(pts) // 2 + 1])
        b = BoundingBox.from_points(pts[len(pts) // 2 :])
        assert a.union(b) == b.union(a)
        assert a.union(b).contains_box(a)
        assert a.union(b).contains_box(b)
