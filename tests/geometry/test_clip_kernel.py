"""The vectorized clip kernel is *exact*: bit-equal to the scalar path.

The kernel's contract is exactness by construction — status 0/1 answers
are only given to segments provably far from any boundary, and
everything else falls back to ``Polygon.clip_segment``.  These tests pin
that contract with randomized and property-based equivalence against the
scalar geometry, cross-check the numba-compilable loop form against the
numpy implementation, and cover the backend feature flag (numba degrades
to numpy when absent, ``scalar`` disables classification entirely).
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry import kernels
from repro.geometry.kernels import (
    classify_segments,
    clip_segments_batch,
    kernel_backend,
    polygon_edge_arrays,
    segments_dwell,
    segments_fully_inside,
    segments_intersect,
    set_kernel_backend,
)
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.segment import Segment


@pytest.fixture(autouse=True)
def reset_backend():
    yield
    set_kernel_backend("auto")


SQUARE = Polygon([Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)])
HOLED = Polygon(
    [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)],
    holes=[[Point(4, 4), Point(6, 4), Point(6, 6), Point(4, 6)]],
)
DIAMOND = Polygon([Point(5, -1), Point(11, 5), Point(5, 11), Point(-1, 5)])
POLYGONS = [SQUARE, HOLED, DIAMOND]


def random_segments(n, rng, lo=-3.0, hi=13.0):
    x0 = rng.uniform(lo, hi, n)
    y0 = rng.uniform(lo, hi, n)
    x1 = rng.uniform(lo, hi, n)
    y1 = rng.uniform(lo, hi, n)
    # Mix in axis-aligned, degenerate, boundary-hugging and
    # vertex-touching segments — the cases a sloppy kernel gets wrong.
    x1[::7] = x0[::7]
    y1[::11] = y0[::11]
    x0[::13], y0[::13] = 0.0, rng.uniform(lo, hi, n)[::13]
    x0[::17], y0[::17] = 10.0, 10.0
    x1[5::17], y1[5::17] = 0.0, 0.0
    return x0, y0, x1, y1


def scalar_clips(polygon, x0, y0, x1, y1):
    return [
        polygon.clip_segment(
            Segment(Point(float(a), float(b)), Point(float(c), float(d)))
        )
        for a, b, c, d in zip(x0, y0, x1, y1)
    ]


class TestExactEquivalence:
    @pytest.mark.parametrize("polygon", POLYGONS, ids=["square", "holed", "diamond"])
    def test_clips_bit_equal_to_scalar(self, polygon):
        rng = np.random.default_rng(7)
        x0, y0, x1, y1 = random_segments(2000, rng)
        batch = clip_segments_batch(polygon, x0, y0, x1, y1)
        assert batch == scalar_clips(polygon, x0, y0, x1, y1)

    @pytest.mark.parametrize("polygon", POLYGONS, ids=["square", "holed", "diamond"])
    def test_dwell_and_masks_match_scalar(self, polygon):
        rng = np.random.default_rng(11)
        x0, y0, x1, y1 = random_segments(1500, rng)
        dt = rng.uniform(0.1, 3.0, 1500)
        dwell, hits = segments_dwell(polygon, x0, y0, x1, y1, dt)
        inside = segments_fully_inside(polygon, x0, y0, x1, y1)
        intersects = segments_intersect(polygon, x0, y0, x1, y1)
        for i in range(1500):
            seg = Segment(
                Point(float(x0[i]), float(y0[i])),
                Point(float(x1[i]), float(y1[i])),
            )
            clips = polygon.clip_segment(seg)
            expected = 0.0
            for s0, s1 in clips:
                expected += (s1 - s0) * float(dt[i])
            assert dwell[i] == expected  # bitwise: same expression tree
            assert hits[i] == polygon.intersects_segment(seg)
            assert inside[i] == (clips == [(0.0, 1.0)])
            assert intersects[i] == polygon.intersects_segment(seg)

    def test_status_codes_are_sound(self):
        """Status 1 implies the scalar clip is the full segment; 0 none."""
        rng = np.random.default_rng(13)
        x0, y0, x1, y1 = random_segments(3000, rng)
        status = classify_segments(HOLED, x0, y0, x1, y1)
        assert set(np.unique(status)) <= {0, 1, 2}
        clips = scalar_clips(HOLED, x0, y0, x1, y1)
        for i, s in enumerate(status):
            if s == 1:
                assert clips[i] == [(0.0, 1.0)]
            elif s == 0:
                assert clips[i] == []

    @settings(max_examples=200, deadline=None)
    @given(
        st.tuples(
            *(
                st.floats(min_value=-4, max_value=14, allow_nan=False)
                for _ in range(4)
            )
        )
    )
    def test_single_segment_property(self, coords):
        a, b, c, d = coords
        seg = Segment(Point(a, b), Point(c, d))
        for polygon in POLYGONS:
            batch = clip_segments_batch(
                polygon,
                np.array([a]), np.array([b]), np.array([c]), np.array([d]),
            )
            assert batch == [polygon.clip_segment(seg)]


class TestLoopFormMatchesNumpy:
    @pytest.mark.parametrize("polygon", POLYGONS, ids=["square", "holed", "diamond"])
    def test_statuses_identical(self, polygon):
        rng = np.random.default_rng(17)
        x0, y0, x1, y1 = random_segments(2500, rng)
        edges = polygon_edge_arrays(polygon)
        via_numpy = kernels._classify_chunk_numpy(x0, y0, x1, y1, edges)
        via_loops = kernels._classify_loops(
            x0, y0, x1, y1,
            edges.ax, edges.ay, edges.bx, edges.by, edges.ring_offsets,
            edges.bminx, edges.bminy, edges.bmaxx, edges.bmaxy,
            edges.tolerance,
        )
        np.testing.assert_array_equal(via_numpy, via_loops)


class TestBackendFlag:
    def test_scalar_backend_still_exact(self):
        assert set_kernel_backend("scalar") == "scalar"
        rng = np.random.default_rng(19)
        x0, y0, x1, y1 = random_segments(300, rng)
        status = classify_segments(SQUARE, x0, y0, x1, y1)
        assert (status == 2).all()  # everything takes the scalar path
        batch = clip_segments_batch(SQUARE, x0, y0, x1, y1)
        assert batch == scalar_clips(SQUARE, x0, y0, x1, y1)

    def test_numba_degrades_to_numpy_when_missing(self):
        effective = set_kernel_backend("numba")
        try:
            import numba  # noqa: F401
        except ImportError:
            assert effective == "numpy"
        else:
            assert effective == "numba"

    def test_auto_resolves_to_numpy(self):
        assert set_kernel_backend("auto") in ("numpy",)

    def test_unknown_backend_raises(self):
        with pytest.raises(GeometryError):
            set_kernel_backend("gpu")

    def test_env_variable_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLIP_KERNEL", "scalar")
        assert set_kernel_backend(None) == "scalar"
        monkeypatch.delenv("REPRO_CLIP_KERNEL")
        assert set_kernel_backend(None) == kernel_backend() != "scalar"


class TestEdgeArrayCache:
    def test_cached_on_first_use(self):
        polygon = Polygon.rectangle(0, 0, 5, 5)
        assert getattr(polygon, "_edge_arrays", None) is None
        edges = polygon_edge_arrays(polygon)
        assert polygon_edge_arrays(polygon) is edges

    def test_pickle_stays_lean_and_functional(self):
        polygon = Polygon.rectangle(0, 0, 5, 5)
        polygon_edge_arrays(polygon)  # populate the cache
        clone = pickle.loads(pickle.dumps(polygon))
        # The cache is rebuilt on demand, not shipped in the pickle.
        assert getattr(clone, "_edge_arrays", None) is None
        assert clone == polygon
        seg = Segment(Point(1, 1), Point(4, 4))
        assert clone.clip_segment(seg) == polygon.clip_segment(seg)
        x = np.array([2.0])
        y = np.array([2.0])
        assert clip_segments_batch(clone, x, y, x + 1, y + 1) == [[(0.0, 1.0)]]
