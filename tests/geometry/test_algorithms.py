"""Tests for convex hull, triangulation, clipping and intersection areas."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    Point,
    Polygon,
    Segment,
    convex_hull,
    is_convex,
    polygon_intersection_area,
    polyline_length_inside,
    segment_intersections,
    triangulate,
)
from repro.geometry.algorithms import clip_ring_convex, triangle_area

coords = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)
point_st = st.builds(Point, coords, coords)


class TestConvexHull:
    def test_square_with_interior_point(self):
        pts = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2), Point(1, 1)]
        hull = convex_hull(pts)
        assert len(hull) == 4
        assert Point(1, 1) not in hull

    def test_collinear_raises(self):
        with pytest.raises(GeometryError):
            convex_hull([Point(0, 0), Point(1, 1), Point(2, 2)])

    def test_too_few_raises(self):
        with pytest.raises(GeometryError):
            convex_hull([Point(0, 0), Point(1, 1)])

    def test_collinear_boundary_points_dropped(self):
        pts = [Point(0, 0), Point(1, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        hull = convex_hull(pts)
        assert Point(1, 0) not in hull

    # Integer lattice points keep the containment check itself exact; float
    # ray casting cannot decide points subnormally close to the boundary.
    @given(
        st.lists(
            st.builds(
                Point,
                st.integers(min_value=-100, max_value=100).map(float),
                st.integers(min_value=-100, max_value=100).map(float),
            ),
            min_size=3,
            max_size=30,
            unique=True,
        )
    )
    def test_hull_is_convex_and_contains_points(self, pts):
        try:
            hull = convex_hull(pts)
        except GeometryError:
            return  # collinear input
        poly = Polygon(hull)
        assert is_convex(poly)
        for p in pts:
            assert poly.contains_point(p)


class TestConvexity:
    def test_square_is_convex(self):
        assert is_convex(Polygon.rectangle(0, 0, 1, 1))

    def test_l_shape_is_not(self):
        l_poly = Polygon(
            [
                Point(0, 0),
                Point(2, 0),
                Point(2, 1),
                Point(1, 1),
                Point(1, 2),
                Point(0, 2),
            ]
        )
        assert not is_convex(l_poly)

    def test_holes_not_convex(self):
        poly = Polygon(
            [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)],
            holes=[[Point(4, 4), Point(6, 4), Point(6, 6), Point(4, 6)]],
        )
        assert not is_convex(poly)


class TestTriangulation:
    def test_square_two_triangles(self):
        tris = triangulate(Polygon.rectangle(0, 0, 1, 1))
        assert len(tris) == 2
        assert sum(triangle_area(*t) for t in tris) == pytest.approx(1)

    def test_concave_polygon(self):
        l_poly = Polygon(
            [
                Point(0, 0),
                Point(2, 0),
                Point(2, 1),
                Point(1, 1),
                Point(1, 2),
                Point(0, 2),
            ]
        )
        tris = triangulate(l_poly)
        assert len(tris) == 4
        assert sum(triangle_area(*t) for t in tris) == pytest.approx(3)

    def test_clockwise_input_handled(self):
        cw = Polygon([Point(0, 0), Point(0, 1), Point(1, 1), Point(1, 0)])
        tris = triangulate(cw)
        assert sum(triangle_area(*t) for t in tris) == pytest.approx(1)

    def test_holes_rejected(self):
        poly = Polygon(
            [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)],
            holes=[[Point(4, 4), Point(6, 4), Point(6, 6), Point(4, 6)]],
        )
        with pytest.raises(GeometryError):
            triangulate(poly)

    @settings(max_examples=25)
    @given(st.integers(min_value=3, max_value=12), st.floats(min_value=0.5, max_value=10))
    def test_regular_polygon_area_preserved(self, sides, radius):
        poly = Polygon.regular(Point(0, 0), radius, sides)
        tris = triangulate(poly)
        assert len(tris) == sides - 2
        assert sum(triangle_area(*t) for t in tris) == pytest.approx(
            poly.area, rel=1e-9
        )


class TestClipping:
    def test_clip_triangle_to_square(self):
        tri = [Point(-1, 0), Point(1, 0), Point(0, 2)]
        square = Polygon.rectangle(0, 0, 2, 2)
        clipped = clip_ring_convex(tri, square)
        poly = Polygon(clipped)
        # Clipping keeps the sub-triangle (0,0), (1,0), (0,2) of area 1.
        assert poly.area == pytest.approx(1.0)

    def test_clip_fully_inside(self):
        tri = [Point(0.1, 0.1), Point(0.5, 0.1), Point(0.3, 0.5)]
        square = Polygon.rectangle(0, 0, 1, 1)
        clipped = clip_ring_convex(tri, square)
        assert Polygon(clipped).area == pytest.approx(
            Polygon(tri).area
        )

    def test_clip_fully_outside(self):
        tri = [Point(5, 5), Point(6, 5), Point(5, 6)]
        square = Polygon.rectangle(0, 0, 1, 1)
        assert clip_ring_convex(tri, square) == []

    def test_concave_clip_rejected(self):
        l_poly = Polygon(
            [
                Point(0, 0),
                Point(2, 0),
                Point(2, 1),
                Point(1, 1),
                Point(1, 2),
                Point(0, 2),
            ]
        )
        with pytest.raises(GeometryError):
            clip_ring_convex([Point(0, 0), Point(1, 0), Point(0, 1)], l_poly)


class TestIntersectionArea:
    def test_overlapping_squares(self):
        a = Polygon.rectangle(0, 0, 2, 2)
        b = Polygon.rectangle(1, 1, 3, 3)
        assert polygon_intersection_area(a, b) == pytest.approx(1)

    def test_disjoint(self):
        a = Polygon.rectangle(0, 0, 1, 1)
        b = Polygon.rectangle(5, 5, 6, 6)
        assert polygon_intersection_area(a, b) == 0.0

    def test_contained(self):
        outer = Polygon.rectangle(0, 0, 10, 10)
        inner = Polygon.rectangle(2, 2, 4, 4)
        assert polygon_intersection_area(outer, inner) == pytest.approx(4)

    def test_concave_subject_convex_clip(self):
        l_poly = Polygon(
            [
                Point(0, 0),
                Point(2, 0),
                Point(2, 1),
                Point(1, 1),
                Point(1, 2),
                Point(0, 2),
            ]
        )
        clip = Polygon.rectangle(0, 0, 2, 2)
        assert polygon_intersection_area(l_poly, clip) == pytest.approx(3)

    def test_grid_fallback_for_two_concave(self):
        l1 = Polygon(
            [
                Point(0, 0),
                Point(2, 0),
                Point(2, 1),
                Point(1, 1),
                Point(1, 2),
                Point(0, 2),
            ]
        )
        l2 = Polygon(
            [
                Point(0, 0),
                Point(2, 0),
                Point(2, 2),
                Point(1, 2),
                Point(1, 1),
                Point(0, 1),
            ]
        )
        area = polygon_intersection_area(l1, l2, resolution=200)
        # True intersection is the two unit squares [0,1]^2 and [1,2]x[0,1].
        assert area == pytest.approx(2.0, rel=0.05)

    def test_symmetry(self):
        a = Polygon.rectangle(0, 0, 3, 1)
        b = Polygon.regular(Point(1, 0.5), 1.0, 8)
        ab = polygon_intersection_area(a, b)
        ba = polygon_intersection_area(b, a)
        assert ab == pytest.approx(ba, rel=1e-6)


class TestSegmentIntersections:
    def test_cross_pair(self):
        segs = [
            Segment(Point(0, 0), Point(2, 2)),
            Segment(Point(0, 2), Point(2, 0)),
        ]
        hits = segment_intersections(segs)
        assert len(hits) == 1
        i, j, p = hits[0]
        assert (i, j) == (0, 1)
        assert p.x == pytest.approx(1)

    def test_no_intersections(self):
        segs = [
            Segment(Point(0, 0), Point(1, 0)),
            Segment(Point(0, 1), Point(1, 1)),
            Segment(Point(5, 5), Point(6, 6)),
        ]
        assert segment_intersections(segs) == []

    def test_star_pattern(self):
        segs = [
            Segment(Point(-1, 0), Point(1, 0)),
            Segment(Point(0, -1), Point(0, 1)),
            Segment(Point(-1, -1), Point(1, 1)),
        ]
        hits = segment_intersections(segs)
        assert len(hits) == 3  # all pairs meet at the origin


class TestLengthInside:
    def test_half_inside(self):
        square = Polygon.rectangle(0, 0, 1, 1)
        segs = [Segment(Point(0.5, 0.5), Point(0.5, 1.5))]
        assert polyline_length_inside(square, segs) == pytest.approx(0.5)

    def test_multiple_segments(self):
        square = Polygon.rectangle(0, 0, 10, 10)
        segs = [
            Segment(Point(1, 1), Point(4, 1)),  # 3 inside
            Segment(Point(8, 8), Point(14, 8)),  # 2 inside
            Segment(Point(20, 20), Point(30, 20)),  # 0 inside
        ]
        assert polyline_length_inside(square, segs) == pytest.approx(5)
