"""Tests for the robust low-level predicates."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.geometry import predicates

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.tuples(coords, coords)


class TestOrientation:
    def test_counter_clockwise(self):
        assert predicates.orientation((0, 0), (1, 0), (0, 1)) == 1

    def test_clockwise(self):
        assert predicates.orientation((0, 0), (0, 1), (1, 0)) == -1

    def test_collinear_horizontal(self):
        assert predicates.orientation((0, 0), (1, 0), (2, 0)) == 0

    def test_collinear_diagonal(self):
        assert predicates.orientation((0, 0), (1, 1), (2, 2)) == 0

    def test_exact_fallback_near_collinear(self):
        # These points are exactly collinear in rational arithmetic but the
        # float determinant is a tiny non-zero value without exact fallback.
        a = (0.0, 0.0)
        b = (Fraction(1, 3), Fraction(1, 3))
        c = (Fraction(2, 3), Fraction(2, 3))
        assert predicates.orientation(a, b, c) == 0

    def test_tiny_but_real_turn_detected(self):
        a = (0, 0)
        b = (Fraction(1), Fraction(0))
        c = (Fraction(2), Fraction(1, 10**12))
        assert predicates.orientation(a, b, c) == 1

    @given(points, points, points)
    def test_antisymmetry(self, p, q, r):
        assert predicates.orientation(p, q, r) == -predicates.orientation(p, r, q)

    @given(points, points, points)
    def test_cyclic_invariance(self, p, q, r):
        o = predicates.orientation(p, q, r)
        assert predicates.orientation(q, r, p) == o
        assert predicates.orientation(r, p, q) == o


class TestOnSegment:
    def test_midpoint_on_segment(self):
        assert predicates.on_segment((1, 1), (0, 0), (2, 2))

    def test_endpoint_on_segment(self):
        assert predicates.on_segment((0, 0), (0, 0), (2, 2))

    def test_outside_extent(self):
        assert not predicates.on_segment((3, 3), (0, 0), (2, 2))

    def test_off_line(self):
        assert not predicates.on_segment((1, 2), (0, 0), (2, 2))

    @given(points, points, st.floats(min_value=0, max_value=1))
    def test_interpolated_point_is_on_segment(self, a, b, t):
        p = (a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1]))
        # Floating interpolation may leave the exact line or round past an
        # endpoint; only assert when the point is exactly collinear and
        # inside the coordinate extent.
        in_extent = (
            min(a[0], b[0]) <= p[0] <= max(a[0], b[0])
            and min(a[1], b[1]) <= p[1] <= max(a[1], b[1])
        )
        if in_extent and predicates.orientation(a, b, p) == 0:
            assert predicates.on_segment(p, a, b)


class TestSegmentsIntersect:
    def test_plain_crossing(self):
        assert predicates.segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_shared_endpoint(self):
        assert predicates.segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_t_junction(self):
        assert predicates.segments_intersect((0, 0), (2, 0), (1, 0), (1, 5))

    def test_collinear_overlap(self):
        assert predicates.segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_collinear_disjoint(self):
        assert not predicates.segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_parallel_disjoint(self):
        assert not predicates.segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_near_miss(self):
        assert not predicates.segments_intersect((0, 0), (1, 1), (0, 1), (0.4, 0.55))

    def test_proper_excludes_endpoint_touch(self):
        assert not predicates.segments_properly_intersect(
            (0, 0), (1, 1), (1, 1), (2, 0)
        )

    def test_proper_includes_crossing(self):
        assert predicates.segments_properly_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    @given(points, points, points, points)
    def test_symmetric(self, a, b, c, d):
        assert predicates.segments_intersect(a, b, c, d) == (
            predicates.segments_intersect(c, d, a, b)
        )


class TestIntersectionParameters:
    def test_crossing_parameters(self):
        params = predicates.segment_intersection_parameters(
            (0, 0), (2, 0), (1, -1), (1, 1)
        )
        assert params is not None
        s, u = params
        assert s == pytest.approx(0.5)
        assert u == pytest.approx(0.5)

    def test_parallel_returns_none(self):
        assert (
            predicates.segment_intersection_parameters((0, 0), (1, 0), (0, 1), (1, 1))
            is None
        )

    def test_collinear_overlap_returns_none(self):
        assert (
            predicates.segment_intersection_parameters((0, 0), (2, 0), (1, 0), (3, 0))
            is None
        )

    def test_disjoint_returns_none(self):
        assert (
            predicates.segment_intersection_parameters((0, 0), (1, 0), (5, 5), (6, 6))
            is None
        )

    def test_exact_rational_crossing(self):
        params = predicates.segment_intersection_parameters(
            (Fraction(0), Fraction(0)),
            (Fraction(1), Fraction(1)),
            (Fraction(0), Fraction(1)),
            (Fraction(1), Fraction(0)),
        )
        assert params is not None
        s, u = params
        assert s == pytest.approx(0.5)
        assert u == pytest.approx(0.5)

    @given(points, points, points, points)
    def test_parameters_produce_matching_points(self, a, b, c, d):
        params = predicates.segment_intersection_parameters(a, b, c, d)
        if params is None:
            return
        s, u = float(params[0]), float(params[1])
        px = a[0] + s * (b[0] - a[0])
        py = a[1] + s * (b[1] - a[1])
        qx = c[0] + u * (d[0] - c[0])
        qy = c[1] + u * (d[1] - c[1])
        scale = max(abs(px), abs(py), abs(qx), abs(qy), 1.0)
        assert abs(px - qx) <= 1e-6 * scale
        assert abs(py - qy) <= 1e-6 * scale
