"""Tests for overlay cache export/import (Piet precompute persistence)."""

import json

import pytest

from repro.errors import GeometryError
from repro.geometry import LayerOverlay, Point, Polygon, Polyline


def layers():
    return {
        "cities": {
            "a": Polygon.rectangle(0, 0, 10, 10),
            "b": Polygon.rectangle(20, 0, 30, 10),
        },
        "rivers": {
            "r": Polyline([Point(-5, 5), Point(15, 5)]),
        },
    }


class TestExportImport:
    def test_roundtrip(self):
        source = LayerOverlay(layers())
        source.precompute_all()
        exported = source.export_cache()
        # JSON-compatible end to end.
        blob = json.dumps(exported)

        target = LayerOverlay(layers())
        assert target.cached_relations == 0
        loaded = target.import_cache(json.loads(blob))
        assert loaded == source.cached_relations
        assert target.pairs("rivers", "cities") == source.pairs(
            "rivers", "cities"
        )

    def test_imported_cache_skips_recomputation(self):
        source = LayerOverlay(layers())
        expected = source.pairs("rivers", "cities")
        target = LayerOverlay(layers())
        target.import_cache(source.export_cache())
        # The relation is answered from cache, no recomputation needed.
        assert target.cached_relations == 1
        assert target.pairs("rivers", "cities") == expected

    def test_empty_export(self):
        overlay = LayerOverlay(layers())
        assert overlay.export_cache() == {"relations": []}

    def test_unknown_layer_rejected(self):
        source = LayerOverlay(layers())
        source.pairs("rivers", "cities")
        exported = source.export_cache()
        other = LayerOverlay({"zones": {"z": Polygon.rectangle(0, 0, 1, 1)}})
        with pytest.raises(GeometryError):
            other.import_cache(exported)

    def test_malformed_rejected(self):
        overlay = LayerOverlay(layers())
        with pytest.raises(GeometryError):
            overlay.import_cache({"nope": []})
        with pytest.raises(GeometryError):
            overlay.import_cache({"relations": [{"layer_a": "cities"}]})

    def test_bad_predicate_rejected(self):
        overlay = LayerOverlay(layers())
        with pytest.raises(GeometryError):
            overlay.import_cache(
                {
                    "relations": [
                        {
                            "layer_a": "cities",
                            "layer_b": "rivers",
                            "predicate": "touches",
                            "pairs": [],
                        }
                    ]
                }
            )
