"""Tests for Polygon: measures, containment, clipping."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import Point, Polygon, Polyline, Segment


def unit_square() -> Polygon:
    return Polygon.rectangle(0, 0, 1, 1)


def square_with_hole() -> Polygon:
    return Polygon(
        [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)],
        holes=[[Point(4, 4), Point(6, 4), Point(6, 6), Point(4, 6)]],
    )


def concave_l() -> Polygon:
    """An L-shaped (concave) hexagon of area 3."""
    return Polygon(
        [
            Point(0, 0),
            Point(2, 0),
            Point(2, 1),
            Point(1, 1),
            Point(1, 2),
            Point(0, 2),
        ]
    )


class TestConstruction:
    def test_needs_three_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_closing_vertex_dropped(self):
        ring = [Point(0, 0), Point(1, 0), Point(0, 1), Point(0, 0)]
        assert len(Polygon(ring).shell) == 3

    def test_rectangle_validation(self):
        with pytest.raises(GeometryError):
            Polygon.rectangle(1, 0, 0, 1)

    def test_regular_polygon(self):
        hexagon = Polygon.regular(Point(0, 0), 1.0, 6)
        assert len(hexagon.shell) == 6
        assert hexagon.area == pytest.approx(3 * math.sqrt(3) / 2, rel=1e-9)

    def test_regular_validation(self):
        with pytest.raises(GeometryError):
            Polygon.regular(Point(0, 0), 1.0, 2)
        with pytest.raises(GeometryError):
            Polygon.regular(Point(0, 0), 0.0, 5)


class TestMeasures:
    def test_square_area(self):
        assert unit_square().area == pytest.approx(1)

    def test_signed_area_ccw_positive(self):
        assert unit_square().signed_area > 0

    def test_signed_area_cw_negative(self):
        cw = Polygon([Point(0, 0), Point(0, 1), Point(1, 1), Point(1, 0)])
        assert cw.signed_area < 0
        assert cw.area == pytest.approx(1)

    def test_area_with_hole(self):
        assert square_with_hole().area == pytest.approx(100 - 4)

    def test_perimeter_with_hole(self):
        assert square_with_hole().perimeter == pytest.approx(40 + 8)

    def test_concave_area(self):
        assert concave_l().area == pytest.approx(3)

    def test_centroid_of_square(self):
        c = unit_square().centroid
        assert c.x == pytest.approx(0.5)
        assert c.y == pytest.approx(0.5)

    def test_centroid_symmetric_hole(self):
        c = square_with_hole().centroid
        assert c.x == pytest.approx(5)
        assert c.y == pytest.approx(5)

    def test_bbox(self):
        box = concave_l().bbox
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 2, 2)


class TestContainment:
    def test_interior_point(self):
        assert unit_square().contains_point(Point(0.5, 0.5))

    def test_boundary_point_included(self):
        assert unit_square().contains_point(Point(0, 0.5))
        assert unit_square().contains_point(Point(1, 1))

    def test_outside_point(self):
        assert not unit_square().contains_point(Point(1.5, 0.5))

    def test_hole_interior_excluded(self):
        assert not square_with_hole().contains_point(Point(5, 5))

    def test_hole_boundary_included(self):
        assert square_with_hole().contains_point(Point(4, 5))

    def test_concave_notch_excluded(self):
        assert not concave_l().contains_point(Point(1.5, 1.5))
        assert concave_l().contains_point(Point(0.5, 1.5))

    def test_strict_containment_excludes_boundary(self):
        sq = unit_square()
        assert sq.strictly_contains_point(Point(0.5, 0.5))
        assert not sq.strictly_contains_point(Point(0, 0.5))

    def test_shared_boundary_belongs_to_both(self):
        # The paper: "a point may belong to more than one geometry", e.g.
        # on the shared edge of two adjacent polygons.
        left = Polygon.rectangle(0, 0, 1, 1)
        right = Polygon.rectangle(1, 0, 2, 1)
        edge_point = Point(1, 0.5)
        assert left.contains_point(edge_point)
        assert right.contains_point(edge_point)

    def test_ray_through_vertex(self):
        diamond = Polygon([Point(0, -1), Point(1, 0), Point(0, 1), Point(-1, 0)])
        assert diamond.contains_point(Point(0, 0))
        assert not diamond.contains_point(Point(-2, 0.0))

    @given(
        st.floats(min_value=-2, max_value=2),
        st.floats(min_value=-2, max_value=2),
    )
    def test_square_containment_matches_coordinates(self, x, y):
        inside = unit_square().contains_point(Point(x, y))
        assert inside == (0 <= x <= 1 and 0 <= y <= 1)


class TestSegmentPolygonRelations:
    def test_intersects_crossing_segment(self):
        assert unit_square().intersects_segment(
            Segment(Point(-1, 0.5), Point(2, 0.5))
        )

    def test_intersects_contained_segment(self):
        assert unit_square().intersects_segment(
            Segment(Point(0.2, 0.2), Point(0.8, 0.8))
        )

    def test_disjoint_segment(self):
        assert not unit_square().intersects_segment(
            Segment(Point(2, 2), Point(3, 3))
        )

    def test_intersects_polyline(self):
        line = Polyline([Point(-1, -1), Point(0.5, 0.5), Point(2, 2)])
        assert unit_square().intersects_polyline(line)

    def test_polygon_intersects_polygon_overlap(self):
        a = Polygon.rectangle(0, 0, 2, 2)
        b = Polygon.rectangle(1, 1, 3, 3)
        assert a.intersects_polygon(b)

    def test_polygon_intersects_polygon_containment(self):
        outer = Polygon.rectangle(0, 0, 10, 10)
        inner = Polygon.rectangle(4, 4, 6, 6)
        assert outer.intersects_polygon(inner)
        assert inner.intersects_polygon(outer)

    def test_polygon_disjoint(self):
        a = Polygon.rectangle(0, 0, 1, 1)
        b = Polygon.rectangle(5, 5, 6, 6)
        assert not a.intersects_polygon(b)

    def test_contains_polygon(self):
        outer = Polygon.rectangle(0, 0, 10, 10)
        inner = Polygon.rectangle(1, 1, 2, 2)
        assert outer.contains_polygon(inner)
        assert not inner.contains_polygon(outer)

    def test_contains_polygon_rejects_overlap(self):
        a = Polygon.rectangle(0, 0, 2, 2)
        b = Polygon.rectangle(1, 1, 3, 3)
        assert not a.contains_polygon(b)


class TestClipSegment:
    def test_through_crossing(self):
        intervals = unit_square().clip_segment(
            Segment(Point(-1, 0.5), Point(2, 0.5))
        )
        assert len(intervals) == 1
        s0, s1 = intervals[0]
        assert s0 == pytest.approx(1 / 3)
        assert s1 == pytest.approx(2 / 3)

    def test_fully_inside(self):
        intervals = unit_square().clip_segment(
            Segment(Point(0.2, 0.2), Point(0.8, 0.8))
        )
        assert intervals == [(0.0, 1.0)]

    def test_fully_outside(self):
        assert unit_square().clip_segment(Segment(Point(2, 2), Point(3, 3))) == []

    def test_degenerate_inside(self):
        seg = Segment(Point(0.5, 0.5), Point(0.5, 0.5))
        assert unit_square().clip_segment(seg) == [(0.0, 1.0)]

    def test_degenerate_outside(self):
        seg = Segment(Point(5, 5), Point(5, 5))
        assert unit_square().clip_segment(seg) == []

    def test_hole_splits_interval(self):
        poly = square_with_hole()
        seg = Segment(Point(0, 5), Point(10, 5))
        intervals = poly.clip_segment(seg)
        assert len(intervals) == 2
        (a0, a1), (b0, b1) = intervals
        assert a0 == pytest.approx(0.0)
        assert a1 == pytest.approx(0.4)
        assert b0 == pytest.approx(0.6)
        assert b1 == pytest.approx(1.0)

    def test_concave_double_crossing(self):
        poly = concave_l()
        seg = Segment(Point(0.5, -1), Point(0.5, 3))
        intervals = poly.clip_segment(seg)
        assert len(intervals) == 1
        # Crosses y=0 at s=0.25 and y=2 at s=0.75.
        assert intervals[0][0] == pytest.approx(0.25)
        assert intervals[0][1] == pytest.approx(0.75)

    def test_concave_segment_through_notch(self):
        poly = concave_l()
        seg = Segment(Point(1.5, -1), Point(1.5, 3))
        intervals = poly.clip_segment(seg)
        # Only inside for y in [0, 1] -> s in [0.25, 0.5].
        assert len(intervals) == 1
        assert intervals[0][0] == pytest.approx(0.25)
        assert intervals[0][1] == pytest.approx(0.5)

    def test_clipped_length(self):
        length = unit_square().clipped_segment_length(
            Segment(Point(-1, 0.5), Point(2, 0.5))
        )
        assert length == pytest.approx(1.0)

    def test_boundary_sliding_segment(self):
        # A segment travelling along the boundary is inside (closed region).
        intervals = unit_square().clip_segment(Segment(Point(0, 0), Point(1, 0)))
        assert intervals == [(0.0, 1.0)]


class TestSampling:
    def test_interior_point_of_square(self):
        sq = unit_square()
        p = sq.sample_interior_point()
        assert sq.strictly_contains_point(p)

    def test_interior_point_of_concave(self):
        poly = concave_l()
        p = poly.sample_interior_point()
        assert poly.contains_point(p)

    def test_interior_point_with_central_hole(self):
        poly = square_with_hole()
        p = poly.sample_interior_point()
        assert poly.contains_point(p)
