"""Tests for the uniform grid spatial index."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    BoundingBox,
    Point,
    Polygon,
    UniformGridIndex,
    index_for_geometries,
)

WORLD = BoundingBox(0, 0, 100, 100)


def make_index() -> UniformGridIndex:
    return UniformGridIndex(WORLD, cell_size=10)


class TestBasics:
    def test_cell_size_validation(self):
        with pytest.raises(GeometryError):
            UniformGridIndex(WORLD, cell_size=0)

    def test_shape(self):
        assert make_index().shape == (10, 10)

    def test_insert_and_len(self):
        index = make_index()
        index.insert("a", BoundingBox(1, 1, 2, 2))
        index.insert("b", BoundingBox(50, 50, 60, 60))
        assert len(index) == 2
        assert "a" in index
        assert "c" not in index

    def test_reinsert_replaces(self):
        index = make_index()
        index.insert("a", BoundingBox(1, 1, 2, 2))
        index.insert("a", BoundingBox(90, 90, 95, 95))
        assert len(index) == 1
        assert index.query_box(BoundingBox(0, 0, 5, 5)) == set()
        assert index.query_box(BoundingBox(89, 89, 96, 96)) == {"a"}

    def test_remove(self):
        index = make_index()
        index.insert("a", BoundingBox(1, 1, 2, 2))
        index.remove("a")
        assert len(index) == 0
        with pytest.raises(KeyError):
            index.remove("a")

    def test_bbox_of(self):
        index = make_index()
        box = BoundingBox(1, 2, 3, 4)
        index.insert("a", box)
        assert index.bbox_of("a") == box


class TestQueries:
    def test_query_box_hits(self):
        index = make_index()
        index.insert("near", BoundingBox(5, 5, 8, 8))
        index.insert("far", BoundingBox(80, 80, 85, 85))
        assert index.query_box(BoundingBox(0, 0, 10, 10)) == {"near"}

    def test_query_box_touching(self):
        index = make_index()
        index.insert("a", BoundingBox(10, 10, 20, 20))
        assert index.query_box(BoundingBox(20, 20, 25, 25)) == {"a"}

    def test_query_spanning_object(self):
        index = make_index()
        index.insert("wide", BoundingBox(0, 45, 100, 55))
        assert index.query_box(BoundingBox(70, 50, 72, 52)) == {"wide"}

    def test_query_point(self):
        index = make_index()
        index.insert("a", BoundingBox(10, 10, 20, 20))
        assert index.query_point(Point(15, 15)) == {"a"}
        assert index.query_point(Point(25, 25)) == set()

    def test_query_outside_world_clamped(self):
        index = make_index()
        index.insert("corner", BoundingBox(0, 0, 5, 5))
        assert index.query_box(BoundingBox(-50, -50, 1, 1)) == {"corner"}

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=90),
                st.floats(min_value=0, max_value=90),
                st.floats(min_value=0.1, max_value=10),
            ),
            min_size=1,
            max_size=40,
        ),
        st.tuples(
            st.floats(min_value=0, max_value=90),
            st.floats(min_value=0, max_value=90),
            st.floats(min_value=0.1, max_value=10),
        ),
    )
    def test_query_matches_brute_force(self, objects, probe):
        index = make_index()
        boxes = {}
        for i, (x, y, size) in enumerate(objects):
            box = BoundingBox(x, y, x + size, y + size)
            boxes[i] = box
            index.insert(i, box)
        px, py, psize = probe
        query = BoundingBox(px, py, px + psize, py + psize)
        expected = {i for i, box in boxes.items() if box.intersects(query)}
        assert index.query_box(query) == expected


class TestIndexForGeometries:
    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            index_for_geometries({})

    def test_mixed_geometries(self):
        geoms = {
            "square": Polygon.rectangle(0, 0, 10, 10),
            "dot": Point(50, 50),
        }
        index = index_for_geometries(geoms)
        assert index.query_point(Point(5, 5)) == {"square"}
        assert index.query_point(Point(50, 50)) == {"dot"}

    def test_single_point_world(self):
        index = index_for_geometries({"p": Point(3, 3)})
        assert index.query_point(Point(3, 3)) == {"p"}

    def test_heuristic_cell_size(self):
        geoms = {
            i: Polygon.rectangle(i * 10, 0, i * 10 + 5, 5) for i in range(10)
        }
        index = index_for_geometries(geoms)
        assert len(index) == 10
        hits = index.query_box(BoundingBox(0, 0, 12, 6))
        assert 0 in hits and 1 in hits
        assert 9 not in hits
