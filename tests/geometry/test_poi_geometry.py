"""Unit tests for the Poi disc geometry and its predicates."""

from __future__ import annotations

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.poi import Poi
from repro.geometry.polygon import Polygon
from repro.geometry.polyline import Polyline
from repro.geometry.segment import Segment


@pytest.fixture()
def unit_disc():
    return Poi.at(0.0, 0.0, 1.0)


@pytest.fixture()
def square():
    return Polygon(
        [Point(-2.0, -2.0), Point(2.0, -2.0), Point(2.0, 2.0), Point(-2.0, 2.0)]
    )


class TestConstruction:
    def test_center_must_be_point(self):
        with pytest.raises(GeometryError):
            Poi((0.0, 0.0), 1.0)

    @pytest.mark.parametrize("radius", [0.0, -1.0, math.nan, math.inf])
    def test_radius_must_be_finite_positive(self, radius):
        with pytest.raises(GeometryError):
            Poi.at(0.0, 0.0, radius)

    def test_immutable(self, unit_disc):
        with pytest.raises(AttributeError):
            unit_disc.radius = 2.0

    def test_equality_and_hash(self, unit_disc):
        same = Poi(Point(0.0, 0.0), 1.0)
        assert unit_disc == same
        assert hash(unit_disc) == hash(same)
        assert unit_disc != Poi.at(0.0, 0.0, 2.0)
        assert unit_disc.__eq__(object()) is NotImplemented

    def test_repr_round_trips_fields(self, unit_disc):
        assert "Poi" in repr(unit_disc)
        assert unit_disc.as_tuple() == (0.0, 0.0, 1.0)

    def test_bbox_and_area(self, unit_disc):
        bbox = unit_disc.bbox
        assert (bbox.min_x, bbox.min_y, bbox.max_x, bbox.max_y) == (
            -1.0, -1.0, 1.0, 1.0,
        )
        assert math.isclose(unit_disc.area, math.pi)


class TestPredicates:
    def test_contains_point_is_closed(self, unit_disc):
        assert unit_disc.contains_point(Point(1.0, 0.0))  # on the rim
        assert unit_disc.contains_point(Point(0.5, 0.5))
        assert not unit_disc.contains_point(Point(1.0, 1.0))

    def test_contains_segment(self, unit_disc):
        inside = Segment(Point(-0.5, 0.0), Point(0.5, 0.0))
        sticking_out = Segment(Point(0.0, 0.0), Point(2.0, 0.0))
        assert unit_disc.contains_segment(inside)
        assert not unit_disc.contains_segment(sticking_out)

    def test_intersects_segment(self, unit_disc):
        crossing = Segment(Point(-2.0, 0.0), Point(2.0, 0.0))
        tangent = Segment(Point(-2.0, 1.0), Point(2.0, 1.0))
        missing = Segment(Point(-2.0, 1.5), Point(2.0, 1.5))
        assert unit_disc.intersects_segment(crossing)
        assert unit_disc.intersects_segment(tangent)  # closed disc
        assert not unit_disc.intersects_segment(missing)

    def test_intersects_polyline(self, unit_disc):
        through = Polyline(
            [Point(-2.0, 5.0), Point(-2.0, 0.0), Point(2.0, 0.0)]
        )
        away = Polyline([Point(5.0, 5.0), Point(6.0, 5.0), Point(6.0, 6.0)])
        assert unit_disc.intersects_polyline(through)
        assert not unit_disc.intersects_polyline(away)

    def test_intersects_polygon_center_inside(self, unit_disc, square):
        assert unit_disc.intersects_polygon(square)

    def test_intersects_polygon_by_boundary(self, square):
        # Center outside the square but the rim reaches its edge.
        grazing = Poi.at(3.0, 0.0, 1.0)  # rim exactly touches the x=2 edge
        assert grazing.intersects_polygon(square)
        assert not Poi.at(4.0, 0.0, 1.0).intersects_polygon(square)

    def test_intersects_poi(self, unit_disc):
        assert unit_disc.intersects_poi(Poi.at(2.0, 0.0, 1.0))  # tangent
        assert not unit_disc.intersects_poi(Poi.at(2.1, 0.0, 1.0))

    def test_contains_poi(self, unit_disc):
        big = Poi.at(0.0, 0.0, 3.0)
        assert big.contains_poi(unit_disc)
        assert not unit_disc.contains_poi(big)
        offset = Poi.at(2.5, 0.0, 0.5)
        assert big.contains_poi(offset)  # |c|+r = 3.0 <= 3.0, boundary case
        assert not big.contains_poi(Poi.at(2.6, 0.0, 0.5))

    def test_contains_polygon(self, square):
        big = Poi.at(0.0, 0.0, 3.0)  # covers the square's corners (|2,2| < 3)
        small = Poi.at(0.0, 0.0, 1.0)
        assert big.contains_polygon(square)
        assert not small.contains_polygon(square)

    def test_inside_polygon(self, square):
        fits = Poi.at(0.0, 0.0, 1.5)
        too_big = Poi.at(0.0, 0.0, 2.5)
        off_center = Poi.at(1.5, 0.0, 1.0)  # rim crosses the x=2 edge
        outside = Poi.at(5.0, 0.0, 0.5)
        assert fits.inside_polygon(square)
        assert not too_big.inside_polygon(square)
        assert not off_center.inside_polygon(square)
        assert not outside.inside_polygon(square)


class TestGisIntegration:
    def test_kind_of_classifies_poi(self, unit_disc):
        from repro.gis.geometries import POI, kind_of

        assert kind_of(unit_disc) == POI

    def test_poi_is_not_a_point(self, unit_disc):
        assert not isinstance(unit_disc, Point)

    def test_bbox_dispatch(self, unit_disc):
        from repro.geometry.overlay import geometry_bbox

        bbox = geometry_bbox(unit_disc)
        assert (bbox.min_x, bbox.max_x) == (-1.0, 1.0)

    def test_contains_dispatch(self, unit_disc, square):
        from repro.geometry.overlay import geometry_contains

        assert geometry_contains(unit_disc, Point(0.5, 0.0))
        assert geometry_contains(square, unit_disc.center)
