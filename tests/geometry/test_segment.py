"""Tests for Segment operations."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import BoundingBox, Point, Segment

coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
point_st = st.builds(Point, coords, coords)
segment_st = st.builds(Segment, point_st, point_st).filter(
    lambda s: not s.is_degenerate
)


class TestBasics:
    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length == pytest.approx(5)

    def test_degenerate(self):
        assert Segment(Point(1, 1), Point(1, 1)).is_degenerate
        assert not Segment(Point(1, 1), Point(1, 2)).is_degenerate

    def test_midpoint(self):
        assert Segment(Point(0, 0), Point(2, 2)).midpoint == Point(1, 1)

    def test_bbox(self):
        seg = Segment(Point(2, -1), Point(0, 3))
        assert seg.bbox == BoundingBox(0, -1, 2, 3)

    def test_point_at_endpoints(self):
        seg = Segment(Point(1, 1), Point(3, 5))
        assert seg.point_at(0) == Point(1, 1)
        assert seg.point_at(1) == Point(3, 5)
        assert seg.point_at(0.5) == Point(2, 3)

    def test_point_at_extrapolates(self):
        seg = Segment(Point(0, 0), Point(1, 0))
        assert seg.point_at(2) == Point(2, 0)

    def test_reversed(self):
        seg = Segment(Point(0, 0), Point(1, 2))
        assert seg.reversed() == Segment(Point(1, 2), Point(0, 0))

    @given(segment_st, st.floats(min_value=0, max_value=1))
    def test_point_at_stays_in_bbox(self, seg, s):
        box = seg.bbox.expanded(1e-9 * (1 + seg.length))
        assert box.contains_point(seg.point_at(s))


class TestParameterAndDistance:
    def test_parameter_of_midpoint(self):
        seg = Segment(Point(0, 0), Point(2, 0))
        assert seg.parameter_of(Point(1, 0)) == pytest.approx(0.5)

    def test_parameter_of_projects(self):
        seg = Segment(Point(0, 0), Point(2, 0))
        assert seg.parameter_of(Point(1, 5)) == pytest.approx(0.5)

    def test_parameter_of_degenerate_raises(self):
        with pytest.raises(GeometryError):
            Segment(Point(0, 0), Point(0, 0)).parameter_of(Point(1, 1))

    def test_distance_interior_projection(self):
        seg = Segment(Point(0, 0), Point(2, 0))
        assert seg.distance_to_point(Point(1, 3)) == pytest.approx(3)

    def test_distance_clamped_to_endpoint(self):
        seg = Segment(Point(0, 0), Point(2, 0))
        assert seg.distance_to_point(Point(5, 4)) == pytest.approx(5)

    def test_distance_degenerate(self):
        seg = Segment(Point(1, 1), Point(1, 1))
        assert seg.distance_to_point(Point(4, 5)) == pytest.approx(5)

    def test_contains_point(self):
        seg = Segment(Point(0, 0), Point(2, 2))
        assert seg.contains_point(Point(1, 1))
        assert seg.contains_point(Point(0, 0))
        assert not seg.contains_point(Point(3, 3))
        assert not seg.contains_point(Point(1, 1.5))

    @given(segment_st, point_st)
    def test_distance_nonnegative_and_zero_on_segment(self, seg, p):
        d = seg.distance_to_point(p)
        assert d >= 0
        if seg.contains_point(p):
            assert d == pytest.approx(0, abs=1e-6)


class TestIntersection:
    def test_cross_intersection_point(self):
        a = Segment(Point(0, 0), Point(2, 2))
        b = Segment(Point(0, 2), Point(2, 0))
        hit = a.intersection(b)
        assert isinstance(hit, Point)
        assert hit.x == pytest.approx(1)
        assert hit.y == pytest.approx(1)

    def test_disjoint_returns_none(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(0, 1), Point(1, 1))
        assert a.intersection(b) is None

    def test_shared_endpoint_returns_point(self):
        a = Segment(Point(0, 0), Point(1, 1))
        b = Segment(Point(1, 1), Point(2, 0))
        hit = a.intersection(b)
        assert hit == Point(1, 1)

    def test_collinear_overlap_returns_segment(self):
        a = Segment(Point(0, 0), Point(3, 0))
        b = Segment(Point(1, 0), Point(5, 0))
        hit = a.intersection(b)
        assert isinstance(hit, Segment)
        assert {hit.start, hit.end} == {Point(1, 0), Point(3, 0)}

    def test_collinear_touching_at_point(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(1, 0), Point(2, 0))
        hit = a.intersection(b)
        assert hit == Point(1, 0)

    def test_overlap_of_noncollinear_is_none(self):
        a = Segment(Point(0, 0), Point(1, 1))
        b = Segment(Point(0, 0), Point(1, 0))
        assert a.overlap(b) is None

    def test_intersection_parameters_match_point(self):
        a = Segment(Point(0, 0), Point(4, 0))
        b = Segment(Point(1, -1), Point(1, 1))
        params = a.intersection_parameters(b)
        assert params is not None
        assert float(params[0]) == pytest.approx(0.25)
        assert float(params[1]) == pytest.approx(0.5)

    @given(segment_st, segment_st)
    def test_intersects_agrees_with_intersection(self, a, b):
        hit = a.intersection(b)
        if hit is not None:
            assert a.intersects(b)


class TestClipping:
    BOX = BoundingBox(0, 0, 10, 10)

    def test_fully_inside(self):
        seg = Segment(Point(1, 1), Point(9, 9))
        assert seg.clipped_to_box(self.BOX) == seg

    def test_fully_outside(self):
        seg = Segment(Point(20, 20), Point(30, 30))
        assert seg.clipped_to_box(self.BOX) is None

    def test_crossing_through(self):
        seg = Segment(Point(-5, 5), Point(15, 5))
        clipped = seg.clipped_to_box(self.BOX)
        assert clipped is not None
        assert clipped.start.x == pytest.approx(0)
        assert clipped.end.x == pytest.approx(10)
        assert clipped.start.y == pytest.approx(5)

    def test_one_end_inside(self):
        seg = Segment(Point(5, 5), Point(5, 20))
        clipped = seg.clipped_to_box(self.BOX)
        assert clipped is not None
        assert clipped.start == Point(5, 5)
        assert clipped.end.y == pytest.approx(10)

    def test_touching_corner_only_returns_none(self):
        seg = Segment(Point(-1, 1), Point(1, -1))  # passes through (0,0)
        assert seg.clipped_to_box(self.BOX) is None

    def test_outside_parallel_returns_none(self):
        seg = Segment(Point(-5, -1), Point(15, -1))
        assert seg.clipped_to_box(self.BOX) is None

    @given(segment_st)
    def test_clipped_is_within_box(self, seg):
        clipped = seg.clipped_to_box(self.BOX)
        if clipped is None:
            return
        tol = 1e-9 * (1 + seg.length)
        grown = self.BOX.expanded(tol)
        assert grown.contains_point(clipped.start)
        assert grown.contains_point(clipped.end)
        assert clipped.length <= seg.length + tol
