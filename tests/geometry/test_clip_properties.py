"""Property tests for polygon segment clipping (the trajectory workhorse)."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.geometry import Point, Polygon, Segment

coords = st.floats(min_value=-30, max_value=30, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)
segments = st.builds(Segment, points, points)

polygons = st.one_of(
    st.builds(
        lambda x0, y0, w, h: Polygon.rectangle(x0, y0, x0 + w, y0 + h),
        st.floats(min_value=-20, max_value=10),
        st.floats(min_value=-20, max_value=10),
        st.floats(min_value=1, max_value=15),
        st.floats(min_value=1, max_value=15),
    ),
    st.builds(
        Polygon.regular,
        points,
        st.floats(min_value=1, max_value=10),
        st.integers(min_value=3, max_value=8),
    ),
)


class TestClipProperties:
    @given(polygons, segments)
    def test_intervals_well_formed(self, polygon, segment):
        intervals = polygon.clip_segment(segment)
        for lo, hi in intervals:
            assert -1e-9 <= lo <= hi <= 1 + 1e-9
        for (a0, a1), (b0, b1) in zip(intervals, intervals[1:]):
            assert a1 <= b0 + 1e-9  # sorted and disjoint

    @given(polygons, segments)
    def test_clipped_length_bounded(self, polygon, segment):
        inside = polygon.clipped_segment_length(segment)
        assert -1e-9 <= inside <= segment.length + 1e-6

    @given(polygons, segments, st.floats(min_value=0, max_value=1))
    @settings(max_examples=60)
    def test_interval_midpoints_inside(self, polygon, segment, u):
        assume(not segment.is_degenerate)
        intervals = polygon.clip_segment(segment)
        for lo, hi in intervals:
            if hi - lo < 1e-6:
                continue
            s = lo + u * (hi - lo)
            # Allow boundary tolerance: clip cuts are computed in floats.
            point = segment.point_at(s)
            near = polygon.contains_point(point) or any(
                edge.distance_to_point(point) < 1e-6
                for edge in polygon.boundary_segments()
            )
            assert near

    @given(polygons, segments)
    def test_gap_midpoints_outside(self, polygon, segment):
        assume(not segment.is_degenerate)
        intervals = polygon.clip_segment(segment)
        cuts = [0.0]
        for lo, hi in intervals:
            cuts.extend([lo, hi])
        cuts.append(1.0)
        # Midpoints of the complement gaps must be outside (or on boundary).
        for a, b in zip(cuts[::2], cuts[1::2]):
            if b - a < 1e-6:
                continue
            point = segment.point_at((a + b) / 2)
            outside = not polygon.contains_point(point) or any(
                edge.distance_to_point(point) < 1e-6
                for edge in polygon.boundary_segments()
            )
            assert outside

    def test_segment_below_denormal_bottom_edge_not_swallowed(self):
        """Regression (hypothesis-found): a segment sliding just *outside*
        a nearly-degenerate bottom edge must not clip to the whole span."""
        tiny = 6.573433594977706e-183
        polygon = Polygon.rectangle(0.0, tiny, 2.0, 1.0)
        segment = Segment(Point(3.0, 0.0), Point(0.0, tiny))
        for lo, hi in polygon.clip_segment(segment):
            point = segment.point_at((lo + hi) / 2)
            assert polygon.contains_point(point) or any(
                edge.distance_to_point(point) < 1e-6
                for edge in polygon.boundary_segments()
            )
            # The start (3, 0) is a unit away from the region; no interval
            # may begin there.
            assert lo >= 1 / 3 - 1e-9

    @given(polygons, segments)
    def test_reversed_segment_symmetric_length(self, polygon, segment):
        forward = polygon.clipped_segment_length(segment)
        backward = polygon.clipped_segment_length(segment.reversed())
        assert forward == pytest.approx(backward, abs=1e-6)

    @given(polygons)
    def test_boundary_edge_fully_inside(self, polygon):
        edge = polygon.boundary_segments()[0]
        assume(not edge.is_degenerate)
        assert polygon.clipped_segment_length(edge) == pytest.approx(
            edge.length, rel=1e-6
        )
