"""Concurrency stress: many submitters, many workers, exact bookkeeping.

Real threads on both sides of the queue.  The invariants under load:

* every job reaches exactly one terminal state, and the answer is the
  exact serial one (no double-execution can *record* — ownership checks
  make a second recording impossible, and the counters prove no second
  execution completed);
* the ``queue_depth`` / ``jobs_in_flight`` gauges converge to the
  actual queue contents;
* :class:`~repro.obs.PipelineStats` counter totals are exact — not
  approximately right under contention, exact (the same guarantee
  ``tests/test_obs.py`` establishes for raw counters, here end-to-end
  through the service).
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import AdmissionError
from repro.service import (
    AdmissionPolicy,
    MemoryJobQueue,
    QueryService,
    QuerySpec,
    SQLiteJobQueue,
)

from tests.service.conftest import FIG1_SPEC

pytestmark = pytest.mark.service


@pytest.mark.parametrize("queue_kind", ["memory", "sqlite"])
def test_many_submitters_many_workers_exact_totals(
    tmp_path, fig1_service_world, queue_kind
):
    n_submitters, jobs_per_submitter, n_workers = 6, 5, 4
    n_jobs = n_submitters * jobs_per_submitter
    queue = (
        MemoryJobQueue()
        if queue_kind == "memory"
        else SQLiteJobQueue(str(tmp_path / "stress.db"))
    )
    service = QueryService(
        fig1_service_world,
        queue=queue,
        policy=AdmissionPolicy(
            max_queue_depth=n_jobs + 1,
            max_in_flight_per_client=jobs_per_submitter,
        ),
        n_workers=n_workers,
        lease_s=60.0,
    )
    job_ids, errors = [], []
    lock = threading.Lock()

    def submitter(client: int) -> None:
        for _ in range(jobs_per_submitter):
            try:
                job_id = service.submit(
                    FIG1_SPEC, client_id=f"client-{client}"
                )
                with lock:
                    job_ids.append(job_id)
            except Exception as exc:  # pragma: no cover - failure detail
                with lock:
                    errors.append(exc)

    try:
        with service:
            threads = [
                threading.Thread(target=submitter, args=(i,))
                for i in range(n_submitters)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            assert len(job_ids) == len(set(job_ids)) == n_jobs
            service.drain(timeout=120.0)

        # Every job: terminal, done, exact answer, exactly one attempt.
        for job_id in job_ids:
            job = service.status(job_id)
            assert job.state == "done"
            assert job.attempts == 1, (
                f"{job_id} executed {job.attempts} times"
            )
            assert service.result(job_id) == {"kind": "through", "count": 5}

        # Counter totals are exact, not approximate.
        metrics = service.metrics()
        assert metrics["jobs_submitted"] == n_jobs
        assert metrics["jobs_claimed"] == n_jobs
        assert metrics["jobs_completed"] == n_jobs
        assert metrics.get("jobs_requeued", 0) == 0
        assert metrics.get("jobs_reclaimed", 0) == 0
        assert metrics["service_queue_wait_calls"] == n_jobs
        assert metrics["service_run_calls"] == n_jobs
        assert metrics["state_done"] == n_jobs

        # Gauges converge to the actual (empty) queue contents.
        assert metrics["queue_depth"] == queue.depth() == 0
        assert metrics["jobs_in_flight"] == queue.active() == 0
        assert metrics["workers_busy"] == 0
        assert 0.0 <= metrics["worker_utilization"] <= 1.0
    finally:
        if isinstance(queue, SQLiteJobQueue):
            queue.close()


def test_depth_gauge_tracks_actuals_while_queue_fills(fig1_service_world):
    """With the pool stopped, the gauge follows every enqueue/cancel."""
    service = QueryService(fig1_service_world)
    for expected_depth in range(1, 6):
        service.submit(FIG1_SPEC)
        assert service.queue.depth() == expected_depth
        assert service.obs.counters["queue_depth"] == expected_depth
    cancelled = service.cancel("J000001")
    assert cancelled.state == "cancelled"
    assert service.obs.counters["queue_depth"] == 4
    assert service.obs.counters["jobs_in_flight"] == 4


def test_admission_under_concurrent_submitters(fig1_service_world):
    """Caps hold under contention: accepted + rejected == attempted,
    and the queue never exceeds the depth cap."""
    cap = 8
    service = QueryService(
        fig1_service_world,
        policy=AdmissionPolicy(
            max_queue_depth=cap, max_in_flight_per_client=cap
        ),
    )
    outcomes = []
    lock = threading.Lock()

    def submitter(i: int) -> None:
        try:
            service.submit(FIG1_SPEC, client_id=f"c{i}")
            with lock:
                outcomes.append("accepted")
        except AdmissionError:
            with lock:
                outcomes.append("rejected")

    threads = [
        threading.Thread(target=submitter, args=(i,)) for i in range(20)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(outcomes) == 20
    assert outcomes.count("accepted") == cap
    assert outcomes.count("rejected") == 20 - cap
    assert service.queue.depth() == cap
    assert service.metrics()["jobs_rejected"] == 20 - cap


def test_mixed_workload_stats_are_exact(fig1_service_world):
    """Good jobs, bad jobs and cancellations in one run: the per-state
    totals and counters add up exactly."""
    service = QueryService(fig1_service_world, n_workers=3)
    good = [service.submit(FIG1_SPEC) for _ in range(4)]
    bad = [
        service.submit(QuerySpec.pietql("SELECT nonsense !!"))
        for _ in range(2)
    ]
    with service:
        service.drain(timeout=60.0)
    cancelled_error = None
    try:
        service.cancel(good[0])
    except Exception as exc:
        cancelled_error = exc
    assert cancelled_error is not None  # done jobs are not cancellable

    for job_id in good:
        assert service.status(job_id).state == "done"
    for job_id in bad:
        # Syntax errors are non-retryable: failed on the first attempt.
        job = service.status(job_id)
        assert job.state == "failed"
        assert job.attempts == 1

    metrics = service.metrics()
    assert metrics["jobs_submitted"] == 6
    assert metrics["jobs_completed"] == 4
    assert metrics["jobs_failed"] == 2
    assert metrics["state_done"] == 4
    assert metrics["state_dead"] == 0
