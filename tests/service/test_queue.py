"""State-machine tests for the durable job queue.

Every test runs against both backends via the ``make_queue`` factory —
the memory queue and the SQLite one satisfy one contract, and this file
is where that is enforced: enqueue/claim/complete happy path, ownership
checks, retry budgets, lease expiry, cancellation, admission caps, and
the spec round-trip.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ClientThrottledError,
    JobNotFoundError,
    JobStateError,
    LeaseLostError,
    QueueFullError,
    ServiceError,
)
from repro.service import (
    AdmissionController,
    AdmissionPolicy,
    QuerySpec,
    SQLiteJobQueue,
    canonical_json,
)

from tests.service.conftest import FIG1_SPEC

pytestmark = pytest.mark.service

PQL = QuerySpec.pietql("SELECT layer.schools FROM Fig1")


class TestSpecRoundTrip:
    def test_through_round_trips_canonically(self):
        spec = FIG1_SPEC
        again = QuerySpec.from_json(spec.to_json())
        assert again == spec
        assert again.to_json() == spec.to_json()

    def test_pietql_round_trips(self):
        assert QuerySpec.from_json(PQL.to_json()) == PQL

    def test_malformed_json_is_a_typed_error(self):
        with pytest.raises(ServiceError):
            QuerySpec.from_json("not json at all")
        with pytest.raises(ServiceError):
            QuerySpec.from_json(canonical_json({"kind": "nope"}))

    def test_describe_is_stable(self):
        assert "Ln:polygon" in FIG1_SPEC.describe()
        assert "FMbus" in FIG1_SPEC.describe()


class TestLifecycle:
    def test_enqueue_claim_complete(self, make_queue, clock):
        queue = make_queue(clock=clock)
        job = queue.enqueue(FIG1_SPEC, client_id="alice")
        assert job.state == "queued"
        assert job.job_id == "J000001"
        assert queue.depth() == 1

        claimed = queue.claim("w0", lease_s=30.0)
        assert claimed.job_id == job.job_id
        assert claimed.state == "claimed"
        assert claimed.attempts == 1
        assert claimed.lease_until == pytest.approx(clock.now + 30.0)
        assert queue.depth() == 0

        running = queue.start(job.job_id, "w0")
        assert running.state == "running"

        done = queue.complete(
            job.job_id, "w0", canonical_json({"count": 5}),
            explain="PLAN", metrics_json=canonical_json({"run_s": 0.1}),
        )
        assert done.state == "done"
        assert done.result_json == '{"count":5}'
        assert done.explain == "PLAN"
        assert done.is_terminal
        assert queue.active() == 0

    def test_claim_is_fifo_by_submission(self, make_queue):
        queue = make_queue()
        first = queue.enqueue(FIG1_SPEC)
        queue.enqueue(PQL)
        assert queue.claim("w0").job_id == first.job_id

    def test_claim_on_empty_queue_returns_none(self, make_queue):
        assert make_queue().claim("w0") is None

    def test_unknown_job_id_raises(self, make_queue):
        with pytest.raises(JobNotFoundError):
            make_queue().get("J999999")

    def test_invalid_parameters_are_typed_errors(self, make_queue):
        queue = make_queue()
        with pytest.raises(ServiceError):
            queue.enqueue(FIG1_SPEC, max_retries=-1)
        queue.enqueue(FIG1_SPEC)
        with pytest.raises(ServiceError):
            queue.claim("w0", lease_s=0.0)

    def test_cancel_only_while_queued(self, make_queue):
        queue = make_queue()
        job = queue.enqueue(FIG1_SPEC)
        cancelled = queue.cancel(job.job_id)
        assert cancelled.state == "cancelled"
        with pytest.raises(JobStateError):
            queue.cancel(job.job_id)

        job2 = queue.enqueue(FIG1_SPEC)
        queue.claim("w0")
        with pytest.raises(JobStateError):
            queue.cancel(job2.job_id)


class TestOwnership:
    def test_only_the_lease_holder_may_report(self, make_queue):
        queue = make_queue()
        job = queue.enqueue(FIG1_SPEC)
        queue.claim("w0")
        with pytest.raises(LeaseLostError):
            queue.complete(job.job_id, "imposter", "{}")
        with pytest.raises(LeaseLostError):
            queue.fail(job.job_id, "imposter", "boom")
        with pytest.raises(LeaseLostError):
            queue.start(job.job_id, "imposter")

    def test_stale_worker_write_after_requeue_is_rejected(
        self, make_queue, clock
    ):
        queue = make_queue(clock=clock)
        job = queue.enqueue(FIG1_SPEC, max_retries=2)
        queue.claim("w0", lease_s=5.0)
        clock.advance(6.0)
        released = queue.release_expired()
        assert [j.job_id for j in released] == [job.job_id]
        assert released[0].state == "queued"
        # w0 comes back from the dead and tries to report: refused.
        with pytest.raises(LeaseLostError):
            queue.complete(job.job_id, "w0", "{}")
        # The job is claimable again by anyone.
        reclaimed = queue.claim("w1")
        assert reclaimed.worker_id == "w1"
        assert reclaimed.attempts == 2

    def test_extend_lease_pushes_expiry(self, make_queue, clock):
        queue = make_queue(clock=clock)
        job = queue.enqueue(FIG1_SPEC)
        queue.claim("w0", lease_s=5.0)
        clock.advance(4.0)
        extended = queue.extend_lease(job.job_id, "w0", 10.0)
        assert extended.lease_until == pytest.approx(clock.now + 10.0)
        clock.advance(6.0)  # past the original lease, inside the new one
        assert queue.release_expired() == []


class TestRetryBudget:
    def test_retryable_failure_requeues_until_budget_spent(self, make_queue):
        queue = make_queue()
        job = queue.enqueue(FIG1_SPEC, max_retries=2)
        for attempt in (1, 2):
            claimed = queue.claim("w0")
            assert claimed.attempts == attempt
            failed = queue.fail(job.job_id, "w0", "flake", retryable=True)
            assert failed.state == "queued"
        queue.claim("w0")
        dead = queue.fail(job.job_id, "w0", "flake", retryable=True)
        assert dead.state == "dead"
        assert dead.attempts == 3
        assert dead.retries == 2

    def test_non_retryable_failure_fails_immediately(self, make_queue):
        queue = make_queue()
        job = queue.enqueue(FIG1_SPEC, max_retries=5)
        queue.claim("w0")
        failed = queue.fail(
            job.job_id, "w0", "bad query", retryable=False
        )
        assert failed.state == "failed"
        assert failed.attempts == 1

    def test_zero_retries_dies_on_first_retryable_failure(self, make_queue):
        queue = make_queue()
        job = queue.enqueue(FIG1_SPEC, max_retries=0)
        queue.claim("w0")
        assert queue.fail(job.job_id, "w0", "x").state == "dead"

    def test_lease_expiry_consumes_the_same_budget(self, make_queue, clock):
        queue = make_queue(clock=clock)
        job = queue.enqueue(FIG1_SPEC, max_retries=1)
        queue.claim("w0", lease_s=5.0)
        clock.advance(6.0)
        assert queue.release_expired()[0].state == "queued"
        queue.claim("w1", lease_s=5.0)
        clock.advance(6.0)
        dead = queue.release_expired()[0]
        assert dead.state == "dead"
        assert "lease expired" in dead.error
        assert queue.get(job.job_id).state == "dead"

    def test_unexpired_leases_are_left_alone(self, make_queue, clock):
        queue = make_queue(clock=clock)
        queue.enqueue(FIG1_SPEC)
        queue.claim("w0", lease_s=30.0)
        clock.advance(10.0)
        assert queue.release_expired() == []


class TestFaultTrace:
    def test_fault_records_accumulate(self, make_queue):
        queue = make_queue()
        job = queue.enqueue(FIG1_SPEC)
        queue.record_fault(job.job_id, "drop(task=0, attempt=0)")
        queue.record_fault(job.job_id, "raise(task=0, attempt=1)")
        trace = queue.get(job.job_id).fault_trace
        assert trace == "drop(task=0, attempt=0); raise(task=0, attempt=1)"


class TestCountsAndGauges:
    def test_counts_cover_every_state(self, make_queue):
        queue = make_queue()
        assert set(queue.counts()) == {
            "queued", "claimed", "running", "done", "failed", "dead",
            "cancelled",
        }
        queue.enqueue(FIG1_SPEC)
        assert queue.counts()["queued"] == 1

    def test_gauges_track_depth_and_in_flight(self, make_queue, obs):
        queue = make_queue(obs=obs)
        job = queue.enqueue(FIG1_SPEC)
        assert obs.counters["queue_depth"] == 1
        assert obs.counters["jobs_in_flight"] == 1
        queue.claim("w0")
        assert obs.counters["queue_depth"] == 0
        assert obs.counters["jobs_in_flight"] == 1
        queue.complete(job.job_id, "w0", "{}")
        assert obs.counters["jobs_in_flight"] == 0
        assert obs.counters["jobs_submitted"] == 1
        assert obs.counters["jobs_claimed"] == 1
        assert obs.counters["jobs_completed"] == 1

    def test_in_flight_is_per_client(self, make_queue):
        queue = make_queue()
        queue.enqueue(FIG1_SPEC, client_id="alice")
        queue.enqueue(FIG1_SPEC, client_id="alice")
        queue.enqueue(FIG1_SPEC, client_id="bob")
        assert queue.in_flight("alice") == 2
        assert queue.in_flight("bob") == 1
        assert queue.in_flight("carol") == 0


class TestAdmission:
    def test_queue_depth_cap(self, make_queue, obs):
        queue = make_queue(obs=obs)
        controller = AdmissionController(
            AdmissionPolicy(max_queue_depth=2), obs=obs
        )
        for _ in range(2):
            controller.admit(queue, "alice")
            queue.enqueue(FIG1_SPEC, client_id="alice")
        with pytest.raises(QueueFullError):
            controller.admit(queue, "bob")
        assert obs.counters["jobs_rejected"] == 1

    def test_per_client_in_flight_cap(self, make_queue, obs):
        queue = make_queue(obs=obs)
        controller = AdmissionController(
            AdmissionPolicy(max_in_flight_per_client=1), obs=obs
        )
        controller.admit(queue, "alice")
        queue.enqueue(FIG1_SPEC, client_id="alice")
        with pytest.raises(ClientThrottledError):
            controller.admit(queue, "alice")
        # A different client is unaffected (fairness, not backpressure).
        controller.admit(queue, "bob")

    def test_policy_validation(self):
        with pytest.raises(ServiceError):
            AdmissionPolicy(max_queue_depth=0)
        with pytest.raises(ServiceError):
            AdmissionPolicy(max_in_flight_per_client=0)


class TestSQLiteDurability:
    def test_records_survive_reopen(self, tmp_path, clock):
        path = str(tmp_path / "durable.db")
        queue = SQLiteJobQueue(path, clock=clock)
        job = queue.enqueue(FIG1_SPEC, client_id="alice")
        queue.claim("w0")
        queue.complete(
            job.job_id, "w0", '{"count":5}', explain="PLAN"
        )
        queue.close()

        reopened = SQLiteJobQueue(path, clock=clock)
        try:
            again = reopened.get(job.job_id)
            assert again.state == "done"
            assert again.result_json == '{"count":5}'
            assert again.explain == "PLAN"
            # seq counter also survives: the next id does not collide.
            assert reopened.enqueue(FIG1_SPEC).job_id == "J000002"
        finally:
            reopened.close()

    def test_two_connections_share_one_queue(self, tmp_path):
        path = str(tmp_path / "shared.db")
        submitter = SQLiteJobQueue(path)
        server = SQLiteJobQueue(path)
        try:
            job = submitter.enqueue(FIG1_SPEC)
            claimed = server.claim("w0")
            assert claimed.job_id == job.job_id
            # The submitter's view reflects the server's claim.
            assert submitter.get(job.job_id).state == "claimed"
            # A second claim on either connection finds nothing queued.
            assert submitter.claim("w1") is None
        finally:
            submitter.close()
            server.close()

    def test_unopenable_path_is_a_typed_error(self, tmp_path):
        with pytest.raises(ServiceError):
            SQLiteJobQueue(str(tmp_path / "missing-dir" / "q.db"))
