"""Crash-recovery chaos suite for the query service.

Every test injects worker death (or failure) via a fixed-seed
:class:`~repro.faults.FaultPlan` and drives workers *synchronously*
(:meth:`~repro.service.worker.Worker.step`) against a queue on a
:class:`~tests.service.conftest.FakeClock`, so recovery is deterministic:
no sleeps, no thread races — a crash is a recorded fact, lease expiry is
a clock advance, and the final answer is compared byte-for-byte against
the serial oracle.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import JobFailedError
from repro.faults import FaultPlan, FaultSpec
from repro.obs import PipelineStats
from repro.query.evaluator import count_objects_through
from repro.service import (
    QueryService,
    SQLiteJobQueue,
    Worker,
    canonical_json,
    execute_spec,
)

from tests.service.conftest import (
    FIG1_CONSTRAINTS,
    FIG1_SPEC,
    FIG1_TARGET,
    FakeClock,
)

pytestmark = [pytest.mark.faults, pytest.mark.service]


@pytest.fixture
def sqlite_queue(tmp_path, clock):
    queue = SQLiteJobQueue(str(tmp_path / "chaos.db"), clock=clock)
    yield queue
    queue.close()


@pytest.fixture(scope="module")
def serial_answer(fig1_context) -> str:
    """The serial oracle's answer, in the service's canonical encoding."""
    count = count_objects_through(
        fig1_context, FIG1_TARGET, FIG1_CONSTRAINTS, moft_name="FMbus"
    )
    assert count == 5  # Remark 1 of the paper
    return canonical_json({"count": count, "kind": "through"})


class TestCrashRecovery:
    def test_killed_worker_lease_expires_and_job_is_reclaimed(
        self, sqlite_queue, clock, fig1_service_world, serial_answer
    ):
        """The tentpole scenario: crash → lease expiry → re-claim →
        byte-identical answer."""
        obs = PipelineStats()
        sqlite_queue.obs = obs
        # Job seq 1 = task index 0; crash its first attempt.
        plan = FaultPlan.single("drop", task_index=0, attempt=0)
        victim = Worker(
            sqlite_queue, fig1_service_world, worker_id="victim",
            lease_s=10.0, fault_plan=plan, obs=obs,
        )
        rescuer = Worker(
            sqlite_queue, fig1_service_world, worker_id="rescuer",
            lease_s=10.0, fault_plan=plan, obs=obs,
        )
        job = sqlite_queue.enqueue(FIG1_SPEC, max_retries=2)

        # The victim claims, crashes mid-job, reports nothing.
        abandoned = victim.step()
        assert abandoned.state == "claimed"
        assert abandoned.worker_id == "victim"
        assert abandoned.fault_trace == "drop(task=0, attempt=0)"
        assert obs.counters["worker_crashes"] == 1

        # Before the lease expires the job is untouchable: the rescuer
        # finds nothing queued and the reaper releases nothing.
        assert rescuer.step() is None
        assert sqlite_queue.release_expired() == []

        # Lease expiry re-queues it, crediting the crash to the budget.
        clock.advance(11.0)
        released = sqlite_queue.release_expired()
        assert [j.state for j in released] == ["queued"]
        assert "presumed dead" in released[0].error
        assert obs.counters["jobs_reclaimed"] == 1

        # The rescuer re-claims and finishes; answer == serial oracle,
        # byte for byte, with the crash still on the record.
        done = rescuer.step()
        assert done.state == "done"
        assert done.worker_id == "rescuer"
        assert done.attempts == 2
        assert done.result_json == serial_answer
        assert done.fault_trace == "drop(task=0, attempt=0)"
        assert json.loads(done.metrics_json)["retries"] == 1

        # Durability: a fresh connection sees the same final record.
        reopened = SQLiteJobQueue(sqlite_queue.path, clock=clock)
        try:
            persisted = reopened.get(job.job_id)
            assert persisted.state == "done"
            assert persisted.result_json == serial_answer
        finally:
            reopened.close()

    def test_repeated_crashes_exhaust_retries_into_dead(
        self, sqlite_queue, clock, fig1_service_world
    ):
        """Retries exhausted → ``dead``, failure + fault trace retrievable."""
        obs = PipelineStats()
        sqlite_queue.obs = obs
        # Crash every attempt of task 0.
        plan = FaultPlan(
            [FaultSpec("drop", 0, attempt) for attempt in range(4)]
        )
        worker = Worker(
            sqlite_queue, fig1_service_world, worker_id="crasher",
            lease_s=5.0, fault_plan=plan, obs=obs,
        )
        job = sqlite_queue.enqueue(FIG1_SPEC, max_retries=1)

        for _ in range(2):  # attempts 1 and 2: crash, expire, release
            assert worker.step().state == "claimed"
            clock.advance(6.0)
            sqlite_queue.release_expired()

        dead = sqlite_queue.get(job.job_id)
        assert dead.state == "dead"
        assert dead.attempts == 2
        assert "lease expired" in dead.error
        assert dead.fault_trace == (
            "drop(task=0, attempt=0); drop(task=0, attempt=1)"
        )
        assert obs.counters["worker_crashes"] == 2
        assert obs.counters["jobs_dead"] == 1

        # The failure record is retrievable through the service API.
        service = QueryService(fig1_service_world, queue=sqlite_queue)
        with pytest.raises(JobFailedError) as excinfo:
            service.result(job.job_id)
        assert "lease expired" in str(excinfo.value)
        assert excinfo.value.faults == (
            "drop(task=0, attempt=0)",
            "drop(task=0, attempt=1)",
        )

    def test_raise_fault_is_retried_to_success(
        self, sqlite_queue, clock, fig1_service_world, serial_answer
    ):
        """A ``raise`` fault is a reported (not abandoned) retryable
        failure: the job re-queues immediately, no lease wait needed."""
        plan = FaultPlan.single("raise", task_index=0, attempt=0)
        worker = Worker(
            sqlite_queue, fig1_service_world, worker_id="w0",
            fault_plan=plan,
        )
        job = sqlite_queue.enqueue(FIG1_SPEC, max_retries=1)

        requeued = worker.step()
        assert requeued.state == "queued"
        assert "FaultInjected" in requeued.error

        done = worker.step()
        assert done.state == "done"
        assert done.result_json == serial_answer
        assert done.attempts == 2
        assert sqlite_queue.get(job.job_id).fault_trace == (
            "raise(task=0, attempt=0)"
        )

    def test_truncate_fault_also_crashes_the_worker(
        self, sqlite_queue, clock, fig1_service_world
    ):
        plan = FaultPlan.single("truncate", task_index=0, attempt=0)
        worker = Worker(
            sqlite_queue, fig1_service_world, worker_id="w0",
            lease_s=5.0, fault_plan=plan,
        )
        sqlite_queue.enqueue(FIG1_SPEC, max_retries=0)
        abandoned = worker.step()
        assert abandoned.state == "claimed"
        clock.advance(6.0)
        # Budget of zero: the expired lease kills the job outright.
        assert sqlite_queue.release_expired()[0].state == "dead"


class TestSeededChaosSweep:
    """A seeded random fault storm against a batch of jobs.

    The exact-or-error contract, service edition: after the storm every
    job is either ``done`` with the byte-identical serial answer or
    terminally failed with a recorded error — never silently wrong.
    """

    @pytest.mark.parametrize("seed", [7, 20060109])
    def test_storm_yields_exact_answers_or_recorded_deaths(
        self, tmp_path, clock, fig1_service_world, serial_answer, seed
    ):
        n_jobs = 6
        queue = SQLiteJobQueue(
            str(tmp_path / f"storm{seed}.db"), clock=clock
        )
        try:
            plan = FaultPlan.random(
                n_tasks=n_jobs, max_attempts=3, rate=0.4, seed=seed,
                kinds=("drop", "raise"),
            )
            workers = [
                Worker(
                    queue, fig1_service_world, worker_id=f"w{i}",
                    lease_s=5.0, fault_plan=plan,
                )
                for i in range(3)
            ]
            for _ in range(n_jobs):
                queue.enqueue(FIG1_SPEC, max_retries=2)

            # Round-robin the workers; advance the clock between rounds
            # so abandoned leases expire and get reaped.
            for _ in range(24):
                if queue.active() == 0:
                    break
                for worker in workers:
                    worker.step()
                clock.advance(6.0)
                queue.release_expired()
            assert queue.active() == 0

            counts = queue.counts()
            assert counts["done"] + counts["dead"] == n_jobs
            for i in range(1, n_jobs + 1):
                job = queue.get(f"J{i:06d}")
                if job.state == "done":
                    assert job.result_json == serial_answer
                else:
                    assert job.error  # a dead job carries its cause
        finally:
            queue.close()


class TestFaultPlanThroughService:
    def test_service_level_fault_plan_recovers_end_to_end(
        self, fig1_service_world, serial_answer
    ):
        """Threaded pool + real clock: a raise-fault on the first attempt
        still converges to the exact answer via the retry path."""
        plan = FaultPlan.single("raise", task_index=0, attempt=0)
        with QueryService(
            fig1_service_world, n_workers=2, fault_plan=plan,
            max_retries=2, lease_s=30.0,
        ) as service:
            job_id = service.submit(FIG1_SPEC)
            job = service.wait(job_id, timeout=30.0)
        assert job.state == "done"
        assert service.result(job_id) == json.loads(serial_answer)
        assert service.status(job_id).attempts == 2
        assert service.metrics()["fault_injected"] == 1


class TestExecuteSpecParity:
    def test_execute_spec_matches_plain_evaluator(
        self, fig1_service_world, serial_answer
    ):
        result_json, explain = execute_spec(FIG1_SPEC, fig1_service_world)
        assert result_json == serial_answer
        assert "QueryPlan" in explain
