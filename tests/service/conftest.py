"""Shared fixtures for the query-service suite.

The worlds are the same two every differential suite uses (re-exported
from the parallel suite's conftest, wrapped as
:class:`~repro.service.worlds.ServiceWorld`), plus a deterministic
:class:`FakeClock` so lease expiry is a function call, not a sleep, and
a ``make_queue`` factory parametrized over both queue backends so every
state-machine test runs against the memory queue *and* the SQLite one.
"""

from __future__ import annotations

import pytest

from repro.gis import NODE, POLYGON, POLYLINE
from repro.obs import PipelineStats
from repro.service import (
    MemoryJobQueue,
    QuerySpec,
    SQLiteJobQueue,
    ServiceWorld,
)

from tests.parallel.conftest import (  # noqa: F401  (re-exported fixtures)
    FIG1_BINDINGS,
    SYNTH_BINDINGS,
    fig1,
    fig1_context,
    synth_world,
)

FIG1_TARGET = ("Ln", POLYGON)
FIG1_CONSTRAINTS = [
    ("intersects", ("Lr", POLYLINE)),
    ("contains", ("Ls", NODE)),
]
SYNTH_TARGET = ("Ln", POLYGON)
SYNTH_CONSTRAINTS = [("intersects", ("Lr", POLYLINE))]

#: The paper's Remark 1 count query, as a service spec.
FIG1_SPEC = QuerySpec.through(
    FIG1_TARGET, FIG1_CONSTRAINTS, moft_name="FMbus"
)


class FakeClock:
    """A manually-advanced clock injectable into queues."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += float(seconds)
        return self.now


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture(params=["memory", "sqlite"])
def make_queue(request, tmp_path):
    """Factory building a fresh queue of the parametrized backend."""
    opened = []

    def factory(clock=None, obs=None):
        kwargs = {}
        if clock is not None:
            kwargs["clock"] = clock
        if obs is not None:
            kwargs["obs"] = obs
        if request.param == "memory":
            queue = MemoryJobQueue(**kwargs)
        else:
            queue = SQLiteJobQueue(
                str(tmp_path / f"queue{len(opened)}.db"), **kwargs
            )
        opened.append(queue)
        return queue

    yield factory
    for queue in opened:
        if isinstance(queue, SQLiteJobQueue):
            queue.close()


@pytest.fixture(scope="session")
def fig1_service_world(fig1_context) -> ServiceWorld:
    """The Figure 1 instance wrapped for the service layer."""
    return ServiceWorld(
        name="fig1", context=fig1_context, bindings=dict(FIG1_BINDINGS)
    )


@pytest.fixture(scope="session")
def synth_service_world(synth_world) -> ServiceWorld:
    """The 10k-sample synthetic city wrapped for the service layer."""
    return ServiceWorld(
        name="synth",
        context=synth_world.context,
        bindings=dict(SYNTH_BINDINGS),
    )


@pytest.fixture
def obs() -> PipelineStats:
    return PipelineStats()
