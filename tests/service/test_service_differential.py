"""Differential oracle for the query service.

The service is an *execution envelope* around the sharded engine — a
queue, leases and retries must never change an answer.  Every test here
submits through :class:`~repro.service.QueryService` and demands the
result be identical (canonical-JSON byte-identical where the encoding
is compared) to running the same query directly: serial evaluator,
:class:`~repro.parallel.ShardedExecutor`, and
:class:`~repro.parallel.ShardedPietQLExecutor`.

The hypothesis lane fuzzes the *spec space* (targets, constraint sets,
windows) and the *service configuration* (worker counts, shard counts,
backends) together, with workers driven synchronously so every example
is deterministic.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.gis import NODE, POLYGON, POLYLINE
from repro.parallel import ShardedExecutor, ShardedPietQLExecutor
from repro.query.evaluator import count_objects_through
from repro.service import (
    MemoryJobQueue,
    QueryService,
    QuerySpec,
    Worker,
    canonical_json,
)

from tests.parallel.oracle import pietql_fingerprint, sorted_ids
from tests.service.conftest import (
    FIG1_CONSTRAINTS,
    FIG1_TARGET,
    SYNTH_CONSTRAINTS,
    SYNTH_TARGET,
)

pytestmark = pytest.mark.service

FIG1_LAYERS = (("Ln", POLYGON), ("Lr", POLYLINE), ("Ls", NODE))

PIETQL_QUERIES = (
    "SELECT layer.schools FROM Fig1",
    "SELECT layer.neighborhoods FROM Fig1 "
    "WHERE intersection(layer.rivers, layer.neighborhoods)",
    "SELECT layer.neighborhoods FROM Fig1 "
    "WHERE intersection(layer.rivers, layer.neighborhoods) "
    "AND contains(layer.neighborhoods, layer.schools) "
    "| COUNT OBJECTS FROM FMbus THROUGH RESULT",
)


def run_jobs_synchronously(world, specs, n_workers, backend, n_shards):
    """Submit every spec, then round-robin N synchronous workers."""
    service = QueryService(
        world,
        queue=MemoryJobQueue(),
        n_workers=1,  # the pool stays stopped; we drive our own workers
        backend=backend,
        n_shards=n_shards,
    )
    job_ids = [service.submit(spec) for spec in specs]
    workers = [
        Worker(
            service.queue, world, worker_id=f"w{i}",
            backend=backend, n_shards=n_shards, obs=service.obs,
        )
        for i in range(n_workers)
    ]
    for _ in range(4 * len(specs) + 4):
        if service.queue.active() == 0:
            break
        for worker in workers:
            worker.step()
    assert service.queue.active() == 0
    return service, job_ids


class TestFig1Parity:
    def test_through_answer_matches_direct_sharded_executor(
        self, fig1_service_world, fig1_context
    ):
        spec = QuerySpec.through(
            FIG1_TARGET, FIG1_CONSTRAINTS, moft_name="FMbus"
        )
        direct_serial = count_objects_through(
            fig1_context, FIG1_TARGET, FIG1_CONSTRAINTS, moft_name="FMbus"
        )
        direct_sharded = ShardedExecutor(
            backend="threads", n_shards=3
        ).count_objects_through(
            fig1_context, FIG1_TARGET, FIG1_CONSTRAINTS, moft_name="FMbus"
        )
        assert direct_serial == direct_sharded == 5

        service, (job_id,) = run_jobs_synchronously(
            fig1_service_world, [spec], n_workers=2,
            backend="threads", n_shards=3,
        )
        assert service.result(job_id) == {
            "kind": "through", "count": direct_serial,
        }
        # Byte-identical canonical encodings, not just equal dicts.
        assert service.status(job_id).result_json == canonical_json(
            {"kind": "through", "count": direct_serial}
        )
        assert "QueryPlan" in service.explain(job_id)

    @pytest.mark.parametrize("query", PIETQL_QUERIES)
    def test_pietql_answers_match_direct_sharded_executor(
        self, fig1_service_world, fig1_context, query
    ):
        direct = ShardedPietQLExecutor(
            fig1_context, fig1_service_world.bindings,
            backend="serial", n_shards=2,
        ).execute(query)
        service, (job_id,) = run_jobs_synchronously(
            fig1_service_world, [QuerySpec.pietql(query)],
            n_workers=2, backend="serial", n_shards=2,
        )
        result = service.result(job_id)
        assert result["kind"] == "pietql"
        expected_ids = sorted_ids(direct.geometry_ids)
        assert tuple(result["geometry_ids"] or ()) == (expected_ids or ())
        assert result["count"] == direct.count
        if direct.matched_objects is None:
            assert result["matched_objects"] is None
        else:
            assert tuple(result["matched_objects"]) == sorted_ids(
                direct.matched_objects
            )


class TestHypothesisFuzzLane:
    """Fuzz specs × service configuration against the serial evaluator."""

    @settings(max_examples=30, deadline=None)
    @given(
        target=st.sampled_from(FIG1_LAYERS),
        constraints=st.lists(
            st.tuples(
                st.sampled_from(["intersects", "contains"]),
                st.sampled_from(FIG1_LAYERS),
            ),
            max_size=2,
        ),
        window=st.one_of(
            st.none(),
            st.tuples(
                st.floats(min_value=0.0, max_value=4.0),
                st.floats(min_value=4.0, max_value=9.0),
            ),
        ),
        n_workers=st.integers(min_value=1, max_value=4),
        n_shards=st.integers(min_value=1, max_value=5),
        backend=st.sampled_from(["serial", "threads"]),
    )
    def test_service_equals_serial_evaluator(
        self,
        fig1_service_world,
        fig1_context,
        target,
        constraints,
        window,
        n_workers,
        n_shards,
        backend,
    ):
        expected = count_objects_through(
            fig1_context, target, constraints,
            moft_name="FMbus", window=window,
        )
        spec = QuerySpec.through(
            target, constraints, moft_name="FMbus", window=window
        )
        # The spec round-trips through its storage encoding on the way.
        assert QuerySpec.from_json(spec.to_json()) == spec
        service, (job_id,) = run_jobs_synchronously(
            fig1_service_world, [spec], n_workers=n_workers,
            backend=backend, n_shards=n_shards,
        )
        assert service.result(job_id) == {
            "kind": "through", "count": expected,
        }

    @settings(max_examples=10, deadline=None)
    @given(
        queries=st.lists(
            st.sampled_from(PIETQL_QUERIES), min_size=1, max_size=4
        ),
        n_workers=st.integers(min_value=1, max_value=3),
    )
    def test_batches_preserve_per_job_answers(
        self, fig1_service_world, fig1_context, queries, n_workers
    ):
        """A batch of jobs through K workers answers each exactly as the
        direct executor would — no cross-job contamination."""
        service, job_ids = run_jobs_synchronously(
            fig1_service_world,
            [QuerySpec.pietql(q) for q in queries],
            n_workers=n_workers, backend="serial", n_shards=2,
        )
        for query, job_id in zip(queries, job_ids):
            direct = pietql_fingerprint(
                ShardedPietQLExecutor(
                    fig1_context, fig1_service_world.bindings,
                    backend="serial", n_shards=2,
                ).execute(query)
            )
            result = service.result(job_id)
            geometry_ids = (
                tuple(result["geometry_ids"])
                if result["geometry_ids"] is not None
                else None
            )
            matched = (
                tuple(result["matched_objects"])
                if result["matched_objects"] is not None
                else None
            )
            assert (geometry_ids, result["count"], matched) == direct[:3]


@pytest.mark.slow
class TestSynthCityParity:
    """The 10k-sample synthetic world: service vs direct executors."""

    def test_through_count_matches_direct(
        self, synth_service_world, synth_world
    ):
        expected = count_objects_through(
            synth_world.context, SYNTH_TARGET, SYNTH_CONSTRAINTS
        )
        spec = QuerySpec.through(SYNTH_TARGET, SYNTH_CONSTRAINTS)
        service, (job_id,) = run_jobs_synchronously(
            synth_service_world, [spec], n_workers=3,
            backend="threads", n_shards=4,
        )
        assert service.result(job_id) == {
            "kind": "through", "count": expected,
        }

    def test_windowed_counts_match_direct(
        self, synth_service_world, synth_world
    ):
        specs, expected = [], []
        for window in [(0.0, 25.0), (10.0, 60.0), (0.0, 99.0)]:
            specs.append(
                QuerySpec.through(
                    SYNTH_TARGET, SYNTH_CONSTRAINTS, window=window
                )
            )
            expected.append(
                count_objects_through(
                    synth_world.context, SYNTH_TARGET, SYNTH_CONSTRAINTS,
                    window=window,
                )
            )
        service, job_ids = run_jobs_synchronously(
            synth_service_world, specs, n_workers=2,
            backend="threads", n_shards=3,
        )
        for job_id, count in zip(job_ids, expected):
            assert service.result(job_id)["count"] == count

    def test_pietql_on_synth_matches_direct(
        self, synth_service_world, synth_world
    ):
        query = (
            "SELECT layer.neighborhoods FROM City "
            "WHERE intersection(layer.rivers, layer.neighborhoods) "
            "| COUNT OBJECTS FROM FM THROUGH RESULT"
        )
        direct = ShardedPietQLExecutor(
            synth_world.context, synth_service_world.bindings,
            backend="threads", n_shards=4,
        ).execute(query)
        service, (job_id,) = run_jobs_synchronously(
            synth_service_world, [QuerySpec.pietql(query)],
            n_workers=2, backend="threads", n_shards=4,
        )
        result = service.result(job_id)
        assert result["count"] == direct.count
        assert tuple(result["matched_objects"]) == sorted_ids(
            direct.matched_objects
        )
