"""Named service worlds: deterministic construction by name."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service import QuerySpec, execute_spec, load_world
from repro.service.worlds import WORLD_NAMES

pytestmark = pytest.mark.service


def test_fig1_world_answers_the_running_example():
    world = load_world("fig1")
    assert world.name == "fig1"
    assert set(world.bindings) == {"neighborhoods", "rivers", "schools"}
    result_json, explain = execute_spec(
        QuerySpec.through(
            ("Ln", "polygon"),
            [
                ("intersects", ("Lr", "polyline")),
                ("contains", ("Ls", "node")),
            ],
            moft_name="FMbus",
        ),
        world,
    )
    assert result_json == '{"count":5,"kind":"through"}'
    assert "QueryPlan" in explain


def test_synth_world_is_deterministic_per_name():
    first = load_world("synth")
    again = load_world("synth")
    assert first.name == "synth"
    assert "stores" in first.bindings
    moft = first.context.moft("FM")
    assert len(moft) == 10_000
    # Fixed seeds: two loads see the same bits.
    assert moft.as_arrays()[1].tolist() == (
        again.context.moft("FM").as_arrays()[1].tolist()
    )


def test_default_world_is_fig1():
    assert load_world().name == "fig1"


def test_unknown_world_is_a_typed_error():
    with pytest.raises(ServiceError, match="unknown world"):
        load_world("atlantis")
    assert "atlantis" not in WORLD_NAMES
