"""Cross-module integration tests: full pipelines over the synthetic city.

Each test exercises a complete workflow a downstream user would run:
generate a world, load movement, build contexts, query through several
subsystems at once, and cross-check results between independent paths
(builder vs raw AST, Piet-QL vs Python API, overlay vs naive).
"""

from datetime import datetime

import pytest

from repro.gis import GISFactTable, NODE, POLYGON, POLYLINE, summable_aggregate
from repro.olap import (
    Cube,
    DimensionAttribute,
    FactTable,
    FactTableSchema,
)
from repro.pietql import LayerBinding, PietQLExecutor
from repro.query import (
    EvaluationContext,
    RegionBuilder,
    count_objects_through,
    geometric_subquery,
)
from repro.query.ast import (
    Alpha,
    And,
    Compare,
    Const,
    MemberValue,
    Moft,
    PointIn,
    TimeRollup,
    Var,
)
from repro.query.region import SpatioTemporalRegion
from repro.synth import (
    CityConfig,
    build_city,
    commuter_moft,
    random_waypoint_moft,
)
from repro.temporal import TimeDimension, hourly


@pytest.fixture(scope="module")
def city():
    return build_city(CityConfig(cols=5, rows=5, seed=77))


@pytest.fixture(scope="module")
def moft(city):
    return random_waypoint_moft(
        city.bounding_box, n_objects=30, n_instants=18, speed=12.0, seed=77
    )


@pytest.fixture(scope="module")
def time_dim():
    return TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 5, 0)), range(18)
    )


@pytest.fixture(scope="module")
def ctx(city, moft, time_dim):
    return EvaluationContext(city.gis, time_dim, moft)


class TestBuilderVsRawAst:
    def test_same_region_both_ways(self, city, ctx):
        threshold = 2000
        built = (
            RegionBuilder()
            .from_moft("FM")
            .during("timeOfDay", "Morning")
            .in_attribute_polygon(
                "neighborhood", value_filter=("income", "<", threshold)
            )
            .build(city.gis)
        )
        oid, t, x, y = Var("oid"), Var("t"), Var("x"), Var("y")
        pg, n = Var("pg"), Var("n")
        raw = SpatioTemporalRegion(
            ("oid", "t"),
            And(
                Moft(oid, t, x, y, "FM"),
                TimeRollup(t, "timeOfDay", Const("Morning")),
                PointIn(x, y, "Ln", POLYGON, pg),
                Alpha("neighborhood", n, pg),
                Compare(
                    MemberValue("neighborhood", n, "income"),
                    "<",
                    Const(threshold),
                ),
            ),
        )
        assert built.evaluate_tuples(ctx) == raw.evaluate_tuples(ctx)


class TestPietQLVsApi:
    def test_geometric_parity(self, city, ctx):
        executor = PietQLExecutor(
            ctx,
            {
                "cities": LayerBinding("Lc", POLYGON),
                "rivers": LayerBinding("Lr", POLYLINE),
                "stores": LayerBinding("Lsto", NODE),
            },
        )
        text = (
            "SELECT layer.cities FROM CitySchema "
            "WHERE intersection(layer.rivers, layer.cities) "
            "AND contains(layer.cities, layer.stores)"
        )
        via_language = set(executor.execute(text).geometry_ids)
        via_api = geometric_subquery(
            ctx,
            ("Lc", POLYGON),
            [("intersects", ("Lr", POLYLINE)), ("contains", ("Lsto", NODE))],
        )
        assert via_language == via_api

    def test_full_pipeline_parity(self, city, ctx):
        executor = PietQLExecutor(
            ctx,
            {
                "cities": LayerBinding("Lc", POLYGON),
                "rivers": LayerBinding("Lr", POLYLINE),
            },
        )
        text = (
            "SELECT layer.cities FROM CitySchema "
            "WHERE intersection(layer.rivers, layer.cities) "
            "| COUNT OBJECTS FROM FM THROUGH RESULT"
        )
        via_language = executor.execute(text).count
        via_api = count_objects_through(
            ctx, ("Lc", POLYGON), [("intersects", ("Lr", POLYLINE))]
        )
        assert via_language == via_api


class TestOverlayVsNaiveEverywhere:
    def test_region_parity(self, city, moft, time_dim):
        region = (
            RegionBuilder()
            .from_moft("FM")
            .in_attribute_polygon("neighborhood")
            .output("oid", "t")
            .build(city.gis)
        )
        with_overlay = region.evaluate_tuples(
            EvaluationContext(city.gis, time_dim, moft, use_overlay=True)
        )
        naive = region.evaluate_tuples(
            EvaluationContext(city.gis, time_dim, moft, use_overlay=False)
        )
        assert with_overlay == naive


class TestGisOlapBridge:
    """Member values -> GIS fact table -> classical cube, consistently."""

    def test_population_three_ways(self, city, ctx):
        # Path 1: member values summed directly.
        direct = sum(
            city.gis.member_value("neighborhood", n, "population")
            for n in city.neighborhoods
        )
        # Path 2: a GIS fact table at the polygon level + summable query.
        gis_facts = GISFactTable(POLYGON, "Ln", ["population"])
        for name in city.neighborhoods:
            gis_facts.set(
                city.gis.alpha("neighborhood", name),
                city.gis.member_value("neighborhood", name, "population"),
            )
        via_summable = summable_aggregate(
            gis_facts.ids(), gis_facts, "population", "SUM"
        )
        # Path 3: a classical cube over the Neighbourhoods dimension.
        schema = FactTableSchema(
            "population",
            [DimensionAttribute("neighborhood", "Neighbourhoods", "neighborhood")],
            ["population"],
        )
        table = FactTable(schema)
        for name in city.neighborhoods:
            table.insert(
                {
                    "neighborhood": name,
                    "population": city.gis.member_value(
                        "neighborhood", name, "population"
                    ),
                }
            )
        cube = Cube(
            table,
            {
                "Neighbourhoods": city.gis.application_instance(
                    "Neighbourhoods"
                )
            },
        )
        via_cube = cube.rollup(
            {"neighborhood": "city"}, "SUM", "population"
        )
        assert via_summable == direct
        assert sum(via_cube.values()) == direct
        # Per-city cells match the generator's own bookkeeping.
        for (city_name,), value in via_cube.items():
            assert value == city.gis.member_value("city", city_name, "population")


class TestMovingRegionOverCity:
    def test_storm_hits_match_direct_check(self, city, moft):
        from repro.geometry import Point, Polygon
        from repro.mo.movingregion import MovingRegion

        box = city.bounding_box
        storm = MovingRegion(
            [
                (0, Polygon.rectangle(0, 0, box.width / 3, box.height)),
                (
                    17,
                    Polygon.rectangle(
                        2 * box.width / 3, 0, box.width, box.height
                    ),
                ),
            ]
        )
        matches = storm.samples_inside(moft)
        for oid, t in matches:
            position = moft.position(oid, t)
            assert storm.contains(t, position)
        # The storm sweeps the whole city; plenty of samples are hit.
        assert len(matches) > 0


class TestCommuterFlow:
    def test_morning_northward_shift(self, city, time_dim):
        commuters = commuter_moft(
            city.bounding_box, 25, 18, morning_end=8, seed=5
        )
        ctx = EvaluationContext(city.gis, time_dim, commuters)
        region = (
            RegionBuilder()
            .from_moft("FM")
            .in_attribute_polygon("neighborhood")
            .output("oid", "t", "y")
            .build(city.gis)
        )
        rows = region.evaluate(ctx)
        early = [r["y"] for r in rows if r["t"] <= 1]
        late = [r["y"] for r in rows if r["t"] >= 9]
        assert early and late
        assert sum(late) / len(late) > sum(early) / len(early)
