"""Tests for the shared benchmark harness and reporting."""

import pytest

from repro.bench import (
    SCALES,
    Series,
    WorldScale,
    build_world,
    context_for,
    format_table,
    print_series,
    print_table,
    timed,
)


class TestWorldBuilding:
    def test_scales_are_increasing(self):
        blocks = [s.city_blocks for s in SCALES]
        objects = [s.n_objects for s in SCALES]
        assert blocks == sorted(blocks)
        assert objects == sorted(objects)

    def test_build_world_deterministic(self):
        scale = WorldScale("tiny", 3, 5, 6)
        city_a, moft_a, _ = build_world(scale, seed=1)
        city_b, moft_b, _ = build_world(scale, seed=1)
        assert list(moft_a.tuples()) == list(moft_b.tuples())
        assert city_a.neighborhoods == city_b.neighborhoods

    def test_build_world_shape(self):
        scale = WorldScale("tiny", 3, 5, 6)
        city, moft, time_dim = build_world(scale)
        assert len(city.neighborhoods) == 9
        assert len(moft.objects()) == 5
        assert len(time_dim.instants) == 6

    def test_context_for(self):
        scale = WorldScale("tiny", 3, 5, 6)
        city, moft, time_dim = build_world(scale)
        ctx = context_for(city, moft, time_dim, use_overlay=False)
        assert not ctx.use_overlay
        assert ctx.moft("FM") is moft


class TestTimed:
    def test_returns_best_and_result(self):
        calls = []

        def fn():
            calls.append(1)
            return "value"

        best, result = timed(fn, repeat=4)
        assert result == "value"
        assert len(calls) == 4
        assert best >= 0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [("alpha", 1.0), ("b", 123456.789)]
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]

    def test_format_table_float_rendering(self):
        text = format_table(["x"], [(0.123456789,)])
        assert "0.1235" in text

    def test_print_table(self, capsys):
        print_table("Title", ["a"], [(1,)])
        out = capsys.readouterr().out
        assert "== Title ==" in out

    def test_series_accumulates(self):
        series = Series("s")
        series.add(1, 2.0)
        series.add(2, 3.0)
        assert series.points == [(1, 2.0), (2, 3.0)]

    def test_print_series_joins_on_x(self, capsys):
        a = Series("a", [(1, 10.0), (2, 20.0)])
        b = Series("b", [(2, 5.0)])
        print_series("Joined", [a, b])
        out = capsys.readouterr().out
        assert "Joined" in out
        assert "-" in out  # missing cell placeholder for b at x=1
