"""Tier-1 smoke test mirroring ``benchmarks/bench_preagg_rollup.py``.

The benchmark's three measured steps — cold scan, warm store query,
incremental-update-then-query — run here on a tiny world with the same
code paths but no timing bars, so CI catches a broken benchmark script
shape (fixture construction, store registration, routing, equality
assertions) without paying the 250k-sample build.
"""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.gis import POLYGON, POLYLINE
from repro.preagg import PreAggStore
from repro.query.evaluator import count_objects_through
from repro.query.region import EvaluationContext
from repro.synth import CityConfig, build_city
from repro.synth.movement import random_waypoint_moft
from repro.temporal.calendar import hourly
from repro.temporal.timedim import TimeDimension

TARGET = ("Ln", POLYGON)
CONSTRAINTS = [("intersects", ("Lr", POLYLINE))]


@pytest.fixture(scope="module")
def tiny_world():
    city = build_city(
        CityConfig(cols=3, rows=3), rng=np.random.default_rng(9)
    )
    moft = random_waypoint_moft(
        city.bounding_box,
        n_objects=20,
        n_instants=30,
        speed=city.config.block_size / 2,
        rng=np.random.default_rng(13),
    )
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(30)
    )
    context = EvaluationContext(city.gis, time_dim, moft)
    return context, moft, city


def test_benchmark_steps_tiny(tiny_world):
    context, moft, city = tiny_world
    elements = city.gis.layer("Ln").elements(POLYGON)

    # Step 1: cold scan (the benchmark's baseline leg).
    cold = count_objects_through(
        context, TARGET, CONSTRAINTS, use_preagg=False
    )

    # Step 2: build + register the store; the warm leg must route
    # through it and agree exactly.
    store = PreAggStore(
        moft, context.time, "day", elements, layer="Ln", kind=POLYGON,
        obs=context.obs,
    )
    context.register_preagg(store)
    warm = count_objects_through(context, TARGET, CONSTRAINTS)
    assert context.obs.counters.get("preagg_hits", 0) == 1
    assert warm == cold

    # Step 3: append, incrementally update, re-query.
    box = city.bounding_box
    rng = np.random.default_rng(17)
    oids, ts, xs, ys = [], [], [], []
    for oid in ("late-1", "late-2"):
        for t in range(24, 30):
            oids.append(oid)
            ts.append(float(t))
            xs.append(float(rng.uniform(box.min_x, box.max_x)))
            ys.append(float(rng.uniform(box.min_y, box.max_y)))
    moft.extend_columns(oids, ts, xs, ys)
    assert store.is_stale()
    assert store.update() == "delta"
    updated = count_objects_through(context, TARGET, CONSTRAINTS)
    reference = count_objects_through(
        context, TARGET, CONSTRAINTS, use_preagg=False
    )
    assert updated == reference
    assert context.obs.counters["preagg_hits"] == 2
