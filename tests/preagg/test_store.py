"""Unit tests for :class:`repro.preagg.PreAggStore`.

The store is an execution artifact, not new semantics: every query
method must return exactly what the serial scan over the (granule- or
window-restricted) MOFT returns.  These tests pin the store-level
contract — construction validation, staleness transitions, cell
decoding, lattice rollups, shard merges — while the three-way
differential suite (``tests/parallel/test_preagg_differential.py``)
covers the planner integration end to end.
"""

from __future__ import annotations

import math
from datetime import datetime

import numpy as np
import pytest

from repro.errors import PreAggError, RollupError
from repro.gis import NODE, POLYGON
from repro.preagg import OID_DTYPE, PreAggCell, PreAggStore
from repro.query.aggregate import total_dwell_time
from repro.query.evaluator import objects_through
from repro.query.region import EvaluationContext
from repro.synth import CityConfig, build_city, figure1_instance
from repro.synth.movement import random_waypoint_moft
from repro.temporal.calendar import hourly
from repro.temporal.timedim import TimeDimension

TARGET = ("Ln", POLYGON)


def fig1_fixture():
    """A fresh Figure 1 context, its bus MOFT, polygons, and a store."""
    context = figure1_instance().context()
    moft = context.moft("FMbus")
    elements = context.gis.layer("Ln").elements(POLYGON)
    store = PreAggStore(
        moft, context.time, "hour", elements, layer="Ln", kind=POLYGON
    )
    return context, moft, elements, store


def small_synth_fixture():
    """A small synthetic world (2k samples) with a day-granule store."""
    city = build_city(
        CityConfig(cols=4, rows=4), rng=np.random.default_rng(11)
    )
    moft = random_waypoint_moft(
        city.bounding_box,
        n_objects=40,
        n_instants=50,
        speed=city.config.block_size / 2,
        rng=np.random.default_rng(5),
    )
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(50)
    )
    context = EvaluationContext(city.gis, time_dim, moft)
    elements = city.gis.layer("Ln").elements(POLYGON)
    store = PreAggStore(
        moft, time_dim, "day", elements, layer="Ln", kind=POLYGON
    )
    return context, moft, elements, store


@pytest.fixture(scope="module")
def fig1():
    return fig1_fixture()


@pytest.fixture(scope="module")
def synth():
    return small_synth_fixture()


class TestConstruction:
    def test_rejects_empty_geometries(self, fig1):
        context, moft, _, _ = fig1
        with pytest.raises(PreAggError, match=">= 1 polygon"):
            PreAggStore(moft, context.time, "hour", {})

    def test_rejects_non_polygon_geometry(self, fig1):
        context, moft, _, _ = fig1
        nodes = context.gis.layer("Ls").elements(NODE)
        with pytest.raises(PreAggError, match="not a\\s+Polygon"):
            PreAggStore(moft, context.time, "hour", nodes)

    def test_rejects_unregistered_instant(self):
        context, moft, elements, _ = fig1_fixture()
        moft.extend_columns(["O1"], [7.5], [0.0], [0.0])
        with pytest.raises(PreAggError, match="not a registered"):
            PreAggStore(moft, context.time, "hour", elements)

    def test_id_sets_are_sorted_uint32(self, fig1):
        _, _, _, store = fig1
        for cells in store._cells.values():
            for arr in list(cells.present) + list(cells.passers):
                assert arr.dtype == OID_DTYPE
                assert (np.diff(arr.astype(np.int64)) > 0).all()


class TestRunQueries:
    def test_full_run_matches_serial_scan(self, fig1):
        context, _, elements, store = fig1
        expected = objects_through(
            context, TARGET, [], moft_name="FMbus", use_preagg=False
        )
        full = (0, len(store.partition) - 1)
        assert store.objects_through(elements, *full) == expected

    def test_single_granule_matches_restricted_scan(self, fig1):
        context, moft, elements, store = fig1
        t, _, _ = moft.as_arrays()
        for g in range(len(store.partition)):
            lo, hi = store.partition.span(g, g)
            expected = objects_through(
                context, TARGET, [], moft_name="FMbus",
                window=(lo, hi), use_preagg=False,
            )
            assert store.objects_through(elements, g, g) == expected

    def test_distinct_subset_of_passers(self, synth):
        _, _, elements, store = synth
        full = (0, len(store.partition) - 1)
        distinct = store.distinct_objects(elements, *full)
        passers = store.objects_through(elements, *full)
        assert distinct <= passers

    def test_sample_count_matches_brute_force(self, synth):
        _, moft, elements, store = synth
        t, x, y = moft.as_arrays()
        expected = 0
        for polygon in elements.values():
            from repro.query.vectorized import polygon_contains_batch

            expected += int(polygon_contains_batch(polygon, x, y).sum())
        full = (0, len(store.partition) - 1)
        assert store.sample_count(elements, *full) == expected

    def test_dwell_matches_serial(self, synth):
        context, _, elements, store = synth
        expected = total_dwell_time(context, TARGET, [], use_preagg=False)
        full = (0, len(store.partition) - 1)
        assert math.isclose(
            store.dwell_time(elements, *full), expected,
            rel_tol=1e-9, abs_tol=1e-9,
        )

    def test_window_dwell_misaligned_matches_serial(self, synth):
        context, _, elements, store = synth
        window = (10.5, 40.5)
        assert not store.is_aligned(*window)
        expected = total_dwell_time(
            context, TARGET, [], window=window, use_preagg=False
        )
        assert math.isclose(
            store.window_dwell(elements, *window), expected,
            rel_tol=1e-9, abs_tol=1e-9,
        )

    def test_out_of_range_run_raises(self, fig1):
        _, _, elements, store = fig1
        with pytest.raises(PreAggError, match="out of range"):
            store.objects_through(elements, 0, len(store.partition))

    def test_unmaterialized_geometry_raises(self, fig1):
        _, _, _, store = fig1
        with pytest.raises(PreAggError, match="not materialized"):
            store.objects_through(["no-such-gid"], 0, 0)


class TestCells:
    def test_cell_decodes_consistently(self, fig1):
        _, _, elements, store = fig1
        total = 0
        for gid in store.gids:
            for member in store.partition.members:
                cell = store.cell(gid, member)
                assert isinstance(cell, PreAggCell)
                assert cell.distinct_count == len(cell.distinct_objects)
                assert cell.distinct_objects <= cell.passing_objects
                total += cell.samples
        full = (0, len(store.partition) - 1)
        assert total == store.sample_count(elements, *full)

    def test_rollup_cells_sum_to_full_run(self, synth):
        """Rolling every day into one month reproduces the full-run answers."""
        _, _, elements, store = synth
        rolled = store.rollup_cells("month")
        members = {member for (_, member) in rolled}
        assert len(members) == 1  # 50 hourly instants: one month
        full = (0, len(store.partition) - 1)
        assert sum(c.samples for c in rolled.values()) == store.sample_count(
            elements, *full
        )
        passers = set().union(
            *(c.passing_objects for c in rolled.values())
        )
        assert passers == store.objects_through(elements, *full)
        dwell = sum(c.dwell for c in rolled.values())
        assert math.isclose(
            dwell, store.dwell_time(elements, *full),
            rel_tol=1e-9, abs_tol=1e-9,
        )

    def test_rollup_straddling_parent_raises(self, fig1):
        # Fig1's 'Other' time-of-day interleaves 'Morning', so hour
        # granules cannot refine a timeOfDay partition.
        _, _, _, store = fig1
        with pytest.raises(RollupError):
            store.rollup_cells("timeOfDay")

    def test_as_cube_rollup_matches_cells(self, synth):
        _, _, elements, store = synth
        cube = store.as_cube()
        totals = cube.rollup({"granule": "month"}, "sum", "samples")
        full = (0, len(store.partition) - 1)
        assert sum(totals.values()) == store.sample_count(elements, *full)
        per_geometry = cube.fact_table.aggregate(
            "sum", "samples", group_by=["geometry"]
        )
        for (gid,), value in per_geometry.items():
            assert value == store.sample_count([gid], *full)


class TestStaleness:
    def test_fresh_store_is_a_noop(self):
        _, _, _, store = fig1_fixture()
        assert not store.is_stale()
        assert store.update() == "fresh"

    def test_append_then_delta_update(self):
        context, moft, elements, store = small_synth_fixture()
        rng = np.random.default_rng(3)
        boxes = [polygon.bbox for polygon in elements.values()]
        min_x = min(b.min_x for b in boxes)
        max_x = max(b.max_x for b in boxes)
        min_y = min(b.min_y for b in boxes)
        max_y = max(b.max_y for b in boxes)
        oids, ts, xs, ys = [], [], [], []
        for oid in ("fresh-1", "fresh-2"):
            for t in range(40, 50):
                oids.append(oid)
                ts.append(float(t))
                xs.append(float(rng.uniform(min_x, max_x)))
                ys.append(float(rng.uniform(min_y, max_y)))
        moft.extend_columns(oids, ts, xs, ys)
        assert store.is_stale()
        assert store.update() == "delta"
        assert not store.is_stale()
        # The updated store equals one rebuilt from scratch.
        rebuilt = PreAggStore(moft, context.time, "day", elements)
        full = (0, len(store.partition) - 1)
        assert store.objects_through(elements, *full) == rebuilt.objects_through(
            elements, *full
        )
        assert store.sample_count(elements, *full) == rebuilt.sample_count(
            elements, *full
        )
        assert math.isclose(
            store.dwell_time(elements, *full),
            rebuilt.dwell_time(elements, *full),
            rel_tol=1e-9, abs_tol=1e-9,
        )

    def test_out_of_order_append_takes_delta_path(self):
        """Regression: this exact case used to return ``"rebuild"``.

        An earlier instant for an existing object changes connecting
        segments already folded in; the store now retracts and refolds
        just that object instead of rebuilding, and still matches a
        from-scratch build exactly.
        """
        context, moft, elements, store = small_synth_fixture()
        oid = moft.oid_column()[0]
        moft.extend_columns([oid], [0.0], [5.0], [5.0], validate=False)
        assert store.update() == "delta"
        assert not store.is_stale()
        rebuilt = PreAggStore(moft, context.time, "day", elements)
        full = (0, len(store.partition) - 1)
        assert store.objects_through(elements, *full) == rebuilt.objects_through(
            elements, *full
        )
        assert store.sample_count(elements, *full) == rebuilt.sample_count(
            elements, *full
        )
        assert math.isclose(
            store.dwell_time(elements, *full),
            rebuilt.dwell_time(elements, *full),
            rel_tol=1e-9, abs_tol=1e-9,
        )
        for g in range(len(store.partition)):
            assert store.objects_through(
                elements, g, g
            ) == rebuilt.objects_through(elements, g, g)
            assert store.distinct_objects(
                elements, g, g
            ) == rebuilt.distinct_objects(elements, g, g)

    def test_out_of_order_interleaved_with_in_order_objects(self):
        """A mixed delta batch: one reordered object among fresh ones."""
        context, moft, elements, store = small_synth_fixture()
        oid = moft.oid_column()[0]
        moft.extend_columns(
            [oid, "late-joiner", "late-joiner"],
            [3.0, 45.0, 47.0],
            [2.0, 1.0, 3.0],
            [2.0, 1.0, 3.0],
            validate=False,
        )
        assert store.update() == "delta"
        rebuilt = PreAggStore(moft, context.time, "day", elements)
        full = (0, len(store.partition) - 1)
        assert store.objects_through(elements, *full) == rebuilt.objects_through(
            elements, *full
        )
        assert store.sample_count(elements, *full) == rebuilt.sample_count(
            elements, *full
        )
        assert math.isclose(
            store.dwell_time(elements, *full),
            rebuilt.dwell_time(elements, *full),
            rel_tol=1e-9, abs_tol=1e-9,
        )

    def test_clone_is_independent_and_equal(self):
        """A clone answers identically and isolates subsequent folds."""
        context, moft, elements, store = small_synth_fixture()
        full = (0, len(store.partition) - 1)
        before_count = store.sample_count(elements, *full)
        before_through = store.objects_through(elements, *full)
        clone = store.clone()
        assert clone.sample_count(elements, *full) == before_count
        assert clone.objects_through(elements, *full) == before_through
        moft.extend_columns(["c-new"], [49.0], [2.0], [2.0])
        assert clone.update() == "delta"
        # The source store never saw the fold.
        assert store.sample_count(elements, *full) == before_count
        assert store.objects_through(elements, *full) == before_through
        rebuilt = PreAggStore(moft, context.time, "day", elements)
        assert clone.objects_through(elements, *full) == rebuilt.objects_through(
            elements, *full
        )

    def test_dimension_change_rebuilds(self):
        context, _, _, store = fig1_fixture()
        context.time.instance.set_rollup("hour", 99, "timeOfDay", "Other")
        assert store.is_stale()
        assert store.update() == "rebuild"
        assert not store.is_stale()


class TestMerge:
    def test_merge_equals_direct_build(self):
        context, moft, elements, _ = small_synth_fixture()
        direct = PreAggStore(moft, context.time, "day", elements)
        shards = [
            PreAggStore(shard, context.time, "day", elements)
            for shard in moft.partition_by_objects(4)
        ]
        merged = PreAggStore.merge(shards, moft)
        assert not merged.is_stale()
        full = (0, len(direct.partition) - 1)
        for g in range(len(direct.partition)):
            assert merged.objects_through(
                elements, g, g
            ) == direct.objects_through(elements, g, g)
        assert merged.objects_through(elements, *full) == direct.objects_through(
            elements, *full
        )
        assert merged.sample_count(elements, *full) == direct.sample_count(
            elements, *full
        )
        assert math.isclose(
            merged.dwell_time(elements, *full),
            direct.dwell_time(elements, *full),
            rel_tol=1e-9, abs_tol=1e-9,
        )

    def test_merge_zero_stores_raises(self, fig1):
        _, moft, _, _ = fig1
        with pytest.raises(PreAggError, match="zero"):
            PreAggStore.merge([], moft)

    def test_merge_overlapping_objects_raises(self, fig1):
        _, moft, _, store = fig1
        with pytest.raises(PreAggError, match="share objects"):
            PreAggStore.merge([store, store], moft)

    def test_merge_mismatched_granules_raises(self):
        context, moft, elements, store = small_synth_fixture()
        other = PreAggStore(moft, context.time, "month", elements)
        with pytest.raises(PreAggError, match="disagree"):
            PreAggStore.merge([store, other], moft)
