"""Tests for the cube view: rollup, slice, dice, drilldown."""

import pytest

from repro.errors import SchemaError
from repro.olap import (
    Cube,
    DimensionAttribute,
    DimensionInstance,
    DimensionSchema,
    FactTable,
    FactTableSchema,
)


def build_cube() -> Cube:
    time_schema = DimensionSchema("Time", [("hour", "dayPart")])
    time_inst = DimensionInstance(time_schema)
    for hour in (8, 9, 10, 11):
        time_inst.set_rollup("hour", hour, "dayPart", "Morning")
    for hour in (13, 14):
        time_inst.set_rollup("hour", hour, "dayPart", "Afternoon")

    geo_schema = DimensionSchema("Geo", [("store", "city")])
    geo_inst = DimensionInstance(geo_schema)
    geo_inst.set_rollup("store", "s1", "city", "antwerp")
    geo_inst.set_rollup("store", "s2", "city", "antwerp")
    geo_inst.set_rollup("store", "s3", "city", "brussels")

    schema = FactTableSchema(
        "sales",
        [
            DimensionAttribute("hour", "Time", "hour"),
            DimensionAttribute("store", "Geo", "store"),
        ],
        ["amount"],
    )
    table = FactTable(schema)
    table.insert_many(
        [
            {"hour": 8, "store": "s1", "amount": 10.0},
            {"hour": 9, "store": "s2", "amount": 20.0},
            {"hour": 13, "store": "s1", "amount": 30.0},
            {"hour": 14, "store": "s3", "amount": 40.0},
            {"hour": 10, "store": "s3", "amount": 50.0},
        ]
    )
    return Cube(table, {"Time": time_inst, "Geo": geo_inst})


class TestConstruction:
    def test_missing_dimension_rejected(self):
        cube = build_cube()
        with pytest.raises(SchemaError):
            Cube(cube.fact_table, {"Time": cube.dimensions["Time"]})

    def test_unknown_level_rejected(self):
        cube = build_cube()
        schema = FactTableSchema(
            "bad",
            [DimensionAttribute("hour", "Time", "galaxy")],
            ["amount"],
        )
        with pytest.raises(SchemaError):
            Cube(FactTable(schema), cube.dimensions)

    def test_len(self):
        assert len(build_cube()) == 5


class TestRollup:
    def test_rollup_one_dimension(self):
        cube = build_cube()
        result = cube.rollup({"hour": "dayPart"}, "SUM", "amount")
        assert result[("Morning",)] == 80.0
        assert result[("Afternoon",)] == 70.0

    def test_rollup_two_dimensions(self):
        cube = build_cube()
        result = cube.rollup(
            {"hour": "dayPart", "store": "city"}, "SUM", "amount"
        )
        assert result[("Morning", "antwerp")] == 30.0
        assert result[("Morning", "brussels")] == 50.0
        assert result[("Afternoon", "antwerp")] == 30.0
        assert result[("Afternoon", "brussels")] == 40.0

    def test_rollup_count(self):
        cube = build_cube()
        result = cube.rollup({"store": "city"}, "COUNT")
        assert result[("antwerp",)] == 3
        assert result[("brussels",)] == 2

    def test_drilldown_same_as_rollup_finer(self):
        cube = build_cube()
        fine = cube.drilldown({"hour": "hour"}, "SUM", "amount")
        assert fine[(8,)] == 10.0
        assert len(fine) == 5


class TestSliceDice:
    def test_slice_by_member(self):
        cube = build_cube().slice("store", "s1")
        assert len(cube) == 2
        result = cube.rollup({"hour": "dayPart"}, "SUM", "amount")
        assert result[("Morning",)] == 10.0

    def test_slice_at_coarser_level(self):
        cube = build_cube().slice_at_level("store", "city", "antwerp")
        assert len(cube) == 3

    def test_dice_with_predicate(self):
        cube = build_cube().dice(lambda row: row["amount"] >= 30.0)
        assert len(cube) == 3

    def test_slice_unknown_attribute_raises(self):
        with pytest.raises(SchemaError):
            build_cube().slice("galaxy", "x")
