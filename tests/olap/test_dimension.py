"""Tests for dimension schemas and instances (HMV model)."""

import pytest

from repro.errors import RollupError, SchemaError
from repro.olap import ALL_LEVEL, ALL_MEMBER, DimensionInstance, DimensionSchema


def geo_schema() -> DimensionSchema:
    """city -> province -> country, with a parallel city -> region branch."""
    return DimensionSchema(
        "Geography",
        [
            ("city", "province"),
            ("province", "country"),
            ("city", "region"),
            ("region", "country"),
        ],
    )


def populated_instance() -> DimensionInstance:
    inst = DimensionInstance(geo_schema())
    inst.set_rollup("city", "antwerp", "province", "antwerp-prov")
    inst.set_rollup("province", "antwerp-prov", "country", "belgium")
    inst.set_rollup("city", "antwerp", "region", "flanders")
    inst.set_rollup("region", "flanders", "country", "belgium")
    return inst


class TestSchema:
    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            DimensionSchema("", [("a", "b")])

    def test_no_edges_rejected(self):
        with pytest.raises(SchemaError):
            DimensionSchema("D", [])

    def test_self_loop_rejected(self):
        with pytest.raises(SchemaError):
            DimensionSchema("D", [("a", "a")])

    def test_cycle_rejected(self):
        with pytest.raises(SchemaError):
            DimensionSchema("D", [("a", "b"), ("b", "c"), ("c", "a")])

    def test_two_bottoms_rejected(self):
        with pytest.raises(SchemaError):
            DimensionSchema("D", [("a", "c"), ("b", "c")])

    def test_all_added_automatically(self):
        schema = DimensionSchema("D", [("a", "b")])
        assert ALL_LEVEL in schema.levels
        assert schema.rolls_up_to("b", ALL_LEVEL)

    def test_bottom_level(self):
        assert geo_schema().bottom_level == "city"

    def test_parents_children(self):
        schema = geo_schema()
        assert schema.parents("city") == {"province", "region"}
        assert schema.children("country") == {"province", "region"}

    def test_rolls_up_to_transitive(self):
        schema = geo_schema()
        assert schema.rolls_up_to("city", "country")
        assert schema.rolls_up_to("city", "city")
        assert not schema.rolls_up_to("country", "city")

    def test_path(self):
        schema = geo_schema()
        path = schema.path("city", "country")
        assert path[0] == "city"
        assert path[-1] == "country"
        assert len(path) == 3

    def test_path_incomparable_raises(self):
        schema = geo_schema()
        with pytest.raises(SchemaError):
            schema.path("province", "region")

    def test_all_paths(self):
        schema = geo_schema()
        paths = schema.all_paths("city", "country")
        assert len(paths) == 2

    def test_unknown_level_raises(self):
        with pytest.raises(SchemaError):
            geo_schema().parents("galaxy")


class TestInstance:
    def test_members_after_rollup(self):
        inst = populated_instance()
        assert inst.members("city") == {"antwerp"}
        assert inst.members("country") == {"belgium"}

    def test_all_level_member_fixed(self):
        inst = populated_instance()
        assert inst.members(ALL_LEVEL) == {ALL_MEMBER}
        with pytest.raises(RollupError):
            inst.add_member(ALL_LEVEL, "everything")

    def test_direct_rollup(self):
        inst = populated_instance()
        assert inst.rollup("antwerp", "city", "province") == "antwerp-prov"

    def test_composed_rollup(self):
        inst = populated_instance()
        assert inst.rollup("antwerp", "city", "country") == "belgium"

    def test_rollup_to_all(self):
        inst = populated_instance()
        assert inst.rollup("antwerp", "city", ALL_LEVEL) == ALL_MEMBER

    def test_missing_rollup_raises(self):
        inst = populated_instance()
        inst.add_member("city", "ghent")
        with pytest.raises(RollupError):
            inst.rollup("ghent", "city", "province")

    def test_try_rollup_returns_none(self):
        inst = populated_instance()
        inst.add_member("city", "ghent")
        assert inst.try_rollup("ghent", "city", "province") is None

    def test_non_edge_rollup_rejected(self):
        inst = populated_instance()
        with pytest.raises(RollupError):
            inst.set_rollup("city", "antwerp", "country", "belgium")

    def test_remap_rejected(self):
        inst = populated_instance()
        with pytest.raises(RollupError):
            inst.set_rollup("city", "antwerp", "province", "other-prov")

    def test_descendants(self):
        inst = populated_instance()
        inst.set_rollup("city", "ghent", "province", "east-flanders")
        inst.set_rollup("province", "east-flanders", "country", "belgium")
        assert inst.descendants("belgium", "country", "city") == {
            "antwerp",
            "ghent",
        }

    def test_descendants_incomparable_raises(self):
        inst = populated_instance()
        with pytest.raises(RollupError):
            inst.descendants("flanders", "region", "province")


class TestConsistency:
    def test_consistent_instance_passes(self):
        populated_instance().check_consistency()

    def test_missing_edge_rollup_detected(self):
        inst = populated_instance()
        inst.add_member("city", "ghent")
        with pytest.raises(RollupError):
            inst.check_consistency()

    def test_path_divergence_detected(self):
        inst = DimensionInstance(geo_schema())
        inst.set_rollup("city", "lille", "province", "nord")
        inst.set_rollup("province", "nord", "country", "france")
        inst.set_rollup("city", "lille", "region", "flanders")
        # Diverging: via region, lille ends in belgium; via province, france.
        inst.set_rollup("region", "flanders", "country", "belgium")
        with pytest.raises(RollupError, match="ambiguous"):
            inst.check_consistency()
