"""Tests for fact tables and rollup along dimensions."""

import numpy as np
import pytest

from repro.errors import AggregationError, SchemaError
from repro.olap import (
    DimensionAttribute,
    DimensionInstance,
    DimensionSchema,
    FactTable,
    FactTableSchema,
)


def time_dim() -> DimensionInstance:
    schema = DimensionSchema("Time", [("hour", "dayPart")])
    inst = DimensionInstance(schema)
    for hour in range(6, 12):
        inst.set_rollup("hour", hour, "dayPart", "Morning")
    for hour in range(12, 18):
        inst.set_rollup("hour", hour, "dayPart", "Afternoon")
    return inst


def sales_schema() -> FactTableSchema:
    return FactTableSchema(
        "sales",
        [DimensionAttribute("hour", "Time", "hour")],
        ["amount"],
    )


def sales_table() -> FactTable:
    table = FactTable(sales_schema())
    table.insert_many(
        [
            {"hour": 9, "amount": 10.0},
            {"hour": 10, "amount": 20.0},
            {"hour": 14, "amount": 5.0},
            {"hour": 15, "amount": 15.0},
        ]
    )
    return table


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            FactTableSchema(
                "bad",
                [DimensionAttribute("x", "D", "l")],
                ["x"],
            )

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            FactTableSchema("bad", [], [])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            FactTableSchema("", [], ["m"])

    def test_columns_order(self):
        assert sales_schema().columns == ["hour", "amount"]

    def test_attribute_lookup(self):
        attr = sales_schema().attribute("hour")
        assert attr.dimension == "Time"
        with pytest.raises(SchemaError):
            sales_schema().attribute("amount")


class TestFactTable:
    def test_insert_and_len(self):
        assert len(sales_table()) == 4

    def test_insert_missing_column_raises(self):
        table = FactTable(sales_schema())
        with pytest.raises(SchemaError):
            table.insert({"hour": 9})

    def test_rows_roundtrip(self):
        rows = list(sales_table().rows())
        assert rows[0] == {"hour": 9, "amount": 10.0}
        assert len(rows) == 4

    def test_column_copy_is_independent(self):
        table = sales_table()
        col = table.column("hour")
        col.append(99)
        assert len(table.column("hour")) == 4

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            sales_table().column("nope")

    def test_measure_array(self):
        arr = sales_table().measure_array("amount")
        assert isinstance(arr, np.ndarray)
        assert arr.sum() == pytest.approx(50.0)

    def test_measure_array_rejects_dimension_attr(self):
        with pytest.raises(SchemaError):
            sales_table().measure_array("hour")

    def test_select(self):
        morning = sales_table().select(lambda row: row["hour"] < 12)
        assert len(morning) == 2

    def test_aggregate(self):
        result = sales_table().aggregate("SUM", "amount", group_by=["hour"])
        assert result[(9,)] == 10.0

    def test_aggregate_unknown_column_raises(self):
        with pytest.raises(AggregationError):
            sales_table().aggregate("SUM", "nope")
        with pytest.raises(AggregationError):
            sales_table().aggregate("COUNT", None, group_by=["nope"])


class TestRolledUp:
    def test_rollup_to_day_part(self):
        table = sales_table().rolled_up({"Time": time_dim()}, "hour", "dayPart")
        result = table.aggregate("SUM", "amount", group_by=["hour"])
        assert result[("Morning",)] == 30.0
        assert result[("Afternoon",)] == 20.0

    def test_rollup_updates_schema_level(self):
        table = sales_table().rolled_up({"Time": time_dim()}, "hour", "dayPart")
        assert table.schema.attribute("hour").level == "dayPart"

    def test_rollup_missing_dimension_raises(self):
        with pytest.raises(SchemaError):
            sales_table().rolled_up({}, "hour", "dayPart")
