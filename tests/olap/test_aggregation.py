"""Tests for the γ aggregation operator (Definition 7)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AggregationError
from repro.olap import AggregateFunction, aggregate, aggregate_single, distinct_count

ROWS = [
    {"oid": "O1", "hour": 9, "speed": 30.0},
    {"oid": "O1", "hour": 10, "speed": 50.0},
    {"oid": "O2", "hour": 9, "speed": 40.0},
    {"oid": "O2", "hour": 10, "speed": 60.0},
    {"oid": "O3", "hour": 9, "speed": 20.0},
]


class TestParse:
    def test_parse_upper_and_lower(self):
        assert AggregateFunction.parse("count") is AggregateFunction.COUNT
        assert AggregateFunction.parse(" AVG ") is AggregateFunction.AVG

    def test_parse_unknown_raises(self):
        with pytest.raises(AggregationError):
            AggregateFunction.parse("median")


class TestApply:
    def test_each_function(self):
        values = [3, 1, 2]
        assert AggregateFunction.MIN.apply(values) == 1
        assert AggregateFunction.MAX.apply(values) == 3
        assert AggregateFunction.COUNT.apply(values) == 3
        assert AggregateFunction.SUM.apply(values) == 6
        assert AggregateFunction.AVG.apply(values) == 2

    def test_empty_group_raises(self):
        with pytest.raises(AggregationError):
            AggregateFunction.SUM.apply([])

    def test_non_numeric_sum_raises(self):
        with pytest.raises(AggregationError):
            AggregateFunction.SUM.apply(["a", "b"])

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1))
    def test_min_max_bound_avg(self, values):
        low = AggregateFunction.MIN.apply(values)
        high = AggregateFunction.MAX.apply(values)
        mean = AggregateFunction.AVG.apply(values)
        assert low <= mean <= high

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1))
    def test_sum_equals_count_times_avg(self, values):
        total = AggregateFunction.SUM.apply(values)
        count = AggregateFunction.COUNT.apply(values)
        mean = AggregateFunction.AVG.apply(values)
        assert total == pytest.approx(count * mean)


class TestAggregate:
    def test_global_count(self):
        assert aggregate(ROWS, "COUNT", None) == {(): 5}

    def test_group_by_hour_count(self):
        result = aggregate(ROWS, "COUNT", None, group_by=["hour"])
        assert result == {(9,): 3, (10,): 2}

    def test_group_by_hour_avg_speed(self):
        result = aggregate(ROWS, "AVG", "speed", group_by=["hour"])
        assert result[(9,)] == pytest.approx(30.0)
        assert result[(10,)] == pytest.approx(55.0)

    def test_group_by_two_attributes(self):
        result = aggregate(ROWS, "SUM", "speed", group_by=["oid", "hour"])
        assert result[("O1", 9)] == 30.0
        assert len(result) == 5

    def test_missing_group_attribute_raises(self):
        with pytest.raises(AggregationError):
            aggregate(ROWS, "COUNT", None, group_by=["nothere"])

    def test_missing_measure_raises(self):
        with pytest.raises(AggregationError):
            aggregate(ROWS, "SUM", "nothere")

    def test_measure_required_for_numeric_functions(self):
        with pytest.raises(AggregationError):
            aggregate(ROWS, "SUM", None)

    def test_empty_relation_gives_empty_result(self):
        assert aggregate([], "COUNT", None, group_by=["hour"]) == {}


class TestAggregateSingle:
    def test_single_value(self):
        assert aggregate_single(ROWS, "MAX", "speed") == 60.0

    def test_count_of_empty_is_zero(self):
        assert aggregate_single([], "COUNT") == 0

    def test_sum_of_empty_raises(self):
        with pytest.raises(AggregationError):
            aggregate_single([], "SUM", "speed")


class TestDistinctCount:
    def test_distinct_objects(self):
        assert distinct_count(ROWS, "oid") == 3

    def test_missing_attribute_raises(self):
        with pytest.raises(AggregationError):
            distinct_count(ROWS, "nothere")

    def test_empty(self):
        assert distinct_count([], "oid") == 0
