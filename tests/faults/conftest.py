"""Shared fixtures for the chaos / fault-injection suite.

The worlds are the exact two the differential suite uses (the paper's
Figure 1 instance and the 10k-sample synthetic city), re-exported from
the parallel suite's conftest so both suites exercise the same bits; on
top of them sit session-scoped *serial reference answers* computed once,
so every chaos example compares against the seed path without re-running
it per example.
"""

from __future__ import annotations

import pytest

from repro.gis import NODE, POLYGON, POLYLINE
from repro.query.evaluator import count_objects_through

from tests.parallel.conftest import (  # noqa: F401  (re-exported fixtures)
    FIG1_BINDINGS,
    SYNTH_BINDINGS,
    fig1,
    fig1_context,
    synth_world,
)

FIG1_TARGET = ("Ln", POLYGON)
FIG1_CONSTRAINTS = [
    ("intersects", ("Lr", POLYLINE)),
    ("contains", ("Ls", NODE)),
]
SYNTH_TARGET = ("Ln", POLYGON)
SYNTH_CONSTRAINTS = [("intersects", ("Lr", POLYLINE))]


@pytest.fixture(scope="session")
def fig1_count_ref(fig1_context) -> int:
    """Serial reference for the Figure 1 running-example count (= 5)."""
    value = count_objects_through(
        fig1_context, FIG1_TARGET, FIG1_CONSTRAINTS, moft_name="FMbus"
    )
    assert value == 5  # Remark 1 of the paper
    return value


@pytest.fixture(scope="session")
def synth_count_ref(synth_world) -> int:
    """Serial reference count over the 10k-sample synthetic city."""
    return count_objects_through(
        synth_world.context, SYNTH_TARGET, SYNTH_CONSTRAINTS
    )
