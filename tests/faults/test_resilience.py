"""Unit tests for the resilient fan-out layer (``repro.parallel.backends``).

``resilient_map`` owns the exact-or-error contract: every item's value
accounted for in order, or a typed :class:`ShardExecutionError` carrying
the failure records and the injected-fault trace.  These tests drive it
directly with tiny arithmetic tasks, one behavior per test: retries per
fault kind, timeouts, deterministic backoff, the degradation ladder, and
the completeness check that refuses partial merges.
"""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError, PreAggError, ShardExecutionError
from repro.faults import FaultInjected, FaultPlan, FaultSpec
from repro.gis import POLYGON
from repro.obs import PipelineStats
from repro.parallel import (
    DEGRADATION_ORDER,
    RetryPolicy,
    SerialBackend,
    ShardedExecutor,
    TaskFailure,
    ThreadBackend,
    degraded_backend,
    resilient_map,
)
from repro.parallel.backends import ExecutionBackend, ProcessBackend
from repro.preagg import PreAggStore
from repro.synth import figure1_instance

pytestmark = pytest.mark.faults


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise RuntimeError(f"genuine worker failure on {x}")


class _ForgetfulBackend(ExecutionBackend):
    """A broken backend that loses the outcome of every odd-indexed item."""

    name = "forgetful"

    def run_tasks(self, fn, items, timeout=None):
        return super().run_tasks(fn, items[: (len(items) + 1) // 2], timeout)


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.timeout_s is None
        assert policy.backoff_s == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"timeout_s": 0.0},
            {"timeout_s": -1.0},
            {"backoff_s": -0.1},
            {"backoff_multiplier": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(EvaluationError):
            RetryPolicy(**kwargs)

    def test_backoff_is_deterministic_exponential(self):
        policy = RetryPolicy(backoff_s=0.5, backoff_multiplier=3.0)
        assert [policy.backoff_for(r) for r in (1, 2, 3)] == [0.5, 1.5, 4.5]


class TestDegradationLadder:
    def test_order(self):
        assert DEGRADATION_ORDER == ("processes", "threads", "serial")

    def test_ladder_steps(self):
        step1 = degraded_backend(ProcessBackend(max_workers=3))
        assert isinstance(step1, ThreadBackend)
        assert step1.max_workers == 3  # pool sizing survives the step
        step2 = degraded_backend(step1)
        assert isinstance(step2, SerialBackend)
        assert degraded_backend(step2) is None

    def test_unknown_backend_degrades_straight_to_serial(self):
        assert isinstance(
            degraded_backend(_ForgetfulBackend()), SerialBackend
        )


class TestResilientMapHappyPath:
    def test_plain_map_semantics(self):
        assert resilient_map(SerialBackend(), _square, [1, 2, 3]) == [1, 4, 9]

    def test_empty_items(self):
        assert resilient_map(SerialBackend(), _square, []) == []

    def test_zero_fault_plan_has_zero_overhead_counters(self):
        obs = PipelineStats()
        plan = FaultPlan.none()
        out = resilient_map(
            ThreadBackend(), _square, [1, 2, 3, 4],
            policy=RetryPolicy(timeout_s=30.0), plan=plan, obs=obs,
        )
        assert out == [1, 4, 9, 16]
        assert plan.trace == ()
        for name in (
            "fault_injected",
            "task_retries",
            "task_timeouts",
            "backend_degradations",
        ):
            assert obs.count(name) == 0
        assert obs.seconds("retry_backoff") == 0.0

    def test_invalid_failure_mode(self):
        with pytest.raises(EvaluationError, match="failure mode"):
            resilient_map(
                SerialBackend(), _square, [1], failure_mode="shrug"
            )


class TestFaultKindsRetryToSuccess:
    @pytest.mark.parametrize("kind", ["raise", "drop", "truncate"])
    def test_single_fault_retried(self, kind):
        obs = PipelineStats()
        plan = FaultPlan.single(kind, task_index=1)
        out = resilient_map(
            SerialBackend(), _square, [1, 2, 3], plan=plan, obs=obs
        )
        assert out == [1, 4, 9]
        assert [f.kind for f in plan.trace] == [kind]
        assert obs.count("fault_injected") == 1
        assert obs.count("task_retries") == 1

    def test_latency_fault_trips_timeout_then_recovers(self):
        obs = PipelineStats()
        plan = FaultPlan.single("latency", task_index=0, latency_s=99.0)
        out = resilient_map(
            SerialBackend(), _square, [5],
            policy=RetryPolicy(timeout_s=5.0), plan=plan, obs=obs,
        )
        assert out == [25]
        assert obs.count("task_timeouts") == 1
        assert obs.count("task_retries") == 1

    def test_latency_fault_without_timeout_is_harmless(self):
        obs = PipelineStats()
        plan = FaultPlan.single("latency", task_index=0, latency_s=99.0)
        out = resilient_map(SerialBackend(), _square, [5], plan=plan, obs=obs)
        assert out == [25]
        # The fault fired (trace records it) but nothing failed.
        assert [f.kind for f in plan.trace] == ["latency"]
        assert obs.count("task_retries") == 0

    def test_genuine_exception_retries_too(self):
        # Faults aside, a flaky worker function exhausts retries and the
        # error record carries the real exception.
        with pytest.raises(ShardExecutionError) as excinfo:
            resilient_map(
                SerialBackend(), _boom, [7],
                policy=RetryPolicy(max_retries=1),
            )
        failures = excinfo.value.failures
        assert len(failures) == 2  # initial try + 1 retry
        assert all(isinstance(f.error, RuntimeError) for f in failures)
        assert excinfo.value.faults == ()  # nothing was injected


class TestFailureModes:
    def test_raise_mode_fails_fast_with_trace(self):
        plan = FaultPlan.single("raise", task_index=0)
        with pytest.raises(ShardExecutionError) as excinfo:
            resilient_map(
                SerialBackend(), _square, [1, 2],
                plan=plan, failure_mode="raise",
            )
        err = excinfo.value
        assert "failure_mode='raise'" in str(err)
        assert len(err.failures) == 1
        assert err.failures[0].fault is plan.fault_for(0, 0)
        assert err.faults == plan.trace
        assert isinstance(err.failures[0].error, FaultInjected)

    def test_retry_mode_exhaustion_raises_typed_error(self):
        obs = PipelineStats()
        plan = FaultPlan.always("drop", n_tasks=2)
        with pytest.raises(ShardExecutionError) as excinfo:
            resilient_map(
                SerialBackend(), _square, [1, 2],
                policy=RetryPolicy(max_retries=2), plan=plan, obs=obs,
                failure_mode="retry",
            )
        err = excinfo.value
        assert "max_retries=2" in str(err)
        # 2 tasks x (1 try + 2 retries), every one an injected drop.
        assert len(err.failures) == 6
        assert all(f.status == "dropped" for f in err.failures)
        assert len(err.faults) == 6

    def test_degrade_mode_rescues_on_the_next_tier(self):
        obs = PipelineStats()
        # Task 0 faults on attempts 0 and 1: exhausts max_retries=1 on
        # threads, degrades, and succeeds at serial (attempt 2 is clean).
        plan = FaultPlan(
            [FaultSpec("raise", 0, 0), FaultSpec("raise", 0, 1)]
        )
        out = resilient_map(
            ThreadBackend(), _square, [3, 4],
            policy=RetryPolicy(max_retries=1), plan=plan, obs=obs,
            failure_mode="degrade",
        )
        assert out == [9, 16]
        assert obs.count("backend_degradations") == 1

    def test_degrade_mode_at_serial_raises(self):
        plan = FaultPlan.always("truncate", n_tasks=1)
        with pytest.raises(ShardExecutionError, match="nothing left"):
            resilient_map(
                SerialBackend(), _square, [1],
                policy=RetryPolicy(max_retries=0), plan=plan,
                failure_mode="degrade",
            )

    def test_forgetful_backend_lost_outcomes_become_drops(self):
        # A backend returning too few outcomes must not truncate the
        # result silently: in retry mode with no budget it is an error...
        with pytest.raises(ShardExecutionError) as excinfo:
            resilient_map(
                _ForgetfulBackend(), _square, [1, 2, 3, 4],
                policy=RetryPolicy(max_retries=0), failure_mode="retry",
            )
        assert any(f.status == "dropped" for f in excinfo.value.failures)

    def test_forgetful_backend_degrades_to_serial_and_completes(self):
        # ...and in degrade mode the run steps to serial and completes.
        obs = PipelineStats()
        out = resilient_map(
            _ForgetfulBackend(), _square, [1, 2, 3, 4],
            policy=RetryPolicy(max_retries=0), obs=obs,
            failure_mode="degrade",
        )
        assert out == [1, 4, 9, 16]
        assert obs.count("backend_degradations") == 1


class TestBackoff:
    def test_backoff_sleeps_deterministically_via_injected_sleep(self):
        slept = []
        policy = RetryPolicy(
            max_retries=2, backoff_s=0.25, backoff_multiplier=2.0,
            sleep=slept.append,
        )
        plan = FaultPlan(
            [FaultSpec("raise", 0, 0), FaultSpec("raise", 0, 1)]
        )
        obs = PipelineStats()
        out = resilient_map(
            SerialBackend(), _square, [6], policy=policy, plan=plan, obs=obs
        )
        assert out == [36]
        assert slept == [0.25, 0.5]  # exponential, no jitter
        assert obs.timer("retry_backoff").calls == 2

    def test_zero_backoff_never_calls_sleep(self):
        slept = []
        policy = RetryPolicy(max_retries=2, sleep=slept.append)
        plan = FaultPlan.single("drop", task_index=0)
        resilient_map(SerialBackend(), _square, [1], policy=policy, plan=plan)
        assert slept == []


class TestTaskFailure:
    def test_describe_marks_injected_faults(self):
        plain = TaskFailure(2, 0, "timeout", "threads")
        assert "[injected]" not in plain.describe()
        injected = TaskFailure(
            2, 0, "dropped", "threads", fault=FaultSpec("drop", 2, 0)
        )
        assert "[injected]" in injected.describe()


class TestExecutorResilienceWiring:
    def test_invalid_failure_mode_rejected(self):
        with pytest.raises(EvaluationError, match="failure mode"):
            ShardedExecutor(failure_mode="panic")

    def test_fast_path_leaves_no_resilience_counters(self):
        context = figure1_instance().context()
        executor = ShardedExecutor(backend="serial", n_shards=3)
        from tests.faults.conftest import FIG1_CONSTRAINTS, FIG1_TARGET

        assert executor.count_objects_through(
            context, FIG1_TARGET, FIG1_CONSTRAINTS, moft_name="FMbus"
        ) == 5
        for name in (
            "fault_injected",
            "task_retries",
            "task_timeouts",
            "backend_degradations",
        ):
            assert name not in executor.obs.counters

    def test_repr_shows_failure_mode(self):
        executor = ShardedExecutor(failure_mode="degrade")
        assert "failure_mode='degrade'" in repr(executor)


class TestPreAggMergeCompleteness:
    def test_merge_refuses_missing_shard_store(self):
        """Definition 4 summability: a merge must cover every MOFT row."""
        context = figure1_instance().context()
        moft = context.moft("FMbus")
        elements = context.gis.layer("Ln").elements(POLYGON)
        snapshot = (moft.version, len(moft))
        shards = [s for s in moft.partition_by_objects(3) if len(s)]
        assert len(shards) >= 2
        stores = [
            PreAggStore(
                shard, context.time, "hour", elements,
                layer="Ln", kind=POLYGON,
            )
            for shard in shards
        ]
        merged = PreAggStore.merge(stores, moft, snapshot)
        assert not merged.is_stale()
        with pytest.raises(PreAggError, match="refusing"):
            PreAggStore.merge(stores[:-1], moft, snapshot)
