"""Chaos differential campaign: the engine under seeded fault plans.

The contract under test is *exact-or-error*: whenever the resilient
sharded engine reports success under an injected fault plan, its answer
is bit-equal to the seed serial path; whenever it cannot recover, it
raises a typed :class:`~repro.errors.ShardExecutionError` carrying the
injected-fault trace — a wrong answer is never an outcome.

Two tiers:

* fixed-seed smoke tests (marked ``faults``) — fast, deterministic,
  run as their own CI lane on every push; they pin both branches of the
  contract (a forced fault storm must error with a full trace, a
  single-fault plan must recover exactly) on the Figure 1 world and the
  10k synthetic city, across ``count_objects_through``,
  ``total_dwell_time`` (store built under faults) and Piet-QL
  ``THROUGH RESULT``;
* hypothesis campaigns (marked ``slow``) — generated (seed, rate,
  shards, backend, mode, budget) tuples, deep-searched nightly with
  ``--hypothesis-profile=ci``.  A failing example replays from its
  seed alone: fault plans draw from seeded streams, backoff has no
  jitter, and latency faults inflate *reported* time only.
"""

from __future__ import annotations

import math
from typing import Optional

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShardExecutionError
from repro.faults import FaultPlan
from repro.gis import POLYGON
from repro.parallel import RetryPolicy, ShardedExecutor, ShardedPietQLExecutor
from repro.pietql.executor import PietQLExecutor
from repro.query.aggregate import total_dwell_time
from repro.synth import figure1_instance

from tests.faults.conftest import (
    FIG1_BINDINGS,
    FIG1_CONSTRAINTS,
    FIG1_TARGET,
    SYNTH_BINDINGS,
    SYNTH_CONSTRAINTS,
    SYNTH_TARGET,
)
from tests.parallel.oracle import pietql_fingerprint

FIG1_QUERY = (
    "SELECT layer.neighborhoods FROM Fig1 "
    "WHERE intersection(layer.rivers, layer.neighborhoods) "
    "AND contains(layer.neighborhoods, layer.schools) "
    "| COUNT OBJECTS FROM FMbus THROUGH RESULT"
)
SYNTH_QUERY = (
    "SELECT layer.cities FROM City "
    "WHERE intersection(layer.rivers, layer.cities) "
    "AND contains(layer.cities, layer.stores) "
    "| COUNT OBJECTS FROM FM THROUGH RESULT"
)

#: Generous per-task timeout: real shard work on these worlds finishes in
#: well under a second, while injected latency draws up to 60 s — so a
#: timeout firing always means a latency fault tripped it, never real
#: slowness on a loaded test machine.
TIMEOUT_S = 30.0
LATENCY_S = 60.0


def chaos_executor(
    seed: int,
    backend: str = "threads",
    n_shards: int = 3,
    mode: str = "degrade",
    max_retries: int = 2,
    rate: float = 0.35,
):
    """A sharded executor under a seeded random fault plan."""
    plan = FaultPlan.random(
        seed,
        n_tasks=n_shards + 2,
        rate=rate,
        max_attempts=max_retries + 2,
        latency_s=LATENCY_S,
    )
    executor = ShardedExecutor(
        backend=backend,
        n_shards=n_shards,
        failure_mode=mode,
        retry_policy=RetryPolicy(max_retries=max_retries, timeout_s=TIMEOUT_S),
        fault_plan=plan,
    )
    return executor, plan


def assert_exact_or_error(run, expected, plan, equal=None) -> str:
    """The oracle: success must match the serial reference exactly;
    failure must be the typed error carrying the injected trace."""
    same = equal if equal is not None else (lambda a, b: a == b)
    try:
        value = run()
    except ShardExecutionError as exc:
        assert plan.trace, "engine raised without any injected fault firing"
        assert exc.faults == plan.trace
        assert exc.failures, "typed error carries no failure records"
        return "error"
    assert same(value, expected), (
        f"chaos run diverged from serial: {value!r} != {expected!r} "
        f"under trace {[f.describe() for f in plan.trace]}"
    )
    return "ok"


# -- fixed-seed smoke tier (the CI `-m faults` lane) ---------------------------


@pytest.mark.faults
class TestFig1CountChaos:
    def test_seed_sweep_exact_or_error(self, fig1_context, fig1_count_ref):
        outcomes = []
        for seed in range(8):
            mode = "degrade" if seed % 2 else "retry"
            backend = "threads" if seed % 3 else "serial"
            executor, plan = chaos_executor(
                seed, backend=backend, mode=mode, n_shards=3
            )
            outcomes.append(assert_exact_or_error(
                lambda: executor.count_objects_through(
                    fig1_context, FIG1_TARGET, FIG1_CONSTRAINTS,
                    moft_name="FMbus",
                ),
                fig1_count_ref,
                plan,
            ))
        assert "ok" in outcomes, "no chaos run recovered — sweep too hostile"

    @pytest.mark.parametrize("kind", ["raise", "latency", "drop", "truncate"])
    def test_single_fault_recovers_exactly(
        self, fig1_context, fig1_count_ref, kind
    ):
        plan = FaultPlan.single(kind, task_index=0, latency_s=LATENCY_S)
        executor = ShardedExecutor(
            backend="threads", n_shards=3, failure_mode="retry",
            retry_policy=RetryPolicy(max_retries=2, timeout_s=TIMEOUT_S),
            fault_plan=plan,
        )
        value = executor.count_objects_through(
            fig1_context, FIG1_TARGET, FIG1_CONSTRAINTS, moft_name="FMbus"
        )
        assert value == fig1_count_ref
        assert [f.kind for f in plan.trace] == [kind]
        assert executor.obs.count("fault_injected") == 1
        assert executor.obs.count("task_retries") == 1

    def test_forced_fault_storm_is_typed_error_with_trace(
        self, fig1_context
    ):
        plan = FaultPlan.always("drop", n_tasks=5)
        executor = ShardedExecutor(
            backend="serial", n_shards=3, failure_mode="retry",
            retry_policy=RetryPolicy(max_retries=1), fault_plan=plan,
        )
        with pytest.raises(ShardExecutionError) as excinfo:
            executor.count_objects_through(
                fig1_context, FIG1_TARGET, FIG1_CONSTRAINTS,
                moft_name="FMbus",
            )
        err = excinfo.value
        assert err.faults == plan.trace and len(err.faults) > 0
        assert all(f.status == "dropped" for f in err.failures)

    def test_zero_fault_plan_reproduces_fast_path_unchanged(
        self, fig1_context, fig1_count_ref
    ):
        """The acceptance gate: an empty plan adds no retry overhead."""
        plan = FaultPlan.none()
        executor = ShardedExecutor(
            backend="threads", n_shards=3, failure_mode="retry",
            retry_policy=RetryPolicy(max_retries=2, timeout_s=TIMEOUT_S),
            fault_plan=plan,
        )
        value = executor.count_objects_through(
            fig1_context, FIG1_TARGET, FIG1_CONSTRAINTS, moft_name="FMbus"
        )
        assert value == fig1_count_ref
        assert plan.trace == ()
        for name in (
            "fault_injected",
            "task_retries",
            "task_timeouts",
            "backend_degradations",
        ):
            assert executor.obs.count(name) == 0
        assert executor.obs.timer("retry_backoff").calls == 0

    def test_same_seed_replays_identically(self, fig1_context):
        def one_run(seed: int):
            executor, plan = chaos_executor(
                seed, backend="threads", mode="retry", max_retries=1,
                rate=0.5,
            )
            try:
                value: Optional[int] = executor.count_objects_through(
                    fig1_context, FIG1_TARGET, FIG1_CONSTRAINTS,
                    moft_name="FMbus",
                )
            except ShardExecutionError:
                value = None
            return value, [f.describe() for f in plan.trace]

        for seed in range(6):
            assert one_run(seed) == one_run(seed), f"seed {seed} diverged"


@pytest.mark.faults
class TestSynthCountChaos:
    def test_seed_sweep_exact_or_error(self, synth_world, synth_count_ref):
        for seed in range(4):
            executor, plan = chaos_executor(
                seed, backend="threads", n_shards=4,
                mode="degrade" if seed % 2 else "retry",
            )
            assert_exact_or_error(
                lambda: executor.count_objects_through(
                    synth_world.context, SYNTH_TARGET, SYNTH_CONSTRAINTS
                ),
                synth_count_ref,
                plan,
            )


@pytest.mark.faults
class TestDwellChaos:
    """``total_dwell_time`` routed through a store *built under faults*.

    The dwell aggregate itself is a serial fold; its chaos surface is
    the sharded pre-agg build feeding it.  A store that merges is
    complete (the row-coverage check refused anything less), so the
    routed dwell must match the serial scan to float tolerance.
    """

    def test_fig1_dwell_exact_or_error(self):
        for seed in range(6):
            context = figure1_instance().context()
            moft = context.moft("FMbus")
            elements = context.gis.layer("Ln").elements(POLYGON)
            reference = total_dwell_time(
                context, FIG1_TARGET, FIG1_CONSTRAINTS,
                moft_name="FMbus", use_preagg=False,
            )
            executor, plan = chaos_executor(
                seed, backend="threads", n_shards=3,
                mode="degrade" if seed % 2 else "retry", rate=0.45,
            )
            try:
                store = executor.build_preagg_store(
                    moft, context.time, "hour", elements,
                    layer="Ln", kind=POLYGON,
                )
            except ShardExecutionError as exc:
                assert plan.trace and exc.faults == plan.trace
                continue
            context.register_preagg(store)
            hits = context.obs.counters.get("preagg_hits", 0)
            routed = total_dwell_time(
                context, FIG1_TARGET, FIG1_CONSTRAINTS,
                moft_name="FMbus", use_preagg=True,
            )
            assert context.obs.counters.get("preagg_hits", 0) == hits + 1
            assert math.isclose(
                routed, reference, rel_tol=1e-9, abs_tol=1e-9
            ), f"seed {seed}: {routed} != {reference}"


@pytest.mark.faults
class TestPietQLChaos:
    def test_fig1_through_result_exact_or_error(self, fig1_context):
        expected = pietql_fingerprint(
            PietQLExecutor(fig1_context, FIG1_BINDINGS).execute(FIG1_QUERY)
        )
        outcomes = []
        for seed in range(8):
            executor, plan = chaos_executor(
                seed, backend="threads", n_shards=3,
                mode="degrade" if seed % 2 else "retry",
            )
            sharded = ShardedPietQLExecutor(
                fig1_context, FIG1_BINDINGS, sharded=executor
            )
            outcomes.append(assert_exact_or_error(
                lambda: pietql_fingerprint(sharded.execute(FIG1_QUERY)),
                expected,
                plan,
            ))
        assert "ok" in outcomes


# -- hypothesis campaigns (nightly, --hypothesis-profile=ci) -------------------

chaos_params = {
    "seed": st.integers(min_value=0, max_value=2**16),
    "rate": st.floats(min_value=0.05, max_value=0.6),
    "n_shards": st.integers(min_value=1, max_value=5),
    "backend": st.sampled_from(["serial", "threads"]),
    "mode": st.sampled_from(["retry", "degrade"]),
    "max_retries": st.integers(min_value=0, max_value=2),
}


@pytest.mark.slow
class TestChaosCampaigns:
    @given(**chaos_params)
    @settings(deadline=None)
    def test_fig1_count(
        self, fig1_context, fig1_count_ref,
        seed, rate, n_shards, backend, mode, max_retries,
    ):
        executor, plan = chaos_executor(
            seed, backend=backend, n_shards=n_shards, mode=mode,
            max_retries=max_retries, rate=rate,
        )
        assert_exact_or_error(
            lambda: executor.count_objects_through(
                fig1_context, FIG1_TARGET, FIG1_CONSTRAINTS,
                moft_name="FMbus",
            ),
            fig1_count_ref,
            plan,
        )

    @given(**chaos_params)
    @settings(deadline=None, max_examples=20)
    def test_synth_count(
        self, synth_world, synth_count_ref,
        seed, rate, n_shards, backend, mode, max_retries,
    ):
        executor, plan = chaos_executor(
            seed, backend=backend, n_shards=n_shards, mode=mode,
            max_retries=max_retries, rate=rate,
        )
        assert_exact_or_error(
            lambda: executor.count_objects_through(
                synth_world.context, SYNTH_TARGET, SYNTH_CONSTRAINTS
            ),
            synth_count_ref,
            plan,
        )

    @given(**chaos_params)
    @settings(deadline=None, max_examples=25)
    def test_fig1_pietql(
        self, fig1_context,
        seed, rate, n_shards, backend, mode, max_retries,
    ):
        expected = pietql_fingerprint(
            PietQLExecutor(fig1_context, FIG1_BINDINGS).execute(FIG1_QUERY)
        )
        executor, plan = chaos_executor(
            seed, backend=backend, n_shards=n_shards, mode=mode,
            max_retries=max_retries, rate=rate,
        )
        sharded = ShardedPietQLExecutor(
            fig1_context, FIG1_BINDINGS, sharded=executor
        )
        assert_exact_or_error(
            lambda: pietql_fingerprint(sharded.execute(FIG1_QUERY)),
            expected,
            plan,
        )

    @given(seed=st.integers(min_value=0, max_value=2**16),
           rate=st.floats(min_value=0.1, max_value=0.6))
    @settings(deadline=None, max_examples=15)
    def test_synth_pietql(self, synth_world, seed, rate):
        expected = pietql_fingerprint(
            PietQLExecutor(
                synth_world.context, SYNTH_BINDINGS
            ).execute(SYNTH_QUERY)
        )
        executor, plan = chaos_executor(
            seed, backend="threads", n_shards=4, mode="degrade", rate=rate
        )
        sharded = ShardedPietQLExecutor(
            synth_world.context, SYNTH_BINDINGS, sharded=executor
        )
        assert_exact_or_error(
            lambda: pietql_fingerprint(sharded.execute(SYNTH_QUERY)),
            expected,
            plan,
        )
