"""Unit tests for the fault-plan vocabulary (``repro.faults``).

A plan is a *deterministic schedule*: equal seeds must give equal plans
byte for byte, duplicate (task, attempt) keys are rejected up front, and
the firing trace records exactly what fired in order.  Everything here
is pure data-structure behavior — no engine involved.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.faults import FAULT_KINDS, FaultInjected, FaultPlan, FaultSpec

pytestmark = pytest.mark.faults


class TestFaultSpec:
    def test_kinds_vocabulary(self):
        assert FAULT_KINDS == ("raise", "latency", "drop", "truncate")

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_valid_kinds(self, kind):
        spec = FaultSpec(kind, task_index=2, attempt=1)
        assert spec.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown fault kind"):
            FaultSpec("segfault", task_index=0)

    @pytest.mark.parametrize(
        "task_index, attempt", [(-1, 0), (0, -1), (-3, -3)]
    )
    def test_negative_coordinates_rejected(self, task_index, attempt):
        with pytest.raises(ReproError, match="must be >= 0"):
            FaultSpec("raise", task_index=task_index, attempt=attempt)

    def test_negative_latency_rejected(self):
        with pytest.raises(ReproError, match="latency_s"):
            FaultSpec("latency", task_index=0, latency_s=-0.5)

    def test_describe(self):
        assert FaultSpec("drop", 3, 1).describe() == "drop(task=3, attempt=1)"
        assert (
            FaultSpec("latency", 0, 0, latency_s=2.5).describe()
            == "latency(task=0, attempt=0, latency_s=2.5)"
        )

    def test_fault_injected_is_typed(self):
        assert issubclass(FaultInjected, ReproError)


class TestFaultPlan:
    def test_duplicate_key_rejected(self):
        with pytest.raises(ReproError, match="duplicate fault"):
            FaultPlan([FaultSpec("raise", 0, 0), FaultSpec("drop", 0, 0)])

    def test_len_bool_iter(self):
        plan = FaultPlan([FaultSpec("drop", 1, 0), FaultSpec("raise", 0, 0)])
        assert len(plan) == 2
        assert bool(plan)
        # Iteration is (task, attempt)-sorted regardless of insert order.
        assert [(f.task_index, f.attempt) for f in plan] == [(0, 0), (1, 0)]

    def test_empty_plan_is_falsy_but_a_plan(self):
        plan = FaultPlan.none()
        assert not plan
        assert len(plan) == 0
        assert plan.fault_for(0, 0) is None

    def test_fault_for_hit_and_miss(self):
        plan = FaultPlan.single("truncate", task_index=2, attempt=1)
        hit = plan.fault_for(2, 1)
        assert hit is not None and hit.kind == "truncate"
        assert plan.fault_for(2, 0) is None
        assert plan.fault_for(0, 1) is None

    def test_trace_records_in_firing_order(self):
        plan = FaultPlan([FaultSpec("raise", 0, 0), FaultSpec("drop", 1, 0)])
        assert plan.trace == ()
        plan.record(plan.fault_for(1, 0))
        plan.record(plan.fault_for(0, 0))
        assert [f.kind for f in plan.trace] == ["drop", "raise"]
        plan.reset_trace()
        assert plan.trace == ()
        assert len(plan) == 2  # the schedule survives a trace reset

    def test_always_covers_every_attempt(self):
        plan = FaultPlan.always("drop", n_tasks=3, max_attempts=4)
        assert len(plan) == 12
        assert all(
            plan.fault_for(t, a) is not None
            for t in range(3)
            for a in range(4)
        )


class TestRandomPlans:
    def test_equal_seeds_give_equal_plans(self):
        a = FaultPlan.random(1234, n_tasks=6, rate=0.5, max_attempts=3)
        b = FaultPlan.random(1234, n_tasks=6, rate=0.5, max_attempts=3)
        assert [f.describe() for f in a] == [f.describe() for f in b]
        assert [f.latency_s for f in a] == [f.latency_s for f in b]

    def test_different_seeds_differ(self):
        draws = {
            tuple(f.describe() for f in FaultPlan.random(s, 8, rate=0.5))
            for s in range(10)
        }
        assert len(draws) > 1

    def test_rate_zero_is_empty(self):
        assert not FaultPlan.random(7, n_tasks=10, rate=0.0)

    def test_rate_one_is_total(self):
        plan = FaultPlan.random(7, n_tasks=4, rate=1.0, max_attempts=2)
        assert len(plan) == 8

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rate_out_of_range_rejected(self, rate):
        with pytest.raises(ReproError, match="rate"):
            FaultPlan.random(1, n_tasks=2, rate=rate)

    def test_empty_kinds_rejected(self):
        with pytest.raises(ReproError, match="at least one kind"):
            FaultPlan.random(1, n_tasks=2, kinds=())

    def test_kinds_restriction_respected(self):
        plan = FaultPlan.random(3, n_tasks=20, rate=1.0, kinds=("drop",))
        assert plan and all(f.kind == "drop" for f in plan)

    def test_latency_bounded(self):
        plan = FaultPlan.random(
            5, n_tasks=30, rate=1.0, kinds=("latency",), latency_s=2.0
        )
        assert plan and all(0.0 <= f.latency_s <= 2.0 for f in plan)
