"""Chaos / fault-injection suite for the resilient sharded engine."""
