"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken example is a broken
deliverable, so each one executes under captured stdout and its key output
lines are asserted.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


def test_all_examples_discovered():
    assert set(ALL_EXAMPLES) == {
        "quickstart.py",
        "traffic_analysis.py",
        "school_proximity.py",
        "pietql_tour.py",
        "moving_storm.py",
        "commuter_flows.py",
    }


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "1.3333" in out
    assert "Matches Remark 1" in out


def test_traffic_analysis(capsys):
    out = run_example("traffic_analysis.py", capsys)
    assert "Same via Piet-QL" in out
    assert "Strategy overlay" in out


def test_school_proximity(capsys):
    out = run_example("school_proximity.py", capsys)
    assert "missed by sampling only" in out
    assert "Lifeline beads" in out


def test_pietql_tour(capsys):
    out = run_example("pietql_tour.py", capsys)
    assert "usa_cities" in out
    assert "count: 5" in out


def test_moving_storm(capsys):
    out = run_example("moving_storm.py", capsys)
    assert "Samples caught in the storm" in out
    assert "moving region caught" in out


def test_commuter_flows(capsys):
    out = run_example("commuter_flows.py", capsys)
    assert "Hottest cells" in out
    assert "Aggregated trajectory" in out


def test_module_entry_point(capsys, monkeypatch):
    """``python -m repro`` renders Figure 1 and the Remark 1 answer."""
    monkeypatch.setattr(sys, "argv", ["repro"])
    with pytest.raises(SystemExit) as excinfo:
        runpy.run_module("repro", run_name="__main__")
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "1.3333" in out
    assert "#" in out  # the shaded low-income region
