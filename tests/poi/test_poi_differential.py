"""The three-way POI differential oracle.

One semantic, three execution routes — the serial segmentation pass,
the object-sharded build + merge, and the registered pre-aggregation
store — must answer **byte-identically** as canonical JSON for every
measure: visit counts, dwell, distinct-visitor sets and the
tie-broken top-k ranking.  The oracle also covers the two maintenance
worlds: a store kept fresh through :meth:`~repro.poi.PoiVisitStore
.update` after appends, and a store maintained by the streaming
ingestor across watermark flushes and compactions.
"""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.ingest import IngestConfig, StoreSpec, StreamingIngestor
from repro.mo.moft import MOFT
from repro.poi import PoiVisitStore
from repro.query.poi import (
    poi_distinct_visitors,
    poi_dwell_times,
    poi_store_view,
    poi_topk,
    poi_visit_counts,
)
from repro.query.region import EvaluationContext

from tests.poi.conftest import canon

pytestmark = pytest.mark.poi

MEASURES = (
    ("visits", poi_visit_counts, {}),
    ("visitors", poi_distinct_visitors, {}),
    ("dwell", poi_dwell_times, {}),
    ("topk", poi_topk, {"k": 3}),
)


def answers(context, layer, granule, moft_name, **options):
    """Every measure under one strategy, rendered canonical."""
    out = {}
    for name, fn, extra in MEASURES:
        out[name] = canon(
            fn(context, layer, granule, moft_name=moft_name, **extra, **options)
        )
    return out


def assert_three_way(gis, time, moft, layer, granule, moft_name):
    """serial == sharded(xN, both backends) == preagg, byte for byte."""
    serial_ctx = EvaluationContext(gis, time, moft)
    reference = answers(
        serial_ctx, layer, granule, moft_name, strategy="serial"
    )
    for shards in (1, 2, 3):
        for backend in ("serial", "threads"):
            sharded_ctx = EvaluationContext(gis, time, moft)
            got = answers(
                sharded_ctx,
                layer,
                granule,
                moft_name,
                strategy="sharded",
                shards=shards,
                backend=backend,
            )
            assert got == reference, (shards, backend)
    preagg_ctx = EvaluationContext(gis, time, moft)
    store = PoiVisitStore(
        moft,
        time,
        granule,
        dict(gis.layer(layer).elements("poi")),
        layer=layer,
        obs=preagg_ctx.obs,
    )
    preagg_ctx.register_preagg(store)
    got = answers(preagg_ctx, layer, granule, moft_name, strategy="preagg")
    assert got == reference
    assert preagg_ctx.obs.counters["poi_preagg_hits"] == len(MEASURES)
    return reference


class TestThreeWay:
    def test_fig1(self, fig1_world):
        assert_three_way(
            fig1_world.gis,
            fig1_world.time,
            fig1_world.moft,
            "Lp",
            "hour",
            "FMbus",
        )

    @pytest.mark.parametrize("min_dwell", [0.0, 1.5])
    def test_fig1_min_dwell(self, fig1_world, min_dwell):
        ctx = fig1_world.context()
        serial = canon(
            poi_visit_counts(
                ctx, "Lp", "hour", moft_name="FMbus",
                strategy="serial", min_dwell=min_dwell,
            )
        )
        sharded = canon(
            poi_visit_counts(
                ctx, "Lp", "hour", moft_name="FMbus",
                strategy="sharded", shards=3, backend="threads",
                min_dwell=min_dwell,
            )
        )
        assert serial == sharded

    def test_city_10k(self, city_world):
        city, _, time_dim, moft = city_world
        assert len(moft) == 10_000
        assert_three_way(city.gis, time_dim, moft, "Lp", "day", "FM")

    def test_preagg_strict_without_store_is_typed(self, fig1_context):
        with pytest.raises(EvaluationError):
            poi_visit_counts(
                fig1_context, "Lp", "hour", moft_name="FMbus",
                strategy="preagg",
            )


class TestIncrementalUpdate:
    """Appends folded by update() answer like a from-scratch build."""

    def _worlds(self, fig1_world):
        moft = MOFT("FMbus")
        for oid, t, x, y in zip(
            fig1_world.moft.oid_column(), *fig1_world.moft.as_arrays()
        ):
            moft.add(oid, float(t), float(x), float(y))
        return fig1_world.gis, fig1_world.time, moft

    def test_update_matches_rebuild(self, fig1_world):
        gis, time, moft = self._worlds(fig1_world)
        pois = dict(gis.layer("Lp").elements("poi"))
        store = PoiVisitStore(moft, time, "hour", pois, layer="Lp")
        assert store.update() == "fresh"
        # O1 keeps dwelling at the south school; a new bus parks at the
        # market for two instants.
        moft.add("O1", 5.0, 5.0, 5.0)
        moft.add("O7", 4.0, 10.0, 10.0)
        moft.add("O7", 5.0, 10.5, 10.0)
        assert store.is_stale()
        assert store.update() == "delta"
        fresh = PoiVisitStore(moft, time, "hour", pois, layer="Lp")
        assert canon(store.visit_counts()) == canon(fresh.visit_counts())
        assert canon(store.dwell_times()) == canon(fresh.dwell_times())
        assert canon(store.distinct_visitors()) == canon(
            fresh.distinct_visitors()
        )
        assert canon(store.topk(3)) == canon(fresh.topk(3))

    def test_updated_store_serves_planner_route(self, fig1_world):
        gis, time, moft = self._worlds(fig1_world)
        ctx = EvaluationContext(gis, time, moft)
        pois = dict(gis.layer("Lp").elements("poi"))
        store = PoiVisitStore(
            moft, time, "hour", pois, layer="Lp", obs=ctx.obs
        )
        ctx.register_preagg(store)
        moft.add("O1", 5.0, 5.0, 5.0)
        # Stale: the auto strategy must fall back to a live build...
        _, used = poi_store_view(ctx, "Lp", "hour", moft_name="FMbus")
        assert used in ("serial", "sharded")
        assert ctx.obs.counters["poi_preagg_misses"] == 1
        # ...and after update() the pre-agg route serves again,
        # byte-identical to serial.
        store.update()
        preagg = canon(
            poi_visit_counts(
                ctx, "Lp", "hour", moft_name="FMbus", strategy="preagg"
            )
        )
        serial = canon(
            poi_visit_counts(
                ctx, "Lp", "hour", moft_name="FMbus", strategy="serial"
            )
        )
        assert preagg == serial


class TestStreamingIngest:
    """The ingestor-maintained store equals a one-shot batch build."""

    def _stream(self, fig1_world, batches):
        ing = StreamingIngestor(
            fig1_world.gis,
            fig1_world.time,
            moft_name="FMbus",
            store_specs=(StoreSpec("hour", "Lp", "poi"),),
            config=IngestConfig(allowed_lateness=0.0, compact_every=2),
        )
        for rows in batches:
            oids, ts, xs, ys = zip(*rows)
            ing.submit(oids, ts, xs, ys)
        ing.close()
        return ing

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("split_t", [2.0, 3.0, 4.0])
    def test_streamed_equals_batch(self, fig1_world, seed, split_t):
        import random

        rows = sorted(
            (
                (oid, float(t), float(x), float(y))
                for oid, t, x, y in zip(
                    fig1_world.moft.oid_column(),
                    *fig1_world.moft.as_arrays(),
                )
            ),
            key=lambda s: s[1],
        )
        early = [s for s in rows if s[1] <= split_t]
        late = [s for s in rows if s[1] > split_t]
        r = random.Random(seed)
        r.shuffle(early)
        r.shuffle(late)
        ing = self._stream(fig1_world, (early, late))
        snap = ing.snapshot()
        streamed = next(
            s for s in snap.stores if isinstance(s, PoiVisitStore)
        )
        assert not streamed.is_stale()
        batch = PoiVisitStore(
            fig1_world.moft,
            fig1_world.time,
            "hour",
            dict(fig1_world.gis.layer("Lp").elements("poi")),
            layer="Lp",
        )
        assert canon(streamed.visit_counts()) == canon(batch.visit_counts())
        assert canon(streamed.dwell_times()) == canon(batch.dwell_times())
        assert canon(streamed.distinct_visitors()) == canon(
            batch.distinct_visitors()
        )
        assert canon(streamed.topk(3)) == canon(batch.topk(3))

    def test_snapshot_context_routes_preagg(self, fig1_world):
        rows = sorted(
            (
                (oid, float(t), float(x), float(y))
                for oid, t, x, y in zip(
                    fig1_world.moft.oid_column(),
                    *fig1_world.moft.as_arrays(),
                )
            ),
            key=lambda s: s[1],
        )
        ing = self._stream(fig1_world, (rows,))
        ctx = ing.snapshot().context()
        got = canon(
            poi_visit_counts(ctx, "Lp", "hour", moft_name="FMbus")
        )
        assert ctx.obs.counters["poi_preagg_hits"] == 1
        reference = canon(
            poi_visit_counts(
                fig1_world.context(), "Lp", "hour", moft_name="FMbus",
                strategy="serial",
            )
        )
        assert got == reference
