"""Unit coverage of the POI store lifecycle and the spatial OLAP walk.

Merge completeness checks, copy-on-write clones, the top-k tie-break,
temporal and spatial roll-ups, the cube view, the context registry and
the planner's strategy pricing — the pieces the differential oracle
exercises end-to-end, pinned here one seam at a time.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    EvaluationError,
    PreAggError,
    RollupError,
)
from repro.mo.moft import MOFT
from repro.olap import poi_parent_mapping, spatial_drilldown, spatial_rollup
from repro.poi import PoiVisitStore
from repro.query.planner import execute_poi_plan, plan_poi_aggregate
from repro.query.poi import PoiQueryBuilder, resolve_pois
from repro.query.region import EvaluationContext

from tests.poi.conftest import canon

pytestmark = pytest.mark.poi


@pytest.fixture()
def fig1_store(fig1_world):
    return PoiVisitStore(
        fig1_world.moft,
        fig1_world.time,
        "hour",
        dict(fig1_world.gis.layer("Lp").elements("poi")),
        layer="Lp",
    )


class TestStoreBasics:
    def test_empty_pois_rejected(self, fig1_world):
        with pytest.raises(PreAggError):
            PoiVisitStore(fig1_world.moft, fig1_world.time, "hour", {})

    def test_topk_tie_break_and_k_validation(self, fig1_store):
        with pytest.raises(PreAggError):
            fig1_store.topk(0)
        ranking = fig1_store.topk(3)
        # Hour 2: market and south school tie at one visitor each; the
        # tie breaks ascending by repr(poi id).
        assert ranking[2] == (("poi_market", 1), ("poi_school_south", 1))

    def test_temporal_rollup_day(self, fig1_store):
        parent, visits, dwell, visitors = fig1_store.rollup_cells("day")
        assert set(visits) == {
            ("poi_market", "2006-01-09"),
            ("poi_school_south", "2006-01-09"),
        }
        assert sum(visits.values()) == sum(
            fig1_store.visit_counts().values()
        )
        assert abs(
            sum(dwell.values()) - sum(fig1_store.dwell_times().values())
        ) < 1e-12
        for oids in visitors.values():
            assert list(oids) == sorted(set(oids), key=repr)

    def test_as_cube(self, fig1_store):
        cube = fig1_store.as_cube()
        assert set(cube.fact_table.schema.measures) == {
            "visits", "dwell", "distinct_visitors",
        }
        assert len(cube) > 0

    def test_stats_shape(self, fig1_store):
        stats = fig1_store.stats()
        assert stats["pois"] == 3
        assert stats["granule_level"] == "hour"


class TestCloneAndMerge:
    def test_clone_shares_until_update(self, fig1_world, fig1_store):
        clone = fig1_store.clone()
        assert canon(clone.visit_counts()) == canon(
            fig1_store.visit_counts()
        )
        assert not clone.is_stale()

    def test_merge_rejects_schema_disagreement(self, fig1_world):
        pois = dict(fig1_world.gis.layer("Lp").elements("poi"))
        parts = fig1_world.moft.partition_by_objects(2)
        a = PoiVisitStore(parts[0], fig1_world.time, "hour", pois)
        b = PoiVisitStore(
            parts[1], fig1_world.time, "hour", pois, min_dwell=1.0
        )
        with pytest.raises(PreAggError):
            PoiVisitStore.merge([a, b], fig1_world.moft)

    def test_merge_rejects_duplicate_objects(self, fig1_world):
        pois = dict(fig1_world.gis.layer("Lp").elements("poi"))
        store = PoiVisitStore(fig1_world.moft, fig1_world.time, "hour", pois)
        with pytest.raises(PreAggError):
            PoiVisitStore.merge([store, store], fig1_world.moft)

    def test_merge_rejects_missing_coverage(self, fig1_world):
        pois = dict(fig1_world.gis.layer("Lp").elements("poi"))
        parts = fig1_world.moft.partition_by_objects(2)
        only_half = PoiVisitStore(parts[0], fig1_world.time, "hour", pois)
        with pytest.raises(PreAggError):
            PoiVisitStore.merge([only_half], fig1_world.moft)

    def test_merge_empty_rejected(self, fig1_world):
        with pytest.raises(PreAggError):
            PoiVisitStore.merge([], fig1_world.moft)


class TestSpatialOlap:
    def test_parent_mapping_by_center(self, fig1_world):
        mapping = poi_parent_mapping(fig1_world.gis, "Lp", "Ln")
        assert mapping["poi_school_south"] == "pg_zuid"
        assert mapping["poi_school_north"] == "pg_noord"

    def test_rollup_preserves_totals(self, fig1_world, fig1_store):
        mapping = poi_parent_mapping(fig1_world.gis, "Lp", "Ln")
        visits = fig1_store.visit_counts()
        rolled = spatial_rollup(visits, mapping)
        assert sum(rolled.values()) == sum(visits.values())
        dwell = fig1_store.dwell_times()
        rolled_dwell = spatial_rollup(dwell, mapping)
        assert abs(
            sum(rolled_dwell.values()) - sum(dwell.values())
        ) < 1e-12

    def test_rollup_unions_visitor_sets(self, fig1_world, fig1_store):
        mapping = {gid: "everywhere" for gid in fig1_store.gids}
        visitors = fig1_store.distinct_visitors()
        rolled = spatial_rollup(visitors, mapping)
        for oids in rolled.values():
            assert list(oids) == sorted(set(oids), key=repr)

    def test_rollup_rejects_unmapped_gid(self, fig1_store):
        with pytest.raises(RollupError):
            spatial_rollup(fig1_store.visit_counts(), {})

    def test_drilldown_inverts_rollup(self, fig1_world, fig1_store):
        mapping = poi_parent_mapping(fig1_world.gis, "Lp", "Ln")
        visits = fig1_store.visit_counts()
        rolled = spatial_rollup(visits, mapping)
        for (parent, _), _ in rolled.items():
            down = spatial_drilldown(visits, mapping, parent)
            assert spatial_rollup(down, mapping) == {
                key: value
                for key, value in rolled.items()
                if key[0] == parent
            }

    def test_drilldown_rejects_unknown_parent(self, fig1_world, fig1_store):
        mapping = poi_parent_mapping(fig1_world.gis, "Lp", "Ln")
        with pytest.raises(RollupError):
            spatial_drilldown(fig1_store.visit_counts(), mapping, "nowhere")

    def test_store_rollup_space_delegate(self, fig1_world, fig1_store):
        mapping = poi_parent_mapping(fig1_world.gis, "Lp", "Ln")
        visits, dwell, visitors = fig1_store.rollup_space(mapping)
        assert visits == spatial_rollup(fig1_store.visit_counts(), mapping)
        assert dwell == spatial_rollup(fig1_store.dwell_times(), mapping)
        assert visitors == spatial_rollup(
            fig1_store.distinct_visitors(), mapping
        )


class TestQueryLayer:
    def test_resolve_pois_typed_error(self, fig1_context):
        with pytest.raises(EvaluationError):
            resolve_pois(fig1_context, "Ln")

    def test_builder_requires_granule(self, fig1_context):
        with pytest.raises(EvaluationError):
            PoiQueryBuilder("Lp", "FMbus").visits(fig1_context)

    def test_builder_full_chain(self, fig1_context):
        builder = (
            PoiQueryBuilder("Lp", "FMbus")
            .per("hour")
            .with_min_dwell(0.0)
            .sharded(2, backend="threads")
        )
        sharded = builder.visits(fig1_context)
        serial = (
            PoiQueryBuilder("Lp", "FMbus").per("hour").serial()
        ).visits(fig1_context)
        assert canon(sharded) == canon(serial)

    def test_at_poi_region_builder(self, fig1_world):
        from repro.query import RegionBuilder

        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .at_poi("place")
            .build(fig1_world.gis)
        )
        assert region is not None

    def test_planner_prices_and_routes(self, fig1_world):
        ctx = fig1_world.context()
        plan = plan_poi_aggregate(ctx, "Lp", "hour", moft_name="FMbus")
        assert plan.strategy in ("serial", "sharded")
        assert plan.alternatives
        result = execute_poi_plan(
            plan, ctx, "Lp", "hour", moft_name="FMbus"
        )
        assert plan.executed
        assert result

    def test_planner_preagg_route(self, fig1_world):
        ctx = fig1_world.context()
        store = PoiVisitStore(
            fig1_world.moft,
            fig1_world.time,
            "hour",
            dict(fig1_world.gis.layer("Lp").elements("poi")),
            layer="Lp",
            obs=ctx.obs,
        )
        ctx.register_preagg(store)
        plan = plan_poi_aggregate(ctx, "Lp", "hour", moft_name="FMbus")
        assert plan.strategy == "preagg"
        assert "PoiCellRead" in plan.render()

    def test_planner_force_unknown_strategy(self, fig1_context):
        with pytest.raises(EvaluationError):
            plan_poi_aggregate(
                fig1_context, "Lp", "hour", moft_name="FMbus",
                force_strategy="quantum",
            )

    def test_planner_force_unavailable_preagg(self, fig1_context):
        with pytest.raises(EvaluationError):
            plan_poi_aggregate(
                fig1_context, "Lp", "hour", moft_name="FMbus",
                force_strategy="preagg",
            )


class TestIngestSpec:
    def test_min_dwell_on_non_poi_spec_rejected(self):
        from repro.errors import IngestError
        from repro.ingest import StoreSpec

        with pytest.raises(IngestError):
            StoreSpec("hour", "Ln", "polygon", min_dwell=1.0)

    def test_poi_spec_carries_min_dwell(self):
        from repro.ingest import StoreSpec

        spec = StoreSpec("hour", "Lp", "poi", min_dwell=0.5)
        assert spec.min_dwell == 0.5
