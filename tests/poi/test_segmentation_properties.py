"""Property tests of the stop/move segmentation.

The invariants any SMoT-style segmentation must satisfy, searched with
hypothesis over random trajectories and disc layouts:

* the episode sequence **alternates** stop/move and **tiles** the
  trajectory's time span exactly (each episode starts where the
  previous ended; no gaps, no overlap);
* stop dwell plus move time equals the trajectory duration to 1e-9;
* inserting a sample *on* the interpolated path (which changes no
  geometry) leaves the episodes unchanged;
* degenerate knobs behave: ``min_dwell=0`` is the default semantics,
  and an infinite radius swallows the whole trajectory into one stop.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError, TrajectoryError
from repro.geometry.poi import Poi
from repro.mo.trajectory import (
    LinearInterpolationTrajectory,
    TrajectorySample,
)
from repro.poi import segment_stops_moves
from repro.poi.segmentation import Episode

pytestmark = pytest.mark.poi

coord = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


@st.composite
def trajectories(draw, min_points: int = 2, max_points: int = 12):
    """A strictly time-increasing sampled trajectory."""
    n = draw(st.integers(min_points, max_points))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=n,
                max_size=n,
                unique=True,
            )
        )
    )
    points = [(t, draw(coord), draw(coord)) for t in times]
    return LinearInterpolationTrajectory(TrajectorySample(points))


@st.composite
def poi_sets(draw, max_pois: int = 4):
    n = draw(st.integers(1, max_pois))
    out = {}
    for i in range(n):
        out[f"poi_{i}"] = Poi.at(
            draw(coord), draw(coord), draw(st.floats(0.5, 20.0))
        )
    return out


def assert_tiles(trajectory, episodes):
    sample = trajectory.sample
    t_min, t_max = sample.times[0], sample.times[-1]
    assert episodes, "a non-empty trajectory always yields episodes"
    assert episodes[0].start == t_min
    assert episodes[-1].end == t_max
    for before, after in zip(episodes, episodes[1:]):
        assert before.end == after.start, "episodes must tile exactly"
        assert not (
            before.kind == after.kind
        ), "adjacent episodes must alternate stop/move"


class TestInvariants:
    @given(trajectory=trajectories(), pois=poi_sets(), data=st.data())
    @settings(max_examples=120)
    def test_alternates_and_tiles(self, trajectory, pois, data):
        min_dwell = data.draw(
            st.one_of(st.just(0.0), st.floats(0.0, 5.0, allow_nan=False))
        )
        episodes = segment_stops_moves(trajectory, pois, min_dwell=min_dwell)
        assert_tiles(trajectory, episodes)
        for episode in episodes:
            if episode.is_stop:
                assert episode.poi in pois
                assert episode.dwell >= min_dwell
                assert episode.dwell > 0.0
            else:
                assert episode.poi is None

    @given(trajectory=trajectories(), pois=poi_sets())
    @settings(max_examples=120)
    def test_dwell_tiles_duration(self, trajectory, pois):
        episodes = segment_stops_moves(trajectory, pois)
        sample = trajectory.sample
        duration = sample.times[-1] - sample.times[0]
        total = sum(e.dwell for e in episodes)
        assert math.isclose(total, duration, rel_tol=1e-9, abs_tol=1e-9)

    @given(trajectory=trajectories(), pois=poi_sets(), data=st.data())
    @settings(max_examples=120)
    def test_on_path_insertion_invariance(self, trajectory, pois, data):
        """A sample on the interpolated segment changes no episode."""
        sample = trajectory.sample
        index = data.draw(st.integers(0, len(sample.times) - 2))
        w = data.draw(st.floats(0.25, 0.75))
        t0, t1 = sample.times[index], sample.times[index + 1]
        t_new = t0 + w * (t1 - t0)
        if t_new in (t0, t1):
            return
        _, x0, y0 = sample[index]
        _, x1, y1 = sample[index + 1]
        u = (t_new - t0) / (t1 - t0)
        points = sorted(
            list(sample)
            + [(t_new, x0 + u * (x1 - x0), y0 + u * (y1 - y0))]
        )
        refined = LinearInterpolationTrajectory(TrajectorySample(points))
        base = segment_stops_moves(trajectory, pois)
        got = segment_stops_moves(refined, pois)
        assert [
            (e.kind, e.poi) for e in got
        ] == [(e.kind, e.poi) for e in base]
        for a, b in zip(base, got):
            assert math.isclose(a.start, b.start, rel_tol=1e-9, abs_tol=1e-9)
            assert math.isclose(a.end, b.end, rel_tol=1e-9, abs_tol=1e-9)

    @given(trajectory=trajectories(), pois=poi_sets())
    @settings(max_examples=80)
    def test_min_dwell_zero_is_default(self, trajectory, pois):
        assert segment_stops_moves(
            trajectory, pois, min_dwell=0.0
        ) == segment_stops_moves(trajectory, pois)

    @given(trajectory=trajectories())
    @settings(max_examples=80)
    def test_infinite_radius_is_one_stop(self, trajectory):
        from repro.geometry.point import Point

        episodes = segment_stops_moves(
            trajectory, {"everywhere": Point(0.0, 0.0)}, radius=math.inf
        )
        sample = trajectory.sample
        assert len(episodes) == 1
        (only,) = episodes
        assert only.is_stop and only.poi == "everywhere"
        assert only.start == sample.times[0]
        assert only.end == sample.times[-1]

    @given(trajectory=trajectories(), pois=poi_sets())
    @settings(max_examples=80)
    def test_large_min_dwell_leaves_one_move(self, trajectory, pois):
        sample = trajectory.sample
        duration = sample.times[-1] - sample.times[0]
        episodes = segment_stops_moves(
            trajectory, pois, min_dwell=duration * 2 + 1.0
        )
        assert [e.kind for e in episodes] == ["move"]


class TestValidation:
    def test_episode_rejects_reversed_interval(self):
        with pytest.raises(TrajectoryError):
            Episode("stop", 2.0, 1.0, poi="p")

    def test_episode_rejects_bad_kind(self):
        with pytest.raises(TrajectoryError):
            Episode("pause", 0.0, 1.0)

    def test_negative_min_dwell_rejected(self):
        trajectory = LinearInterpolationTrajectory(
            TrajectorySample([(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)])
        )
        with pytest.raises(TrajectoryError):
            segment_stops_moves(
                trajectory, {"p": Poi.at(0.0, 0.0, 1.0)}, min_dwell=-1.0
            )

    def test_point_poi_needs_radius(self):
        from repro.geometry.point import Point

        trajectory = LinearInterpolationTrajectory(
            TrajectorySample([(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)])
        )
        with pytest.raises(GeometryError):
            segment_stops_moves(trajectory, {"p": Point(0.0, 0.0)})

    def test_poi_validation(self):
        with pytest.raises(GeometryError):
            Poi.at(0.0, 0.0, 0.0)
        with pytest.raises(GeometryError):
            Poi.at(0.0, 0.0, math.nan)
        with pytest.raises(GeometryError):
            Poi.at(0.0, 0.0, math.inf)
