"""Shared fixtures of the places-of-interest campaign.

Two worlds:

* **fig1** — the paper's Table 1 buses over the Figure 1 city with its
  three places of interest (two schools and the market);
* **city** — the synthetic city with every school and store promoted to
  a disc and a stop-biased population of 100 objects x 100 instants
  (10k samples), the scale the differential oracle sweeps.

``canon`` renders any store answer as canonical JSON — sorted composite
keys stringified by ``repr``, float values via ``repr``-faithful
``json`` encoding — so "byte-identical" is a plain string equality.
"""

from __future__ import annotations

import json
from datetime import datetime

import numpy as np
import pytest

from repro.query.region import EvaluationContext
from repro.synth import (
    CityConfig,
    build_city,
    figure1_instance,
    install_city_pois,
    stop_biased_moft,
)
from repro.temporal.calendar import hourly
from repro.temporal.timedim import TimeDimension

CITY_OBJECTS = 100
CITY_INSTANTS = 100


def canon(payload) -> str:
    """Canonical JSON of a store answer (dict keyed by tuples or ids)."""

    def value(v):
        if isinstance(v, (tuple, list, frozenset, set)):
            return [value(item) for item in v]
        return v

    if isinstance(payload, dict):
        rows = sorted(
            ((repr(k), value(v)) for k, v in payload.items()),
            key=lambda kv: kv[0],
        )
        return json.dumps(rows, separators=(",", ":"))
    return json.dumps(value(payload), separators=(",", ":"))


@pytest.fixture(scope="session")
def fig1_world():
    """The Figure 1 instance with its POI layer populated."""
    return figure1_instance(with_pois=True)


@pytest.fixture()
def fig1_context(fig1_world):
    return fig1_world.context()


@pytest.fixture(scope="session")
def city_world():
    """Synthetic city + promoted POIs + 10k stop-biased samples."""
    city = build_city(
        CityConfig(cols=6, rows=6), rng=np.random.default_rng(20060109)
    )
    pois = install_city_pois(city)
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(CITY_INSTANTS)
    )
    moft = stop_biased_moft(pois, CITY_OBJECTS, CITY_INSTANTS)
    return city, pois, time_dim, moft


@pytest.fixture()
def city_context(city_world):
    city, _, time_dim, moft = city_world
    return EvaluationContext(city.gis, time_dim, moft)
