"""Bitwise equality of the batched disc kernel vs the scalar fold.

ROADMAP item 3's discipline applied to the POI layer: the vectorized
disc-clip quadratic (:func:`repro.geometry.kernels.disc_clip_batch`)
and the per-gid dwell fold built on it must produce **bit-for-bit** the
floats the pure-Python scalar path produces — same expression sequence,
same clamping branches, same IEEE-754 rounding.  Pinned here on random
sweeps, adversarial geometry (tangency, stationarity, infinite radius)
and through the whole store build under both kernel backends.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.kernels import (
    disc_clip_batch,
    disc_clip_scalar,
    disc_dwell,
    disc_dwell_scalar,
    set_kernel_backend,
)
from repro.poi import PoiVisitStore

from tests.poi.conftest import canon

pytestmark = pytest.mark.poi

finite = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    set_kernel_backend("auto")


def batch_vs_scalar(cx, cy, r, x0, y0, x1, y1):
    lo_b, hi_b = disc_clip_batch(cx, cy, r, x0, y0, x1, y1)
    lo_s = np.empty(len(x0))
    hi_s = np.empty(len(x0))
    for i in range(len(x0)):
        lo_s[i], hi_s[i] = disc_clip_scalar(
            cx, cy, r, x0[i], y0[i], x1[i], y1[i]
        )
    assert lo_b.tobytes() == lo_s.tobytes()
    assert hi_b.tobytes() == hi_s.tobytes()
    return lo_b, hi_b


class TestClipBitwise:
    @given(data=st.data())
    @settings(max_examples=100)
    def test_random_segments(self, data):
        n = data.draw(st.integers(1, 32))
        arrays = [
            np.array(
                data.draw(
                    st.lists(finite, min_size=n, max_size=n)
                )
            )
            for _ in range(4)
        ]
        cx = data.draw(finite)
        cy = data.draw(finite)
        r = data.draw(st.floats(0.1, 50.0))
        batch_vs_scalar(cx, cy, r, *arrays)

    def test_adversarial_cases(self):
        # Tangency, stationarity inside/outside, chord through the
        # center, segment grazing the rim, zero-length pieces.
        x0 = np.array([-2.0, 0.0, 5.0, -2.0, 1.0, 0.5, -1.0])
        y0 = np.array([1.0, 0.0, 5.0, 0.0, 0.0, 0.5, -1.0])
        x1 = np.array([2.0, 0.0, 5.0, 2.0, 1.0, 0.5, 1.0])
        y1 = np.array([1.0, 0.0, 5.0, 0.0, 0.0, 0.5, 1.0])
        lo, hi = batch_vs_scalar(0.0, 0.0, 1.0, x0, y0, x1, y1)
        # Tangent line touches at one point: empty clip (disc <= 0).
        assert (lo[0], hi[0]) == (0.0, 0.0)
        # Stationary at the center: whole piece inside.
        assert (lo[1], hi[1]) == (0.0, 1.0)
        # Stationary far away: empty.
        assert (lo[2], hi[2]) == (0.0, 0.0)
        # Chord through the center: clipped symmetric interval.
        assert 0.0 < lo[3] < hi[3] < 1.0
        # Exactly on the rim, stationary: boundary counts as inside.
        assert (lo[4], hi[4]) == (0.0, 1.0)

    def test_infinite_radius(self):
        x0 = np.array([0.0, 1.0])
        y0 = np.array([0.0, 1.0])
        x1 = np.array([5.0, 1.0])  # moving piece + stationary piece
        y1 = np.array([0.0, 1.0])
        lo, hi = batch_vs_scalar(0.0, 0.0, math.inf, x0, y0, x1, y1)
        assert lo.tolist() == [0.0, 0.0]
        assert hi.tolist() == [1.0, 1.0]

    @given(data=st.data())
    @settings(max_examples=50)
    def test_dwell_fold_bitwise(self, data):
        n = data.draw(st.integers(1, 16))
        t0 = np.sort(
            np.array(
                data.draw(
                    st.lists(
                        st.floats(0.0, 100.0, allow_nan=False),
                        min_size=n,
                        max_size=n,
                        unique=True,
                    )
                )
            )
        )
        t1 = t0 + data.draw(st.floats(0.1, 5.0))
        arrays = [
            np.array(data.draw(st.lists(finite, min_size=n, max_size=n)))
            for _ in range(4)
        ]
        cx, cy = data.draw(finite), data.draw(finite)
        r = data.draw(st.floats(0.1, 50.0))
        dt = t1 - t0
        batched = disc_dwell(
            cx, cy, r, arrays[0], arrays[1], arrays[2], arrays[3], dt
        )
        scalar = disc_dwell_scalar(
            cx, cy, r, arrays[0], arrays[1], arrays[2], arrays[3], dt
        )
        assert np.asarray(batched).tobytes() == np.asarray(scalar).tobytes()


class TestStoreBackendEquality:
    """The whole store build is backend-invariant, byte for byte."""

    def test_fig1_store_scalar_vs_vectorized(self, fig1_world):
        pois = dict(fig1_world.gis.layer("Lp").elements("poi"))

        def build():
            return PoiVisitStore(
                fig1_world.moft, fig1_world.time, "hour", pois, layer="Lp"
            )

        set_kernel_backend("numpy")
        vectorized = build()
        set_kernel_backend("scalar")
        scalar = build()
        assert canon(vectorized.dwell_times()) == canon(scalar.dwell_times())
        assert canon(vectorized.visit_counts()) == canon(
            scalar.visit_counts()
        )
        assert canon(vectorized.distinct_visitors()) == canon(
            scalar.distinct_visitors()
        )

    def test_city_store_scalar_vs_vectorized(self, city_world):
        city, pois, time_dim, moft = city_world
        sub = moft.restrict_objects(
            set(sorted(moft.objects(), key=repr)[:20])
        )

        def build():
            return PoiVisitStore(sub, time_dim, "day", pois, layer="Lp")

        set_kernel_backend("numpy")
        vectorized = build()
        set_kernel_backend("scalar")
        scalar = build()
        assert canon(vectorized.dwell_times()) == canon(scalar.dwell_times())
        assert canon(vectorized.visit_counts()) == canon(
            scalar.visit_counts()
        )
