"""Unit tests for the MVCC version chain (:mod:`repro.ingest.versioned`).

The chain's two load-bearing invariants — row-prefix extension and
row-identical compaction — are what let the pre-agg maintainer fold
forward instead of rebuilding and what make compaction answer-neutral;
both are pinned here at the table level before the differential
campaign exercises them end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IngestError
from repro.ingest import MoftSnapshot, VersionedMoft
from repro.mo.moft import MOFT

pytestmark = pytest.mark.ingest


def publish_rows(chain: VersionedMoft, rows) -> MoftSnapshot:
    return chain.publish(
        [r[0] for r in rows],
        [r[1] for r in rows],
        [r[2] for r in rows],
        [r[3] for r in rows],
    )


def columns_of(moft: MOFT):
    t, x, y = moft.as_arrays()
    return list(moft.oid_column()), t, x, y


class TestConstruction:
    def test_empty_chain_head(self):
        chain = VersionedMoft("FM")
        head = chain.head
        assert head.ordinal == 0
        assert head.rows == 0
        assert head.segments == ()
        table = head.table()
        assert isinstance(table, MOFT)
        assert len(table) == 0
        assert table.name == "FM"

    def test_base_seeds_version_zero(self):
        base = MOFT.from_columns(
            ["a", "b"], [0.0, 1.0], [1.0, 2.0], [3.0, 4.0], name="FM"
        )
        chain = VersionedMoft("FM", base=base)
        head = chain.head
        assert head.ordinal == 0
        assert head.rows == 2
        assert head.segments == (base,)
        # Single-segment snapshots return the segment itself: zero copies.
        assert head.table() is base

    def test_empty_base_is_ignored(self):
        chain = VersionedMoft("FM", base=MOFT("FM"))
        assert chain.head.segments == ()


class TestPublish:
    def test_appends_segment_and_bumps_ordinal(self):
        chain = VersionedMoft("FM")
        snap1 = publish_rows(chain, [("a", 0.0, 1.0, 1.0)])
        snap2 = publish_rows(chain, [("a", 1.0, 2.0, 2.0), ("b", 1.0, 0.0, 0.0)])
        assert (snap1.ordinal, snap1.rows) == (1, 1)
        assert (snap2.ordinal, snap2.rows) == (2, 3)
        assert chain.head is snap2
        assert len(snap2.segments) == 2

    def test_pinned_snapshot_is_immutable_across_publishes(self):
        chain = VersionedMoft("FM")
        pinned = publish_rows(chain, [("a", 0.0, 1.0, 1.0)])
        before = columns_of(pinned.table())
        publish_rows(chain, [("b", 1.0, 5.0, 5.0)])
        publish_rows(chain, [("c", 2.0, 6.0, 6.0)])
        after = columns_of(pinned.table())
        assert pinned.rows == 1
        assert before[0] == after[0]
        for lhs, rhs in zip(before[1:], after[1:]):
            assert np.array_equal(lhs, rhs)

    def test_row_prefix_extension(self):
        """Every snapshot's table starts with its predecessor's rows."""
        chain = VersionedMoft("FM")
        old = publish_rows(
            chain, [("a", 0.0, 1.0, 1.0), ("b", 0.0, 2.0, 2.0)]
        )
        new = publish_rows(
            chain, [("a", 1.0, 3.0, 3.0), ("c", 1.0, 4.0, 4.0)]
        )
        old_oids, old_t, old_x, old_y = columns_of(old.table())
        new_oids, new_t, new_x, new_y = columns_of(new.table())
        r = old.rows
        assert new_oids[:r] == old_oids
        assert np.array_equal(new_t[:r], old_t)
        assert np.array_equal(new_x[:r], old_x)
        assert np.array_equal(new_y[:r], old_y)

    def test_empty_segment_is_refused(self):
        chain = VersionedMoft("FM")
        with pytest.raises(IngestError, match="empty delta segment"):
            chain.publish([], [], [], [])

    def test_malformed_segment_leaves_head_unchanged(self):
        chain = VersionedMoft("FM")
        head = publish_rows(chain, [("a", 0.0, 1.0, 1.0)])
        with pytest.raises(IngestError, match="malformed delta segment"):
            # Duplicate (oid, t) within one segment.
            publish_rows(
                chain, [("b", 1.0, 0.0, 0.0), ("b", 1.0, 9.0, 9.0)]
            )
        assert chain.head is head

    def test_ragged_segment_is_refused(self):
        chain = VersionedMoft("FM")
        with pytest.raises(IngestError, match="malformed delta segment"):
            chain.publish(["a", "b"], [0.0], [1.0], [1.0])


class TestCompact:
    def test_compaction_is_row_identical(self):
        chain = VersionedMoft("FM")
        for k in range(4):
            publish_rows(chain, [(f"o{k}", float(k), 1.0 * k, 2.0 * k)])
        before = columns_of(chain.head.table())
        ordinal = chain.head.ordinal
        compacted = chain.compact()
        assert compacted.ordinal == ordinal + 1
        assert len(compacted.segments) == 1
        assert compacted.rows == 4
        after = columns_of(compacted.table())
        assert before[0] == after[0]
        for lhs, rhs in zip(before[1:], after[1:]):
            assert np.array_equal(lhs, rhs)

    def test_compaction_noop_below_two_segments(self):
        chain = VersionedMoft("FM")
        assert chain.compact() is chain.head
        head = publish_rows(chain, [("a", 0.0, 1.0, 1.0)])
        assert chain.compact() is head

    def test_publish_after_compaction_extends_the_base(self):
        chain = VersionedMoft("FM")
        publish_rows(chain, [("a", 0.0, 1.0, 1.0)])
        publish_rows(chain, [("b", 1.0, 2.0, 2.0)])
        chain.compact()
        snap = publish_rows(chain, [("c", 2.0, 3.0, 3.0)])
        assert len(snap.segments) == 2
        assert snap.rows == 3
        oids, t, _, _ = columns_of(snap.table())
        assert oids == ["a", "b", "c"]
        assert np.array_equal(t, np.array([0.0, 1.0, 2.0]))

    def test_table_is_cached(self):
        chain = VersionedMoft("FM")
        publish_rows(chain, [("a", 0.0, 1.0, 1.0)])
        publish_rows(chain, [("b", 1.0, 2.0, 2.0)])
        head = chain.head
        assert head.table() is head.table()


class TestSave:
    def test_snapshot_saves_as_columnar_file(self, tmp_path):
        chain = VersionedMoft("FM")
        publish_rows(chain, [("a", 0.0, 1.0, 1.0), ("b", 0.0, 2.0, 2.0)])
        publish_rows(chain, [("a", 1.0, 1.5, 1.5)])
        snap = chain.head
        path = tmp_path / "v2.moft"
        nbytes = snap.save(path)
        assert nbytes == path.stat().st_size > 0

        loaded = MOFT.load(path)
        want = columns_of(snap.table())
        got = columns_of(loaded)
        assert want[0] == got[0]
        for lhs, rhs in zip(want[1:], got[1:]):
            assert np.array_equal(lhs, rhs)

    def test_saved_version_is_pinned_against_later_publishes(self, tmp_path):
        """The file captures exactly the saved version, not the live head."""
        chain = VersionedMoft("FM")
        pinned = publish_rows(chain, [("a", 0.0, 1.0, 1.0)])
        publish_rows(chain, [("b", 1.0, 2.0, 2.0)])
        path = tmp_path / "pinned.moft"
        pinned.save(path)
        loaded = MOFT.load(path)
        assert len(loaded) == 1
        assert list(loaded.oid_column()) == ["a"]
        assert chain.head.rows == 2
