"""Hypothesis properties of the watermark semantics.

Three statements, each quantified over arbitrary batch schedules:

* the watermark is monotone and equals
  ``max(event time seen) - allowed_lateness`` once any event arrived;
* routing is exhaustive and exact: a sample is late iff it arrives at
  or below the watermark of the *previous* batches, and at every
  instant ``submitted == ingested + late + buffered`` — nothing is
  silently dropped, nothing counted twice;
* watermark-ordered sealing keeps the pre-agg maintainer on the pure
  delta path: :meth:`~repro.preagg.PreAggStore.update` never reports
  ``"rebuild"`` during a streaming run, whatever the disorder of the
  input schedule.

The routing properties run without pre-agg stores (event times may be
arbitrary floats); the delta-path property uses registered instants so
folding is legal.
"""

from __future__ import annotations

import math
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ingest import IngestConfig, StoreSpec, StreamingIngestor
from repro.preagg import PreAggStore

pytestmark = pytest.mark.ingest

# Event times: finite floats in a range wide enough to exercise
# negative times and coarse/fine spacing alike.
EVENT_TIMES = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

BATCHES = st.lists(
    st.lists(EVENT_TIMES, min_size=0, max_size=8), min_size=1, max_size=12
)

LATENESS = st.sampled_from([0.0, 0.5, 3.0, 25.0, 1e5])


def build(stream_world, lateness: float, store_specs=()) -> StreamingIngestor:
    return StreamingIngestor(
        stream_world.gis,
        stream_world.time,
        moft_name=stream_world.moft_name,
        config=IngestConfig(allowed_lateness=lateness, compact_every=3),
        store_specs=store_specs,
    )


def submit_times(ingestor: StreamingIngestor, times, tag: str):
    """Submit one batch of uniquely-named samples at the given times."""
    n = len(times)
    return ingestor.submit(
        [f"{tag}-{i}" for i in range(n)],
        list(times),
        [0.0] * n,
        [0.0] * n,
    )


class TestRoutingProperties:
    @given(batches=BATCHES, lateness=LATENESS)
    @settings(max_examples=120, deadline=None)
    def test_watermark_is_monotone_and_tracks_max_event(
        self, fig1_stream, batches, lateness
    ):
        ingestor = build(fig1_stream, lateness)
        watermark = -math.inf
        max_t = -math.inf
        for k, batch in enumerate(batches):
            report = submit_times(ingestor, batch, f"b{k}")
            # Only non-late samples advance the event-time high mark.
            for t in batch:
                if t > watermark:
                    max_t = max(max_t, t)
            expected = (
                max(watermark, max_t - lateness)
                if math.isfinite(max_t)
                else -math.inf
            )
            assert report.watermark >= watermark
            assert report.watermark == expected
            watermark = report.watermark

    @given(batches=BATCHES, lateness=LATENESS)
    @settings(max_examples=120, deadline=None)
    def test_routing_is_exhaustive_and_exact(
        self, fig1_stream, batches, lateness
    ):
        """late iff ``t <= watermark`` at arrival; totals always add up."""
        ingestor = build(fig1_stream, lateness)
        submitted = ingested = late = 0
        expected_late_ts = []
        for k, batch in enumerate(batches):
            watermark_before = ingestor.watermark
            report = submit_times(ingestor, batch, f"b{k}")
            expected_late = [t for t in batch if t <= watermark_before]
            expected_late_ts.extend(expected_late)
            assert report.late == len(expected_late)
            submitted += report.submitted
            ingested += report.ingested
            late += report.late
            # Exhaustive at every instant, not just at close.
            assert report.buffered == submitted - ingested - late
            assert report.rows == ingested
        final = ingestor.close()
        counters = ingestor.obs.counters
        assert counters.get("samples_submitted", 0) == submitted
        assert counters.get("samples_late", 0) == late
        # close() seals everything buffered: ingested + late == submitted.
        assert counters.get("samples_ingested", 0) == submitted - late
        assert final.rows == submitted - late
        side_channel = ingestor.late_samples()
        assert len(side_channel) == late
        assert sorted(t for _, t, _, _ in side_channel) == sorted(
            expected_late_ts
        )

    @given(lateness=LATENESS)
    @settings(max_examples=20, deadline=None)
    def test_close_is_idempotent_and_final(self, fig1_stream, lateness):
        ingestor = build(fig1_stream, lateness)
        submit_times(ingestor, [5.0, 1.0, 3.0], "a")
        first = ingestor.close()
        assert ingestor.close() is first
        from repro.errors import IngestError

        with pytest.raises(IngestError, match="closed"):
            submit_times(ingestor, [9.0], "z")


@contextmanager
def recording_updates():
    """Record every :meth:`PreAggStore.update` outcome engine-wide."""
    outcomes = []
    original = PreAggStore.update

    def recorder(self):
        outcome = original(self)
        outcomes.append(outcome)
        return outcome

    PreAggStore.update = recorder
    try:
        yield outcomes
    finally:
        PreAggStore.update = original


class TestDeltaPathProperty:
    @given(
        seed=st.integers(0, 2**20),
        batch_size=st.integers(1, 7),
        lateness=st.sampled_from([0.0, 1.0, 4.0, 12.0]),
    )
    @settings(max_examples=30, deadline=None)
    def test_watermark_ordered_folds_never_rebuild(
        self, fig1_stream, seed, batch_size, lateness
    ):
        """Sealing sorts by event time, so every publish is a strict
        per-object time extension and ``update()`` stays incremental."""
        import random

        schedule = list(fig1_stream.samples)
        random.Random(seed).shuffle(schedule)
        ingestor = build(
            fig1_stream,
            lateness,
            store_specs=(StoreSpec("hour", "Ln", "polygon"),),
        )
        with recording_updates() as outcomes:
            for start in range(0, len(schedule), batch_size):
                batch = schedule[start:start + batch_size]
                ingestor.submit(
                    [s[0] for s in batch],
                    [s[1] for s in batch],
                    [s[2] for s in batch],
                    [s[3] for s in batch],
                )
            ingestor.close()
        assert outcomes, "no folds happened (schedule sealed nothing?)"
        assert all(o in ("fresh", "delta") for o in outcomes), outcomes
