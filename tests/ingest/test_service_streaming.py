"""Streaming worlds through the query service: ingest jobs vs queries.

``kind="ingest"`` specs feed a streaming world's ingestor through the
same durable queue as queries; query jobs pin the current snapshot for
their whole execution.  Pinned here:

* the ingest spec vocabulary (round-trip, validation, payload);
* streaming worlds answer queries before, during, and after ingest;
* ingest jobs against a batch world fail cleanly (non-retryable);
* concurrent ingest + query jobs keep the accounting exact.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.gis import NODE, POLYGON, POLYLINE
from repro.service import QueryService, QuerySpec, load_world
from repro.service.spec import canonical_json, result_payload

pytestmark = [pytest.mark.ingest, pytest.mark.service]

FIG1_THROUGH = QuerySpec.through(
    ("Ln", POLYGON),
    [("intersects", ("Lr", POLYLINE)), ("contains", ("Ls", NODE))],
    moft_name="FMbus",
)


def fig1_time_batches(context):
    """Figure 1's samples grouped by instant, in time order — the shape
    a zero-lateness stream accepts completely."""
    moft = context.moft("FMbus")
    oids = moft.oid_column()
    t, x, y = moft.as_arrays()
    groups = {}
    for i in range(len(moft)):
        groups.setdefault(float(t[i]), []).append(
            (str(oids[i]), float(t[i]), float(x[i]), float(y[i]))
        )
    return [groups[key] for key in sorted(groups)]


class TestIngestSpec:
    def test_round_trip(self):
        spec = QuerySpec.ingest(
            [("O1", 0.0, 1.5, 2.5), ("O2", 1, 3, 4)]
        )
        again = QuerySpec.from_json(spec.to_json())
        assert again == spec
        assert again.samples == (
            ("O1", 0.0, 1.5, 2.5), ("O2", 1.0, 3.0, 4.0),
        )

    def test_describe(self):
        spec = QuerySpec.ingest([("a", 3.0, 0.0, 0.0), ("b", 1.0, 0.0, 0.0)])
        assert spec.describe() == "ingest 2 sample(s) [t=1..3]"

    def test_empty_samples_rejected(self):
        with pytest.raises(ServiceError, match=">= 1 sample"):
            QuerySpec(kind="ingest")

    def test_malformed_sample_rejected(self):
        with pytest.raises(ServiceError, match="oid, t, x, y"):
            QuerySpec(kind="ingest", samples=(("a", 1.0, 2.0),))

    def test_result_payload_shape(self, fig1_stream):
        from tests.ingest.conftest import run_schedule

        ingestor = run_schedule(fig1_stream, batch_size=50, lateness=0.0)
        # Re-open semantics are irrelevant here; fabricate one report.
        from repro.ingest import IngestReport

        payload = result_payload(
            "ingest",
            IngestReport(
                submitted=4, ingested=3, late=1, buffered=0,
                watermark=5.0, ordinal=2, rows=3,
            ),
        )
        assert payload == {
            "kind": "ingest", "submitted": 4, "ingested": 3, "late": 1,
            "buffered": 0, "watermark": 5.0, "version": 2, "rows": 3,
        }
        assert json.loads(canonical_json(payload)) == payload
        assert ingestor.snapshot().rows == len(fig1_stream.samples)


class TestStreamingWorlds:
    def test_streaming_world_is_queryable_while_empty(self):
        world = load_world("fig1", streaming=True)
        assert world.ingestor is not None
        service = QueryService(world, n_workers=1)
        job_id = service.submit(FIG1_THROUGH)
        with service:
            service.drain(timeout=60.0)
        assert service.status(job_id).state == "done"
        assert service.result(job_id) == {"kind": "through", "count": 0}

    def test_ingest_then_query_reaches_batch_answer(self, fig1_context):
        """Stream Figure 1 through ingest jobs, then ask the paper's
        count query: the service must give the batch-world answer (5)."""
        world = load_world("fig1", streaming=True)
        service = QueryService(world, n_workers=1)
        ingest_ids = [
            service.submit(QuerySpec.ingest(batch))
            for batch in fig1_time_batches(fig1_context)
        ]
        query_id = service.submit(FIG1_THROUGH)
        with service:
            service.drain(timeout=120.0)
        versions = []
        total_ingested = 0
        for job_id in ingest_ids:
            job = service.status(job_id)
            assert job.state == "done"
            payload = service.result(job_id)
            assert payload["kind"] == "ingest"
            assert payload["late"] == 0
            total_ingested += payload["ingested"]
            versions.append(payload["version"])
        # One worker executes FIFO: versions advance monotonically.
        assert versions == sorted(versions)
        # The zero-lateness watermark holds back the newest instant
        # until close; everything before it is ingested.
        snapshot = world.ingestor.close()
        assert snapshot.rows == len(fig1_context.moft("FMbus"))
        assert service.result(query_id) == {"kind": "through", "count": 5}

    def test_ingest_job_against_batch_world_fails_cleanly(self):
        world = load_world("fig1")  # batch: no ingestor
        service = QueryService(world, n_workers=1)
        job_id = service.submit(
            QuerySpec.ingest([("O1", 0.0, 0.0, 0.0)])
        )
        with service:
            service.drain(timeout=60.0)
        job = service.status(job_id)
        assert job.state == "failed"
        assert job.attempts == 1  # non-retryable
        assert "streaming" in (job.error or "")

    def test_concurrent_ingest_and_queries_stay_exact(self):
        """Many workers race ingest jobs against query jobs; every job
        lands, the accounting is exhaustive, and the final answer equals
        the serial recomputation over the final snapshot."""
        world = load_world("synth", streaming=True)
        service = QueryService(world, n_workers=3)
        synth_through = QuerySpec.through(("Ln", POLYGON), [])
        import random

        rng = random.Random(77)
        ingest_ids, query_ids = [], []
        n_jobs, per_batch = 12, 20
        for j in range(n_jobs):
            samples = [
                (
                    f"obj-{j}-{i}",
                    float(rng.randrange(100)),
                    rng.uniform(0.0, 600.0),
                    rng.uniform(0.0, 600.0),
                )
                for i in range(per_batch)
            ]
            ingest_ids.append(service.submit(QuerySpec.ingest(samples)))
            query_ids.append(service.submit(synth_through))
        with service:
            service.drain(timeout=300.0)

        submitted = ingested = late = 0
        for job_id in ingest_ids:
            job = service.status(job_id)
            assert job.state == "done"
            payload = service.result(job_id)
            submitted += payload["submitted"]
            ingested += payload["ingested"]
            late += payload["late"]
        assert submitted == n_jobs * per_batch
        counters = world.ingestor.obs.counters
        assert counters["samples_submitted"] == submitted
        assert counters["samples_late"] == late

        for job_id in query_ids:
            job = service.status(job_id)
            assert job.state == "done"
            payload = service.result(job_id)
            assert payload["kind"] == "through"
            assert 0 <= payload["count"] <= submitted

        # Close the stream: exhaustive routing, then the final snapshot
        # answers like a serial scan of its own table.
        final = world.ingestor.close()
        counters = world.ingestor.obs.counters
        assert (
            counters["samples_ingested"] + counters["samples_late"]
            == counters["samples_submitted"]
        )
        assert final.rows == counters["samples_ingested"]
        from repro.query.evaluator import count_objects_through

        expected = count_objects_through(
            final.context(), ("Ln", POLYGON), [], moft_name="FM",
            use_preagg=False,
        )
        final_job = service.submit(synth_through)
        with service:
            service.drain(timeout=60.0)
        assert service.result(final_job) == {
            "kind": "through", "count": expected,
        }
