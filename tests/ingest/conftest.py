"""Shared worlds and schedule helpers for the ingest test campaign.

The campaign's one contract: a streaming ingest of any schedule —
shuffled, batched, with late arrivals routed to the side channel —
must, after watermark close and compaction, answer exactly like a
one-shot batch load of exactly the accepted samples.  The helpers here
make that statement mechanical:

* :func:`moft_samples` flattens a MOFT into ``(oid, t, x, y)`` rows;
* :func:`run_schedule` shuffles/batches/submits/closes one ingestor;
* :func:`accepted_samples` subtracts the late side channel;
* :func:`batch_reference` builds the one-shot reference world;
* :func:`count_payload` / :func:`through_payload` render answers as
  canonical JSON, so "identical" is a byte comparison — the same door
  every service result goes through.

Dwell time is the one aggregate compared with ``math.isclose``
(rel/abs 1e-9) instead of bytes: it is a float sum whose terms
associate differently between the per-flush incremental folds and the
single batch fold.  Counts and id sets stay exact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import datetime
from typing import Hashable, List, Sequence, Tuple

import numpy as np
import pytest

from repro.gis import POLYGON
from repro.ingest import IngestConfig, StoreSpec, StreamingIngestor
from repro.mo.moft import MOFT
from repro.preagg import PreAggStore
from repro.query.aggregate import total_dwell_time
from repro.query.evaluator import count_objects_through, objects_through
from repro.query.region import EvaluationContext
from repro.service.spec import canonical_json, result_payload
from repro.synth import CityConfig, build_city, figure1_instance
from repro.synth.movement import random_waypoint_moft
from repro.temporal.calendar import hourly
from repro.temporal.timedim import TimeDimension

from tests.parallel.oracle import DifferentialOracle

Sample = Tuple[Hashable, float, float, float]

TARGET = ("Ln", POLYGON)


def moft_samples(moft: MOFT) -> List[Sample]:
    """Flatten a MOFT into ``(oid, t, x, y)`` rows in insertion order."""
    oids = moft.oid_column()
    t, x, y = moft.as_arrays()
    return [
        (oids[i], float(t[i]), float(x[i]), float(y[i]))
        for i in range(len(moft))
    ]


def run_schedule(
    world: "StreamWorld",
    *,
    samples: Sequence[Sample] = None,
    batch_size: int = 4,
    lateness: float = 0.0,
    seed=None,
    compact_every: int = 4,
) -> StreamingIngestor:
    """Shuffle (when seeded), batch, submit and close one ingest run."""
    schedule = list(world.samples if samples is None else samples)
    if seed is not None:
        random.Random(seed).shuffle(schedule)
    ingestor = StreamingIngestor(
        world.gis,
        world.time,
        moft_name=world.moft_name,
        config=IngestConfig(
            allowed_lateness=lateness, compact_every=compact_every
        ),
        store_specs=(StoreSpec(world.granule, "Ln", POLYGON),),
    )
    for start in range(0, len(schedule), batch_size):
        batch = schedule[start:start + batch_size]
        ingestor.submit(
            [s[0] for s in batch],
            [s[1] for s in batch],
            [s[2] for s in batch],
            [s[3] for s in batch],
        )
    ingestor.close()
    return ingestor


def accepted_samples(
    submitted: Sequence[Sample], ingestor: StreamingIngestor
) -> List[Sample]:
    """``submitted`` minus the late side channel, in submitted order.

    ``(oid, t)`` is unique across a schedule (the rows come from one
    validated MOFT), so late keys identify samples unambiguously.
    """
    late = {
        (oid, float(t)) for oid, t, _, _ in ingestor.late_samples()
    }
    return [s for s in submitted if (s[0], float(s[1])) not in late]


def batch_reference(
    world: "StreamWorld", samples: Sequence[Sample]
) -> EvaluationContext:
    """One-shot batch load of exactly ``samples``, store registered."""
    if samples:
        moft = MOFT.from_columns(
            [s[0] for s in samples],
            [s[1] for s in samples],
            [s[2] for s in samples],
            [s[3] for s in samples],
            name=world.moft_name,
        )
    else:
        moft = MOFT(world.moft_name)
    context = EvaluationContext(world.gis, world.time, moft)
    if len(moft):
        elements = world.gis.layer("Ln").elements(POLYGON)
        context.register_preagg(
            PreAggStore(
                moft, world.time, world.granule, elements,
                layer="Ln", kind=POLYGON,
            )
        )
    return context


def _plain_ids(ids) -> list:
    return sorted(
        (i.item() if hasattr(i, "item") else i for i in ids), key=repr
    )


def count_payload(
    context: EvaluationContext,
    constraints=(),
    moft_name: str = "FM",
    window=None,
) -> str:
    """Canonical-JSON count answer (serial scan; the byte-compared form)."""
    count = count_objects_through(
        context, TARGET, list(constraints), moft_name=moft_name,
        window=window, use_preagg=False,
    )
    return canonical_json(result_payload("through", count))


def through_payload(
    context: EvaluationContext, constraints=(), moft_name: str = "FM"
) -> str:
    """Canonical-JSON sorted THROUGH id set (byte-compared)."""
    ids = objects_through(
        context, TARGET, list(constraints), moft_name=moft_name,
        use_preagg=False,
    )
    return canonical_json(_plain_ids(ids))


def dwell_value(
    context: EvaluationContext, constraints=(), moft_name: str = "FM"
) -> float:
    return total_dwell_time(
        context, TARGET, list(constraints), moft_name=moft_name,
        use_preagg=False,
    )


@dataclass
class StreamWorld:
    """A gis + time dimension plus the sample rows to stream into it.

    ``granule`` is the pre-agg granule level that partitions the
    world's instants contiguously ("hour" for Figure 1's one-day
    clock, "day" for the synth worlds whose hourly instants wrap the
    hour-of-day level after 24 steps).
    """

    gis: object
    time: TimeDimension
    samples: List[Sample]
    moft_name: str
    granule: str


@pytest.fixture(scope="session")
def fig1_context():
    return figure1_instance().context()


@pytest.fixture(scope="session")
def fig1_stream(fig1_context) -> StreamWorld:
    """The paper's Figure 1 instance as a streamable sample set."""
    return StreamWorld(
        fig1_context.gis,
        fig1_context.time,
        moft_samples(fig1_context.moft("FMbus")),
        "FMbus",
        "hour",
    )


@pytest.fixture(scope="session")
def small_synth_stream() -> StreamWorld:
    """A 2,000-sample synthetic world (fast enough for the tier-1 lane)."""
    city = build_city(
        CityConfig(cols=4, rows=4), rng=np.random.default_rng(11)
    )
    moft = random_waypoint_moft(
        city.bounding_box,
        n_objects=40,
        n_instants=50,
        speed=city.config.block_size / 2,
        rng=np.random.default_rng(5),
    )
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(50)
    )
    return StreamWorld(city.gis, time_dim, moft_samples(moft), "FM", "day")


@pytest.fixture(scope="session")
def synth_10k_stream() -> StreamWorld:
    """The full 10,000-sample differential world (slow lane)."""
    city = build_city(
        CityConfig(cols=6, rows=6), rng=np.random.default_rng(20060109)
    )
    moft = random_waypoint_moft(
        city.bounding_box,
        n_objects=100,
        n_instants=100,
        speed=city.config.block_size / 2,
        rng=np.random.default_rng(42),
    )
    assert len(moft) == 10_000
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(100)
    )
    return StreamWorld(city.gis, time_dim, moft_samples(moft), "FM", "day")


@pytest.fixture(scope="session")
def oracle() -> DifferentialOracle:
    return DifferentialOracle()
