"""Concurrency torture: readers pin snapshots while the writer ingests.

The MVCC claims under real-thread load (the ingest counterpart of
``tests/service/test_service_stress.py``):

* **no torn reads** — every answer a reader computes from a pinned
  snapshot equals the serial recomputation over that snapshot's row
  prefix of the final table (row-prefix extension makes the prefix the
  complete description of a published version);
* **exact accounting** — after the run the observability counters add
  up exactly: ``samples_ingested + samples_late == samples_submitted``,
  the side channel holds precisely ``samples_late`` rows, and the final
  table holds precisely ``samples_ingested`` rows;
* **compaction is answer-neutral** — a pinned pre-compaction snapshot
  keeps answering identically, and the post-compaction snapshot is
  row-for-row the same table.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.ingest import IngestConfig, StoreSpec, StreamingIngestor
from repro.gis import POLYGON
from repro.mo.moft import MOFT
from repro.query.evaluator import count_objects_through
from repro.query.region import EvaluationContext

from tests.ingest.conftest import (
    TARGET,
    count_payload,
    moft_samples,
    run_schedule,
    through_payload,
)

pytestmark = pytest.mark.ingest


def build_ingestor(world, *, lateness=5.0, compact_every=4):
    return StreamingIngestor(
        world.gis,
        world.time,
        moft_name=world.moft_name,
        config=IngestConfig(
            allowed_lateness=lateness, compact_every=compact_every
        ),
        store_specs=(StoreSpec(world.granule, "Ln", POLYGON),),
    )


def prefix_context(world, final_moft: MOFT, rows: int) -> EvaluationContext:
    """Rebuild the published version with ``rows`` rows from the final
    table (row-prefix extension: every version is a prefix)."""
    if rows == 0:
        return EvaluationContext(world.gis, world.time, MOFT(world.moft_name))
    oids = final_moft.oid_column()
    t, x, y = final_moft.as_arrays()
    prefix = MOFT.from_columns(
        list(oids[:rows]), t[:rows], x[:rows], y[:rows],
        name=world.moft_name, validate=False,
    )
    return EvaluationContext(world.gis, world.time, prefix)


def test_readers_see_only_published_versions(small_synth_stream):
    """N reader threads race a writer; every (rows, answer) pair a
    reader observed must match the serial recomputation of that row
    prefix — i.e. every answer belongs to some published version."""
    world = small_synth_stream
    import random

    schedule = list(world.samples)
    random.Random(99).shuffle(schedule)
    ingestor = build_ingestor(world, lateness=5.0, compact_every=4)

    stop = threading.Event()
    observations, errors = [], []
    lock = threading.Lock()

    def reader() -> None:
        try:
            while not stop.is_set():
                snap = ingestor.snapshot()
                context = snap.context()
                count = count_objects_through(
                    context, TARGET, [], moft_name=world.moft_name
                )
                with lock:
                    observations.append((snap.ordinal, snap.rows, count))
        except Exception as exc:  # pragma: no cover - failure detail
            with lock:
                errors.append(exc)

    readers = [threading.Thread(target=reader) for _ in range(4)]
    for thread in readers:
        thread.start()
    try:
        batch = 64
        for k, start in enumerate(range(0, len(schedule), batch)):
            rows = schedule[start:start + batch]
            ingestor.submit(
                [s[0] for s in rows],
                [s[1] for s in rows],
                [s[2] for s in rows],
                [s[3] for s in rows],
            )
            if k % 5 == 4:
                ingestor.compact()
        ingestor.close()
    finally:
        stop.set()
        for thread in readers:
            thread.join()

    assert errors == []
    assert observations, "readers never completed a query"

    final = ingestor.snapshot()
    final_moft = final.moft

    # Every observed answer matches the serial recomputation of its
    # snapshot's row prefix: no reader ever saw torn state.
    expected = {}
    for _, rows, _ in observations:
        if rows not in expected:
            expected[rows] = count_objects_through(
                prefix_context(world, final_moft, rows),
                TARGET,
                [],
                moft_name=world.moft_name,
                use_preagg=False,
            )
    for ordinal, rows, count in observations:
        assert count == expected[rows], (
            f"torn read at ordinal={ordinal}: rows={rows} gave {count}, "
            f"serial prefix gives {expected[rows]}"
        )

    # Exact accounting, not approximate.
    counters = ingestor.obs.counters
    total = len(world.samples)
    assert counters["samples_submitted"] == total
    assert (
        counters["samples_ingested"] + counters["samples_late"] == total
    )
    assert len(ingestor.late_samples()) == counters["samples_late"]
    assert final.rows == counters["samples_ingested"]
    # The final table holds exactly the accepted samples.
    late = {(oid, t) for oid, t, _, _ in ingestor.late_samples()}
    accepted = [
        s for s in world.samples if (s[0], s[1]) not in late
    ]
    assert sorted(moft_samples(final_moft)) == sorted(accepted)


def test_pinned_snapshot_survives_writer_progress(fig1_stream):
    """A pinned version keeps answering identically while the writer
    publishes, compacts, and closes behind it."""
    world = fig1_stream
    ingestor = build_ingestor(world, lateness=12.0, compact_every=0)
    schedule = sorted(world.samples, key=lambda s: (s[1], repr(s[0])))
    half = len(schedule) // 2
    for start in range(0, half, 3):
        rows = schedule[start:start + 3]
        ingestor.submit(
            [s[0] for s in rows],
            [s[1] for s in rows],
            [s[2] for s in rows],
            [s[3] for s in rows],
        )
    pinned = ingestor.snapshot()
    pinned_rows = pinned.rows
    before_count = count_payload(
        pinned.context(), moft_name=world.moft_name
    )
    before_through = through_payload(
        pinned.context(), moft_name=world.moft_name
    )
    for start in range(half, len(schedule), 3):
        rows = schedule[start:start + 3]
        ingestor.submit(
            [s[0] for s in rows],
            [s[1] for s in rows],
            [s[2] for s in rows],
            [s[3] for s in rows],
        )
    ingestor.compact()
    ingestor.close()
    assert pinned.rows == pinned_rows
    assert count_payload(
        pinned.context(), moft_name=world.moft_name
    ) == before_count
    assert through_payload(
        pinned.context(), moft_name=world.moft_name
    ) == before_through
    assert ingestor.snapshot().rows > pinned_rows


def test_compaction_never_changes_answers(small_synth_stream):
    """Snapshot vs its compacted successor: same rows, same bytes."""
    world = small_synth_stream
    # Time-ordered delivery with a short lateness budget: the watermark
    # trails each batch, so every batch seals its own delta segment and
    # the chain grows long enough for compaction to have work to do.
    schedule = sorted(world.samples, key=lambda s: (s[1], repr(s[0])))
    ingestor = build_ingestor(world, lateness=3.0, compact_every=0)
    batch = 128
    for start in range(0, len(schedule), batch):
        rows = schedule[start:start + batch]
        ingestor.submit(
            [s[0] for s in rows],
            [s[1] for s in rows],
            [s[2] for s in rows],
            [s[3] for s in rows],
        )
    before = ingestor.snapshot()
    assert len(ingestor.chain.head.segments) > 1
    before_count = count_payload(
        before.context(), moft_name=world.moft_name
    )
    before_through = through_payload(
        before.context(), moft_name=world.moft_name
    )
    after = ingestor.compact()
    assert after.ordinal > before.ordinal
    assert after.rows == before.rows
    assert len(ingestor.chain.head.segments) == 1
    # Row-for-row identical tables...
    assert list(after.moft.oid_column()) == list(before.moft.oid_column())
    for lhs, rhs in zip(after.moft.as_arrays(), before.moft.as_arrays()):
        assert np.array_equal(lhs, rhs)
    # ...and byte-identical answers, from both the old and new versions.
    assert count_payload(
        after.context(), moft_name=world.moft_name
    ) == before_count
    assert through_payload(
        after.context(), moft_name=world.moft_name
    ) == before_through


def test_concurrent_writers_serialize_cleanly(fig1_stream):
    """submit() from many threads: the lock serializes publishes and
    the accounting still adds up exactly."""
    world = fig1_stream
    ingestor = build_ingestor(world, lateness=12.0, compact_every=3)
    groups = {}
    for sample in world.samples:
        groups.setdefault(sample[1], []).append(sample)
    batches = [groups[t] for t in sorted(groups)]
    errors = []

    def writer(rows) -> None:
        try:
            ingestor.submit(
                [s[0] for s in rows],
                [s[1] for s in rows],
                [s[2] for s in rows],
                [s[3] for s in rows],
            )
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(rows,)) for rows in batches
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    final = ingestor.close()
    assert errors == []
    counters = ingestor.obs.counters
    total = len(world.samples)
    assert counters["samples_submitted"] == total
    assert (
        counters["samples_ingested"] + counters["samples_late"] == total
    )
    assert final.rows == counters["samples_ingested"]
    # Lateness covers the whole span, so arrival order cannot drop rows.
    assert final.rows == total
    assert count_payload(
        final.context(), moft_name=world.moft_name
    ) == count_payload(
        run_schedule(world, batch_size=len(world.samples)).snapshot().context(),
        moft_name=world.moft_name,
    )
