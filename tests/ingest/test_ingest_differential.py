"""The ingest-vs-batch differential campaign.

The contract under test: streaming any ingest schedule — shuffled,
batched, with late arrivals — yields, after watermark close and
compaction, a world that answers **identically** to a one-shot batch
load of exactly the accepted samples.  "Identically" means:

* count and THROUGH answers are byte-identical canonical JSON;
* dwell time matches to 1e-9 relative tolerance (float fold order is
  the only thing allowed to differ);
* the snapshot's cloned pre-agg stores serve the planner exactly like
  freshly built ones (three-way oracle: serial scan vs sharded scans
  vs the pre-agg route, inside the ingested world).

Schedules cover the Figure 1 instance exhaustively-ish (a grid of
shuffle seeds x batch sizes x lateness budgets plus a hypothesis fuzz
layer) and the synthetic city at two scales (2k fast, 10k slow lane).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gis import NODE, POLYLINE

from tests.ingest.conftest import (
    TARGET,
    accepted_samples,
    batch_reference,
    count_payload,
    dwell_value,
    through_payload,
    run_schedule,
)

pytestmark = pytest.mark.ingest

FIG1_CONSTRAINTS = [
    ("intersects", ("Lr", POLYLINE)),
    ("contains", ("Ls", NODE)),
]
SYNTH_CONSTRAINTS = [("intersects", ("Lr", POLYLINE))]


def assert_matches_batch(
    ingestor, world, constraints, *, dwell: bool = True
) -> None:
    """The closed ingest run answers byte-identically to a one-shot
    batch load of exactly its accepted samples."""
    accepted = accepted_samples(world.samples, ingestor)
    snap = ingestor.snapshot()
    assert snap.rows == len(accepted)
    reference = batch_reference(world, accepted)
    context = snap.context()
    for legs in ([], constraints):
        assert count_payload(
            context, legs, moft_name=world.moft_name
        ) == count_payload(reference, legs, moft_name=world.moft_name)
    assert through_payload(
        context, moft_name=world.moft_name
    ) == through_payload(reference, moft_name=world.moft_name)
    if dwell and len(accepted):
        assert math.isclose(
            dwell_value(context, moft_name=world.moft_name),
            dwell_value(reference, moft_name=world.moft_name),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )


class TestFig1Schedules:
    """A grid over the Figure 1 instance: every combination of shuffle,
    batching and lateness budget must match its batch reference."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("batch_size", [1, 3, 5, 12])
    @pytest.mark.parametrize("lateness", [0.0, 2.0, 12.0])
    def test_schedule_matches_batch_load(
        self, fig1_stream, seed, batch_size, lateness
    ):
        ingestor = run_schedule(
            fig1_stream,
            batch_size=batch_size,
            lateness=lateness,
            seed=seed,
        )
        assert_matches_batch(ingestor, fig1_stream, FIG1_CONSTRAINTS)

    def test_generous_lateness_accepts_everything(self, fig1_stream):
        """With lateness >= the time span nothing is late, so the final
        world answers exactly like the original Figure 1 instance."""
        ingestor = run_schedule(
            fig1_stream, batch_size=5, lateness=12.0, seed=7
        )
        assert ingestor.late_samples() == ()
        assert ingestor.snapshot().rows == len(fig1_stream.samples)
        assert_matches_batch(ingestor, fig1_stream, FIG1_CONSTRAINTS)

    def test_in_order_zero_lateness_accepts_everything(self, fig1_stream):
        """Time-ordered delivery needs no lateness budget as long as
        batches do not split a same-instant group."""
        ordered = sorted(fig1_stream.samples, key=lambda s: s[1])
        groups = {}
        for sample in ordered:
            groups.setdefault(sample[1], []).append(sample)
        ingestor = run_schedule(
            fig1_stream,
            samples=[s for t in sorted(groups) for s in groups[t]],
            batch_size=max(len(g) for g in groups.values()) * len(groups),
            lateness=0.0,
        )
        # One giant batch: nothing can be late (routing precedes advance).
        assert ingestor.late_samples() == ()
        assert_matches_batch(ingestor, fig1_stream, FIG1_CONSTRAINTS)

    @given(
        seed=st.integers(0, 2**16),
        batch_size=st.integers(1, 13),
        lateness=st.sampled_from([0.0, 1.0, 3.0, 7.0, 12.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_fuzzed_schedules(self, fig1_stream, seed, batch_size, lateness):
        ingestor = run_schedule(
            fig1_stream,
            batch_size=batch_size,
            lateness=lateness,
            seed=seed,
        )
        # Exhaustive routing: accepted + late == submitted, and the
        # answers match the batch load of exactly the accepted set.
        assert (
            ingestor.snapshot().rows + len(ingestor.late_samples())
            == len(fig1_stream.samples)
        )
        assert_matches_batch(
            ingestor, fig1_stream, FIG1_CONSTRAINTS, dwell=False
        )


class TestThreeWayOnIngestedWorld:
    """The snapshot's cloned stores must serve the planner exactly like
    freshly built ones: serial vs sharded vs pre-agg, inside the
    ingested world."""

    @pytest.fixture(scope="class")
    def ingested_fig1(self, fig1_stream):
        ingestor = run_schedule(
            fig1_stream, batch_size=4, lateness=12.0, seed=13
        )
        assert ingestor.late_samples() == ()
        return ingestor.snapshot().context()

    def test_count_full_span(self, oracle, ingested_fig1):
        oracle.check_count_three_way(
            ingested_fig1, TARGET, FIG1_CONSTRAINTS, moft_name="FMbus"
        )

    def test_count_aligned_window(self, oracle, ingested_fig1):
        oracle.check_count_three_way(
            ingested_fig1, TARGET, FIG1_CONSTRAINTS,
            moft_name="FMbus", window=(2.0, 4.0),
        )

    def test_dwell(self, oracle, ingested_fig1):
        oracle.check_dwell_three_way(
            ingested_fig1, TARGET, FIG1_CONSTRAINTS, moft_name="FMbus"
        )


class TestSmallSynthSchedules:
    @pytest.mark.parametrize(
        "batch_size,lateness,seed",
        [(64, 0.0, 3), (97, 5.0, 4), (33, 50.0, 5)],
        ids=["zero-lateness", "small-budget", "accept-all"],
    )
    def test_schedule_matches_batch_load(
        self, small_synth_stream, batch_size, lateness, seed
    ):
        ingestor = run_schedule(
            small_synth_stream,
            batch_size=batch_size,
            lateness=lateness,
            seed=seed,
        )
        assert_matches_batch(
            ingestor, small_synth_stream, SYNTH_CONSTRAINTS
        )

    def test_three_way_after_ingest(self, oracle, small_synth_stream):
        ingestor = run_schedule(
            small_synth_stream, batch_size=128, lateness=50.0, seed=6
        )
        context = ingestor.snapshot().context()
        oracle.check_count_three_way(context, TARGET, SYNTH_CONSTRAINTS)
        oracle.check_dwell_three_way(context, TARGET, SYNTH_CONSTRAINTS)


@pytest.mark.slow
class TestSynth10kCampaign:
    """The full 10,000-sample world through a disorderly schedule."""

    @pytest.fixture(scope="class")
    def ingested(self, synth_10k_stream):
        return run_schedule(
            synth_10k_stream,
            batch_size=512,
            lateness=10.0,
            seed=20070109,
            compact_every=6,
        )

    def test_matches_batch_load(self, ingested, synth_10k_stream):
        assert_matches_batch(ingested, synth_10k_stream, SYNTH_CONSTRAINTS)

    def test_three_way_full_span_and_window(
        self, oracle, ingested, synth_10k_stream
    ):
        context = ingested.snapshot().context()
        oracle.check_count_three_way(context, TARGET, SYNTH_CONSTRAINTS)
        oracle.check_count_three_way(
            context, TARGET, SYNTH_CONSTRAINTS, window=(24.0, 71.0)
        )
        oracle.check_dwell_three_way(context, TARGET, SYNTH_CONSTRAINTS)
