"""Property tests: granule partitions really partition the instants.

The pre-aggregation store's exactness proof leans on two structural
facts about :meth:`TimeDimension.granules`:

* **partition** — every registered instant lands in exactly one granule
  (none dropped, none duplicated), and granules are *contiguous* runs of
  the sorted instant list, so windows decompose into whole granules plus
  edge slivers;
* **lattice rollup** — :meth:`GranulePartition.rollup_codes` maps each
  granule to exactly one parent granule, parents inherit exactly the
  union of their children's instants (no instant in two parents, none
  dropped), and straddling granules are rejected.

Hypothesis builds arbitrary contiguous partitions (and adversarial
non-contiguous ones) from random instant sets and cut points.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RollupError
from repro.synth import figure1_instance
from repro.temporal.timedim import TimeDimension


def _cuts_to_runs(n: int, cuts: list) -> list:
    """Split ``range(n)`` into contiguous runs at the given cut points."""
    boundaries = sorted({c for c in cuts if 0 < c < n}) + [n]
    runs, start = [], 0
    for boundary in boundaries:
        runs.append(list(range(start, boundary)))
        start = boundary
    return runs


@st.composite
def contiguous_worlds(draw):
    """A TimeDimension with explicit hour granules over random instants.

    Returns ``(time, instants, hour_runs, parent_of_hour)`` where the
    hour level partitions the sorted instants into contiguous runs and
    the timeOfDay level groups consecutive hours (also contiguously).
    """
    n = draw(st.integers(min_value=1, max_value=30))
    offsets = draw(
        st.lists(
            st.floats(0.125, 4.0, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    instants = list(np.cumsum(np.asarray(offsets, dtype=float)))
    hour_cuts = draw(st.lists(st.integers(1, max(n - 1, 1)), max_size=6))
    hour_runs = _cuts_to_runs(n, hour_cuts)
    parent_cuts = draw(
        st.lists(st.integers(1, max(len(hour_runs) - 1, 1)), max_size=3)
    )
    parent_runs = _cuts_to_runs(len(hour_runs), parent_cuts)
    rollups = []
    parent_of_hour = {}
    for h, run in enumerate(hour_runs):
        for i in run:
            rollups.append(("timeId", instants[i], "hour", f"h{h}"))
    for p, run in enumerate(parent_runs):
        for h in run:
            rollups.append(("hour", f"h{h}", "timeOfDay", f"p{p}"))
            parent_of_hour[f"h{h}"] = f"p{p}"
    return (
        TimeDimension.from_explicit_rollups(rollups),
        sorted(instants),
        hour_runs,
        parent_of_hour,
    )


class TestGranulePartitionProperties:
    @given(contiguous_worlds())
    @settings(max_examples=60, deadline=None)
    def test_granules_partition_instants(self, world):
        """Every instant in exactly one granule; granules are intervals."""
        time, instants, hour_runs, _ = world
        partition = time.granules("hour")
        assert len(partition) == len(hour_runs)
        # None dropped, none duplicated: the granule sizes sum to the
        # instant count and codes_for maps every instant to one granule.
        codes = partition.codes_for(np.asarray(instants, dtype=float))
        assert (codes >= 0).all()
        counts = np.bincount(codes, minlength=len(partition))
        assert int(counts.sum()) == len(instants)
        # Contiguity: codes over the sorted instants are non-decreasing,
        # so each granule is an interval of the timeline.
        assert (np.diff(codes) >= 0).all()
        # Each granule's span brackets exactly its own instants.
        for g in range(len(partition)):
            start, end = partition.span(g, g)
            inside = [t for t in instants if start <= t <= end]
            assert inside == [instants[i] for i in np.flatnonzero(codes == g)]

    @given(contiguous_worlds())
    @settings(max_examples=60, deadline=None)
    def test_rollup_is_a_partition_of_granules(self, world):
        """No instant in two parents, none dropped, one parent per child."""
        time, instants, _, parent_of_hour = world
        partition = time.granules("hour")
        parent, mapping = partition.rollup_codes(time, "timeOfDay")
        # Total: every child granule got exactly one parent code.
        assert mapping.shape == (len(partition),)
        assert (mapping >= 0).all() and (mapping < len(parent)).all()
        # The mapping agrees with the declared rollup function.
        for g, member in enumerate(partition.members):
            assert parent.members[mapping[g]] == parent_of_hour[member]
        # Parent instants = disjoint union of child instants.
        child_codes = partition.codes_for(np.asarray(instants, dtype=float))
        parent_codes = parent.codes_for(np.asarray(instants, dtype=float))
        assert (parent_codes == mapping[child_codes]).all()
        counts = np.bincount(parent_codes, minlength=len(parent))
        assert int(counts.sum()) == len(instants)

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=2, max_size=24))
    @settings(max_examples=80, deadline=None)
    def test_interleaved_granules_are_rejected(self, labels):
        """A granule whose instants interleave another's must raise."""
        rollups = [
            ("timeId", float(i), "hour", labels[i])
            for i in range(len(labels))
        ]
        time = TimeDimension.from_explicit_rollups(rollups)
        # The assignment is contiguous iff each label forms one block of
        # consecutive positions.
        blocks = 1 + sum(
            1 for a, b in zip(labels, labels[1:]) if a != b
        )
        if blocks == len(set(labels)):
            partition = time.granules("hour")
            assert len(partition) == blocks
        else:
            with pytest.raises(RollupError, match="not contiguous"):
                time.granules("hour")


class TestFig1Granules:
    def test_hour_level_partitions(self):
        time = figure1_instance().context().time
        partition = time.granules("hour")
        assert len(partition) == 6  # each instant its own toy hour

    def test_non_contiguous_level_raises(self):
        # Fig1's timeOfDay has Other = {1, 5, 6} wrapped around Morning.
        time = figure1_instance().context().time
        with pytest.raises(RollupError, match="not contiguous"):
            time.granules("timeOfDay")

    def test_straddling_rollup_raises(self):
        # hour granules 1..6 cannot roll into timeOfDay parents without
        # 'Other' straddling 'Morning'.
        time = figure1_instance().context().time
        partition = time.granules("hour")
        with pytest.raises(RollupError):
            partition.rollup_codes(time, "timeOfDay")

    def test_missing_rollup_drops_instant_raises(self):
        rollups = [
            ("timeId", 1.0, "hour", "h0"),
            ("timeId", 2.0, "hour", "h0"),
        ]
        time = TimeDimension.from_explicit_rollups(rollups)
        time.instance.add_member("timeId", 3.0)  # no hour rollup
        with pytest.raises(RollupError, match="drop"):
            time.granules("hour")
