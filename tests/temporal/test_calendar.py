"""Tests for calendar helpers and instant mappings."""

from datetime import datetime, timedelta

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaError
from repro.temporal import (
    InstantMapping,
    day_of_week_name,
    every_minutes,
    hourly,
    time_of_day_for_hour,
    type_of_day,
)


class TestTimeOfDay:
    def test_default_boundaries(self):
        assert time_of_day_for_hour(0) == "Night"
        assert time_of_day_for_hour(5) == "Night"
        assert time_of_day_for_hour(6) == "Morning"
        assert time_of_day_for_hour(11) == "Morning"
        assert time_of_day_for_hour(12) == "Afternoon"
        assert time_of_day_for_hour(18) == "Evening"
        assert time_of_day_for_hour(23) == "Evening"

    def test_out_of_range(self):
        with pytest.raises(SchemaError):
            time_of_day_for_hour(24)
        with pytest.raises(SchemaError):
            time_of_day_for_hour(-1)

    def test_custom_parts(self):
        parts = {"AM": (0, 12), "PM": (12, 24)}
        assert time_of_day_for_hour(3, parts) == "AM"
        assert time_of_day_for_hour(15, parts) == "PM"

    def test_uncovered_hour_raises(self):
        with pytest.raises(SchemaError):
            time_of_day_for_hour(13, {"AM": (0, 12)})


class TestDayClassification:
    def test_weekday_names(self):
        # 2006-01-07 is a Saturday (from the paper's example query 4 date).
        assert day_of_week_name(datetime(2006, 1, 7)) == "Saturday"
        assert day_of_week_name(datetime(2006, 1, 9)) == "Monday"

    def test_type_of_day(self):
        assert type_of_day(datetime(2006, 1, 7)) == "Weekend"
        assert type_of_day(datetime(2006, 1, 9)) == "Weekday"


class TestInstantMapping:
    EPOCH = datetime(2006, 1, 7, 0, 0)

    def test_positive_step_required(self):
        with pytest.raises(SchemaError):
            InstantMapping(self.EPOCH, timedelta(0))

    def test_hourly_roundtrip(self):
        mapping = hourly(self.EPOCH)
        assert mapping.to_datetime(9) == datetime(2006, 1, 7, 9, 0)
        assert mapping.from_datetime(datetime(2006, 1, 7, 9, 30)) == 9

    def test_every_minutes(self):
        mapping = every_minutes(self.EPOCH, 15)
        assert mapping.to_datetime(4) == datetime(2006, 1, 7, 1, 0)

    def test_every_minutes_validation(self):
        with pytest.raises(SchemaError):
            every_minutes(self.EPOCH, 0)

    def test_instants_between(self):
        mapping = hourly(self.EPOCH)
        instants = mapping.instants_between(
            datetime(2006, 1, 7, 8, 0), datetime(2006, 1, 7, 12, 0)
        )
        assert instants == [8, 9, 10, 11]

    def test_instants_between_empty(self):
        mapping = hourly(self.EPOCH)
        assert mapping.instants_between(self.EPOCH, self.EPOCH) == []

    def test_negative_instants(self):
        mapping = hourly(self.EPOCH)
        assert mapping.to_datetime(-2) == datetime(2006, 1, 6, 22, 0)

    @given(st.integers(min_value=-10000, max_value=10000))
    def test_roundtrip_property(self, t):
        mapping = every_minutes(self.EPOCH, 5)
        assert mapping.from_datetime(mapping.to_datetime(t)) == t
