"""Tests for the Time dimension."""

from datetime import datetime

import pytest

from repro.errors import RollupError, SchemaError
from repro.olap import ALL_LEVEL, ALL_MEMBER, DimensionInstance, DimensionSchema
from repro.temporal import TimeDimension, hourly, time_dimension_schema


def weekend_day() -> TimeDimension:
    """Hourly instants covering Saturday 2006-01-07 (paper's date)."""
    mapping = hourly(datetime(2006, 1, 7, 0, 0))
    return TimeDimension.from_mapping(mapping, range(24))


def two_days() -> TimeDimension:
    """Hourly instants over Sat 2006-01-07 and Mon 2006-01-09 (48 apart)."""
    mapping = hourly(datetime(2006, 1, 7, 0, 0))
    return TimeDimension.from_mapping(mapping, list(range(24)) + list(range(48, 72)))


class TestSchema:
    def test_bottom_is_time_id(self):
        assert time_dimension_schema().bottom_level == "timeId"

    def test_expected_levels(self):
        levels = time_dimension_schema().levels
        for level in (
            "timeId",
            "hour",
            "timeOfDay",
            "day",
            "dayOfWeek",
            "typeOfDay",
            "month",
            "year",
            ALL_LEVEL,
        ):
            assert level in levels

    def test_wrapping_requires_time_id_bottom(self):
        other = DimensionInstance(DimensionSchema("NotTime", [("a", "b")]))
        with pytest.raises(SchemaError):
            TimeDimension(other)


class TestFromMapping:
    def test_hour_rollup(self):
        td = weekend_day()
        assert td.hour_of(9) == 9
        assert td.hour_of(15) == 15

    def test_day_rollup(self):
        td = weekend_day()
        assert td.day_of(9) == "2006-01-07"

    def test_time_of_day(self):
        td = weekend_day()
        assert td.time_of_day_of(9) == "Morning"
        assert td.time_of_day_of(3) == "Night"
        assert td.time_of_day_of(20) == "Evening"

    def test_day_of_week_and_type(self):
        td = two_days()
        assert td.rollup(9, "dayOfWeek") == "Saturday"
        assert td.rollup(9, "typeOfDay") == "Weekend"
        assert td.rollup(57, "dayOfWeek") == "Monday"
        assert td.rollup(57, "typeOfDay") == "Weekday"

    def test_month_and_year(self):
        td = weekend_day()
        assert td.rollup(9, "month") == "2006-01"
        assert td.rollup(9, "year") == 2006

    def test_rollup_to_all(self):
        td = weekend_day()
        assert td.rollup(9, ALL_LEVEL) == ALL_MEMBER

    def test_consistency(self):
        two_days().check_consistency()

    def test_instants(self):
        assert len(weekend_day().instants) == 24


class TestQueries:
    def test_matches(self):
        td = weekend_day()
        assert td.matches(9, "timeOfDay", "Morning")
        assert not td.matches(15, "timeOfDay", "Morning")

    def test_matches_unregistered_instant(self):
        td = weekend_day()
        assert not td.matches(999, "timeOfDay", "Morning")

    def test_instants_where(self):
        td = weekend_day()
        morning = td.instants_where("timeOfDay", "Morning")
        assert morning == set(range(6, 12))

    def test_span(self):
        td = weekend_day()
        assert td.span("timeOfDay", "Morning") == 6
        assert td.span("day", "2006-01-07") == 24

    def test_span_unknown_member_raises(self):
        with pytest.raises(RollupError):
            weekend_day().span("timeOfDay", "Brunch")

    def test_try_rollup_unregistered(self):
        assert weekend_day().try_rollup(999, "hour") is None


class TestExplicitRollups:
    def test_paper_style_morning(self):
        # Figure 1 / Remark 1: instants 2..4 are "the morning".
        rollups = []
        for t in (1, 2, 3, 4, 5, 6):
            rollups.append(("timeId", t, "hour", t))
        for t in (2, 3, 4):
            rollups.append(("hour", t, "timeOfDay", "Morning"))
        for t in (1, 5, 6):
            rollups.append(("hour", t, "timeOfDay", "Other"))
        td = TimeDimension.from_explicit_rollups(rollups)
        assert td.instants_where("timeOfDay", "Morning") == {2, 3, 4}
        assert td.span("timeOfDay", "Morning") == 3
