"""Shared worlds for the differential-testing suite.

Two fixtures at session scope (the worlds are read-only and expensive):

* ``fig1`` — the paper's exact Figure 1 instance, small enough that a
  human can check the answers by eye;
* ``synth_world`` — a 6×6-block synthetic city with a 10,000-sample
  random-waypoint MOFT, generated from an explicit
  ``numpy.random.Generator`` so reruns replay the same world bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Dict

import numpy as np
import pytest

from repro.gis import NODE, POLYGON, POLYLINE
from repro.mo.moft import MOFT
from repro.pietql.executor import LayerBinding
from repro.query.region import EvaluationContext
from repro.synth import CityConfig, build_city, figure1_instance
from repro.synth.city import SyntheticCity
from repro.synth.movement import random_waypoint_moft
from repro.temporal.calendar import hourly
from repro.temporal.timedim import TimeDimension

from tests.parallel.oracle import DifferentialOracle

FIG1_BINDINGS: Dict[str, LayerBinding] = {
    "neighborhoods": LayerBinding("Ln", POLYGON),
    "rivers": LayerBinding("Lr", POLYLINE),
    "schools": LayerBinding("Ls", NODE),
}

SYNTH_BINDINGS: Dict[str, LayerBinding] = {
    "cities": LayerBinding("Lc", POLYGON),
    "neighborhoods": LayerBinding("Ln", POLYGON),
    "rivers": LayerBinding("Lr", POLYLINE),
    "stores": LayerBinding("Lsto", NODE),
    "schools": LayerBinding("Ls", NODE),
}


@dataclass
class SynthWorld:
    """A generated city plus its MOFT, wrapped for the executors."""

    city: SyntheticCity
    moft: MOFT
    context: EvaluationContext


@pytest.fixture(scope="session")
def fig1():
    """The paper's Figure 1 instance (MOFT ``FMbus``)."""
    return figure1_instance()


@pytest.fixture(scope="session")
def fig1_context(fig1):
    return fig1.context()


@pytest.fixture(scope="session")
def synth_world() -> SynthWorld:
    """A 10k-sample synthetic world, reproducible via an explicit rng."""
    city = build_city(
        CityConfig(cols=6, rows=6), rng=np.random.default_rng(20060109)
    )
    n_instants = 100
    moft = random_waypoint_moft(
        city.bounding_box,
        n_objects=100,
        n_instants=n_instants,
        speed=city.config.block_size / 2,
        rng=np.random.default_rng(42),
    )
    assert len(moft) == 10_000
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(n_instants)
    )
    context = EvaluationContext(city.gis, time_dim, moft)
    return SynthWorld(city=city, moft=moft, context=context)


@pytest.fixture(scope="session")
def oracle() -> DifferentialOracle:
    return DifferentialOracle()
