"""Regression: worker sizing respects the scheduler affinity mask.

``available_cpus`` once read ``os.cpu_count()``, over-subscribing
containers pinned to a subset of the host's cores (a cgroup/affinity
mask of 2 on a 64-core host would spawn 64 workers).  The fix reads
``os.sched_getaffinity(0)`` and these tests keep it that way.
"""

import os

import pytest

from repro.parallel.backends import available_cpus


class TestAvailableCpus:
    def test_matches_affinity_mask_when_available(self):
        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("platform has no sched_getaffinity")
        assert available_cpus() == max(1, len(os.sched_getaffinity(0)))

    def test_affinity_beats_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1}, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert available_cpus() == 2

    def test_never_below_one(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(), raising=False)
        assert available_cpus() == 1

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert available_cpus() == 8

    def test_cpu_count_none_still_one(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert available_cpus() == 1
