"""Differential tests: serial seed path vs every parallel backend.

Each test feeds one query to :class:`tests.parallel.oracle.DifferentialOracle`,
which executes it serially and then under every (backend, shard count)
combination and asserts exact agreement.  Worlds: the paper's Figure 1
instance and a 10k-sample synthetic city (see ``conftest.py``).
"""

from __future__ import annotations

import pytest

from repro.gis import NODE, POLYGON, POLYLINE
from repro.obs import EvaluationStats
from repro.parallel import ShardedExecutor, sharded_count_objects_through

from tests.parallel.conftest import FIG1_BINDINGS, SYNTH_BINDINGS

FIG1_GEOMETRIC_QUERIES = [
    "SELECT layer.neighborhoods FROM Fig1 "
    "WHERE intersection(layer.rivers, layer.neighborhoods)",
    "SELECT layer.neighborhoods FROM Fig1 "
    "WHERE intersection(layer.rivers, layer.neighborhoods) "
    "AND contains(layer.neighborhoods, layer.schools)",
    "SELECT layer.schools FROM Fig1 "
    "WHERE contains(layer.neighborhoods, layer.schools)",
]

SYNTH_GEOMETRIC_QUERIES = [
    "SELECT layer.cities FROM City "
    "WHERE intersection(layer.rivers, layer.cities)",
    "SELECT layer.cities FROM City "
    "WHERE intersection(layer.rivers, layer.cities) "
    "AND contains(layer.cities, layer.stores)",
    "SELECT layer.neighborhoods FROM City "
    "WHERE intersection(layer.rivers, layer.neighborhoods) "
    "AND contains(layer.neighborhoods, layer.schools)",
]


class TestFigure1Differential:
    def test_count_objects_through(self, fig1_context, oracle):
        report = oracle.check_count(
            fig1_context,
            ("Ln", POLYGON),
            [("intersects", ("Lr", POLYLINE)), ("contains", ("Ls", NODE))],
            moft_name="FMbus",
        )
        # The paper's own answer: O1, O2 through zuid; O3, O5, O6 noord.
        assert report.expected == 5

    @pytest.mark.parametrize("query", FIG1_GEOMETRIC_QUERIES)
    def test_geometric_queries(self, fig1_context, oracle, query):
        report = oracle.check_pietql(fig1_context, FIG1_BINDINGS, query)
        geometry_ids = report.expected[0]
        assert geometry_ids, "vacuous differential test: empty answer"

    def test_through_result_query(self, fig1_context, oracle):
        report = oracle.check_pietql(
            fig1_context,
            FIG1_BINDINGS,
            "SELECT layer.neighborhoods FROM Fig1 "
            "WHERE intersection(layer.rivers, layer.neighborhoods) "
            "AND contains(layer.neighborhoods, layer.schools) "
            "| COUNT OBJECTS FROM FMbus THROUGH RESULT",
        )
        _, count, matched, _ = report.expected
        assert count == 5
        # The fingerprint normalizes id collections to sorted tuples.
        assert matched == ("O1", "O2", "O3", "O5", "O6")


@pytest.mark.slow
class TestSynthCityDifferential:
    def test_count_objects_through(self, synth_world, oracle):
        report = oracle.check_count(
            synth_world.context,
            ("Lc", POLYGON),
            [("intersects", ("Lr", POLYLINE)), ("contains", ("Lsto", NODE))],
        )
        assert report.expected > 0, "vacuous differential test: zero count"

    @pytest.mark.parametrize("query", SYNTH_GEOMETRIC_QUERIES)
    def test_geometric_queries(self, synth_world, oracle, query):
        report = oracle.check_pietql(synth_world.context, SYNTH_BINDINGS, query)
        geometry_ids = report.expected[0]
        assert geometry_ids, "vacuous differential test: empty answer"

    def test_through_result_query(self, synth_world, oracle):
        report = oracle.check_pietql(
            synth_world.context,
            SYNTH_BINDINGS,
            "SELECT layer.cities FROM City "
            "WHERE intersection(layer.rivers, layer.cities) "
            "AND contains(layer.cities, layer.stores) "
            "| COUNT OBJECTS FROM FM THROUGH RESULT",
        )
        _, count, matched, _ = report.expected
        assert count is not None and count > 0
        assert matched


class TestObservabilityOfShardedRuns:
    """The fan-out leaves an audit trail on the pipeline stats."""

    def test_counters_and_stages_populate(self, fig1_context):
        stats = EvaluationStats()
        executor = ShardedExecutor(backend="threads", n_shards=3, obs=stats)
        count = executor.count_objects_through(
            fig1_context,
            ("Ln", POLYGON),
            [("intersects", ("Lr", POLYLINE)), ("contains", ("Ls", NODE))],
            moft_name="FMbus",
        )
        assert count == 5
        assert stats.counters["shard_count"] == 3
        assert "merge_ms" in stats.counters
        for stage in ("shard_fanout", "shard_scan", "merge"):
            assert stats.stages[stage].calls >= 1

    def test_convenience_wrapper_matches(self, fig1_context):
        count = sharded_count_objects_through(
            fig1_context,
            ("Ln", POLYGON),
            [("intersects", ("Lr", POLYLINE)), ("contains", ("Ls", NODE))],
            moft_name="FMbus",
            backend="threads",
            n_shards=2,
        )
        assert count == 5
