"""Zero-copy shard routing: exactness, payload accounting, no leaks.

The shared-memory layer must be invisible in the answers (bit-equal to
the pickled path and the serial scan), visible in the byte counters
(descriptor-sized payloads), and leak-free under every exit path —
including worker crashes and injected fault storms.  The leak oracle is
``/dev/shm`` itself: every test sweeps it before and after.
"""

import numpy as np
import pytest

from repro.errors import ShardExecutionError
from repro.faults import FaultPlan
from repro.geometry.point import BoundingBox, Point
from repro.geometry.polygon import Polygon
from repro.obs import PipelineStats
from repro.parallel import RetryPolicy, ShardedExecutor
from repro.parallel.shm import (
    ShardBlock,
    create_shard_block,
    leaked_segments,
    moft_from_descriptor,
)
from repro.query.evaluator import TrajectoryIntersectionCounter
from repro.synth.movement import random_waypoint_moft

N_OBJECTS = 50
N_INSTANTS = 20


@pytest.fixture(scope="module")
def moft():
    world = random_waypoint_moft(
        BoundingBox(0.0, 0.0, 100.0, 100.0),
        n_objects=N_OBJECTS,
        n_instants=N_INSTANTS,
        speed=5.0,
        seed=31,
    )
    world.as_arrays()
    return world


@pytest.fixture(autouse=True)
def no_leaks():
    """Every test runs between two /dev/shm sweeps."""
    before = leaked_segments()
    yield
    assert leaked_segments() == before


REGION = Polygon([Point(20, 20), Point(70, 20), Point(70, 70), Point(20, 70)])


class TestDescriptors:
    def test_round_trip_per_shard(self, moft):
        shards = moft.partition_by_objects(4)
        block, descriptors = create_shard_block(shards)
        try:
            assert len(descriptors) == len(shards)
            for shard, descriptor in zip(shards, descriptors):
                assert descriptor.rows == len(shard)
                clone = moft_from_descriptor(descriptor)
                assert list(clone.tuples()) == list(shard.tuples())
                assert clone.objects() == shard.objects()
        finally:
            block.close()

    def test_views_are_zero_copy(self, moft):
        shards = moft.partition_by_objects(2)
        block, descriptors = create_shard_block(shards)
        try:
            clone = moft_from_descriptor(descriptors[0])
            t, x, y = clone.as_arrays()
            # Backed by the shared mapping, not a private copy.
            assert not t.flags.owndata
            assert not x.flags.owndata and not y.flags.owndata
        finally:
            block.close()

    def test_block_close_is_idempotent(self, moft):
        block, _ = create_shard_block(moft.partition_by_objects(2))
        assert block.name in leaked_segments()
        block.close()
        block.close()
        assert block.name not in leaked_segments()

    def test_context_manager_unlinks(self, moft):
        with create_shard_block(moft.partition_by_objects(2))[0] as block:
            assert block.name in leaked_segments()
        assert block.name not in leaked_segments()


class TestDifferential:
    def test_matching_objects_exact_across_routes(self, moft):
        counter = TrajectoryIntersectionCounter({"region": REGION})
        expected = ShardedExecutor("serial").matching_objects(counter, moft)
        for backend, zero_copy in (
            ("serial", True),
            ("threads", True),
            ("processes", True),
            ("processes", False),
        ):
            obs = PipelineStats()
            executor = ShardedExecutor(
                backend, n_shards=3, obs=obs, zero_copy=zero_copy
            )
            assert executor.matching_objects(counter, moft) == expected
            if zero_copy:
                assert obs.count("zero_copy_blocks") == 1

    def test_mmap_loaded_world_matches_in_memory(self, moft, tmp_path):
        """Differential oracle over the full raw-speed stack.

        A world saved to the columnar format, loaded back by mmap and
        fanned out through shared-memory shards must answer exactly like
        the original in-memory world scanned serially.
        """
        from repro.mo.moft import MOFT

        counter = TrajectoryIntersectionCounter({"region": REGION})
        expected = ShardedExecutor("serial").matching_objects(counter, moft)

        path = tmp_path / "world.moft"
        moft.save(path)
        loaded = MOFT.load(path)
        assert list(loaded.tuples()) == list(moft.tuples())

        assert (
            ShardedExecutor("serial").matching_objects(counter, loaded)
            == expected
        )
        obs = PipelineStats()
        executor = ShardedExecutor(
            "processes", n_shards=3, obs=obs, zero_copy=True
        )
        assert executor.matching_objects(counter, loaded) == expected
        assert obs.count("zero_copy_blocks") == 1

    def test_exotic_oids_fall_back_to_pickle(self, moft):
        from repro.mo.moft import MOFT

        exotic = MOFT("exotic")
        for (oid, t, x, y) in moft.tuples():
            exotic.add((oid, "v2"), t, x, y)  # tuple oids: not encodable
        obs = PipelineStats()
        executor = ShardedExecutor(
            "serial", n_shards=3, obs=obs, zero_copy=True
        )
        counter = TrajectoryIntersectionCounter({"region": REGION})
        expected = ShardedExecutor("serial").matching_objects(counter, exotic)
        assert executor.matching_objects(counter, exotic) == expected
        assert obs.count("zero_copy_fallbacks") == 1
        assert obs.count("zero_copy_blocks") == 0


class TestPayloadAccounting:
    def test_bytes_counters_populated(self, moft):
        def run(zero_copy):
            obs = PipelineStats()
            executor = ShardedExecutor(
                "serial",
                n_shards=4,
                obs=obs,
                zero_copy=zero_copy,
                track_payload_bytes=True,
            )
            counter = TrajectoryIntersectionCounter({"region": REGION})
            executor.matching_objects(counter, moft)
            return obs

        zc = run(True)
        pickled = run(False)
        assert 0 < zc.count("peak_shard_payload_bytes") < 4096
        assert zc.count("bytes_serialized") > 0
        # The pickled payload carries the rows; zero-copy only the name
        # and range.
        assert (
            pickled.count("peak_shard_payload_bytes")
            > 10 * zc.count("peak_shard_payload_bytes")
        )

    def test_untracked_runs_record_nothing(self, moft):
        obs = PipelineStats()
        executor = ShardedExecutor(
            "serial", n_shards=2, obs=obs, zero_copy=True
        )
        counter = TrajectoryIntersectionCounter({"region": REGION})
        executor.matching_objects(counter, moft)
        assert obs.count("bytes_serialized") == 0
        assert obs.count("peak_shard_payload_bytes") == 0


class TestNoLeaks:
    def test_unlinked_after_worker_crash(self, moft):
        plan = FaultPlan.always("raise", n_tasks=6)
        executor = ShardedExecutor(
            "serial", n_shards=3, zero_copy=True, fault_plan=plan
        )
        counter = TrajectoryIntersectionCounter({"region": REGION})
        with pytest.raises(ShardExecutionError):
            executor.matching_objects(counter, moft)
        # The autouse fixture asserts /dev/shm is clean afterwards.

    @pytest.mark.faults
    def test_chaos_sweep_never_leaks(self, moft):
        """Seeded fault storms over the zero-copy processes route."""
        counter = TrajectoryIntersectionCounter({"region": REGION})
        expected = ShardedExecutor("serial").matching_objects(counter, moft)
        before = leaked_segments()
        for seed in range(4):
            plan = FaultPlan.random(
                seed, n_tasks=5, rate=0.4, max_attempts=4
            )
            executor = ShardedExecutor(
                "processes" if seed % 2 else "threads",
                n_shards=3,
                zero_copy=True,
                failure_mode="degrade" if seed % 2 else "retry",
                retry_policy=RetryPolicy(max_retries=2),
                fault_plan=plan,
            )
            try:
                answer = executor.matching_objects(counter, moft)
            except ShardExecutionError:
                pass
            else:
                assert answer == expected
            assert leaked_segments() == before, f"leak under seed {seed}"
