"""Property tests: MOFT partitioning is a lossless decomposition.

For any MOFT and any shard count, the shards produced by
``partition_by_objects`` / ``partition_by_time`` must concatenate back to
a row-set-identical MOFT — no sample lost, none duplicated — because the
sharded executor's exact-merge argument rests on that.  Hypothesis
explores MOFT shapes (duplicate instants, skewed trajectory lengths,
mixed oid types, extreme coordinates) that hand-written fixtures miss.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mo.moft import MOFT

# Mixed-type object ids: strings and ints, like real feeds.
OIDS = st.one_of(
    st.integers(min_value=0, max_value=40),
    st.text(
        alphabet="abcdefghij", min_size=1, max_size=4
    ).map(lambda s: f"car{s}"),
)

COORDS = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def mofts(draw) -> MOFT:
    """A MOFT with unique (oid, t) keys and arbitrary coordinates."""
    keys = draw(
        st.lists(
            st.tuples(OIDS, st.integers(min_value=0, max_value=50)),
            unique=True,
            max_size=60,
        )
    )
    moft = MOFT("FM")
    for oid, t in keys:
        moft.add(oid, float(t), draw(COORDS), draw(COORDS))
    return moft


SHARD_COUNTS = st.integers(min_value=1, max_value=8)


def row_multiset(moft: MOFT) -> Counter:
    return Counter(moft.tuples())


@given(moft=mofts(), n=SHARD_COUNTS)
@settings(deadline=None)
def test_object_shards_concatenate_back(moft, n):
    shards = moft.partition_by_objects(n)
    assert len(shards) == n
    assert row_multiset(MOFT.concat(shards)) == row_multiset(moft)


@given(moft=mofts(), n=SHARD_COUNTS)
@settings(deadline=None)
def test_time_shards_concatenate_back(moft, n):
    shards = moft.partition_by_time(n)
    assert len(shards) == n
    assert row_multiset(MOFT.concat(shards)) == row_multiset(moft)


@given(moft=mofts(), n=SHARD_COUNTS)
@settings(deadline=None)
def test_each_object_lives_in_exactly_one_shard(moft, n):
    """Whole trajectories stay together — the exact-union precondition."""
    shards = moft.partition_by_objects(n)
    placements = Counter()
    for shard in shards:
        for oid in shard.objects():
            placements[oid] += 1
    assert set(placements) == moft.objects()
    assert all(count == 1 for count in placements.values())
    # And every object keeps its full history inside its shard.
    for shard in shards:
        for oid in shard.objects():
            assert shard.history(oid) == moft.history(oid)


@given(moft=mofts(), n=SHARD_COUNTS)
@settings(deadline=None)
def test_time_shards_cover_disjoint_instant_ranges(moft, n):
    shards = moft.partition_by_time(n)
    seen_instants = []
    for shard in shards:
        if len(shard):
            lo, hi = shard.time_range()
            seen_instants.append((lo, hi))
    # Contiguous, ordered, non-overlapping instant ranges.
    for (_, prev_hi), (lo, _) in zip(seen_instants, seen_instants[1:]):
        assert prev_hi < lo


@given(moft=mofts())
@settings(deadline=None)
def test_more_shards_than_objects_pads_with_empties(moft):
    n = len(moft.objects()) + 3
    shards = moft.partition_by_objects(n)
    assert len(shards) == n
    non_empty = [shard for shard in shards if len(shard)]
    assert len(non_empty) <= max(len(moft.objects()), 1)
    assert row_multiset(MOFT.concat(shards)) == row_multiset(moft)
