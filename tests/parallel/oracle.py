"""Differential-testing oracle for the sharded query engine.

The seed serial pipeline is the reference implementation; every parallel
backend must return *exactly* its answers — parallelism is an execution
strategy, never a semantics change.  The oracle runs one query through
the serial path and then through each (backend, shard count) pair,
collects every disagreement, and raises a single assertion listing all
of them, so a failure shows the full shape of the divergence instead of
the first mismatched backend.

Use the query-specific helpers (:meth:`DifferentialOracle.check_count`,
:meth:`DifferentialOracle.check_pietql`) for the built-in pipelines, or
:meth:`DifferentialOracle.check` to compare any serial callable against
a sharded one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.parallel import ShardedExecutor, ShardedPietQLExecutor
from repro.pietql.executor import LayerBinding, PietQLExecutor, PietQLResult
from repro.query.evaluator import count_objects_through
from repro.query.region import EvaluationContext

#: Every execution backend the engine ships.
ALL_BACKENDS: Tuple[str, ...] = ("serial", "threads", "processes")

#: Shard counts worth exercising: degenerate (1), even, and "more shards
#: than is sensible" (forces empty / tiny shards).
DEFAULT_SHARD_COUNTS: Tuple[int, ...] = (1, 2, 5)


@dataclass
class Mismatch:
    """One disagreement between the serial path and a parallel run."""

    backend: str
    n_shards: int
    expected: object
    actual: object

    def describe(self) -> str:
        return (
            f"backend={self.backend!r} n_shards={self.n_shards}: "
            f"expected {self.expected!r}, got {self.actual!r}"
        )


@dataclass
class OracleReport:
    """Outcome of one differential check: the reference answer plus runs."""

    label: str
    expected: object
    runs: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def raise_on_mismatch(self) -> None:
        if self.mismatches:
            lines = "\n  ".join(m.describe() for m in self.mismatches)
            raise AssertionError(
                f"differential oracle: {len(self.mismatches)}/{self.runs} "
                f"parallel runs diverged from the serial path for "
                f"{self.label!r}:\n  {lines}"
            )


def pietql_fingerprint(result: PietQLResult) -> Tuple[object, ...]:
    """A comparable, order-insensitive projection of a query result."""
    olap: Optional[Tuple[Tuple[object, float], ...]] = None
    if result.olap_result is not None:
        olap = tuple(sorted(result.olap_result.items(), key=repr))
    return (
        frozenset(result.geometry_ids),
        result.count,
        result.matched_objects,
        olap,
    )


class DifferentialOracle:
    """Runs queries serially and through every backend, demanding equality."""

    def __init__(
        self,
        backends: Sequence[str] = ALL_BACKENDS,
        shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    ) -> None:
        self.backends = tuple(backends)
        self.shard_counts = tuple(shard_counts)

    # -- the generic comparison -------------------------------------------------

    def check(
        self,
        label: str,
        serial_fn: Callable[[], object],
        sharded_fn: Callable[[str, int], object],
        normalize: Callable[[object], object] = lambda value: value,
    ) -> OracleReport:
        """Compare ``serial_fn()`` against every (backend, shard) run.

        ``sharded_fn(backend, n_shards)`` produces the parallel answer;
        ``normalize`` maps both sides into comparable values (e.g. a
        result-object fingerprint).  Raises ``AssertionError`` listing
        every divergence; returns the report (with the serial answer)
        when all runs agree.
        """
        expected = normalize(serial_fn())
        report = OracleReport(label=label, expected=expected)
        for backend in self.backends:
            for n_shards in self.shard_counts:
                actual = normalize(sharded_fn(backend, n_shards))
                report.runs += 1
                if actual != expected:
                    report.mismatches.append(
                        Mismatch(backend, n_shards, expected, actual)
                    )
        report.raise_on_mismatch()
        return report

    # -- pipeline-specific helpers ----------------------------------------------

    def check_count(
        self,
        context: EvaluationContext,
        target: Tuple[str, str],
        constraints: Sequence[Tuple[str, Tuple[str, str]]],
        moft_name: str = "FM",
    ) -> OracleReport:
        """Differential ``count_objects_through``: serial vs sharded scans."""

        def serial() -> int:
            return count_objects_through(
                context, target, constraints, moft_name=moft_name
            )

        def sharded(backend: str, n_shards: int) -> int:
            executor = ShardedExecutor(
                backend=backend, n_shards=n_shards, obs=context.obs
            )
            return executor.count_objects_through(
                context, target, constraints, moft_name=moft_name
            )

        return self.check(
            f"count_objects_through(target={target})", serial, sharded
        )

    def check_pietql(
        self,
        context: EvaluationContext,
        bindings: Optional[Mapping[str, LayerBinding]],
        query: str,
    ) -> OracleReport:
        """Differential Piet-QL execution: seed executor vs sharded one."""

        def serial() -> PietQLResult:
            return PietQLExecutor(context, bindings).execute(query)

        def sharded(backend: str, n_shards: int) -> PietQLResult:
            executor = ShardedPietQLExecutor(
                context, bindings, backend=backend, n_shards=n_shards
            )
            return executor.execute(query)

        return self.check(query, serial, sharded, normalize=pietql_fingerprint)
