"""Differential-testing oracle for the sharded query engine.

The seed serial pipeline is the reference implementation; every parallel
backend must return *exactly* its answers — parallelism is an execution
strategy, never a semantics change.  The oracle runs one query through
the serial path and then through each (backend, shard count) pair,
collects every disagreement, and raises a single assertion listing all
of them, so a failure shows the full shape of the divergence instead of
the first mismatched backend.

Use the query-specific helpers (:meth:`DifferentialOracle.check_count`,
:meth:`DifferentialOracle.check_pietql`) for the built-in pipelines, or
:meth:`DifferentialOracle.check` to compare any serial callable against
a sharded one.

With the materialized pre-aggregation layer (:mod:`repro.preagg`) the
oracle is *three-way*: serial scan vs sharded scans vs the planner's
store route (:meth:`DifferentialOracle.check_count_three_way`,
:meth:`DifferentialOracle.check_dwell_three_way`).  Extra named runs
report mismatches with the run name as the backend and ``n_shards=0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.parallel import ShardedExecutor, ShardedPietQLExecutor
from repro.pietql.executor import LayerBinding, PietQLExecutor, PietQLResult
from repro.query.aggregate import total_dwell_time
from repro.query.evaluator import count_objects_through
from repro.query.region import EvaluationContext

#: Every execution backend the engine ships.
ALL_BACKENDS: Tuple[str, ...] = ("serial", "threads", "processes")

#: Shard counts worth exercising: degenerate (1), even, and "more shards
#: than is sensible" (forces empty / tiny shards).
DEFAULT_SHARD_COUNTS: Tuple[int, ...] = (1, 2, 5)


@dataclass
class Mismatch:
    """One disagreement between the serial path and a parallel run."""

    backend: str
    n_shards: int
    expected: object
    actual: object

    def describe(self) -> str:
        return (
            f"backend={self.backend!r} n_shards={self.n_shards}: "
            f"expected {self.expected!r}, got {self.actual!r}"
        )


@dataclass
class OracleReport:
    """Outcome of one differential check: the reference answer plus runs."""

    label: str
    expected: object
    runs: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def raise_on_mismatch(self) -> None:
        if self.mismatches:
            lines = "\n  ".join(m.describe() for m in self.mismatches)
            raise AssertionError(
                f"differential oracle: {len(self.mismatches)}/{self.runs} "
                f"parallel runs diverged from the serial path for "
                f"{self.label!r}:\n  {lines}"
            )


def sorted_ids(ids: Optional[object]) -> Optional[Tuple[object, ...]]:
    """Normalize an id collection to a sorted tuple (``None`` passes through).

    Both sides of every comparison go through this, so a backend that
    happens to yield objects in shard order compares equal to the serial
    path's scan order — the *set* of ids is the semantics, not the
    iteration order.  Sorting is by ``repr`` so mixed-type id vocabularies
    (ints vs strings) stay comparable.
    """
    if ids is None:
        return None
    return tuple(sorted(ids, key=repr))


def pietql_fingerprint(result: PietQLResult) -> Tuple[object, ...]:
    """A comparable, order-insensitive projection of a query result."""
    olap: Optional[Tuple[Tuple[object, float], ...]] = None
    if result.olap_result is not None:
        olap = tuple(sorted(result.olap_result.items(), key=repr))
    return (
        sorted_ids(result.geometry_ids),
        result.count,
        sorted_ids(result.matched_objects),
        olap,
    )


class DifferentialOracle:
    """Runs queries serially and through every backend, demanding equality."""

    def __init__(
        self,
        backends: Sequence[str] = ALL_BACKENDS,
        shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    ) -> None:
        self.backends = tuple(backends)
        self.shard_counts = tuple(shard_counts)

    # -- the generic comparison -------------------------------------------------

    def check(
        self,
        label: str,
        serial_fn: Callable[[], object],
        sharded_fn: Callable[[str, int], object],
        normalize: Callable[[object], object] = lambda value: value,
        extras: Optional[Mapping[str, Callable[[], object]]] = None,
        equal: Optional[Callable[[object, object], bool]] = None,
    ) -> OracleReport:
        """Compare ``serial_fn()`` against every (backend, shard) run.

        ``sharded_fn(backend, n_shards)`` produces the parallel answer;
        ``normalize`` maps both sides into comparable values (e.g. a
        result-object fingerprint).  ``extras`` adds named answer paths
        (e.g. the pre-agg planner route) run once each and held to the
        same reference; their mismatches carry the name as the backend
        and ``n_shards=0``.  ``equal`` overrides ``==`` for tolerant
        comparison of float answers.  Raises ``AssertionError`` listing
        every divergence; returns the report (with the serial answer)
        when all runs agree.
        """
        expected = normalize(serial_fn())
        same = equal if equal is not None else (lambda a, b: a == b)
        report = OracleReport(label=label, expected=expected)
        for backend in self.backends:
            for n_shards in self.shard_counts:
                actual = normalize(sharded_fn(backend, n_shards))
                report.runs += 1
                if not same(expected, actual):
                    report.mismatches.append(
                        Mismatch(backend, n_shards, expected, actual)
                    )
        for name, fn in (extras or {}).items():
            actual = normalize(fn())
            report.runs += 1
            if not same(expected, actual):
                report.mismatches.append(Mismatch(name, 0, expected, actual))
        report.raise_on_mismatch()
        return report

    # -- pipeline-specific helpers ----------------------------------------------

    def check_count(
        self,
        context: EvaluationContext,
        target: Tuple[str, str],
        constraints: Sequence[Tuple[str, Tuple[str, str]]],
        moft_name: str = "FM",
    ) -> OracleReport:
        """Differential ``count_objects_through``: serial vs sharded scans."""

        def serial() -> int:
            return count_objects_through(
                context, target, constraints, moft_name=moft_name
            )

        def sharded(backend: str, n_shards: int) -> int:
            executor = ShardedExecutor(
                backend=backend, n_shards=n_shards, obs=context.obs
            )
            return executor.count_objects_through(
                context, target, constraints, moft_name=moft_name
            )

        return self.check(
            f"count_objects_through(target={target})", serial, sharded
        )

    def check_count_three_way(
        self,
        context: EvaluationContext,
        target: Tuple[str, str],
        constraints: Sequence[Tuple[str, Tuple[str, str]]],
        moft_name: str = "FM",
        window: Optional[Tuple[float, float]] = None,
    ) -> OracleReport:
        """Serial scan vs sharded scans vs the pre-agg planner route.

        ``context`` must carry a registered fresh
        :class:`~repro.preagg.PreAggStore` for the target; the scan legs
        force ``use_preagg=False`` so they remain an independent
        reference, while the two extra legs route through the store —
        serially and with a sharded executor (which shards the residual
        sliver scan on misaligned windows).  The preagg legs also assert
        the route actually fired (``preagg_hits`` advanced): a silently
        falling-back rewrite would otherwise vacuously pass.
        """

        def serial() -> int:
            return count_objects_through(
                context, target, constraints, moft_name=moft_name,
                window=window, use_preagg=False,
            )

        def sharded(backend: str, n_shards: int) -> int:
            executor = ShardedExecutor(
                backend=backend, n_shards=n_shards, obs=context.obs
            )
            return executor.count_objects_through(
                context, target, constraints, moft_name=moft_name,
                window=window, use_preagg=False,
            )

        def routed(executor: Optional[ShardedExecutor]) -> int:
            before = context.obs.counters.get("preagg_hits", 0)
            value = count_objects_through(
                context, target, constraints, moft_name=moft_name,
                window=window, use_preagg=True, executor=executor,
            )
            assert context.obs.counters.get("preagg_hits", 0) == before + 1, (
                f"pre-agg route did not fire for window={window}"
            )
            return value

        return self.check(
            f"count_objects_through(target={target}, window={window})",
            serial,
            sharded,
            extras={
                "preagg": lambda: routed(None),
                "preagg+sharded-sliver": lambda: routed(
                    ShardedExecutor(
                        backend="threads", n_shards=3, obs=context.obs
                    )
                ),
            },
        )

    def check_dwell_three_way(
        self,
        context: EvaluationContext,
        target: Tuple[str, str],
        constraints: Sequence[Tuple[str, Tuple[str, str]]],
        moft_name: str = "FM",
        window: Optional[Tuple[float, float]] = None,
    ) -> OracleReport:
        """Serial dwell-time aggregate vs the pre-agg cell route.

        Dwell is a float sum whose terms associate differently between
        the interval-merging serial path and the per-segment store
        cells, so equality is up to a tight relative tolerance; counts
        and id sets elsewhere stay exact.  There is no sharded dwell
        scan, so the backend legs re-run the serial path (degenerate but
        keeps the report shape uniform).
        """

        def serial() -> float:
            return total_dwell_time(
                context, target, constraints, moft_name=moft_name,
                window=window, use_preagg=False,
            )

        def routed() -> float:
            before = context.obs.counters.get("preagg_hits", 0)
            value = total_dwell_time(
                context, target, constraints, moft_name=moft_name,
                window=window, use_preagg=True,
            )
            assert context.obs.counters.get("preagg_hits", 0) == before + 1, (
                f"pre-agg dwell route did not fire for window={window}"
            )
            return value

        return self.check(
            f"total_dwell_time(target={target}, window={window})",
            serial,
            lambda backend, n_shards: serial(),
            extras={"preagg": routed},
            equal=lambda a, b: math.isclose(
                a, b, rel_tol=1e-9, abs_tol=1e-9
            ),
        )

    def check_pietql(
        self,
        context: EvaluationContext,
        bindings: Optional[Mapping[str, LayerBinding]],
        query: str,
    ) -> OracleReport:
        """Differential Piet-QL execution: seed executor vs sharded one."""

        def serial() -> PietQLResult:
            return PietQLExecutor(context, bindings).execute(query)

        def sharded(backend: str, n_shards: int) -> PietQLResult:
            executor = ShardedPietQLExecutor(
                context, bindings, backend=backend, n_shards=n_shards
            )
            return executor.execute(query)

        return self.check(query, serial, sharded, normalize=pietql_fingerprint)
