"""Three-way differential suite: serial vs sharded vs pre-aggregated.

The pre-aggregation layer is an execution strategy, never a semantics
change — the same contract the sharded engine lives under.  Every query
here runs through (1) the seed serial scan, (2) every sharded backend,
and (3) the planner's store route, including misaligned windows that
force the hybrid store-cells-plus-sliver-scan path, and incremental
store updates after MOFT appends.

Contexts are built fresh per module (not the shared session fixtures):
registering a store mutates the context's planner state, which must not
leak into the other differential tests.
"""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest

from repro.gis import NODE, POLYGON, POLYLINE
from repro.parallel import ShardedExecutor
from repro.pietql.executor import LayerBinding, PietQLExecutor
from repro.preagg import PreAggStore
from repro.query.evaluator import count_objects_through
from repro.query.region import EvaluationContext
from repro.synth import CityConfig, build_city, figure1_instance
from repro.synth.movement import random_waypoint_moft
from repro.temporal.calendar import hourly
from repro.temporal.timedim import TimeDimension

from tests.parallel.oracle import DifferentialOracle

FIG1_TARGET = ("Ln", POLYGON)
FIG1_CONSTRAINTS = [
    ("intersects", ("Lr", POLYLINE)),
    ("contains", ("Ls", NODE)),
]
SYNTH_TARGET = ("Ln", POLYGON)
SYNTH_CONSTRAINTS = [("intersects", ("Lr", POLYLINE))]


@pytest.fixture(scope="module")
def oracle():
    return DifferentialOracle()


@pytest.fixture(scope="module")
def fig1_preagg():
    """A fresh Figure 1 context with an hour-granule store registered."""
    context = figure1_instance().context()
    moft = context.moft("FMbus")
    elements = context.gis.layer("Ln").elements(POLYGON)
    store = PreAggStore(
        moft, context.time, "hour", elements, layer="Ln", kind=POLYGON
    )
    context.register_preagg(store)
    return context


@pytest.fixture(scope="module")
def synth_preagg():
    """The 10k-sample synthetic world with a day-granule store.

    Same construction as the shared ``synth_world`` fixture (identical
    rng seeds, so identical world), but module-local so the registered
    store stays out of the other differential tests.
    """
    city = build_city(
        CityConfig(cols=6, rows=6), rng=np.random.default_rng(20060109)
    )
    moft = random_waypoint_moft(
        city.bounding_box,
        n_objects=100,
        n_instants=100,
        speed=city.config.block_size / 2,
        rng=np.random.default_rng(42),
    )
    assert len(moft) == 10_000
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(100)
    )
    context = EvaluationContext(city.gis, time_dim, moft)
    elements = city.gis.layer("Ln").elements(POLYGON)
    store = PreAggStore(
        moft, time_dim, "day", elements, layer="Ln", kind=POLYGON
    )
    context.register_preagg(store)
    return context


class TestFig1ThreeWay:
    def test_full_span(self, oracle, fig1_preagg):
        oracle.check_count_three_way(
            fig1_preagg, FIG1_TARGET, FIG1_CONSTRAINTS, moft_name="FMbus"
        )

    def test_aligned_window(self, oracle, fig1_preagg):
        # The Morning granule run: instants {2, 3, 4}.
        oracle.check_count_three_way(
            fig1_preagg, FIG1_TARGET, FIG1_CONSTRAINTS,
            moft_name="FMbus", window=(2.0, 4.0),
        )

    def test_dwell(self, oracle, fig1_preagg):
        oracle.check_dwell_three_way(
            fig1_preagg, FIG1_TARGET, FIG1_CONSTRAINTS, moft_name="FMbus"
        )


class TestSynthThreeWay:
    def test_full_span(self, oracle, synth_preagg):
        oracle.check_count_three_way(
            synth_preagg, SYNTH_TARGET, SYNTH_CONSTRAINTS
        )

    def test_aligned_window(self, oracle, synth_preagg):
        # Days 1..2 exactly: instants 24..71 on hourly day granules.
        store = synth_preagg._preagg_stores[0]
        assert store.is_aligned(24.0, 71.0)
        oracle.check_count_three_way(
            synth_preagg, SYNTH_TARGET, SYNTH_CONSTRAINTS, window=(24.0, 71.0)
        )

    @pytest.mark.parametrize(
        "window",
        [(30.5, 80.5), (12.0, 60.0), (23.5, 72.5)],
        ids=["both-edges", "left-sliver", "thin-slivers"],
    )
    def test_misaligned_window_hybrid(self, oracle, synth_preagg, window):
        """Misaligned windows force the store + sliver-scan hybrid."""
        store = synth_preagg._preagg_stores[0]
        assert not store.is_aligned(*window)
        assert store.covered_run(*window) is not None
        before = synth_preagg.obs.counters.get("sliver_scan_rows", 0)
        oracle.check_count_three_way(
            synth_preagg, SYNTH_TARGET, SYNTH_CONSTRAINTS, window=window
        )
        assert synth_preagg.obs.counters.get("sliver_scan_rows", 0) > before, (
            "hybrid path did not scan any sliver rows"
        )

    @pytest.mark.parametrize("window", [None, (24.0, 71.0), (30.5, 80.5)])
    def test_dwell(self, oracle, synth_preagg, window):
        oracle.check_dwell_three_way(
            synth_preagg, SYNTH_TARGET, SYNTH_CONSTRAINTS, window=window
        )

    def test_incremental_update_then_requery(self, oracle, synth_preagg):
        """Appends make the store stale; update() restores exact routing."""
        context = synth_preagg
        store = context._preagg_stores[0]
        moft = context.moft("FM")
        rng = np.random.default_rng(7)
        box_elements = context.gis.layer("Ln").elements(POLYGON)
        xs = [p.bbox for p in box_elements.values()]
        min_x = min(b.min_x for b in xs)
        max_x = max(b.max_x for b in xs)
        min_y = min(b.min_y for b in xs)
        max_y = max(b.max_y for b in xs)
        oids, ts, pxs, pys = [], [], [], []
        for oid in ("N1", "N2", "N3", "N4"):
            for t in range(80, 100):
                oids.append(oid)
                ts.append(float(t))
                pxs.append(float(rng.uniform(min_x, max_x)))
                pys.append(float(rng.uniform(min_y, max_y)))
        moft.extend_columns(
            np.array(oids, dtype=object),
            np.array(ts),
            np.array(pxs),
            np.array(pys),
        )
        assert store.is_stale()
        # Stale store: the planner must fall back (counted as a miss)
        # and still answer exactly.
        misses = context.obs.counters.get("preagg_misses", 0)
        fallback = count_objects_through(
            context, SYNTH_TARGET, SYNTH_CONSTRAINTS, window=(30.5, 80.5)
        )
        assert context.obs.counters["preagg_misses"] == misses + 1
        reference = count_objects_through(
            context, SYNTH_TARGET, SYNTH_CONSTRAINTS,
            window=(30.5, 80.5), use_preagg=False,
        )
        assert fallback == reference
        # Incremental update, then the full three-way suite again.
        assert store.update() == "delta"
        assert not store.is_stale()
        for window in (None, (24.0, 71.0), (30.5, 80.5)):
            oracle.check_count_three_way(
                context, SYNTH_TARGET, SYNTH_CONSTRAINTS, window=window
            )
            oracle.check_dwell_three_way(
                context, SYNTH_TARGET, SYNTH_CONSTRAINTS, window=window
            )


class TestPietQLPreAgg:
    """The Piet-QL THROUGH-with-rollup rewrite against plain execution."""

    QUERIES = [
        (
            "SELECT layer.neighborhoods FROM Fig1 "
            "WHERE intersection(layer.rivers, layer.neighborhoods) "
            "AND contains(layer.neighborhoods, layer.schools) "
            "| COUNT OBJECTS FROM FMbus THROUGH RESULT"
        ),
        (
            "SELECT layer.neighborhoods FROM Fig1 "
            "WHERE contains(layer.neighborhoods, layer.schools) "
            "| COUNT OBJECTS FROM FMbus THROUGH RESULT "
            "DURING timeOfDay = 'Morning'"
        ),
    ]
    BINDINGS = {
        "neighborhoods": LayerBinding("Ln", POLYGON),
        "rivers": LayerBinding("Lr", POLYLINE),
        "schools": LayerBinding("Ls", NODE),
    }

    @pytest.mark.parametrize("query", QUERIES, ids=["through", "during"])
    def test_rewrite_matches_scan(self, fig1_preagg, query):
        plain = figure1_instance().context()
        expected = PietQLExecutor(plain, self.BINDINGS).execute(query)
        hits = fig1_preagg.obs.counters.get("preagg_hits", 0)
        routed = PietQLExecutor(fig1_preagg, self.BINDINGS).execute(query)
        assert fig1_preagg.obs.counters["preagg_hits"] == hits + 1, (
            "Piet-QL rewrite did not fire"
        )
        assert routed.count == expected.count
        assert routed.matched_objects == expected.matched_objects

    def test_sub_run_during_falls_back(self, fig1_preagg):
        """A DURING set that is not a whole granule run must miss."""
        # 'Other' = instants {1, 5, 6}: non-contiguous, not a run.
        query = (
            "SELECT layer.neighborhoods FROM Fig1 "
            "| COUNT OBJECTS FROM FMbus THROUGH RESULT "
            "DURING timeOfDay = 'Other'"
        )
        plain = figure1_instance().context()
        expected = PietQLExecutor(plain, self.BINDINGS).execute(query)
        hits = fig1_preagg.obs.counters.get("preagg_hits", 0)
        misses = fig1_preagg.obs.counters.get("preagg_misses", 0)
        routed = PietQLExecutor(fig1_preagg, self.BINDINGS).execute(query)
        assert fig1_preagg.obs.counters.get("preagg_hits", 0) == hits
        assert fig1_preagg.obs.counters["preagg_misses"] == misses + 1
        assert routed.count == expected.count
        assert routed.matched_objects == expected.matched_objects
