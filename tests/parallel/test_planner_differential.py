"""Differential guarantees for the cost-based planner.

The planner chooses *how* a through-aggregate runs, never *what* it
answers: every strategy it can emit (serial, grid, sharded, pre-agg
hybrid) must return exactly the serial scan's count, on the paper's
Figure 1 world and on the 10k-sample synthetic city, including the
misaligned windows that force the store-plus-sliver hybrid.  A
hypothesis fuzz over the cost-model constants then pins the stronger
property: whatever strategy any constants make the planner pick, the
answer never changes.

Contexts are module-local (not the shared session fixtures): planning
registers stores and warms grid caches, which must not leak out.
"""

from __future__ import annotations

from datetime import datetime

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gis import NODE, POLYGON, POLYLINE
from repro.parallel import ShardedExecutor
from repro.preagg import PreAggStore
from repro.query.evaluator import count_objects_through
from repro.query.planner import (
    STRATEGIES,
    CostModel,
    plan_count_objects_through,
    planned_count_objects_through,
)
from repro.query.region import EvaluationContext
from repro.synth import CityConfig, build_city, figure1_instance
from repro.synth.movement import random_waypoint_moft
from repro.temporal.calendar import hourly
from repro.temporal.timedim import TimeDimension

FIG1_TARGET = ("Ln", POLYGON)
FIG1_CONSTRAINTS = [
    ("intersects", ("Lr", POLYLINE)),
    ("contains", ("Ls", NODE)),
]
SYNTH_TARGET = ("Ln", POLYGON)
SYNTH_CONSTRAINTS = [("intersects", ("Lr", POLYLINE))]

#: Synthetic-world windows: full span, day-aligned, and misaligned
#: (the hybrid store-cells-plus-sliver-scan path).
SYNTH_WINDOWS = [None, (24.0, 71.0), (30.5, 80.5)]


@pytest.fixture(scope="module")
def fig1_preagg():
    context = figure1_instance().context()
    moft = context.moft("FMbus")
    elements = context.gis.layer("Ln").elements(POLYGON)
    store = PreAggStore(
        moft, context.time, "hour", elements, layer="Ln", kind=POLYGON
    )
    context.register_preagg(store)
    return context


@pytest.fixture(scope="module")
def synth_preagg():
    city = build_city(
        CityConfig(cols=6, rows=6), rng=np.random.default_rng(20060109)
    )
    moft = random_waypoint_moft(
        city.bounding_box,
        n_objects=100,
        n_instants=100,
        speed=city.config.block_size / 2,
        rng=np.random.default_rng(42),
    )
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(100)
    )
    context = EvaluationContext(city.gis, time_dim, moft)
    elements = city.gis.layer("Ln").elements(POLYGON)
    store = PreAggStore(
        moft, time_dim, "day", elements, layer="Ln", kind=POLYGON
    )
    context.register_preagg(store)
    return context


def assert_all_strategies_agree(
    context, target, constraints, moft_name="FM", window=None
):
    """Every planner strategy must equal the direct serial scan."""
    reference = count_objects_through(
        context, target, constraints, moft_name=moft_name, window=window,
        use_preagg=False, use_index=False, vectorized=False,
    )
    executor = ShardedExecutor(backend="threads", n_shards=3, obs=context.obs)
    for strategy in STRATEGIES:
        count, plan = planned_count_objects_through(
            context, target, constraints, moft_name=moft_name,
            window=window, executor=executor, force_strategy=strategy,
        )
        assert plan.strategy == strategy
        assert count == reference, (
            f"strategy {strategy!r} diverged for window={window}: "
            f"{count} != {reference}"
        )
    auto_count, auto_plan = planned_count_objects_through(
        context, target, constraints, moft_name=moft_name,
        window=window, executor=executor,
    )
    assert auto_count == reference
    assert auto_plan.strategy in STRATEGIES
    return reference


class TestFig1:
    def test_full_span_all_strategies(self, fig1_preagg):
        reference = assert_all_strategies_agree(
            fig1_preagg, FIG1_TARGET, FIG1_CONSTRAINTS, moft_name="FMbus"
        )
        assert reference == 5

    def test_aligned_window_all_strategies(self, fig1_preagg):
        # The Morning granule run: instants {2, 3, 4}.
        assert_all_strategies_agree(
            fig1_preagg, FIG1_TARGET, FIG1_CONSTRAINTS,
            moft_name="FMbus", window=(2.0, 4.0),
        )


class TestSynth:
    @pytest.mark.parametrize(
        "window", SYNTH_WINDOWS, ids=["full", "aligned", "misaligned"]
    )
    def test_all_strategies_agree(self, synth_preagg, window):
        if window is not None and window == (30.5, 80.5):
            store = synth_preagg._preagg_stores[0]
            assert not store.is_aligned(*window)
        assert_all_strategies_agree(
            synth_preagg, SYNTH_TARGET, SYNTH_CONSTRAINTS, window=window
        )

    def test_misaligned_plan_shows_sliver(self, synth_preagg):
        plan = plan_count_objects_through(
            synth_preagg, SYNTH_TARGET, SYNTH_CONSTRAINTS,
            window=(30.5, 80.5), force_strategy="preagg",
        )
        sliver = plan.root.find("SliverScan")
        assert sliver is not None
        assert sliver.est_rows > 0

    def test_aligned_plan_has_no_sliver(self, synth_preagg):
        plan = plan_count_objects_through(
            synth_preagg, SYNTH_TARGET, SYNTH_CONSTRAINTS,
            window=(24.0, 71.0), force_strategy="preagg",
        )
        assert plan.root.find("SliverScan") is None


#: Positive cost constants spanning six orders of magnitude — wide
#: enough to flip the planner's choice every which way.
positive = st.floats(
    min_value=1e-3, max_value=1e4, allow_nan=False, allow_infinity=False
)


class TestCostConstantFuzz:
    @settings(max_examples=20, deadline=None)
    @given(
        check_cost=positive,
        row_cost=positive,
        probe_cost=positive,
        granule_cost=positive,
        thread_task_overhead=positive,
        thread_speedup=st.floats(min_value=1.0, max_value=16.0),
    )
    def test_choice_never_changes_the_answer(
        self,
        fig1_preagg,
        check_cost,
        row_cost,
        probe_cost,
        granule_cost,
        thread_task_overhead,
        thread_speedup,
    ):
        """Whatever the constants pick, the count is the serial answer."""
        model = CostModel(
            check_cost=check_cost,
            row_cost=row_cost,
            probe_cost=probe_cost,
            granule_cost=granule_cost,
            thread_task_overhead=thread_task_overhead,
            thread_speedup=thread_speedup,
        )
        executor = ShardedExecutor(
            backend="threads", n_shards=2, obs=fig1_preagg.obs
        )
        count, plan = planned_count_objects_through(
            fig1_preagg, FIG1_TARGET, FIG1_CONSTRAINTS, moft_name="FMbus",
            executor=executor, cost_model=model,
        )
        assert plan.strategy in STRATEGIES
        assert count == 5
