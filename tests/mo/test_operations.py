"""Tests for trajectory–region operations."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import TrajectoryError
from repro.geometry import Point, Polygon
from repro.mo import (
    LinearInterpolationTrajectory,
    TrajectorySample,
    distance_at,
    ever_within_distance,
    first_entry_time,
    intervals_inside,
    intervals_within_distance,
    minimum_distance,
    passes_through,
    sample_instants_inside,
    stays_within,
    time_inside,
    time_within_distance,
)

SQUARE = Polygon.rectangle(0, 0, 10, 10)


def lit(points) -> LinearInterpolationTrajectory:
    return LinearInterpolationTrajectory(TrajectorySample(points))


class TestSampleSemantics:
    def test_counts_only_sampled_positions(self):
        sample = TrajectorySample(
            [(0, -5.0, 5.0), (1, 5.0, 5.0), (2, 15.0, 5.0)]
        )
        assert sample_instants_inside(sample, SQUARE) == [1]

    def test_o6_effect_missed_by_samples(self):
        # The object crosses the square between samples but is never
        # sampled inside — sample semantics sees nothing (paper's O6).
        sample = TrajectorySample([(0, -5.0, 5.0), (1, 15.0, 5.0)])
        assert sample_instants_inside(sample, SQUARE) == []
        assert passes_through(
            LinearInterpolationTrajectory(sample), SQUARE
        )

    def test_boundary_sample_counts(self):
        sample = TrajectorySample([(0, 0.0, 5.0)])
        assert sample_instants_inside(sample, SQUARE) == [0]


class TestIntervalsInside:
    def test_simple_crossing(self):
        # Crosses x=0 at t=2.5 and x=10 at t=7.5.
        traj = lit([(0, -5.0, 5.0), (10, 15.0, 5.0)])
        intervals = intervals_inside(traj, SQUARE)
        assert len(intervals) == 1
        lo, hi = intervals[0]
        assert lo == pytest.approx(2.5)
        assert hi == pytest.approx(7.5)
        assert time_inside(traj, SQUARE) == pytest.approx(5.0)

    def test_merged_across_pieces(self):
        traj = lit([(0, 2.0, 5.0), (5, 8.0, 5.0), (10, 2.0, 5.0)])
        intervals = intervals_inside(traj, SQUARE)
        assert intervals == [(0.0, 10.0)]

    def test_in_and_out_twice(self):
        traj = lit(
            [
                (0, -5.0, 5.0),
                (10, 5.0, 5.0),
                (20, -5.0, 5.0),
                (30, 5.0, 5.0),
            ]
        )
        intervals = intervals_inside(traj, SQUARE)
        assert len(intervals) == 2
        assert intervals[0][0] == pytest.approx(5.0)
        assert intervals[0][1] == pytest.approx(15.0)
        assert intervals[1][0] == pytest.approx(25.0)
        assert intervals[1][1] == pytest.approx(30.0)
        assert time_inside(traj, SQUARE) == pytest.approx(15.0)

    def test_never_inside(self):
        traj = lit([(0, 20.0, 20.0), (5, 30.0, 30.0)])
        assert intervals_inside(traj, SQUARE) == []
        assert time_inside(traj, SQUARE) == 0.0
        assert not passes_through(traj, SQUARE)

    def test_entirely_inside(self):
        traj = lit([(0, 2.0, 2.0), (8, 8.0, 8.0)])
        assert intervals_inside(traj, SQUARE) == [(0.0, 8.0)]
        assert stays_within(traj, SQUARE)

    def test_stays_within_false_on_exit(self):
        traj = lit([(0, 2.0, 2.0), (8, 18.0, 2.0)])
        assert not stays_within(traj, SQUARE)

    def test_first_entry(self):
        traj = lit([(0, -5.0, 5.0), (10, 15.0, 5.0)])
        assert first_entry_time(traj, SQUARE) == pytest.approx(2.5)

    def test_first_entry_never_raises(self):
        traj = lit([(0, 20.0, 20.0), (5, 30.0, 30.0)])
        with pytest.raises(TrajectoryError):
            first_entry_time(traj, SQUARE)

    def test_nonuniform_time_scaling(self):
        # Same path, time runs 10x slower on the second piece.
        traj = lit([(0, -10.0, 5.0), (1, 0.0, 5.0), (101, 10.0, 5.0)])
        assert time_inside(traj, SQUARE) == pytest.approx(100.0)

    @given(st.floats(min_value=-20, max_value=20), st.floats(min_value=-20, max_value=20))
    def test_time_inside_never_exceeds_duration(self, x0, x1):
        traj = lit([(0, x0, 5.0), (7, x1, 5.0)])
        assert 0 <= time_inside(traj, SQUARE) <= 7 + 1e-9


class TestWithinDistance:
    CENTER = Point(0, 0)

    def test_pass_through_disk(self):
        # Straight through the center at unit speed.
        traj = lit([(0, -10.0, 0.0), (20, 10.0, 0.0)])
        intervals = intervals_within_distance(traj, self.CENTER, 5.0)
        assert len(intervals) == 1
        lo, hi = intervals[0]
        assert lo == pytest.approx(5.0)
        assert hi == pytest.approx(15.0)
        assert time_within_distance(traj, self.CENTER, 5.0) == pytest.approx(10.0)

    def test_chord_crossing(self):
        # Line y=3 crosses the radius-5 circle over x in [-4, 4].
        traj = lit([(0, -10.0, 3.0), (20, 10.0, 3.0)])
        total = time_within_distance(traj, self.CENTER, 5.0)
        assert total == pytest.approx(8.0)

    def test_never_close(self):
        traj = lit([(0, -10.0, 9.0), (20, 10.0, 9.0)])
        assert intervals_within_distance(traj, self.CENTER, 5.0) == []
        assert not ever_within_distance(traj, self.CENTER, 5.0)

    def test_tangent_touch(self):
        traj = lit([(0, -10.0, 5.0), (20, 10.0, 5.0)])
        intervals = intervals_within_distance(traj, self.CENTER, 5.0)
        assert len(intervals) == 1
        lo, hi = intervals[0]
        assert lo == pytest.approx(hi, abs=1e-6)

    def test_stationary_inside(self):
        traj = lit([(0, 1.0, 1.0), (5, 1.0, 1.0)])
        assert time_within_distance(traj, self.CENTER, 5.0) == pytest.approx(5.0)

    def test_stationary_outside(self):
        traj = lit([(0, 10.0, 10.0), (5, 10.0, 10.0)])
        assert time_within_distance(traj, self.CENTER, 5.0) == 0.0

    def test_negative_radius_rejected(self):
        traj = lit([(0, 0.0, 0.0), (1, 1.0, 1.0)])
        with pytest.raises(TrajectoryError):
            intervals_within_distance(traj, self.CENTER, -1.0)

    def test_starts_inside_disk(self):
        traj = lit([(0, 0.0, 0.0), (10, 20.0, 0.0)])
        intervals = intervals_within_distance(traj, self.CENTER, 5.0)
        assert intervals[0][0] == pytest.approx(0.0)
        assert intervals[0][1] == pytest.approx(2.5)


class TestPairwiseDistance:
    def test_distance_at(self):
        a = lit([(0, 0.0, 0.0), (10, 10.0, 0.0)])
        b = lit([(0, 0.0, 5.0), (10, 10.0, 5.0)])
        assert distance_at(a, b, 5) == pytest.approx(5.0)

    def test_minimum_distance_crossing(self):
        a = lit([(0, -10.0, 0.0), (20, 10.0, 0.0)])
        b = lit([(0, 0.0, -10.0), (20, 0.0, 10.0)])
        dist, t = minimum_distance(a, b)
        assert dist == pytest.approx(0.0, abs=1e-9)
        assert t == pytest.approx(10.0)

    def test_minimum_distance_parallel(self):
        a = lit([(0, 0.0, 0.0), (10, 10.0, 0.0)])
        b = lit([(0, 0.0, 3.0), (10, 10.0, 3.0)])
        dist, _ = minimum_distance(a, b)
        assert dist == pytest.approx(3.0)

    def test_minimum_distance_interior_minimum(self):
        # Objects approach then separate; the minimum is mid-piece.
        a = lit([(0, -5.0, 1.0), (10, 5.0, 1.0)])
        b = lit([(0, 5.0, -1.0), (10, -5.0, -1.0)])
        dist, t = minimum_distance(a, b)
        assert dist == pytest.approx(2.0)
        assert t == pytest.approx(5.0)

    def test_disjoint_domains_raise(self):
        a = lit([(0, 0.0, 0.0), (1, 1.0, 0.0)])
        b = lit([(5, 0.0, 0.0), (6, 1.0, 0.0)])
        with pytest.raises(TrajectoryError):
            minimum_distance(a, b)

    def test_partial_overlap(self):
        a = lit([(0, 0.0, 0.0), (10, 10.0, 0.0)])
        b = lit([(5, 5.0, 4.0), (15, 15.0, 4.0)])
        dist, t = minimum_distance(a, b)
        assert dist == pytest.approx(4.0)
        assert 5 <= t <= 10
