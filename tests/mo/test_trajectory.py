"""Tests for trajectory samples, LIT and functional trajectories."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import TrajectoryError
from repro.geometry import Point
from repro.mo import (
    FunctionalTrajectory,
    LinearInterpolationTrajectory,
    TrajectorySample,
)


def straight_sample() -> TrajectorySample:
    return TrajectorySample([(0, 0.0, 0.0), (10, 10.0, 0.0)])


def l_sample() -> TrajectorySample:
    return TrajectorySample([(0, 0.0, 0.0), (4, 4.0, 0.0), (7, 4.0, 3.0)])


class TestTrajectorySample:
    def test_needs_points(self):
        with pytest.raises(TrajectoryError):
            TrajectorySample([])

    def test_strictly_increasing_times(self):
        with pytest.raises(TrajectoryError):
            TrajectorySample([(0, 0, 0), (0, 1, 1)])
        with pytest.raises(TrajectoryError):
            TrajectorySample([(1, 0, 0), (0, 1, 1)])

    def test_basic_properties(self):
        sample = l_sample()
        assert len(sample) == 3
        assert sample.times == [0, 4, 7]
        assert sample.start_time == 0
        assert sample.end_time == 7
        assert sample.duration == 7
        assert sample.positions[1] == Point(4, 0)

    def test_is_closed(self):
        open_sample = l_sample()
        assert not open_sample.is_closed
        closed = TrajectorySample([(0, 1, 1), (1, 2, 2), (2, 1, 1)])
        assert closed.is_closed

    def test_bbox(self):
        box = l_sample().bbox()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 4, 3)

    def test_restricted(self):
        sub = l_sample().restricted(1, 7)
        assert sub.times == [4, 7]

    def test_restricted_empty_raises(self):
        with pytest.raises(TrajectoryError):
            l_sample().restricted(100, 200)

    def test_indexing(self):
        assert l_sample()[0] == (0.0, 0.0, 0.0)


class TestLIT:
    def test_needs_two_points(self):
        with pytest.raises(TrajectoryError):
            LinearInterpolationTrajectory(TrajectorySample([(0, 0, 0)]))

    def test_position_at_samples(self):
        lit = LinearInterpolationTrajectory(l_sample())
        assert lit.position(0) == Point(0, 0)
        assert lit.position(4) == Point(4, 0)
        assert lit.position(7) == Point(4, 3)

    def test_position_interpolated(self):
        lit = LinearInterpolationTrajectory(straight_sample())
        assert lit.position(5) == Point(5, 0)
        p = lit.position(2.5)
        assert p.x == pytest.approx(2.5)

    def test_position_outside_domain_raises(self):
        lit = LinearInterpolationTrajectory(straight_sample())
        with pytest.raises(TrajectoryError):
            lit.position(-1)
        with pytest.raises(TrajectoryError):
            lit.position(11)

    def test_paper_interpolation_formula(self):
        # x = ((t1-t) x0 + (t-t0) x1) / (t1 - t0) from Section 3.
        lit = LinearInterpolationTrajectory(
            TrajectorySample([(2, 1.0, 5.0), (6, 9.0, 1.0)])
        )
        t = 3.0
        expected_x = ((6 - t) * 1.0 + (t - 2) * 9.0) / 4
        expected_y = ((6 - t) * 5.0 + (t - 2) * 1.0) / 4
        p = lit.position(t)
        assert p.x == pytest.approx(expected_x)
        assert p.y == pytest.approx(expected_y)

    def test_pieces(self):
        lit = LinearInterpolationTrajectory(l_sample())
        pieces = lit.pieces()
        assert len(pieces) == 2
        t0, t1, seg = pieces[0]
        assert (t0, t1) == (0, 4)
        assert seg.start == Point(0, 0)
        assert seg.end == Point(4, 0)

    def test_length(self):
        assert LinearInterpolationTrajectory(l_sample()).length == pytest.approx(7)

    def test_speed_constant_per_piece(self):
        lit = LinearInterpolationTrajectory(l_sample())
        assert lit.speed_on_piece(0) == pytest.approx(1.0)
        assert lit.speed_on_piece(1) == pytest.approx(1.0)
        assert lit.speed_at(2) == pytest.approx(1.0)

    def test_speed_piece_out_of_range(self):
        lit = LinearInterpolationTrajectory(l_sample())
        with pytest.raises(TrajectoryError):
            lit.speed_on_piece(5)

    def test_is_closed(self):
        closed = LinearInterpolationTrajectory(
            TrajectorySample([(0, 0, 0), (1, 1, 0), (2, 0, 0)])
        )
        assert closed.is_closed
        assert not LinearInterpolationTrajectory(l_sample()).is_closed

    def test_image_polyline(self):
        lit = LinearInterpolationTrajectory(straight_sample())
        image = lit.image_polyline(5)
        assert len(image) == 5
        assert image.vertices[0] == Point(0, 0)
        assert image.vertices[-1] == Point(10, 0)

    @given(st.floats(min_value=0, max_value=10))
    def test_position_within_sample_bbox(self, t):
        lit = LinearInterpolationTrajectory(straight_sample())
        p = lit.position(t)
        assert lit.sample.bbox().expanded(1e-9).contains_point(p)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-100, max_value=100),
                st.floats(min_value=-100, max_value=100),
            ),
            min_size=2,
            max_size=10,
        )
    )
    def test_lit_passes_through_samples(self, positions):
        sample = TrajectorySample(
            [(i, x, y) for i, (x, y) in enumerate(positions)]
        )
        lit = LinearInterpolationTrajectory(sample)
        for t, x, y in sample:
            p = lit.position(t)
            assert p.x == pytest.approx(x, abs=1e-9)
            assert p.y == pytest.approx(y, abs=1e-9)


class TestFunctionalTrajectory:
    def test_domain_validation(self):
        with pytest.raises(TrajectoryError):
            FunctionalTrajectory(lambda t: t, lambda t: t, (1, 1))

    def test_quarter_circle_matches_paper(self):
        traj = FunctionalTrajectory.quarter_circle()
        p0 = traj.position(0)
        p1 = traj.position(1)
        assert (p0.x, p0.y) == (1.0, 0.0)
        assert (p1.x, p1.y) == (0.0, 1.0)
        # Every point lies on the unit circle.
        for i in range(11):
            p = traj.position(i / 10)
            assert p.x**2 + p.y**2 == pytest.approx(1.0)

    def test_sampled(self):
        traj = FunctionalTrajectory.quarter_circle()
        sample = traj.sampled([0, 0.5, 1])
        assert len(sample) == 3
        with pytest.raises(TrajectoryError):
            traj.sampled([0, 2.0])

    def test_linearized_approaches_arc_length(self):
        traj = FunctionalTrajectory.quarter_circle()
        coarse = traj.linearized(4).length
        fine = traj.linearized(256).length
        quarter = math.pi / 2
        assert coarse < fine <= quarter + 1e-9
        assert fine == pytest.approx(quarter, rel=1e-3)

    def test_linearized_validation(self):
        with pytest.raises(TrajectoryError):
            FunctionalTrajectory.quarter_circle().linearized(0)

    def test_image_polyline_validation(self):
        with pytest.raises(TrajectoryError):
            FunctionalTrajectory.quarter_circle().image_polyline(1)
