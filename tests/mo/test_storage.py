"""The on-disk columnar MOFT format: round-trips, pinning, corruption.

Three guarantees under test:

* **round-trip** — ``save`` → ``load`` reproduces the table row for row
  (hypothesis drives oids/times/coords, both eager and mmap loads);
* **pinning** — the byte layout is explicit: little-endian dtypes, the
  magic/version preamble, 64-byte section alignment.  A file written
  here must load on any platform;
* **typed errors or nothing** — every corrupted byte sequence raises
  :class:`~repro.errors.MoftStorageError`; a numpy shape error or a
  silent wrong answer is a bug.
"""

import json
import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MoftStorageError
from repro.mo import MOFT
from repro.mo import storage
from repro.mo.storage import (
    ALIGNMENT,
    FORMAT_VERSION,
    MAGIC,
    PREAMBLE,
    is_columnar_file,
    open_image,
    serialize_moft,
    table_from_image,
)


def small_moft():
    moft = MOFT("cars")
    moft.add_many(
        [
            ("car1", 0.0, 0.0, 0.0),
            ("car1", 1.0, 10.0, 5.0),
            ("car2", 0.5, -3.25, 7.5),
            ("car2", 2.0, 4.0, -1.0),
            ("car3", 3.0, 0.125, 0.25),
        ]
    )
    return moft


def assert_same_table(actual: MOFT, expected: MOFT) -> None:
    assert actual.name == expected.name
    assert list(actual.tuples()) == list(expected.tuples())
    assert actual.objects() == expected.objects()
    for oid in expected.objects():
        assert actual.history(oid) == expected.history(oid)


# -- round-trips ---------------------------------------------------------------


class TestRoundTrip:
    def test_save_load_mmap(self, tmp_path):
        moft = small_moft()
        path = tmp_path / "cars.moft"
        nbytes = moft.save(path)
        assert nbytes == path.stat().st_size
        assert is_columnar_file(path)
        assert_same_table(MOFT.load(path), moft)

    def test_save_load_eager(self, tmp_path):
        moft = small_moft()
        path = tmp_path / "cars.moft"
        moft.save(path)
        assert_same_table(MOFT.load(path, mmap=False), moft)

    def test_int_oids(self, tmp_path):
        moft = MOFT("ints")
        moft.add_many([(7, 0.0, 1.0, 2.0), (7, 1.0, 3.0, 4.0), (-2, 0.0, 5.0, 6.0)])
        path = tmp_path / "ints.moft"
        moft.save(path)
        loaded = MOFT.load(path)
        assert_same_table(loaded, moft)
        # Integer ids come back as Python ints, not numpy scalars.
        assert all(type(oid) is int for oid in loaded.objects())

    def test_empty_moft(self, tmp_path):
        moft = MOFT("empty")
        path = tmp_path / "empty.moft"
        moft.save(path)
        loaded = MOFT.load(path)
        assert len(loaded) == 0
        assert loaded.objects() == set()

    def test_without_index(self, tmp_path):
        moft = small_moft()
        lean = tmp_path / "lean.moft"
        full = tmp_path / "full.moft"
        moft.save(lean, include_index=False)
        moft.save(full, include_index=True)
        assert lean.stat().st_size < full.stat().st_size
        assert_same_table(MOFT.load(lean), moft)

    def test_order_prefill_matches_recompute(self, tmp_path):
        moft = small_moft()
        path = tmp_path / "cars.moft"
        moft.save(path)
        prefilled = MOFT.load(path)
        assert set(prefilled._order) == prefilled.objects()
        recomputed = MOFT.load(path)
        recomputed._order.clear()
        for oid in sorted(moft.objects()):
            pt, pr = prefilled._object_order(oid)
            rt, rr = recomputed._object_order(oid)
            assert pt.tobytes() == rt.tobytes()
            np.testing.assert_array_equal(
                prefilled.as_arrays()[1][pr], recomputed.as_arrays()[1][rr]
            )

    def test_append_after_mmap_load(self, tmp_path):
        moft = small_moft()
        path = tmp_path / "cars.moft"
        moft.save(path)
        loaded = MOFT.load(path)
        loaded.add("car9", 9.0, 1.0, 2.0)
        assert loaded.position("car9", 9.0) is not None
        assert len(loaded) == len(moft) + 1

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.one_of(
                    st.sampled_from(["A", "B", "névé"]),
                    st.integers(min_value=-5, max_value=5),
                ),
                st.integers(min_value=0, max_value=40),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
            ),
            min_size=0,
            max_size=50,
            unique_by=lambda item: (item[0], item[1]),
        )
    )
    def test_roundtrip_property(self, tuples):
        moft = MOFT("prop")
        moft.add_many(
            [(oid, float(t), x, y) for oid, t, x, y in tuples]
        )
        image = serialize_moft(moft)
        loaded = table_from_image(open_image(image))
        assert_same_table(loaded, moft)


# -- format pinning ------------------------------------------------------------


class TestFormatPinning:
    def header(self, image: bytes) -> dict:
        magic, version, flags, header_len = PREAMBLE.unpack_from(image)
        assert magic == MAGIC
        assert version == FORMAT_VERSION
        assert flags == 0
        raw = bytes(image[PREAMBLE.size : PREAMBLE.size + header_len])
        return json.loads(raw.decode("utf-8"))

    def test_little_endian_dtypes(self):
        header = self.header(serialize_moft(small_moft()))
        dtypes = {
            name: spec["dtype"] for name, spec in header["sections"].items()
        }
        assert dtypes == {
            "t": "<f8",
            "x": "<f8",
            "y": "<f8",
            "oid_codes": "<u4",
            "oid_values": "bytes",
            "index_rows": "<i8",
            "index_times": "<f8",
            "index_offsets": "<i8",
        }

    def test_sections_are_aligned(self):
        header = self.header(serialize_moft(small_moft()))
        for name, spec in header["sections"].items():
            assert spec["offset"] % ALIGNMENT == 0, name

    def test_header_metadata(self):
        moft = small_moft()
        header = self.header(serialize_moft(moft))
        assert header["name"] == "cars"
        assert header["rows"] == len(moft)
        assert header["objects"] == len(moft.objects())
        assert header["oid_kind"] == "json"
        assert header["index"] is True

    def test_unsupported_oid_type_is_typed(self):
        moft = MOFT("weird")
        moft.add(("tuple", "oid"), 0.0, 1.0, 2.0)
        with pytest.raises(MoftStorageError):
            serialize_moft(moft)


# -- corruption ladder ---------------------------------------------------------


def corruptions():
    """Each entry mangles a valid image; every one must raise typed."""
    image = serialize_moft(small_moft())
    header_len = PREAMBLE.unpack_from(image)[3]

    def with_preamble(version=FORMAT_VERSION, flags=0, hlen=None, magic=MAGIC):
        out = bytearray(image)
        PREAMBLE.pack_into(
            out, 0, magic, version, flags,
            header_len if hlen is None else hlen,
        )
        return bytes(out)

    def with_header(mutate):
        raw = bytes(image[PREAMBLE.size : PREAMBLE.size + header_len])
        header = json.loads(raw.decode("utf-8"))
        mutate(header)
        blob = json.dumps(header).encode("utf-8")
        if len(blob) < header_len:
            # JSON tolerates trailing whitespace, so the declared header
            # length still parses and the mutated *content* is what trips
            # the validator.
            blob = blob + b" " * (header_len - len(blob))
        elif len(blob) > header_len:
            # Mutation does not fit the slot: the truncated JSON itself
            # is the corruption.
            blob = blob[:header_len]
        out = bytearray(image)
        out[PREAMBLE.size : PREAMBLE.size + header_len] = blob
        return bytes(out)

    yield "empty file", b""
    yield "truncated preamble", image[:6]
    yield "bad magic", with_preamble(magic=b"NOTMOFT\x00")
    yield "future version", with_preamble(version=FORMAT_VERSION + 1)
    yield "unknown flags", with_preamble(flags=1)
    yield "header past eof", with_preamble(hlen=2**31 - 1)
    yield "header not json", (
        image[: PREAMBLE.size] + b"\xff" * (len(image) - PREAMBLE.size)
    )
    yield "truncated payload", image[: PREAMBLE.size + header_len + 8]
    yield "rows mismatch", with_header(
        lambda h: h.__setitem__("rows", h["rows"] + 1)
    )
    yield "missing section", with_header(
        lambda h: h["sections"].pop("t")
    )
    yield "section past eof", with_header(
        lambda h: h["sections"]["t"].__setitem__("offset", 2**40)
    )
    yield "wrong dtype", with_header(
        lambda h: h["sections"]["t"].__setitem__("dtype", ">f8")
    )
    yield "oid code out of range", with_header(
        lambda h: h.__setitem__("objects", 1)
    )


class TestCorruption:
    @pytest.mark.parametrize(
        "label,blob", list(corruptions()), ids=[c[0] for c in corruptions()]
    )
    def test_corrupt_image_raises_typed(self, label, blob):
        with pytest.raises(MoftStorageError):
            table_from_image(open_image(blob, source=label))

    def test_corrupt_file_raises_typed(self, tmp_path):
        path = tmp_path / "bad.moft"
        path.write_bytes(MAGIC + b"\x00" * 3)
        with pytest.raises(MoftStorageError):
            MOFT.load(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        # A missing file is not a corrupt file: the standard error
        # passes through untranslated.
        with pytest.raises(FileNotFoundError):
            MOFT.load(tmp_path / "nope.moft")

    def test_csv_file_raises_typed(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("oid,t,x,y\ncar1,0.0,1.0,2.0\n")
        assert not is_columnar_file(path)
        with pytest.raises(MoftStorageError):
            MOFT.load(path)
