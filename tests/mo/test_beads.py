"""Tests for Hornsby–Egenhofer lifeline beads."""

import math

import pytest

from repro.errors import TrajectoryError
from repro.geometry import Point
from repro.mo import Bead, Ellipse, Lifeline, TrajectorySample


class TestEllipse:
    def test_contains_center(self):
        e = Ellipse(Point(0, 0), 2.0, 1.0, 0.0)
        assert e.contains_point(Point(0, 0))

    def test_contains_on_axes(self):
        e = Ellipse(Point(0, 0), 2.0, 1.0, 0.0)
        assert e.contains_point(Point(2, 0))
        assert e.contains_point(Point(0, 1))
        assert not e.contains_point(Point(0, 1.5))
        assert not e.contains_point(Point(2.5, 0))

    def test_rotated(self):
        e = Ellipse(Point(0, 0), 2.0, 1.0, math.pi / 2)
        assert e.contains_point(Point(0, 2))
        assert not e.contains_point(Point(2, 0))

    def test_area(self):
        e = Ellipse(Point(0, 0), 2.0, 1.0, 0.0)
        assert e.area == pytest.approx(2 * math.pi)


class TestBead:
    def test_time_order_required(self):
        with pytest.raises(TrajectoryError):
            Bead(5, Point(0, 0), 5, Point(1, 1), 1.0)

    def test_speed_positive(self):
        with pytest.raises(TrajectoryError):
            Bead(0, Point(0, 0), 1, Point(0, 0), 0.0)

    def test_infeasible_observations_rejected(self):
        # 10 units apart in 1 time unit needs speed >= 10.
        with pytest.raises(TrajectoryError):
            Bead(0, Point(0, 0), 1, Point(10, 0), 5.0)

    def test_contains_straight_line_position(self):
        bead = Bead(0, Point(0, 0), 10, Point(10, 0), 2.0)
        assert bead.contains(5, Point(5, 0))

    def test_contains_respects_speed_bound(self):
        bead = Bead(0, Point(0, 0), 10, Point(10, 0), 2.0)
        # At t=5 the object can be at most 10 from either endpoint.
        assert bead.contains(5, Point(5, 5))
        assert not bead.contains(5, Point(5, 20))

    def test_contains_outside_time_window(self):
        bead = Bead(0, Point(0, 0), 10, Point(10, 0), 2.0)
        assert not bead.contains(11, Point(5, 0))

    def test_projection_is_ellipse_with_sample_foci(self):
        bead = Bead(0, Point(0, 0), 10, Point(10, 0), 2.0)
        ellipse = bead.projection()
        assert ellipse.center == Point(5, 0)
        assert ellipse.semi_major == pytest.approx(10.0)  # v*dt/2
        # b^2 = a^2 - f^2 = 100 - 25.
        assert ellipse.semi_minor == pytest.approx(math.sqrt(75))
        assert ellipse.contains_point(Point(0, 0))
        assert ellipse.contains_point(Point(10, 0))

    def test_projection_degenerate_at_exact_speed(self):
        bead = Bead(0, Point(0, 0), 10, Point(10, 0), 1.0)
        ellipse = bead.projection()
        assert ellipse.semi_minor == pytest.approx(0.0)
        assert ellipse.contains_point(Point(5, 0))

    def test_possible_at(self):
        bead = Bead(0, Point(0, 0), 10, Point(10, 0), 2.0)
        c1, r1, c2, r2 = bead.possible_at(2)
        assert (c1, c2) == (Point(0, 0), Point(10, 0))
        assert r1 == pytest.approx(4.0)
        assert r2 == pytest.approx(16.0)
        with pytest.raises(TrajectoryError):
            bead.possible_at(11)


class TestLifeline:
    def sample(self) -> TrajectorySample:
        return TrajectorySample([(0, 0.0, 0.0), (10, 10.0, 0.0), (20, 10.0, 10.0)])

    def test_needs_two_observations(self):
        with pytest.raises(TrajectoryError):
            Lifeline(TrajectorySample([(0, 0, 0)]), 2.0)

    def test_bead_count(self):
        lifeline = Lifeline(self.sample(), 2.0)
        assert len(lifeline) == 2

    def test_bead_at(self):
        lifeline = Lifeline(self.sample(), 2.0)
        assert lifeline.bead_at(5).t2 == 10
        assert lifeline.bead_at(15).t1 == 10
        with pytest.raises(TrajectoryError):
            lifeline.bead_at(25)

    def test_contains(self):
        lifeline = Lifeline(self.sample(), 2.0)
        assert lifeline.contains(5, Point(5, 0))
        assert not lifeline.contains(5, Point(50, 0))
        assert not lifeline.contains(25, Point(10, 10))

    def test_could_have_visited(self):
        lifeline = Lifeline(self.sample(), 2.0)
        assert lifeline.could_have_visited(Point(5, 3))
        assert not lifeline.could_have_visited(Point(-50, -50))

    def test_footprint_area_positive(self):
        lifeline = Lifeline(self.sample(), 2.0)
        assert lifeline.footprint_area() > 0

    def test_tighter_speed_smaller_footprint(self):
        loose = Lifeline(self.sample(), 3.0)
        tight = Lifeline(self.sample(), 1.5)
        assert tight.footprint_area() < loose.footprint_area()
