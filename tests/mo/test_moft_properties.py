"""Property-based tests on MOFT invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point, Polygon
from repro.mo import (
    MOFT,
    LinearInterpolationTrajectory,
    TrajectorySample,
    intervals_inside,
    time_inside,
)

sample_tuples = st.lists(
    st.tuples(
        st.sampled_from(["A", "B", "C"]),
        st.integers(min_value=0, max_value=30),
        st.floats(min_value=-50, max_value=50),
        st.floats(min_value=-50, max_value=50),
    ),
    min_size=1,
    max_size=40,
    unique_by=lambda item: (item[0], item[1]),
)


def build_moft(tuples):
    moft = MOFT()
    moft.add_many(tuples)
    return moft


class TestMOFTInvariants:
    @given(sample_tuples)
    def test_row_count_preserved(self, tuples):
        moft = build_moft(tuples)
        assert len(moft) == len(tuples)
        assert len(list(moft.rows())) == len(tuples)

    @given(sample_tuples)
    def test_columnar_matches_rows(self, tuples):
        moft = build_moft(tuples)
        t, x, y = moft.as_arrays()
        for i, row in enumerate(moft.rows()):
            assert t[i] == row["t"]
            assert x[i] == row["x"]
            assert y[i] == row["y"]

    @given(sample_tuples)
    def test_object_masks_partition_rows(self, tuples):
        moft = build_moft(tuples)
        total = sum(moft.object_mask(oid).sum() for oid in moft.objects())
        assert total == len(moft)

    @given(sample_tuples)
    def test_histories_sorted_and_complete(self, tuples):
        moft = build_moft(tuples)
        for oid in moft.objects():
            history = moft.history(oid)
            times = [t for t, _, _ in history]
            assert times == sorted(times)
            assert len(history) == moft.sample_count(oid)

    @given(sample_tuples, st.integers(min_value=0, max_value=30))
    def test_restrict_instants_is_filter(self, tuples, cutoff):
        moft = build_moft(tuples)
        wanted = {float(t) for t in range(cutoff + 1)}
        restricted = moft.restrict_instants(wanted)
        expected = [row for row in moft.rows() if row["t"] in wanted]
        assert len(restricted) == len(expected)
        assert restricted.instants() <= wanted

    @given(sample_tuples)
    def test_restrict_objects_roundtrip(self, tuples):
        moft = build_moft(tuples)
        all_objects = moft.objects()
        assert len(moft.restrict_objects(all_objects)) == len(moft)
        assert len(moft.restrict_objects(set())) == 0

    @given(sample_tuples)
    def test_bbox_covers_all_samples(self, tuples):
        moft = build_moft(tuples)
        box = moft.bbox()
        for row in moft.rows():
            assert box.contains_point(Point(row["x"], row["y"]))


class TestTrajectoryInvariants:
    multi_samples = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=100),
            st.floats(min_value=-50, max_value=50),
            st.floats(min_value=-50, max_value=50),
        ),
        min_size=2,
        max_size=15,
        unique_by=lambda item: item[0],
    ).map(lambda pts: TrajectorySample(sorted(pts)))

    @given(multi_samples)
    def test_lit_length_at_least_displacement(self, sample):
        lit = LinearInterpolationTrajectory(sample)
        displacement = sample.positions[0].distance_to(sample.positions[-1])
        assert lit.length >= displacement - 1e-9

    @given(multi_samples)
    def test_time_inside_bounded_by_duration(self, sample):
        lit = LinearInterpolationTrajectory(sample)
        region = Polygon.rectangle(-20, -20, 20, 20)
        inside = time_inside(lit, region)
        assert -1e-9 <= inside <= sample.duration + 1e-9

    @given(multi_samples)
    def test_intervals_are_disjoint_and_ordered(self, sample):
        lit = LinearInterpolationTrajectory(sample)
        region = Polygon.rectangle(-20, -20, 20, 20)
        intervals = intervals_inside(lit, region)
        for (a0, a1), (b0, b1) in zip(intervals, intervals[1:]):
            assert a1 < b0 + 1e-12
        for lo, hi in intervals:
            assert lo <= hi

    @given(multi_samples)
    def test_piece_speeds_nonnegative_finite(self, sample):
        lit = LinearInterpolationTrajectory(sample)
        for index in range(len(sample) - 1):
            speed = lit.speed_on_piece(index)
            assert speed >= 0
            assert math.isfinite(speed)

    @given(multi_samples, st.floats(min_value=0, max_value=1))
    def test_position_continuous_in_time(self, sample, fraction):
        """Positions at nearby instants are close (Lipschitz by max speed)."""
        lit = LinearInterpolationTrajectory(sample)
        lo, hi = lit.time_domain
        t = lo + (hi - lo) * fraction
        eps = (hi - lo) * 1e-6
        t2 = min(t + eps, hi)
        max_speed = max(
            lit.speed_on_piece(i) for i in range(len(sample) - 1)
        )
        dist = lit.position(t).distance_to(lit.position(t2))
        assert dist <= max_speed * (t2 - t) + 1e-6
