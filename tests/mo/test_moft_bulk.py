"""Tests for the columnar MOFT storage engine.

The mask-sliced restriction paths (`filter`, `restrict_instants`,
`restrict_objects`, `mask_rows`) must be row-for-row identical to the
seed's per-row rebuild; the property tests below compare against a
reference implementation of that per-row path.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import TrajectoryError
from repro.geometry import Point
from repro.mo import MOFT

sample_tuples = st.lists(
    st.tuples(
        st.sampled_from(["A", "B", "C", "D"]),
        st.integers(min_value=0, max_value=30),
        st.floats(min_value=-50, max_value=50),
        st.floats(min_value=-50, max_value=50),
    ),
    min_size=0,
    max_size=40,
    unique_by=lambda item: (item[0], item[1]),
)


def build_moft(tuples):
    moft = MOFT()
    moft.add_many(tuples)
    return moft


def per_row_filter(moft, predicate):
    """The seed implementation: rebuild the table one add() at a time."""
    result = MOFT(moft.name)
    for row in moft.rows():
        if predicate(row):
            result.add(row["oid"], row["t"], row["x"], row["y"])
    return result


class TestFromColumns:
    def test_round_trip(self):
        moft = MOFT.from_columns(
            ["O1", "O1", "O2"], [1, 2, 1], [0.0, 1.0, 5.0], [0.0, 0.0, 5.0]
        )
        assert list(moft.tuples()) == [
            ("O1", 1.0, 0.0, 0.0),
            ("O1", 2.0, 1.0, 0.0),
            ("O2", 1.0, 5.0, 5.0),
        ]
        assert moft.objects() == {"O1", "O2"}

    def test_accepts_numpy_columns(self):
        moft = MOFT.from_columns(
            np.array(["O1", "O2"], dtype=object),
            np.array([1.0, 2.0]),
            np.array([0.0, 1.0]),
            np.array([0.0, 1.0]),
        )
        assert len(moft) == 2

    def test_empty(self):
        moft = MOFT.from_columns([], [], [], [])
        assert len(moft) == 0
        assert moft.objects() == set()

    def test_duplicate_validated(self):
        with pytest.raises(TrajectoryError, match="already has a sample"):
            MOFT.from_columns(["O1", "O1"], [1, 1], [0, 1], [0, 1])

    def test_validate_false_skips_check(self):
        moft = MOFT.from_columns(
            ["O1", "O1"], [1, 1], [0, 1], [0, 1], validate=False
        )
        assert len(moft) == 2

    def test_length_mismatch_raises(self):
        with pytest.raises(TrajectoryError, match="column lengths differ"):
            MOFT.from_columns(["O1"], [1, 2], [0], [0])

    def test_add_after_bulk_construction(self):
        moft = MOFT.from_columns(["O1"], [1], [0.0], [0.0])
        moft.add("O1", 2, 1.0, 1.0)
        assert len(moft) == 2
        with pytest.raises(TrajectoryError):
            moft.add("O1", 1, 9.0, 9.0)

    def test_name_kept(self):
        assert MOFT.from_columns([], [], [], [], name="FMbus").name == "FMbus"


class TestMaskSlicing:
    @given(sample_tuples)
    def test_restrict_instants_matches_per_row(self, tuples):
        moft = build_moft(tuples)
        wanted = {float(t) for t in range(0, 31, 3)}
        sliced = moft.restrict_instants(wanted)
        reference = per_row_filter(moft, lambda row: row["t"] in wanted)
        assert list(sliced.tuples()) == list(reference.tuples())

    @given(sample_tuples)
    def test_restrict_objects_matches_per_row(self, tuples):
        moft = build_moft(tuples)
        wanted = {"A", "C"}
        sliced = moft.restrict_objects(wanted)
        reference = per_row_filter(moft, lambda row: row["oid"] in wanted)
        assert list(sliced.tuples()) == list(reference.tuples())

    @given(sample_tuples)
    def test_filter_matches_per_row(self, tuples):
        moft = build_moft(tuples)
        predicate = lambda row: row["x"] >= 0 and row["t"] <= 20
        assert list(moft.filter(predicate).tuples()) == list(
            per_row_filter(moft, predicate).tuples()
        )

    @given(sample_tuples)
    def test_restricted_table_is_fully_functional(self, tuples):
        moft = build_moft(tuples)
        sliced = moft.restrict_instants({float(t) for t in range(0, 16)})
        # The derived table supports the whole API: histories, arrays,
        # further restriction, appends.
        for oid in sliced.objects():
            history = sliced.history(oid)
            assert [t for t, _, _ in history] == sorted(
                t for t, _, _ in history
            )
        t, x, y = sliced.as_arrays()
        assert t.shape == (len(sliced),)
        again = sliced.restrict_objects({"A"})
        assert again.objects() <= {"A"}

    def test_restrict_instants_empty_set(self):
        moft = build_moft([("A", 1, 0.0, 0.0)])
        assert len(moft.restrict_instants(set())) == 0

    def test_mask_rows_wrong_length_raises(self):
        moft = build_moft([("A", 1, 0.0, 0.0)])
        with pytest.raises(TrajectoryError, match="mask has"):
            moft.mask_rows(np.zeros(5, dtype=bool))


class TestSortedIndex:
    def test_position_uses_binary_search(self):
        moft = MOFT()
        for t in (5, 1, 3, 2, 4):
            moft.add("O1", t, float(t), 0.0)
        assert moft.position("O1", 3) == Point(3.0, 0.0)
        assert moft.position("O1", 3.5) is None
        assert moft.position("O1", 99) is None

    def test_position_unknown_object_raises(self):
        with pytest.raises(TrajectoryError):
            MOFT().position("ghost", 1)

    def test_order_cache_invalidated_by_add(self):
        moft = MOFT()
        moft.add("O1", 2, 2.0, 0.0)
        assert moft.position("O1", 2) == Point(2.0, 0.0)
        moft.add("O1", 1, 1.0, 0.0)
        assert moft.position("O1", 1) == Point(1.0, 0.0)
        assert [t for t, _, _ in moft.history("O1")] == [1.0, 2.0]

    @given(sample_tuples)
    def test_history_sorted_after_bulk(self, tuples):
        if not tuples:
            return
        oids = [s[0] for s in tuples]
        moft = MOFT.from_columns(
            oids,
            [s[1] for s in tuples],
            [s[2] for s in tuples],
            [s[3] for s in tuples],
        )
        for oid in set(oids):
            times = [t for t, _, _ in moft.history(oid)]
            assert times == sorted(times)
            assert len(times) == moft.sample_count(oid)


class TestOidColumn:
    def test_matches_rows(self):
        moft = build_moft([("A", 1, 0.0, 0.0), ("B", 1, 1.0, 1.0)])
        column = moft.oid_column()
        assert column.dtype == object
        assert list(column) == ["A", "B"]

    def test_cache_invalidated_by_add(self):
        moft = build_moft([("A", 1, 0.0, 0.0)])
        first = moft.oid_column()
        assert first is moft.oid_column()
        moft.add("B", 1, 1.0, 1.0)
        assert list(moft.oid_column()) == ["A", "B"]

    def test_tuple_oids_survive(self):
        # Tuples are hashable oids; object-dtype indexing must not
        # flatten them into array rows.
        moft = build_moft([(("fleet", 1), 1, 0.0, 0.0)])
        assert moft.oid_column()[0] == ("fleet", 1)
