"""Tests for MOFT CSV import/export."""

import io

import pytest

from repro.errors import TrajectoryError
from repro.mo import MOFT
from repro.mo.io import from_csv_text, read_csv, to_csv_text, write_csv
from repro.synth import table1_moft


class TestRoundtrip:
    def test_table1_roundtrip(self):
        original = table1_moft()
        text = to_csv_text(original)
        parsed = from_csv_text(text, name="FMbus")
        assert list(parsed.tuples()) == list(original.tuples())
        assert parsed.name == "FMbus"

    def test_header_written(self):
        text = to_csv_text(table1_moft())
        assert text.splitlines()[0] == "oid,t,x,y"

    def test_row_count_returned(self):
        buffer = io.StringIO()
        assert write_csv(table1_moft(), buffer) == 12

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "moft.csv"
        write_csv(table1_moft(), path)
        parsed = read_csv(path)
        assert len(parsed) == 12


class TestParsing:
    def test_column_order_flexible(self):
        text = "x,y,oid,t\n1.0,2.0,O1,5\n"
        moft = from_csv_text(text)
        assert list(moft.tuples()) == [("O1", 5.0, 1.0, 2.0)]

    def test_blank_lines_skipped(self):
        text = "oid,t,x,y\nO1,1,0,0\n\nO1,2,1,1\n"
        assert len(from_csv_text(text)) == 2

    def test_empty_file_raises(self):
        with pytest.raises(TrajectoryError):
            from_csv_text("")

    def test_missing_column_raises(self):
        with pytest.raises(TrajectoryError):
            from_csv_text("oid,t,x\nO1,1,0\n")

    def test_malformed_row_raises(self):
        with pytest.raises(TrajectoryError, match="row 2"):
            from_csv_text("oid,t,x,y\nO1,abc,0,0\n")

    def test_duplicate_sample_raises(self):
        text = "oid,t,x,y\nO1,1,0,0\nO1,1,5,5\n"
        with pytest.raises(TrajectoryError):
            from_csv_text(text)

    def test_header_case_insensitive(self):
        text = "OID,T,X,Y\nO1,1,0,0\n"
        assert len(from_csv_text(text)) == 1
