"""Tests for trajectory similarity measures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TrajectoryError
from repro.geometry import Point
from repro.mo import MOFT, TrajectorySample
from repro.mo.similarity import (
    discrete_frechet,
    hausdorff,
    most_similar_pair,
    sample_frechet,
    sample_hausdorff,
    similarity_matrix,
)

LINE = [Point(x, 0.0) for x in range(5)]
SHIFTED = [Point(x, 3.0) for x in range(5)]
REVERSED_LINE = list(reversed(LINE))

point_lists = st.lists(
    st.builds(
        Point,
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
    ),
    min_size=1,
    max_size=12,
)


class TestFrechet:
    def test_identical_is_zero(self):
        assert discrete_frechet(LINE, LINE) == 0.0

    def test_parallel_shift(self):
        assert discrete_frechet(LINE, SHIFTED) == pytest.approx(3.0)

    def test_order_matters(self):
        # Walking the same path backwards forces a long leash...
        assert discrete_frechet(LINE, REVERSED_LINE) == pytest.approx(4.0)
        # ...while Hausdorff, order-blind, sees identical point sets.
        assert hausdorff(LINE, REVERSED_LINE) == 0.0

    def test_single_points(self):
        assert discrete_frechet([Point(0, 0)], [Point(3, 4)]) == pytest.approx(5)

    def test_empty_rejected(self):
        with pytest.raises(TrajectoryError):
            discrete_frechet([], LINE)

    @given(point_lists, point_lists)
    @settings(max_examples=50)
    def test_symmetry(self, a, b):
        assert discrete_frechet(a, b) == pytest.approx(discrete_frechet(b, a))

    @given(point_lists, point_lists)
    @settings(max_examples=50)
    def test_frechet_at_least_hausdorff(self, a, b):
        assert discrete_frechet(a, b) >= hausdorff(a, b) - 1e-9

    @given(point_lists)
    def test_self_distance_zero(self, a):
        assert discrete_frechet(a, a) == 0.0


class TestHausdorff:
    def test_parallel_shift(self):
        assert hausdorff(LINE, SHIFTED) == pytest.approx(3.0)

    def test_subset_asymmetry_handled(self):
        short = LINE[:2]
        assert hausdorff(short, LINE) == pytest.approx(3.0)  # to (4, 0)

    def test_empty_rejected(self):
        with pytest.raises(TrajectoryError):
            hausdorff(LINE, [])

    @given(point_lists, point_lists)
    @settings(max_examples=50)
    def test_symmetry(self, a, b):
        assert hausdorff(a, b) == pytest.approx(hausdorff(b, a))


class TestSampleWrappers:
    def test_sample_frechet(self):
        a = TrajectorySample([(t, float(t), 0.0) for t in range(5)])
        b = TrajectorySample([(t, float(t), 3.0) for t in range(5)])
        assert sample_frechet(a, b) == pytest.approx(3.0)
        assert sample_hausdorff(a, b) == pytest.approx(3.0)


class TestMatrix:
    def build(self) -> MOFT:
        moft = MOFT()
        for t in range(4):
            moft.add("a", t, float(t), 0.0)
            moft.add("b", t, float(t), 1.0)
            moft.add("c", t, float(t), 50.0)
        return moft

    def test_matrix_keys(self):
        matrix = similarity_matrix(self.build())
        assert set(matrix) == {("a", "b"), ("a", "c"), ("b", "c")}

    def test_values(self):
        matrix = similarity_matrix(self.build())
        assert matrix[("a", "b")] == pytest.approx(1.0)
        assert matrix[("a", "c")] == pytest.approx(50.0)

    def test_hausdorff_measure(self):
        matrix = similarity_matrix(self.build(), measure="hausdorff")
        assert matrix[("b", "c")] == pytest.approx(49.0)

    def test_unknown_measure(self):
        with pytest.raises(TrajectoryError):
            similarity_matrix(self.build(), measure="dtw")

    def test_most_similar_pair(self):
        oid_a, oid_b, distance = most_similar_pair(self.build())
        assert {oid_a, oid_b} == {"a", "b"}
        assert distance == pytest.approx(1.0)

    def test_most_similar_needs_two(self):
        moft = MOFT()
        moft.add("solo", 0, 0.0, 0.0)
        with pytest.raises(TrajectoryError):
            most_similar_pair(moft)
