"""Tests for trajectory-sample cleaning."""

import pytest

from repro.errors import TrajectoryError
from repro.mo import MOFT, TrajectorySample
from repro.mo.cleaning import (
    clean_moft,
    drop_stationary_noise,
    remove_speed_outliers,
    resample_uniform,
)


def jittery_parked() -> TrajectorySample:
    """A parked vehicle jittering within ~0.1 units."""
    return TrajectorySample(
        [
            (0, 10.00, 10.00),
            (1, 10.05, 9.98),
            (2, 9.97, 10.03),
            (3, 10.02, 10.01),
            (4, 15.00, 10.00),  # actually drives away
        ]
    )


def gps_jump() -> TrajectorySample:
    """A walk with one multipath jump at t=2."""
    return TrajectorySample(
        [
            (0, 0.0, 0.0),
            (1, 1.0, 0.0),
            (2, 500.0, 500.0),  # impossible at walking speed
            (3, 3.0, 0.0),
            (4, 4.0, 0.0),
        ]
    )


class TestDropStationaryNoise:
    def test_collapses_jitter(self):
        cleaned = drop_stationary_noise(jittery_parked(), min_distance=0.5)
        assert len(cleaned) == 2  # first fix + final departure
        assert cleaned[0][0] == 0
        assert cleaned[-1][0] == 4

    def test_preserves_movement(self):
        moving = TrajectorySample([(0, 0.0, 0.0), (1, 5.0, 0.0), (2, 10.0, 0.0)])
        cleaned = drop_stationary_noise(moving, min_distance=1.0)
        assert len(cleaned) == 3

    def test_zero_threshold_keeps_everything(self):
        sample = jittery_parked()
        assert len(drop_stationary_noise(sample, 0.0)) == len(sample)

    def test_negative_threshold_rejected(self):
        with pytest.raises(TrajectoryError):
            drop_stationary_noise(jittery_parked(), -1.0)

    def test_single_fix(self):
        single = TrajectorySample([(0, 1.0, 1.0)])
        assert len(drop_stationary_noise(single, 1.0)) == 1


class TestRemoveSpeedOutliers:
    def test_drops_jump(self):
        cleaned = remove_speed_outliers(gps_jump(), max_speed=2.0)
        assert [t for t, _, _ in cleaned] == [0, 1, 3, 4]

    def test_keeps_legal_motion(self):
        sample = TrajectorySample([(0, 0.0, 0.0), (1, 1.5, 0.0), (2, 3.0, 0.0)])
        assert len(remove_speed_outliers(sample, max_speed=2.0)) == 3

    def test_speed_must_be_positive(self):
        with pytest.raises(TrajectoryError):
            remove_speed_outliers(gps_jump(), 0.0)

    def test_after_cleaning_speed_bound_holds(self):
        cleaned = remove_speed_outliers(gps_jump(), max_speed=2.0)
        points = list(cleaned)
        for (t0, x0, y0), (t1, x1, y1) in zip(points, points[1:]):
            dist = ((x1 - x0) ** 2 + (y1 - y0) ** 2) ** 0.5
            assert dist <= 2.0 * (t1 - t0) * (1 + 1e-9)


class TestResampleUniform:
    def test_shape_and_domain(self):
        sample = TrajectorySample([(0, 0.0, 0.0), (4, 8.0, 0.0)])
        resampled = resample_uniform(sample, 5)
        assert len(resampled) == 5
        assert resampled.times == [0, 1, 2, 3, 4]
        assert resampled[2][1] == pytest.approx(4.0)

    def test_validation(self):
        sample = TrajectorySample([(0, 0.0, 0.0), (4, 8.0, 0.0)])
        with pytest.raises(TrajectoryError):
            resample_uniform(sample, 1)
        with pytest.raises(TrajectoryError):
            resample_uniform(TrajectorySample([(0, 0.0, 0.0)]), 4)


class TestCleanMoft:
    def test_per_object_cleaning(self):
        moft = MOFT("dirty")
        for t, x, y in gps_jump():
            moft.add("walker", t, x, y)
        moft.add("lonely", 0, 5.0, 5.0)
        cleaned = clean_moft(moft, max_speed=2.0)
        assert cleaned.name == "dirty"
        assert cleaned.sample_count("walker") == 4
        assert cleaned.sample_count("lonely") == 1

    def test_with_jitter_collapse(self):
        moft = MOFT()
        for t, x, y in jittery_parked():
            moft.add("parked", t, x, y)
        cleaned = clean_moft(moft, max_speed=100.0, min_distance=0.5)
        assert cleaned.sample_count("parked") == 2

    def test_original_untouched(self):
        moft = MOFT()
        for t, x, y in gps_jump():
            moft.add("walker", t, x, y)
        before = len(moft)
        clean_moft(moft, max_speed=2.0)
        assert len(moft) == before
