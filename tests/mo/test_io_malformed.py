"""Malformed-input tests for MOFT CSV reading.

Every bad input must surface as a typed
:class:`~repro.errors.TrajectoryError` — never a raw ``ValueError`` /
``IndexError`` leaking from the parsing internals — so callers (the CLI
among them) can catch one exception type at the boundary.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError, TrajectoryError
from repro.mo.io import from_csv_text, read_csv


class TestMalformedMoftCsv:
    def test_empty_file(self):
        with pytest.raises(TrajectoryError, match="empty"):
            from_csv_text("")

    def test_header_only_is_an_empty_moft(self):
        moft = from_csv_text("oid,t,x,y\n")
        assert len(moft) == 0

    def test_truncated_row(self):
        with pytest.raises(TrajectoryError, match="row 2"):
            from_csv_text("oid,t,x,y\nO1,0\n")

    def test_truncated_row_reports_its_line_number(self):
        with pytest.raises(TrajectoryError, match="row 3"):
            from_csv_text("oid,t,x,y\nO1,0,1,2\nO2,5\n")

    @pytest.mark.parametrize("column", ["t", "x", "y"])
    def test_non_numeric_coordinate(self, column):
        values = {"t": "0", "x": "1", "y": "2", column: "garbage"}
        row = ",".join(["O1", values["t"], values["x"], values["y"]])
        with pytest.raises(TrajectoryError, match="malformed"):
            from_csv_text(f"oid,t,x,y\n{row}\n")

    def test_duplicate_header_column(self):
        with pytest.raises(TrajectoryError, match="repeats"):
            from_csv_text("oid,t,x,x,y\nO1,0,1,2,3\n")

    def test_duplicate_header_names_the_offender(self):
        with pytest.raises(TrajectoryError, match=r"\['t'\]"):
            from_csv_text("oid,t,t,x,y\nO1,0,0,1,2\n")

    def test_missing_required_column(self):
        with pytest.raises(TrajectoryError, match="must have columns"):
            from_csv_text("oid,t,x\nO1,0,1\n")

    def test_blank_lines_are_skipped_not_errors(self):
        moft = from_csv_text("oid,t,x,y\n\nO1,0,1,2\n  , , ,\n")
        assert len(moft) == 1

    def test_missing_file_is_oserror_not_crash(self, tmp_path):
        with pytest.raises(OSError):
            read_csv(tmp_path / "missing.csv")

    def test_errors_are_typed(self):
        assert issubclass(TrajectoryError, ReproError)
