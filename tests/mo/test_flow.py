"""Tests for trajectory aggregation by spatial units (FlowGrid)."""

import pytest

from repro.errors import GeometryError, TrajectoryError
from repro.geometry import BoundingBox, Point
from repro.mo import MOFT
from repro.mo.flow import FlowGrid, flow_grid_for_moft

BOX = BoundingBox(0, 0, 100, 100)


def horizontal_crosser(oid: str, y: float, n_samples: int) -> list:
    return [
        (oid, t, 100.0 * t / (n_samples - 1), y) for t in range(n_samples)
    ]


class TestConstruction:
    def test_validation(self):
        with pytest.raises(GeometryError):
            FlowGrid(BOX, cols=0)
        with pytest.raises(GeometryError):
            FlowGrid(BoundingBox(0, 0, 0, 10), 4, 4)

    def test_cell_addressing(self):
        grid = FlowGrid(BOX, 10, 10)
        assert grid.cell_of(Point(5, 5)) == (0, 0)
        assert grid.cell_of(Point(95, 95)) == (9, 9)
        assert grid.cell_of(Point(100, 100)) == (9, 9)  # clamped edge
        assert grid.cell_of(Point(500, 5)) is None

    def test_cell_center_roundtrip(self):
        grid = FlowGrid(BOX, 10, 10)
        for cell in [(0, 0), (4, 7), (9, 9)]:
            assert grid.cell_of(grid.cell_center(cell)) == cell


class TestAccumulation:
    def test_empty_history_rejected(self):
        grid = FlowGrid(BOX, 4, 4)
        with pytest.raises(TrajectoryError):
            grid.add_object([])

    def test_single_sample_counts_once(self):
        grid = FlowGrid(BOX, 4, 4)
        grid.add_object([(0, 10.0, 10.0)])
        assert grid.count((0, 0)) == 1
        assert grid.objects_seen == 1

    def test_full_crossing_touches_every_column(self):
        grid = FlowGrid(BOX, 10, 10)
        moft = MOFT()
        moft.add_many(horizontal_crosser("a", 5.0, 2))
        grid.add_moft(moft)
        for col in range(10):
            assert grid.count((col, 0)) == 1

    def test_sampling_rate_insensitive(self):
        """The core Meratnia–de By claim: a trajectory's cell counts do not
        depend on how densely it was sampled."""
        sparse = FlowGrid(BOX, 10, 10)
        dense = FlowGrid(BOX, 10, 10)
        sparse_moft = MOFT()
        sparse_moft.add_many(horizontal_crosser("a", 5.0, 2))
        dense_moft = MOFT()
        dense_moft.add_many(horizontal_crosser("a", 5.0, 51))
        sparse.add_moft(sparse_moft)
        dense.add_moft(dense_moft)
        assert sparse.counts() == dense.counts()

    def test_object_counted_once_per_cell(self):
        """Loitering inside one cell still counts a single pass."""
        grid = FlowGrid(BOX, 4, 4)
        history = [(t, 10.0 + (t % 3), 10.0) for t in range(20)]
        grid.add_object(history)
        assert grid.count((0, 0)) == 1

    def test_two_objects_accumulate(self):
        grid = FlowGrid(BOX, 10, 10)
        moft = MOFT()
        moft.add_many(horizontal_crosser("a", 5.0, 3))
        moft.add_many(horizontal_crosser("b", 5.0, 7))
        grid.add_moft(moft)
        assert grid.count((5, 0)) == 2
        assert grid.objects_seen == 2

    def test_outside_extent_ignored(self):
        grid = FlowGrid(BOX, 4, 4)
        grid.add_object([(0, -50.0, -50.0), (1, -60.0, -60.0)])
        assert grid.counts() == {}
        assert grid.objects_seen == 1


class TestReadout:
    def corridor_grid(self) -> FlowGrid:
        grid = FlowGrid(BOX, 10, 10)
        moft = MOFT()
        for i, y in enumerate((4.0, 5.0, 6.0, 55.0)):
            moft.add_many(horizontal_crosser(f"o{i}", y, 4))
        grid.add_moft(moft)
        return grid

    def test_hottest_cells_in_corridor(self):
        grid = self.corridor_grid()
        hottest = grid.hottest_cells(3)
        for cell, count in hottest:
            assert cell[1] == 0  # the y<10 corridor row
            assert count == 3

    def test_aggregated_trajectory_follows_corridor(self):
        grid = self.corridor_grid()
        path = grid.aggregated_trajectory()
        assert len(path) >= 5
        assert all(p.y == pytest.approx(5.0) for p in path)
        xs = [p.x for p in path]
        assert xs == sorted(xs)  # west-to-east, the flow direction

    def test_aggregated_trajectory_empty_grid(self):
        assert FlowGrid(BOX, 4, 4).aggregated_trajectory() == []

    def test_flow_grid_for_moft_helper(self):
        moft = MOFT()
        moft.add_many(horizontal_crosser("a", 5.0, 4))
        grid = flow_grid_for_moft(moft, 8, 8)
        assert grid.objects_seen == 1
        assert sum(grid.counts().values()) > 0

    def test_flow_grid_degenerate_extent(self):
        moft = MOFT()
        moft.add("still", 0, 5.0, 5.0)
        moft.add("still", 1, 5.0, 5.0)
        grid = flow_grid_for_moft(moft)
        assert grid.objects_seen == 1
