"""Tests for the moving-region extension (sliced representation of [16])."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TrajectoryError
from repro.geometry import Point, Polygon
from repro.mo import MOFT
from repro.mo.movingregion import MovingRegion


def growing_square() -> MovingRegion:
    """A square growing from 2x2 at t=0 to 6x6 at t=10, centered at (5,5)."""
    return MovingRegion(
        [
            (0, Polygon.rectangle(4, 4, 6, 6)),
            (10, Polygon.rectangle(2, 2, 8, 8)),
        ]
    )


def drifting_square() -> MovingRegion:
    """A 2x2 square drifting right by 10 units over 10 time units."""
    return MovingRegion(
        [
            (0, Polygon.rectangle(0, 0, 2, 2)),
            (10, Polygon.rectangle(10, 0, 12, 2)),
        ]
    )


class TestConstruction:
    def test_needs_snapshots(self):
        with pytest.raises(TrajectoryError):
            MovingRegion([])

    def test_strictly_increasing_times(self):
        square = Polygon.rectangle(0, 0, 1, 1)
        with pytest.raises(TrajectoryError):
            MovingRegion([(0, square), (0, square)])

    def test_unsorted_input_accepted(self):
        square = Polygon.rectangle(0, 0, 1, 1)
        bigger = Polygon.rectangle(0, 0, 2, 2)
        region = MovingRegion([(10, bigger), (0, square)])
        assert region.snapshot_times() == [0, 10]

    def test_holes_rejected(self):
        holed = Polygon(
            [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)],
            holes=[[Point(4, 4), Point(6, 4), Point(6, 6), Point(4, 6)]],
        )
        with pytest.raises(TrajectoryError):
            MovingRegion([(0, holed)])

    def test_len_and_domain(self):
        region = growing_square()
        assert len(region) == 2
        assert region.time_domain == (0, 10)
        assert region.covers(5)
        assert not region.covers(11)


class TestInterpolation:
    def test_snapshot_instants_exact(self):
        region = growing_square()
        assert region.polygon_at(0).area == pytest.approx(4)
        assert region.polygon_at(10).area == pytest.approx(36)

    def test_midpoint_area_between(self):
        region = growing_square()
        area = region.area_at(5)
        assert 4 < area < 36
        # Linear vertex interpolation of concentric squares gives the 4x4.
        assert area == pytest.approx(16, rel=0.05)

    def test_outside_domain_raises(self):
        with pytest.raises(TrajectoryError):
            growing_square().polygon_at(-1)
        with pytest.raises(TrajectoryError):
            growing_square().polygon_at(10.5)

    def test_drift_moves_centroid(self):
        region = drifting_square()
        c0 = region.polygon_at(0).centroid
        c5 = region.polygon_at(5).centroid
        c10 = region.polygon_at(10).centroid
        assert c0.x == pytest.approx(1)
        assert c5.x == pytest.approx(6, rel=0.05)
        assert c10.x == pytest.approx(11)

    def test_orientation_mismatch_normalized(self):
        ccw = Polygon.rectangle(0, 0, 2, 2)
        cw = Polygon([Point(0, 0), Point(0, 2), Point(2, 2), Point(2, 0)])
        region = MovingRegion([(0, ccw), (10, cw)])
        # Interpolating a ring with its own reversal must not collapse.
        assert region.area_at(5) == pytest.approx(4, rel=0.15)

    def test_single_snapshot_is_static(self):
        square = Polygon.rectangle(0, 0, 2, 2)
        region = MovingRegion([(3, square)])
        assert region.polygon_at(3).area == pytest.approx(4)
        assert region.time_domain == (3, 3)

    @given(st.floats(min_value=0, max_value=10))
    def test_area_monotone_for_growing_square(self, t):
        region = growing_square()
        area = region.area_at(t)
        assert 4 - 1e-6 <= area <= 36 + 1e-6


class TestContainment:
    def test_contains_follows_growth(self):
        region = growing_square()
        probe = Point(3, 5)  # inside only once the square has grown
        assert not region.contains(0, probe)
        assert region.contains(10, probe)

    def test_moving_away(self):
        region = drifting_square()
        probe = Point(1, 1)
        assert region.contains(0, probe)
        assert not region.contains(10, probe)


class TestMOFTIntegration:
    def test_samples_inside_at_own_instants(self):
        region = drifting_square()
        moft = MOFT()
        moft.add_many(
            [
                # In the square at t=0 but the square has left by t=10.
                ("stay", 0, 1.0, 1.0),
                ("stay", 10, 1.0, 1.0),
                # Meets the square exactly where it arrives.
                ("meet", 10, 11.0, 1.0),
                # Never coincides.
                ("miss", 5, 50.0, 50.0),
            ]
        )
        matches = region.samples_inside(moft)
        assert set(matches) == {("stay", 0.0), ("meet", 10.0)}

    def test_samples_outside_domain_ignored(self):
        region = drifting_square()
        moft = MOFT()
        moft.add("late", 99, 1.0, 1.0)
        assert region.samples_inside(moft) == []
