"""Tests for the Moving Object Fact Table."""

import numpy as np
import pytest

from repro.errors import TrajectoryError
from repro.geometry import Point
from repro.mo import MOFT, TrajectorySample


def small_moft() -> MOFT:
    moft = MOFT("FMbus")
    moft.add_many(
        [
            ("O1", 1, 0.0, 0.0),
            ("O1", 2, 1.0, 0.0),
            ("O1", 3, 2.0, 0.0),
            ("O2", 2, 5.0, 5.0),
            ("O2", 3, 6.0, 5.0),
        ]
    )
    return moft


class TestLoading:
    def test_len_and_objects(self):
        moft = small_moft()
        assert len(moft) == 5
        assert moft.objects() == {"O1", "O2"}

    def test_duplicate_instant_rejected(self):
        moft = small_moft()
        with pytest.raises(TrajectoryError):
            moft.add("O1", 2, 9.0, 9.0)

    def test_same_instant_different_objects_ok(self):
        moft = small_moft()
        moft.add("O3", 2, 0.0, 0.0)
        assert moft.sample_count("O3") == 1

    def test_instants(self):
        assert small_moft().instants() == {1, 2, 3}

    def test_sample_count(self):
        moft = small_moft()
        assert moft.sample_count("O1") == 3
        assert moft.sample_count("O9") == 0


class TestAccess:
    def test_rows(self):
        rows = list(small_moft().rows())
        assert rows[0] == {"oid": "O1", "t": 1.0, "x": 0.0, "y": 0.0}

    def test_tuples(self):
        tuples = list(small_moft().tuples())
        assert tuples[0] == ("O1", 1.0, 0.0, 0.0)

    def test_history_sorted(self):
        moft = MOFT()
        moft.add("O1", 3, 2.0, 0.0)
        moft.add("O1", 1, 0.0, 0.0)
        moft.add("O1", 2, 1.0, 0.0)
        assert [t for t, _, _ in moft.history("O1")] == [1, 2, 3]

    def test_history_unknown_object(self):
        with pytest.raises(TrajectoryError):
            small_moft().history("O9")

    def test_trajectory_sample(self):
        sample = small_moft().trajectory_sample("O1")
        assert isinstance(sample, TrajectorySample)
        assert len(sample) == 3

    def test_position(self):
        moft = small_moft()
        assert moft.position("O1", 2) == Point(1.0, 0.0)
        assert moft.position("O1", 99) is None


class TestColumnar:
    def test_as_arrays(self):
        t, x, y = small_moft().as_arrays()
        assert isinstance(t, np.ndarray)
        assert t.shape == (5,)
        assert x[0] == 0.0

    def test_arrays_cached_and_invalidated(self):
        moft = small_moft()
        t1, _, _ = moft.as_arrays()
        t2, _, _ = moft.as_arrays()
        assert t1 is t2
        moft.add("O3", 1, 0.0, 0.0)
        t3, _, _ = moft.as_arrays()
        assert t3.shape == (6,)

    def test_object_mask(self):
        moft = small_moft()
        mask = moft.object_mask("O1")
        assert mask.sum() == 3
        t, _, _ = moft.as_arrays()
        assert set(t[mask]) == {1.0, 2.0, 3.0}


class TestRestriction:
    def test_filter(self):
        late = small_moft().filter(lambda row: row["t"] >= 3)
        assert len(late) == 2

    def test_restrict_instants(self):
        morning = small_moft().restrict_instants({2, 3})
        assert len(morning) == 4
        assert morning.instants() == {2, 3}

    def test_restrict_objects(self):
        only_o1 = small_moft().restrict_objects({"O1"})
        assert only_o1.objects() == {"O1"}

    def test_time_range(self):
        assert small_moft().time_range() == (1.0, 3.0)

    def test_time_range_empty_raises(self):
        with pytest.raises(TrajectoryError):
            MOFT().time_range()

    def test_bbox(self):
        box = small_moft().bbox()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 6, 5)

    def test_bbox_empty_raises(self):
        with pytest.raises(TrajectoryError):
            MOFT().bbox()
