"""Tests for the pipeline observability module (repro.obs)."""

import pickle
import threading
import time

import pytest

from repro.obs import EvaluationStats, PipelineStats, StageTimer


class TestCounters:
    def test_start_at_zero(self):
        stats = PipelineStats()
        assert stats.count("anything") == 0

    def test_incr_and_count(self):
        stats = PipelineStats()
        assert stats.incr("hits") == 1
        assert stats.incr("hits", 4) == 5
        assert stats.count("hits") == 5
        assert stats.counters == {"hits": 5}

    def test_as_dict_includes_counters(self):
        stats = PipelineStats()
        stats.incr("a", 2)
        assert stats.as_dict()["a"] == 2


class TestStages:
    def test_stage_accumulates_calls_and_seconds(self):
        stats = PipelineStats()
        for _ in range(3):
            with stats.stage("scan"):
                time.sleep(0.001)
        timer = stats.stages["scan"]
        assert timer.calls == 3
        assert timer.seconds > 0
        assert stats.seconds("scan") == timer.seconds

    def test_stage_records_on_exception(self):
        stats = PipelineStats()
        with pytest.raises(ValueError):
            with stats.stage("boom"):
                raise ValueError("x")
        assert stats.stages["boom"].calls == 1

    def test_unentered_stage_is_zero(self):
        assert PipelineStats().seconds("nope") == 0.0

    def test_as_dict_reports_stage_suffixes(self):
        stats = PipelineStats()
        with stats.stage("scan"):
            pass
        report = stats.as_dict()
        assert report["scan_calls"] == 1
        assert report["scan_seconds"] >= 0


class TestMergeReset:
    def test_merge_folds_counters_and_stages(self):
        a, b = PipelineStats(), PipelineStats()
        a.incr("n", 1)
        b.incr("n", 2)
        b.incr("only_b")
        with b.stage("s"):
            pass
        a.merge(b)
        assert a.count("n") == 3
        assert a.count("only_b") == 1
        assert a.stages["s"].calls == 1

    def test_reset(self):
        stats = PipelineStats()
        stats.incr("n")
        with stats.stage("s"):
            pass
        stats.reset()
        assert stats.counters == {}
        assert stats.stages == {}


class TestEvaluationStats:
    def test_legacy_attributes_are_counters(self):
        stats = EvaluationStats()
        stats.segment_checks += 1
        stats.segment_checks += 1
        stats.bbox_rejections += 5
        assert stats.segment_checks == 2
        assert stats.count("segment_checks") == 2
        assert stats.counters["bbox_rejections"] == 5

    def test_constructor_kwargs(self):
        stats = EvaluationStats(segment_checks=3, elapsed_seconds=0.5)
        assert stats.segment_checks == 3
        assert stats.elapsed_seconds == 0.5

    def test_elapsed_seconds_backed_by_scan_stage(self):
        stats = EvaluationStats()
        with stats.stage(EvaluationStats.SCAN_STAGE):
            time.sleep(0.001)
        assert stats.elapsed_seconds > 0

    def test_as_dict_always_has_legacy_keys(self):
        report = EvaluationStats().as_dict()
        for key in (
            "segment_checks",
            "bbox_rejections",
            "objects_scanned",
            "objects_matched",
            "elapsed_seconds",
        ):
            assert key in report

    def test_as_dict_carries_extra_counters(self):
        stats = EvaluationStats()
        stats.incr("vectorized_accepts", 7)
        assert stats.as_dict()["vectorized_accepts"] == 7

    def test_is_pipeline_stats(self):
        assert isinstance(EvaluationStats(), PipelineStats)


class TestThreadSafety:
    """Regression: counters used to drop increments under contention.

    The threads backend of ``repro.parallel`` mutates one shared
    observer from worker threads; unlocked read-modify-write on the
    counter dict lost updates.  These tests hammer a shared instance
    from N threads and demand *exact* totals.
    """

    N_THREADS = 8
    N_INCREMENTS = 2_000

    def _hammer(self, stats, barrier):
        barrier.wait()
        for _ in range(self.N_INCREMENTS):
            stats.incr("hits")
            stats.incr("batch", 3)
            with stats.stage("scan"):
                pass
            stats.record("external", 0.001)

    def test_exact_totals_under_contention(self):
        stats = PipelineStats()
        barrier = threading.Barrier(self.N_THREADS)
        threads = [
            threading.Thread(target=self._hammer, args=(stats, barrier))
            for _ in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = self.N_THREADS * self.N_INCREMENTS
        assert stats.count("hits") == total
        assert stats.count("batch") == 3 * total
        assert stats.stages["scan"].calls == total
        assert stats.stages["external"].calls == total
        assert stats.stages["external"].seconds == pytest.approx(
            0.001 * total
        )

    def test_concurrent_merge_is_exact(self):
        target = PipelineStats()
        source = PipelineStats()
        source.incr("n", 5)
        with source.stage("s"):
            pass
        barrier = threading.Barrier(self.N_THREADS)

        def merger():
            barrier.wait()
            for _ in range(200):
                target.merge(source)

        threads = [
            threading.Thread(target=merger) for _ in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        merges = self.N_THREADS * 200
        assert target.count("n") == 5 * merges
        assert target.stages["s"].calls == merges


class TestPickling:
    """The processes backend ships stats across the pool boundary."""

    def test_roundtrip_drops_and_recreates_lock(self):
        stats = EvaluationStats()
        stats.incr("n", 7)
        with stats.stage("s"):
            pass
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.count("n") == 7
        assert clone.stages["s"].calls == 1
        # The recreated lock must actually work.
        clone.incr("n")
        assert clone.count("n") == 8


class TestSnapshotSince:
    def test_since_reports_only_deltas(self):
        stats = PipelineStats()
        stats.incr("before", 2)
        snap = stats.snapshot()
        stats.incr("before", 3)
        stats.incr("after")
        with stats.stage("scan"):
            time.sleep(0.001)
        delta = stats.since(snap)
        assert delta["before"] == 3
        assert delta["after"] == 1
        assert delta["scan_calls"] == 1
        assert delta["scan_seconds"] > 0

    def test_unchanged_figures_are_omitted(self):
        stats = PipelineStats()
        stats.incr("steady", 4)
        snap = stats.snapshot()
        assert stats.since(snap) == {}


class TestStageTimer:
    def test_record(self):
        timer = StageTimer()
        timer.record(0.25)
        timer.record(0.25)
        assert timer.calls == 2
        assert timer.seconds == 0.5
