"""Tests for the time-varying GIS fact table of Example 3."""

import pytest

from repro.errors import InstanceError, SchemaError
from repro.gis import POINT, POLYGON, summable_aggregate
from repro.gis.facts import TemporalGISFactTable


def population_table() -> TemporalGISFactTable:
    """Example 3: (polyId, L_neighb, Year, Population)."""
    table = TemporalGISFactTable(POLYGON, "Ln", "year", ["population"])
    table.set("pg_zuid", 2005, 58_000)
    table.set("pg_zuid", 2006, 60_000)
    table.set("pg_berchem", 2005, 39_000)
    table.set("pg_berchem", 2006, 40_000)
    return table


class TestConstruction:
    def test_point_kind_rejected(self):
        with pytest.raises(SchemaError):
            TemporalGISFactTable(POINT, "Ln", "year", ["population"])

    def test_level_required(self):
        with pytest.raises(SchemaError):
            TemporalGISFactTable(POLYGON, "Ln", "", ["population"])

    def test_measures_required(self):
        with pytest.raises(SchemaError):
            TemporalGISFactTable(POLYGON, "Ln", "year", [])
        with pytest.raises(SchemaError):
            TemporalGISFactTable(POLYGON, "Ln", "year", ["m", "m"])


class TestCells:
    def test_set_and_get(self):
        table = population_table()
        assert table.get("pg_zuid", 2006) == (60_000,)
        assert table.get("pg_zuid", 2006, "population") == 60_000
        assert len(table) == 4

    def test_arity_checked(self):
        table = population_table()
        with pytest.raises(InstanceError):
            table.set("pg_zuid", 2007)

    def test_missing_cell_raises(self):
        with pytest.raises(InstanceError):
            population_table().get("pg_zuid", 1999)

    def test_unknown_measure_raises(self):
        with pytest.raises(SchemaError):
            population_table().get("pg_zuid", 2006, "income")

    def test_overwrite(self):
        table = population_table()
        table.set("pg_zuid", 2006, 61_000)
        assert table.get("pg_zuid", 2006, "population") == 61_000


class TestTemporalViews:
    def test_series(self):
        series = population_table().series("pg_zuid", "population")
        assert series == {2005: 58_000, 2006: 60_000}

    def test_series_unknown_measure(self):
        with pytest.raises(SchemaError):
            population_table().series("pg_zuid", "income")

    def test_time_members(self):
        assert population_table().time_members() == {2005, 2006}

    def test_at_time_projection(self):
        snapshot = population_table().at_time(2006)
        assert snapshot.get("pg_zuid", "population") == 60_000
        assert snapshot.ids() == {"pg_zuid", "pg_berchem"}

    def test_projection_feeds_summable_rewriting(self):
        """Slice by year, then aggregate geometrically (Section 5 style)."""
        snapshot = population_table().at_time(2006)
        total = summable_aggregate(
            ["pg_zuid", "pg_berchem"], snapshot, "population", "SUM"
        )
        assert total == 100_000

    def test_growth_across_years(self):
        table = population_table()
        for year_pair in [(2005, 2006)]:
            before = table.at_time(year_pair[0])
            after = table.at_time(year_pair[1])
            growth = sum(
                after.get(gid, "population") - before.get(gid, "population")
                for gid in before.ids()
            )
            assert growth == 3_000
