"""Tests for thematic layers."""

import pytest

from repro.errors import InstanceError, SchemaError
from repro.geometry import Point, Polygon, Polyline, Segment
from repro.gis import LINE, NODE, POLYGON, POLYLINE, Layer


def neighborhoods_layer() -> Layer:
    layer = Layer("Ln")
    layer.add_polygon("berchem", Polygon.rectangle(0, 0, 10, 10))
    layer.add_polygon("zuid", Polygon.rectangle(10, 0, 20, 10))
    return layer


class TestPopulation:
    def test_name_required(self):
        with pytest.raises(SchemaError):
            Layer("")

    def test_add_all_kinds(self):
        layer = Layer("L")
        layer.add_node("school1", Point(1, 1))
        layer.add_line("seg1", Segment(Point(0, 0), Point(1, 0)))
        layer.add_polyline("street1", Polyline([Point(0, 0), Point(5, 5)]))
        layer.add_polygon("zone1", Polygon.rectangle(0, 0, 2, 2))
        assert layer.kinds() == {NODE, LINE, POLYLINE, POLYGON}
        assert layer.size() == 4

    def test_kind_type_mismatch_rejected(self):
        layer = Layer("L")
        with pytest.raises(InstanceError):
            layer.add(POLYGON, "x", Point(0, 0))

    def test_duplicate_id_rejected(self):
        layer = neighborhoods_layer()
        with pytest.raises(InstanceError):
            layer.add_polygon("berchem", Polygon.rectangle(0, 0, 1, 1))

    def test_same_id_different_kinds_allowed(self):
        layer = Layer("L")
        layer.add_node("x", Point(0, 0))
        layer.add_polygon("x", Polygon.rectangle(0, 0, 1, 1))
        assert layer.size() == 2


class TestAccess:
    def test_elements_copy(self):
        layer = neighborhoods_layer()
        elems = layer.elements(POLYGON)
        elems.clear()
        assert layer.size(POLYGON) == 2

    def test_element_lookup(self):
        layer = neighborhoods_layer()
        poly = layer.element(POLYGON, "berchem")
        assert isinstance(poly, Polygon)
        with pytest.raises(InstanceError):
            layer.element(POLYGON, "nope")

    def test_contains(self):
        layer = neighborhoods_layer()
        assert (POLYGON, "berchem") in layer
        assert (POLYGON, "nope") not in layer
        assert (NODE, "berchem") not in layer

    def test_size_by_kind(self):
        layer = neighborhoods_layer()
        assert layer.size(POLYGON) == 2
        assert layer.size(NODE) == 0


class TestSpatialQueries:
    def test_locate_point(self):
        layer = neighborhoods_layer()
        assert layer.locate_point(POLYGON, Point(5, 5)) == {"berchem"}
        assert layer.locate_point(POLYGON, Point(15, 5)) == {"zuid"}
        assert layer.locate_point(POLYGON, Point(50, 50)) == set()

    def test_locate_point_shared_boundary(self):
        layer = neighborhoods_layer()
        assert layer.locate_point(POLYGON, Point(10, 5)) == {"berchem", "zuid"}

    def test_locate_point_empty_kind(self):
        layer = neighborhoods_layer()
        assert layer.locate_point(NODE, Point(5, 5)) == set()

    def test_elements_intersecting_segment(self):
        layer = neighborhoods_layer()
        crossing = Segment(Point(5, 5), Point(15, 5))
        assert layer.elements_intersecting(POLYGON, crossing) == {
            "berchem",
            "zuid",
        }

    def test_elements_intersecting_polygon(self):
        layer = neighborhoods_layer()
        probe = Polygon.rectangle(8, 8, 12, 12)
        assert layer.elements_intersecting(POLYGON, probe) == {"berchem", "zuid"}

    def test_elements_intersecting_bad_geometry(self):
        layer = neighborhoods_layer()
        with pytest.raises(InstanceError):
            layer.elements_intersecting(POLYGON, "blob")

    def test_index_invalidation_on_add(self):
        layer = neighborhoods_layer()
        assert layer.locate_point(POLYGON, Point(25, 5)) == set()
        layer.add_polygon("north", Polygon.rectangle(20, 0, 30, 10))
        assert layer.locate_point(POLYGON, Point(25, 5)) == {"north"}
