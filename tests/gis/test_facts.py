"""Tests for GIS fact tables (Definition 3)."""

import pytest

from repro.errors import InstanceError, SchemaError
from repro.geometry import Point
from repro.gis import ALL, POINT, POLYGON, BaseGISFactTable, GISFactTable


class TestGISFactTable:
    def test_point_level_rejected(self):
        with pytest.raises(SchemaError):
            GISFactTable(POINT, "L", ["m"])
        with pytest.raises(SchemaError):
            GISFactTable(ALL, "L", ["m"])

    def test_measures_required(self):
        with pytest.raises(SchemaError):
            GISFactTable(POLYGON, "L", [])

    def test_duplicate_measures_rejected(self):
        with pytest.raises(SchemaError):
            GISFactTable(POLYGON, "L", ["m", "m"])

    def test_set_and_get(self):
        ft = GISFactTable(POLYGON, "Ln", ["population", "area"])
        ft.set("pg1", 50_000, 12.5)
        assert ft.get("pg1") == (50_000, 12.5)
        assert ft.get("pg1", "population") == 50_000
        assert ft.get("pg1", "area") == 12.5

    def test_wrong_arity_rejected(self):
        ft = GISFactTable(POLYGON, "Ln", ["population", "area"])
        with pytest.raises(InstanceError):
            ft.set("pg1", 50_000)

    def test_missing_id_raises(self):
        ft = GISFactTable(POLYGON, "Ln", ["population"])
        with pytest.raises(InstanceError):
            ft.get("pg1")

    def test_unknown_measure_raises(self):
        ft = GISFactTable(POLYGON, "Ln", ["population"])
        ft.set("pg1", 100)
        with pytest.raises(SchemaError):
            ft.get("pg1", "income")

    def test_overwrite_allowed(self):
        ft = GISFactTable(POLYGON, "Ln", ["population"])
        ft.set("pg1", 100)
        ft.set("pg1", 200)
        assert ft.get("pg1", "population") == 200

    def test_ids_len_contains(self):
        ft = GISFactTable(POLYGON, "Ln", ["population"])
        ft.set("pg1", 100)
        ft.set("pg2", 200)
        assert len(ft) == 2
        assert ft.ids() == {"pg1", "pg2"}
        assert "pg1" in ft and "pg3" not in ft

    def test_rows(self):
        ft = GISFactTable(POLYGON, "Ln", ["population"])
        ft.set("pg1", 100)
        rows = list(ft.rows())
        assert rows == [{"id": "pg1", "population": 100}]


class TestBaseGISFactTable:
    def test_measures_required(self):
        with pytest.raises(SchemaError):
            BaseGISFactTable("L", [])

    def test_duplicate_measures_rejected(self):
        with pytest.raises(SchemaError):
            BaseGISFactTable("L", ["t", "t"])

    def test_samples(self):
        ft = BaseGISFactTable("Ltemp", ["temperature"])
        ft.add_sample(Point(1, 1), 25.0)
        ft.add_sample(Point(2, 2), 26.0)
        assert len(ft.samples()) == 2
        point, values = ft.samples()[0]
        assert point == Point(1, 1)
        assert values == (25.0,)

    def test_sample_arity_checked(self):
        ft = BaseGISFactTable("Ltemp", ["temperature", "humidity"])
        with pytest.raises(InstanceError):
            ft.add_sample(Point(0, 0), 25.0)

    def test_density_registration(self):
        ft = BaseGISFactTable("Lpop", ["density"])
        assert not ft.has_density("density")
        ft.set_density("density", lambda x, y: 2.0)
        assert ft.has_density("density")
        assert ft.density("density")(3, 4) == 2.0

    def test_density_unknown_measure(self):
        ft = BaseGISFactTable("Lpop", ["density"])
        with pytest.raises(SchemaError):
            ft.set_density("other", lambda x, y: 1.0)
        with pytest.raises(SchemaError):
            ft.density("other")

    def test_density_missing_raises(self):
        ft = BaseGISFactTable("Lpop", ["density"])
        with pytest.raises(InstanceError):
            ft.density("density")
