"""Tests for GIS dimension schemas (Definition 1)."""

import pytest

from repro.errors import SchemaError
from repro.gis import (
    ALL,
    LINE,
    NODE,
    POINT,
    POLYGON,
    POLYLINE,
    AttributePlacement,
    GISDimensionSchema,
    LayerHierarchy,
)
from repro.olap import DimensionSchema


def figure2_schema() -> GISDimensionSchema:
    """The schema of Figure 2: rivers (Lr), schools (Ls), neighborhoods (Ln)."""
    rivers = LayerHierarchy(
        "Lr", [(POINT, LINE), (LINE, POLYLINE), (POLYLINE, ALL)]
    )
    schools = LayerHierarchy("Ls", [(POINT, NODE), (NODE, ALL)])
    neighborhoods = LayerHierarchy("Ln", [(POINT, POLYGON), (POLYGON, ALL)])
    placements = [
        AttributePlacement("river", POLYLINE, "Lr"),
        AttributePlacement("school", NODE, "Ls"),
        AttributePlacement("neighborhood", POLYGON, "Ln"),
    ]
    dims = [
        DimensionSchema("Rivers", [("river", "basin")]),
        DimensionSchema("Neighbourhoods", [("neighborhood", "city")]),
    ]
    return GISDimensionSchema([rivers, schools, neighborhoods], placements, dims)


class TestLayerHierarchy:
    def test_default_composition(self):
        h = LayerHierarchy("L")
        assert POINT in h.kinds
        assert ALL in h.kinds
        assert h.is_coarsening(POINT, POLYLINE)
        assert h.is_coarsening(LINE, ALL)

    def test_point_required(self):
        with pytest.raises(SchemaError):
            LayerHierarchy("L", [(NODE, ALL)])

    def test_all_required(self):
        with pytest.raises(SchemaError):
            LayerHierarchy("L", [(POINT, NODE)])

    def test_all_must_be_sink(self):
        with pytest.raises(SchemaError):
            LayerHierarchy("L", [(POINT, ALL), (ALL, NODE), (NODE, ALL)])

    def test_point_must_be_only_source(self):
        # node has no incoming edge here, violating condition (d).
        with pytest.raises(SchemaError):
            LayerHierarchy("L", [(POINT, POLYGON), (POLYGON, ALL), (NODE, ALL)])

    def test_cycle_rejected(self):
        with pytest.raises(SchemaError):
            LayerHierarchy(
                "L",
                [(POINT, LINE), (LINE, POLYLINE), (POLYLINE, LINE), (POLYLINE, ALL)],
            )

    def test_self_edge_rejected(self):
        with pytest.raises(SchemaError):
            LayerHierarchy("L", [(POINT, POINT), (POINT, ALL)])

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            LayerHierarchy("L", [(POINT, "blob"), ("blob", ALL)])

    def test_coarser_finer(self):
        h = LayerHierarchy("L", [(POINT, LINE), (LINE, POLYLINE), (POLYLINE, ALL)])
        assert h.coarser(LINE) == {POLYLINE}
        assert h.finer(POLYLINE) == {LINE}

    def test_unknown_kind_query_raises(self):
        h = LayerHierarchy("L", [(POINT, NODE), (NODE, ALL)])
        with pytest.raises(SchemaError):
            h.coarser(POLYGON)


class TestAttributePlacement:
    def test_valid(self):
        p = AttributePlacement("school", NODE, "Ls")
        assert p.kind == NODE

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            AttributePlacement("", NODE, "Ls")

    def test_point_placement_rejected(self):
        with pytest.raises(SchemaError):
            AttributePlacement("a", POINT, "L")

    def test_all_placement_rejected(self):
        with pytest.raises(SchemaError):
            AttributePlacement("a", ALL, "L")


class TestGISDimensionSchema:
    def test_figure2_layers(self):
        schema = figure2_schema()
        assert schema.layer_names == ["Ln", "Lr", "Ls"]

    def test_at_least_one_layer(self):
        with pytest.raises(SchemaError):
            GISDimensionSchema([])

    def test_duplicate_layer_rejected(self):
        h = LayerHierarchy("L")
        with pytest.raises(SchemaError):
            GISDimensionSchema([h, LayerHierarchy("L")])

    def test_placement_unknown_layer_rejected(self):
        h = LayerHierarchy("L")
        with pytest.raises(SchemaError):
            GISDimensionSchema([h], [AttributePlacement("a", NODE, "M")])

    def test_placement_kind_not_in_hierarchy_rejected(self):
        h = LayerHierarchy("L", [(POINT, NODE), (NODE, ALL)])
        with pytest.raises(SchemaError):
            GISDimensionSchema([h], [AttributePlacement("a", POLYGON, "L")])

    def test_duplicate_placement_rejected(self):
        h = LayerHierarchy("L", [(POINT, NODE), (NODE, ALL)])
        with pytest.raises(SchemaError):
            GISDimensionSchema(
                [h],
                [
                    AttributePlacement("a", NODE, "L"),
                    AttributePlacement("a", NODE, "L"),
                ],
            )

    def test_attribute_access(self):
        schema = figure2_schema()
        assert schema.attributes == ["neighborhood", "river", "school"]
        placement = schema.placement("river")
        assert placement.kind == POLYLINE
        assert placement.layer == "Lr"
        with pytest.raises(SchemaError):
            schema.placement("galaxy")

    def test_application_dimensions(self):
        schema = figure2_schema()
        assert set(schema.application_dimensions) == {"Rivers", "Neighbourhoods"}
        dim = schema.application_dimension("Neighbourhoods")
        assert dim.bottom_level == "neighborhood"
        with pytest.raises(SchemaError):
            schema.application_dimension("nope")

    def test_duplicate_dimension_rejected(self):
        h = LayerHierarchy("L")
        dims = [
            DimensionSchema("D", [("a", "b")]),
            DimensionSchema("D", [("x", "y")]),
        ]
        with pytest.raises(SchemaError):
            GISDimensionSchema([h], [], dims)

    def test_dimension_for_attribute(self):
        schema = figure2_schema()
        dim = schema.dimension_for_attribute("neighborhood")
        assert dim is not None and dim.name == "Neighbourhoods"
        assert schema.dimension_for_attribute("school") is None
