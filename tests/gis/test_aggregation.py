"""Tests for geometric aggregation (Definition 4) and summability."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AggregationError
from repro.geometry import Point, Polygon, Polyline, Segment
from repro.gis import (
    POLYGON,
    GISFactTable,
    geometric_aggregation,
    integrate_along_polyline,
    integrate_along_segment,
    integrate_over_polygon,
    sum_at_points,
    summable_aggregate,
)
from repro.olap import AggregateFunction


class TestPolygonIntegral:
    def test_constant_density_gives_area(self):
        square = Polygon.rectangle(0, 0, 3, 2)
        assert integrate_over_polygon(lambda x, y: 1.0, square) == pytest.approx(6)

    def test_scaled_density(self):
        square = Polygon.rectangle(0, 0, 1, 1)
        assert integrate_over_polygon(lambda x, y: 5.0, square) == pytest.approx(5)

    def test_linear_density_exact_at_midpoints(self):
        # Midpoint rule is exact for affine densities.
        square = Polygon.rectangle(0, 0, 2, 2)
        result = integrate_over_polygon(lambda x, y: x, square, subdivisions=2)
        assert result == pytest.approx(4.0)  # ∫∫ x over [0,2]^2 = 4

    def test_quadratic_density_converges(self):
        square = Polygon.rectangle(0, 0, 1, 1)
        exact = 1 / 3  # ∫∫ x^2
        coarse = integrate_over_polygon(lambda x, y: x * x, square, subdivisions=2)
        fine = integrate_over_polygon(lambda x, y: x * x, square, subdivisions=16)
        assert abs(fine - exact) < abs(coarse - exact)
        assert fine == pytest.approx(exact, abs=1e-3)

    def test_hole_subtracted(self):
        poly = Polygon(
            [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)],
            holes=[[Point(4, 4), Point(6, 4), Point(6, 6), Point(4, 6)]],
        )
        assert integrate_over_polygon(lambda x, y: 1.0, poly) == pytest.approx(96)

    def test_concave_polygon(self):
        l_poly = Polygon(
            [
                Point(0, 0),
                Point(2, 0),
                Point(2, 1),
                Point(1, 1),
                Point(1, 2),
                Point(0, 2),
            ]
        )
        assert integrate_over_polygon(lambda x, y: 1.0, l_poly) == pytest.approx(3)

    def test_subdivision_validation(self):
        with pytest.raises(AggregationError):
            integrate_over_polygon(lambda x, y: 1.0, Polygon.rectangle(0, 0, 1, 1), 0)

    @settings(max_examples=20)
    @given(
        st.integers(min_value=3, max_value=10),
        st.floats(min_value=0.5, max_value=5),
    )
    def test_unit_density_equals_area_property(self, sides, radius):
        poly = Polygon.regular(Point(0, 0), radius, sides)
        result = integrate_over_polygon(lambda x, y: 1.0, poly)
        assert result == pytest.approx(poly.area, rel=1e-9)


class TestLineIntegral:
    def test_constant_density_gives_length(self):
        seg = Segment(Point(0, 0), Point(3, 4))
        assert integrate_along_segment(lambda x, y: 1.0, seg) == pytest.approx(5)

    def test_zero_length_segment(self):
        seg = Segment(Point(1, 1), Point(1, 1))
        assert integrate_along_segment(lambda x, y: 7.0, seg) == 0.0

    def test_linear_density_exact(self):
        seg = Segment(Point(0, 0), Point(1, 0))
        # ∫ x ds over [0,1] = 0.5; midpoint rule is exact for affine h.
        assert integrate_along_segment(lambda x, y: x, seg) == pytest.approx(0.5)

    def test_polyline_sum_of_segments(self):
        line = Polyline([Point(0, 0), Point(4, 0), Point(4, 3)])
        assert integrate_along_polyline(lambda x, y: 1.0, line) == pytest.approx(7)

    def test_samples_validation(self):
        line = Polyline([Point(0, 0), Point(1, 0)])
        with pytest.raises(AggregationError):
            integrate_along_polyline(lambda x, y: 1.0, line, samples_per_segment=0)


class TestPointSum:
    def test_sum(self):
        pts = [Point(0, 0), Point(1, 1)]
        assert sum_at_points(lambda x, y: x + y, pts) == pytest.approx(2)

    def test_empty(self):
        assert sum_at_points(lambda x, y: 1.0, []) == 0.0


class TestCombinedAggregation:
    def test_all_three_parts(self):
        total = geometric_aggregation(
            lambda x, y: 1.0,
            polygons=[Polygon.rectangle(0, 0, 2, 2)],
            polylines=[Polyline([Point(0, 0), Point(0, 3)])],
            points=[Point(5, 5), Point(6, 6)],
        )
        # Area 4 + length 3 + 2 Dirac points of unit density.
        assert total == pytest.approx(9)

    def test_empty_region_is_zero(self):
        assert geometric_aggregation(lambda x, y: 1.0) == 0.0


class TestSummable:
    def make_table(self) -> GISFactTable:
        ft = GISFactTable(POLYGON, "Ln", ["population"])
        ft.set("pg1", 10_000)
        ft.set("pg2", 20_000)
        ft.set("pg3", 30_000)
        return ft

    def test_sum(self):
        ft = self.make_table()
        assert summable_aggregate(["pg1", "pg3"], ft, "population") == 40_000

    def test_other_functions(self):
        ft = self.make_table()
        ids = ["pg1", "pg2", "pg3"]
        assert summable_aggregate(ids, ft, "population", "MAX") == 30_000
        assert summable_aggregate(ids, ft, "population", "MIN") == 10_000
        assert summable_aggregate(ids, ft, "population", "AVG") == 20_000
        assert summable_aggregate(ids, ft, "population", "COUNT") == 3

    def test_count_ignores_measures(self):
        ft = self.make_table()
        assert (
            summable_aggregate(["pg1", "pgX"], ft, "population", "COUNT") == 2
        )

    def test_missing_fact_raises(self):
        from repro.errors import InstanceError

        ft = self.make_table()
        with pytest.raises(InstanceError):
            summable_aggregate(["pgX"], ft, "population")

    def test_empty_sum_raises(self):
        ft = self.make_table()
        with pytest.raises(AggregationError):
            summable_aggregate([], ft, "population")
