"""Tests for GIS dimension instances (Definition 2)."""

import pytest

from repro.errors import InstanceError, RollupError
from repro.geometry import Point, Polygon, Polyline, Segment
from repro.gis import (
    ALL,
    ALL_GEOMETRY,
    LINE,
    NODE,
    POINT,
    POLYGON,
    POLYLINE,
    AttributePlacement,
    GISDimensionInstance,
    GISDimensionSchema,
    LayerHierarchy,
)
from repro.olap import DimensionSchema


def build_instance() -> GISDimensionInstance:
    rivers = LayerHierarchy("Lr", [(POINT, LINE), (LINE, POLYLINE), (POLYLINE, ALL)])
    neighborhoods = LayerHierarchy("Ln", [(POINT, POLYGON), (POLYGON, ALL)])
    schema = GISDimensionSchema(
        [rivers, neighborhoods],
        [
            AttributePlacement("river", POLYLINE, "Lr"),
            AttributePlacement("neighborhood", POLYGON, "Ln"),
        ],
        [DimensionSchema("Neighbourhoods", [("neighborhood", "city")])],
    )
    inst = GISDimensionInstance(schema)
    inst.add_geometry("Ln", POLYGON, "pg1", Polygon.rectangle(0, 0, 10, 10))
    inst.add_geometry("Ln", POLYGON, "pg2", Polygon.rectangle(10, 0, 20, 10))
    inst.add_geometry(
        "Lr", POLYLINE, "pl1", Polyline([Point(-5, 5), Point(25, 5)])
    )
    inst.add_geometry("Lr", LINE, "ln1", Segment(Point(-5, 5), Point(25, 5)))
    inst.relate("Lr", LINE, "ln1", POLYLINE, "pl1")
    inst.set_alpha("neighborhood", "berchem", "pg1")
    inst.set_alpha("neighborhood", "zuid", "pg2")
    inst.set_alpha("river", "scheldt", "pl1")
    inst.set_member_value("neighborhood", "berchem", "income", 1200)
    inst.set_member_value("neighborhood", "zuid", "income", 2500)
    return inst


class TestGeometries:
    def test_add_and_lookup(self):
        inst = build_instance()
        assert inst.layer("Ln").size(POLYGON) == 2

    def test_unknown_layer_raises(self):
        inst = build_instance()
        with pytest.raises(InstanceError):
            inst.layer("Lx")

    def test_kind_not_in_hierarchy_rejected(self):
        inst = build_instance()
        with pytest.raises(InstanceError):
            inst.add_geometry("Ln", NODE, "n1", Point(0, 0))


class TestRollupRelations:
    def test_materialized_relation(self):
        inst = build_instance()
        assert inst.rollup_relation("Lr", LINE, POLYLINE) == {("ln1", "pl1")}

    def test_all_relation_synthesized(self):
        inst = build_instance()
        assert inst.rollup_relation("Ln", POLYGON, ALL) == {
            ("pg1", ALL_GEOMETRY),
            ("pg2", ALL_GEOMETRY),
        }

    def test_non_edge_rejected(self):
        inst = build_instance()
        with pytest.raises(RollupError):
            inst.relate("Lr", LINE, "ln1", ALL, ALL_GEOMETRY)
        with pytest.raises(RollupError):
            inst.rollup_relation("Ln", POINT, ALL)

    def test_point_relation_not_materializable(self):
        inst = build_instance()
        with pytest.raises(RollupError):
            inst.relate("Ln", POINT, (0, 0), POLYGON, "pg1")

    def test_relate_unknown_elements_rejected(self):
        inst = build_instance()
        with pytest.raises(InstanceError):
            inst.relate("Lr", LINE, "nope", POLYLINE, "pl1")
        with pytest.raises(InstanceError):
            inst.relate("Lr", LINE, "ln1", POLYLINE, "nope")

    def test_point_rollup(self):
        inst = build_instance()
        assert inst.point_rollup("Ln", POLYGON, Point(5, 5)) == {"pg1"}
        assert inst.point_rollup("Ln", POLYGON, Point(10, 5)) == {"pg1", "pg2"}
        assert inst.point_rollup("Ln", POLYGON, Point(50, 50)) == set()

    def test_point_rollup_invalid_kind(self):
        inst = build_instance()
        with pytest.raises(RollupError):
            inst.point_rollup("Ln", NODE, Point(0, 0))


class TestAlpha:
    def test_alpha_lookup(self):
        inst = build_instance()
        assert inst.alpha("neighborhood", "berchem") == "pg1"

    def test_alpha_undefined_raises(self):
        inst = build_instance()
        with pytest.raises(InstanceError):
            inst.alpha("neighborhood", "nowhere")

    def test_alpha_target_must_exist(self):
        inst = build_instance()
        with pytest.raises(InstanceError):
            inst.set_alpha("neighborhood", "ghost", "pg9")

    def test_alpha_remap_rejected(self):
        inst = build_instance()
        with pytest.raises(InstanceError):
            inst.set_alpha("neighborhood", "berchem", "pg2")

    def test_alpha_members_and_inverse(self):
        inst = build_instance()
        assert inst.alpha_members("neighborhood") == {"berchem", "zuid"}
        assert inst.alpha_inverse("neighborhood", "pg1") == {"berchem"}
        assert inst.alpha_inverse("neighborhood", "pgX") == set()

    def test_alpha_registers_app_member(self):
        inst = build_instance()
        app = inst.application_instance("Neighbourhoods")
        assert app.members("neighborhood") == {"berchem", "zuid"}


class TestMemberValues:
    def test_read_value(self):
        inst = build_instance()
        assert inst.member_value("neighborhood", "berchem", "income") == 1200

    def test_missing_value_raises(self):
        inst = build_instance()
        with pytest.raises(InstanceError):
            inst.member_value("neighborhood", "berchem", "population")
        assert (
            inst.try_member_value("neighborhood", "berchem", "population") is None
        )

    def test_members_where(self):
        inst = build_instance()
        poor = inst.members_where(
            "neighborhood", lambda v: v("income") < 1500
        )
        assert poor == {"berchem"}

    def test_members_where_missing_value_propagates(self):
        inst = build_instance()
        inst.set_alpha("neighborhood", "noincome", "pg1")
        with pytest.raises(InstanceError):
            inst.members_where("neighborhood", lambda v: v("income") < 1500)


class TestOverlay:
    def test_overlay_layer_naming(self):
        inst = build_instance()
        overlay = inst.overlay()
        assert "Ln:polygon" in overlay.layer_names
        assert "Lr:polyline" in overlay.layer_names

    def test_overlay_cross_layer_pairs(self):
        inst = build_instance()
        overlay = inst.overlay()
        pairs = overlay.pairs("Lr:polyline", "Ln:polygon")
        assert pairs == {("pl1", "pg1"), ("pl1", "pg2")}

    def test_overlay_rebuilt_after_add(self):
        inst = build_instance()
        inst.overlay()
        inst.add_geometry("Ln", POLYGON, "pg3", Polygon.rectangle(30, 0, 40, 10))
        pairs = inst.overlay().pairs("Lr:polyline", "Ln:polygon")
        assert ("pl1", "pg3") not in pairs
        assert inst.overlay().locate_point("Ln:polygon", Point(35, 5)) == {"pg3"}

    def test_application_instance_unknown(self):
        inst = build_instance()
        with pytest.raises(InstanceError):
            inst.application_instance("nope")
