"""Tests for geometry-kind classification."""

import pytest

from repro.errors import SchemaError
from repro.geometry import Point, Polygon, Polyline, Segment
from repro.gis import (
    ALL,
    LINE,
    NODE,
    POINT,
    POLYGON,
    POLYLINE,
    expected_class,
    kind_of,
    validate_kind,
)


class TestValidation:
    def test_known_kinds(self):
        for kind in (POINT, NODE, LINE, POLYLINE, POLYGON, ALL):
            assert validate_kind(kind) == kind

    def test_unknown_kind_raises(self):
        with pytest.raises(SchemaError):
            validate_kind("blob")


class TestExpectedClass:
    def test_stored_kinds(self):
        assert expected_class(NODE) is Point
        assert expected_class(LINE) is Segment
        assert expected_class(POLYLINE) is Polyline
        assert expected_class(POLYGON) is Polygon

    def test_algebraic_kinds_raise(self):
        with pytest.raises(SchemaError):
            expected_class(POINT)
        with pytest.raises(SchemaError):
            expected_class(ALL)


class TestKindOf:
    def test_classify(self):
        assert kind_of(Point(0, 0)) == NODE
        assert kind_of(Segment(Point(0, 0), Point(1, 1))) == LINE
        assert kind_of(Polyline([Point(0, 0), Point(1, 1)])) == POLYLINE
        assert kind_of(Polygon.rectangle(0, 0, 1, 1)) == POLYGON

    def test_unknown_object_raises(self):
        with pytest.raises(SchemaError):
            kind_of("pancake")
