"""E10 — scaling of the γ-aggregation operator over MOFT-sized relations.

The paper's answer semantics is γ over the region relation; this bench
measures COUNT / SUM / AVG grouped aggregation as the relation grows, and
the columnar (NumPy) fast path against the row path.
"""

import numpy as np
import pytest

from repro.bench import Series, print_series, timed
from repro.geometry import BoundingBox
from repro.olap import aggregate
from repro.synth import random_waypoint_moft

BOX = BoundingBox(0, 0, 1000, 1000)
ROW_COUNTS = (1_000, 10_000, 50_000)


def _moft_rows(n_rows: int):
    n_objects = max(10, n_rows // 100)
    n_instants = max(2, n_rows // n_objects)
    moft = random_waypoint_moft(
        BOX, n_objects=n_objects, n_instants=n_instants, seed=31
    )
    return moft, list(moft.rows())


@pytest.mark.parametrize("n_rows", ROW_COUNTS)
def test_grouped_count(benchmark, n_rows):
    _, rows = _moft_rows(n_rows)

    def _run():
        return aggregate(rows, "COUNT", None, group_by=["t"])

    result = benchmark(_run)
    assert sum(result.values()) == len(rows)


@pytest.mark.parametrize("function", ["SUM", "AVG", "MIN", "MAX"])
def test_grouped_measures(benchmark, function):
    _, rows = _moft_rows(10_000)

    def _run():
        return aggregate(rows, function, "x", group_by=["oid"])

    result = benchmark(_run)
    assert result


def test_columnar_vs_row_path(benchmark):
    """The NumPy columnar path dominates the row path for global sums."""
    moft, rows = _moft_rows(50_000)

    def columnar():
        _, xs, _ = moft.as_arrays()
        return float(xs.sum())

    def row_path():
        return aggregate(rows, "SUM", "x")[()]

    moft.as_arrays()  # warm the cache so we time the scan, not the build
    col_time, col_value = timed(columnar)
    row_time, row_value = timed(row_path)
    assert col_value == pytest.approx(row_value)
    series = [
        Series("columnar (s)", [(len(rows), col_time)]),
        Series("row path (s)", [(len(rows), row_time)]),
    ]
    print_series("Columnar vs row aggregation", series)
    assert col_time < row_time
    benchmark(columnar)
