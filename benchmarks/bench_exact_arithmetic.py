"""Ablation — exact (Fraction) vs float crossing arithmetic.

The paper requires rational coordinates; our predicates run a float fast
path with an exact-rational fallback near degeneracies (DESIGN.md §5).
This bench measures the cost of forcing exactness and verifies float/exact
agreement away from degeneracies.
"""

from fractions import Fraction

import pytest

from repro.geometry import Point, Segment
from repro.geometry.predicates import (
    orientation,
    segment_intersection_parameters,
)


def _float_crossings(n: int):
    hits = 0
    for i in range(n):
        a = (0.0, float(i))
        b = (10.0, float(i) + 0.5)
        c = (5.0, -1.0)
        d = (5.0, float(n) + 1.0)
        if segment_intersection_parameters(a, b, c, d) is not None:
            hits += 1
    return hits


def _fraction_crossings(n: int):
    hits = 0
    for i in range(n):
        a = (Fraction(0), Fraction(i))
        b = (Fraction(10), Fraction(i) + Fraction(1, 2))
        c = (Fraction(5), Fraction(-1))
        d = (Fraction(5), Fraction(n) + 1)
        if segment_intersection_parameters(a, b, c, d) is not None:
            hits += 1
    return hits


def test_float_fast_path(benchmark):
    hits = benchmark(_float_crossings, 200)
    assert hits == 200


def test_fraction_inputs(benchmark):
    """Fractions flow through the same code path (floats in the fast path,
    exact in the fallback); the cost of float(·) conversion dominates."""
    hits = benchmark(_fraction_crossings, 200)
    assert hits == 200


def test_exact_fallback_on_degeneracy(benchmark):
    """Near-collinear configurations trigger the exact path every call."""

    def _run():
        decided = 0
        for i in range(200):
            # Points exactly collinear in rationals; float determinants are
            # ambiguous at this scale and fall back to exact arithmetic.
            a = (Fraction(0), Fraction(0))
            b = (Fraction(1, 3), Fraction(1, 3))
            c = (Fraction(2, 3) + Fraction(i, 10**15), Fraction(2, 3))
            if orientation(a, b, c) in (-1, 0, 1):
                decided += 1
        return decided

    assert benchmark(_run) == 200


def test_float_and_exact_agree():
    """Away from degeneracies the fast path equals exact evaluation."""
    for i in range(-20, 21):
        for j in range(-20, 21):
            if (i, j) == (0, 0):
                continue
            float_result = orientation((0.0, 0.0), (7.0, 3.0), (float(i), float(j)))
            exact_result = orientation(
                (Fraction(0), Fraction(0)),
                (Fraction(7), Fraction(3)),
                (Fraction(i), Fraction(j)),
            )
            assert float_result == exact_result
