"""POI top-k: warm pre-aggregation store vs the serial segmentation pass.

The Section 5 argument applied to the places-of-interest workload: a
top-k-visited query answered from a warm :class:`repro.poi.PoiVisitStore`
reads pre-folded cells, while the serial route re-segments every
trajectory against every disc on each call.  The acceptance bar is
**>=10x** warm speedup on the synthetic city (6x6 blocks, 80 objects x
100 instants, every school and store promoted to a disc), with the
pre-agg answers asserted byte-identical to the serial route for all
four measures *before* any timing is reported.
"""

from datetime import datetime
import json

import numpy as np
import pytest

from repro.bench import print_table, timed, write_bench_json
from repro.poi import PoiVisitStore
from repro.query.poi import (
    poi_distinct_visitors,
    poi_dwell_times,
    poi_topk,
    poi_visit_counts,
)
from repro.query.region import EvaluationContext
from repro.synth import (
    CityConfig,
    build_city,
    install_city_pois,
    stop_biased_moft,
)
from repro.temporal.calendar import hourly
from repro.temporal.timedim import TimeDimension

N_OBJECTS = 80
N_INSTANTS = 100
K = 3
GRANULE = "day"


def canon(payload) -> str:
    def keyed(obj):
        if isinstance(obj, dict):
            return {repr(k): keyed(obj[k]) for k in sorted(obj, key=repr)}
        if isinstance(obj, (tuple, list, set, frozenset)):
            return [keyed(v) for v in obj]
        return obj

    return json.dumps(keyed(payload), separators=(",", ":"))


@pytest.fixture(scope="module")
def city_workload():
    city = build_city(
        CityConfig(cols=6, rows=6), rng=np.random.default_rng(20060109)
    )
    pois = install_city_pois(city)
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(N_INSTANTS)
    )
    moft = stop_biased_moft(pois, N_OBJECTS, N_INSTANTS)
    return city, pois, time_dim, moft


def test_poi_topk_preagg_speedup(city_workload):
    """The acceptance bar: >=10x warm, byte-identical answers."""
    city, pois, time_dim, moft = city_workload

    serial_ctx = EvaluationContext(city.gis, time_dim, moft)
    preagg_ctx = EvaluationContext(city.gis, time_dim, moft)

    def serial_pass():
        return {
            "visits": poi_visit_counts(
                serial_ctx, "Lp", GRANULE, moft_name="FM", strategy="serial"
            ),
            "visitors": poi_distinct_visitors(
                serial_ctx, "Lp", GRANULE, moft_name="FM", strategy="serial"
            ),
            "dwell": poi_dwell_times(
                serial_ctx, "Lp", GRANULE, moft_name="FM", strategy="serial"
            ),
            "topk": poi_topk(
                serial_ctx, "Lp", GRANULE, K, moft_name="FM",
                strategy="serial",
            ),
        }

    # Warm the store once (the build cost is the one-off the paper's
    # pre-aggregation trades for cheap reads) and register it.
    build_s, store = timed(
        lambda: PoiVisitStore(
            moft, time_dim, GRANULE, pois, layer="Lp", obs=preagg_ctx.obs
        ),
        repeat=1,
    )
    preagg_ctx.register_preagg(store)

    def preagg_pass():
        return {
            "visits": poi_visit_counts(
                preagg_ctx, "Lp", GRANULE, moft_name="FM", strategy="preagg"
            ),
            "visitors": poi_distinct_visitors(
                preagg_ctx, "Lp", GRANULE, moft_name="FM", strategy="preagg"
            ),
            "dwell": poi_dwell_times(
                preagg_ctx, "Lp", GRANULE, moft_name="FM", strategy="preagg"
            ),
            "topk": poi_topk(
                preagg_ctx, "Lp", GRANULE, K, moft_name="FM",
                strategy="preagg",
            ),
        }

    slow_s, serial_out = timed(serial_pass, repeat=1)
    fast_s, preagg_out = timed(preagg_pass, repeat=5)

    # Exactness first: the warm store must answer byte-identically to
    # the serial segmentation route for every measure, unconditionally.
    for measure in ("visits", "visitors", "dwell", "topk"):
        assert canon(preagg_out[measure]) == canon(serial_out[measure]), (
            measure
        )
    assert serial_out["topk"], "workload must produce a non-empty ranking"

    hits = preagg_ctx.obs.counters.get("poi_preagg_hits", 0)
    assert hits >= 4
    speedup = slow_s / fast_s if fast_s else float("inf")
    print_table(
        f"POI top-{K} over {len(moft):,} samples x {len(pois)} discs "
        f"({GRANULE} granules)",
        ["path", "seconds"],
        [
            ("serial segmentation (4 measures)", f"{slow_s:.4f}"),
            ("warm pre-agg store (4 measures)", f"{fast_s:.4f}"),
            ("store build (one-off)", f"{build_s:.4f}"),
            ("warm speedup", f"{speedup:.1f}x"),
        ],
    )
    write_bench_json(
        "poi_topk",
        {
            "samples": int(len(moft)),
            "pois": len(pois),
            "objects": N_OBJECTS,
            "granule": GRANULE,
            "k": K,
            "serial_seconds": slow_s,
            "preagg_seconds": fast_s,
            "build_seconds": build_s,
            "speedup": speedup,
            "preagg_hits": int(hits),
        },
    )
    assert speedup >= 10.0, f"warm pre-agg only {speedup:.1f}x faster"
