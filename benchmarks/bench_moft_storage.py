"""E24 — Columnar MOFT files: mmap load vs CSV parse.

The on-disk columnar format (:mod:`repro.mo.storage`) persists a MOFT's
``(oid, t, x, y)`` columns plus its per-object sorted index as aligned
little-endian blobs behind a versioned header.  ``MOFT.load`` maps the
file and builds the table from zero-copy views — no text parsing, no
float conversion, no index recomputation.  This benchmark demonstrates
the acceptance bar on the 250k-sample world: loading the columnar file
is ≥10× faster than parsing the equivalent CSV, with row-for-row
identical contents.
"""

import pytest

from repro.bench import large_moft, print_table, timed, write_bench_json
from repro.mo import MOFT
from repro.mo.io import read_csv, write_csv
from repro.mo.storage import is_columnar_file

N_OBJECTS = 1_000
N_INSTANTS = 250


@pytest.fixture(scope="module")
def stored_world(tmp_path_factory):
    """The 250k-sample world written once as CSV and as columnar."""
    moft = large_moft(n_objects=N_OBJECTS, n_instants=N_INSTANTS)
    assert len(moft) == N_OBJECTS * N_INSTANTS == 250_000
    root = tmp_path_factory.mktemp("moft-storage")
    csv_path = root / "world.csv"
    col_path = root / "world.moft"
    write_csv(moft, csv_path)
    moft.save(col_path)
    assert is_columnar_file(col_path) and not is_columnar_file(csv_path)
    return moft, csv_path, col_path


def test_columnar_load_vs_csv_parse(stored_world):
    """The acceptance bar: MOFT.load ≥10× faster than read_csv."""
    moft, csv_path, col_path = stored_world

    csv_s, from_csv = timed(lambda: read_csv(csv_path), repeat=2)
    col_s, from_col = timed(lambda: MOFT.load(col_path), repeat=3)

    assert list(from_col.tuples()) == list(from_csv.tuples())
    assert from_col.objects() == moft.objects()

    speedup = csv_s / col_s if col_s else float("inf")
    csv_bytes = csv_path.stat().st_size
    col_bytes = col_path.stat().st_size
    print_table(
        f"loading {len(moft):,} samples from disk",
        ["path", "seconds", "file bytes"],
        [
            ("read_csv (seed)", f"{csv_s:.4f}", csv_bytes),
            ("MOFT.load (mmap)", f"{col_s:.4f}", col_bytes),
            ("speedup", f"{speedup:.1f}x", "-"),
        ],
    )
    write_bench_json(
        "moft_storage",
        {
            "rows": len(moft),
            "csv_seconds": csv_s,
            "columnar_seconds": col_s,
            "speedup": speedup,
            "csv_bytes": csv_bytes,
            "columnar_bytes": col_bytes,
        },
    )
    assert speedup >= 10.0, f"columnar load only {speedup:.1f}x faster"


def test_mmap_load_is_query_ready(stored_world):
    """The prefilled index answers point lookups with no recompute pass."""
    moft, _, col_path = stored_world
    loaded = MOFT.load(col_path)
    # The per-object order cache arrives prefilled from the file's index
    # section, so the first lookup pays no sort.
    assert len(loaded._order) == len(loaded.objects())
    for oid in list(sorted(loaded.objects()))[:25]:
        assert loaded.position(oid, 100.0) == moft.position(oid, 100.0)
