"""E18 — Sharded parallel trajectory scans vs the serial seed path.

The Section 5 pipeline's expensive step — the trajectory scan — fans out
over MOFT shards (``repro.parallel``).  The world here is deliberately
scan-heavy: slow random-waypoint objects on a 10×10-block city, so ~30%
of the 1000 objects never reach the qualifying cities and their whole
250-sample trajectories must be checked (the paper's worst case).

Every backend must return exactly the serial answer — that equality is
asserted unconditionally, on any machine.  The ≥2× speedup bar for the
``processes`` backend applies to the compute-bound configuration (the
pure-Python interpolation scan, ``vectorized=False`` on both sides) and
only where it is physically attainable: with ≥4 CPUs the bar is 2×; with
2–3 CPUs perfect scaling sits at/below 2× once fan-out overhead is paid,
so only a weaker sanity bar applies; a single-CPU machine skips the bar
(the equality checks still ran).  The numpy fast path is also timed for
the record: at this size it finishes in well under a second, which is
exactly why the scan-bound regime is the one worth sharding.
"""

from datetime import datetime

import pytest

from repro.bench import print_table, timed
from repro.obs import EvaluationStats
from repro.parallel import ShardedExecutor, available_cpus
from repro.query.evaluator import count_objects_through
from repro.query.region import EvaluationContext
from repro.synth.city import CityConfig, build_city
from repro.synth.movement import random_waypoint_moft
from repro.temporal.calendar import hourly
from repro.temporal.timedim import TimeDimension

TARGET = ("Lc", "polygon")
CONSTRAINTS = [
    ("intersects", ("Lr", "polyline")),
    ("contains", ("Lsto", "node")),
]
N_OBJECTS = 1_000
N_INSTANTS = 250


@pytest.fixture(scope="module")
def world():
    """A 10×10-block city with a 250k-sample scan-heavy MOFT."""
    city = build_city(CityConfig(cols=10, rows=10, seed=23))
    moft = random_waypoint_moft(
        city.bounding_box,
        n_objects=N_OBJECTS,
        n_instants=N_INSTANTS,
        speed=0.15,
        seed=23,
    )
    assert len(moft) == N_OBJECTS * N_INSTANTS >= 200_000
    moft.as_arrays()  # warm the column cache; we measure the query
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(N_INSTANTS)
    )
    return EvaluationContext(city.gis, time_dim, moft)


def run_serial(context, vectorized):
    return count_objects_through(
        context, TARGET, CONSTRAINTS, vectorized=vectorized
    )


def run_sharded(context, backend, vectorized, n_shards=None):
    executor = ShardedExecutor(
        backend=backend,
        n_shards=n_shards or max(available_cpus(), 2),
        obs=EvaluationStats(),
    )
    return executor.count_objects_through(
        context, TARGET, CONSTRAINTS, vectorized=vectorized
    )


def test_processes_speedup_scan_bound(world):
    """The acceptance bar: ≥2× with processes on the compute-bound scan."""
    cpus = available_cpus()
    serial_s, serial_count = timed(
        lambda: run_serial(world, vectorized=False), repeat=2
    )
    rows = [("serial (seed)", f"{serial_s:.4f}", "1.0x")]
    timings = {}
    for backend in ("threads", "processes"):
        seconds, count = timed(
            lambda: run_sharded(world, backend, vectorized=False), repeat=2
        )
        assert count == serial_count, (
            f"{backend} backend diverged: {count} != {serial_count}"
        )
        timings[backend] = seconds
        speedup = serial_s / seconds if seconds else float("inf")
        rows.append((backend, f"{seconds:.4f}", f"{speedup:.1f}x"))
    print_table(
        f"scan-bound count_objects_through, 250k samples ({cpus} CPUs)",
        ["path", "seconds", "speedup"],
        rows,
    )
    assert 0 < serial_count < N_OBJECTS, (
        "world is not scan-heavy: every/no object matched"
    )
    speedup = serial_s / timings["processes"]
    if cpus >= 4:
        assert speedup >= 2.0, (
            f"processes backend only {speedup:.2f}x faster on {cpus} CPUs"
        )
    elif cpus >= 2:
        assert speedup >= 1.2, (
            f"processes backend only {speedup:.2f}x faster on {cpus} CPUs"
        )
    else:
        pytest.skip(
            "single-CPU machine: speedup bar not applicable "
            "(results verified equal across all backends)"
        )


def test_vectorized_fast_path_for_the_record(world):
    """The numpy prefilter path, timed (no speedup bar: it is sub-second
    at this size, so process fan-out cannot amortize its own overhead —
    the table documents that honestly)."""
    serial_s, serial_count = timed(
        lambda: run_serial(world, vectorized=True), repeat=2
    )
    rows = [("serial (seed)", f"{serial_s:.4f}", "1.0x")]
    for backend in ("threads", "processes"):
        seconds, count = timed(
            lambda: run_sharded(world, backend, vectorized=True), repeat=2
        )
        assert count == serial_count
        speedup = serial_s / seconds if seconds else float("inf")
        rows.append((backend, f"{seconds:.4f}", f"{speedup:.1f}x"))
    print_table(
        "vectorized count_objects_through, 250k samples",
        ["path", "seconds", "speedup"],
        rows,
    )


def test_shard_count_sweep(world):
    """How the processes backend scales with the shard count."""
    serial_s, serial_count = timed(
        lambda: run_serial(world, vectorized=False), repeat=2
    )
    rows = [("serial", f"{serial_s:.4f}", "1.0x")]
    for n_shards in (2, 4, 8):
        seconds, count = timed(
            lambda: run_sharded(
                world, "processes", vectorized=False, n_shards=n_shards
            ),
            repeat=2,
        )
        assert count == serial_count
        speedup = serial_s / seconds if seconds else float("inf")
        rows.append(
            (f"{n_shards} shards", f"{seconds:.4f}", f"{speedup:.1f}x")
        )
    print_table(
        "processes backend shard sweep (250k samples, scan-bound)",
        ["configuration", "seconds", "speedup"],
        rows,
    )
