"""E4 — Remark 1: the running query answers exactly 4/3.

"Number of buses per hour in the morning in the Antwerp neighborhoods with
a monthly income of less than 1,500" over the Figure 1 instance: O1
contributes three times, O2 once, the time span is three hours, hence
4/3 ≈ 1.333.  Benchmarks the full region evaluation + aggregation, both
with the overlay strategy and naively.
"""

import pytest

from repro.bench import print_table
from repro.query import RegionBuilder, count_per_group
from repro.synth import LOW_INCOME_THRESHOLD, figure1_instance


def _run(world, use_overlay: bool) -> float:
    ctx = world.context(use_overlay=use_overlay)
    query = (
        RegionBuilder()
        .from_moft("FMbus")
        .during("timeOfDay", "Morning")
        .in_attribute_polygon(
            "neighborhood", value_filter=("income", "<", LOW_INCOME_THRESHOLD)
        )
        .count_query(per_span=("timeOfDay", "Morning"), gis=world.gis)
    )
    return query.run_scalar(ctx)


@pytest.mark.parametrize("use_overlay", [True, False], ids=["overlay", "naive"])
def test_remark1_answer(paper_world, benchmark, use_overlay):
    answer = benchmark(_run, paper_world, use_overlay)
    assert answer == pytest.approx(4 / 3)


def test_remark1_breakdown(paper_world, benchmark):
    world = paper_world

    def _breakdown():
        ctx = world.context()
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .during("timeOfDay", "Morning")
            .in_attribute_polygon(
                "neighborhood",
                value_filter=("income", "<", LOW_INCOME_THRESHOLD),
            )
            .build(world.gis)
        )
        return count_per_group(region, ctx, ["oid"])

    per_object = benchmark(_breakdown)
    # "O1 will contribute three times, O2 will contribute once."
    assert per_object == {("O1",): 3, ("O2",): 1}
    print_table(
        "Remark 1 breakdown",
        ["object", "contributions"],
        [(k[0], v) for k, v in sorted(per_object.items())],
    )
    print("answer = (3 + 1) / 3 hours = 4/3 =", 4 / 3)
