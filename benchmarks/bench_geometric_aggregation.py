"""E11 — Definition 4: geometric aggregation and its summable rewriting.

Integrates densities over the dimensional parts of a region (areas, lines,
points), checks the results against closed forms, and compares the general
integral against the summable rewriting ``Σ h'(g)`` that Section 5 builds
its evaluation on.
"""

import math

import pytest

from repro.bench import print_table, timed
from repro.geometry import Point, Polygon, Polyline
from repro.gis import (
    POLYGON,
    GISFactTable,
    geometric_aggregation,
    integrate_over_polygon,
    summable_aggregate,
)


def test_area_integral_constant_density(benchmark):
    polygon = Polygon.regular(Point(0, 0), 10.0, 12)

    def _run():
        return integrate_over_polygon(lambda x, y: 2.5, polygon)

    result = benchmark(_run)
    assert result == pytest.approx(2.5 * polygon.area, rel=1e-9)


def test_combined_aggregation(benchmark):
    polygons = [Polygon.rectangle(0, 0, 4, 4)]
    polylines = [Polyline([Point(0, 0), Point(0, 10)])]
    points = [Point(1, 1), Point(2, 2), Point(3, 3)]

    def _run():
        return geometric_aggregation(
            lambda x, y: 1.0,
            polygons=polygons,
            polylines=polylines,
            points=points,
        )

    result = benchmark(_run)
    assert result == pytest.approx(16 + 10 + 3)


@pytest.mark.parametrize("subdivisions", [2, 4, 8, 16])
def test_convergence_order(benchmark, subdivisions):
    """Midpoint-rule error shrinks ~quadratically in the subdivision."""
    polygon = Polygon.rectangle(0, 0, 1, 1)
    exact = 1 / 3  # ∬ x² over the unit square

    def _run():
        return integrate_over_polygon(
            lambda x, y: x * x, polygon, subdivisions=subdivisions
        )

    value = benchmark(_run)
    error = abs(value - exact)
    assert error < 0.05 / subdivisions


def test_summable_rewriting_vs_integral(benchmark):
    """Summable rewriting gives the same total as integrating the density
    over each polygon — and does it orders of magnitude faster."""
    polygons = {
        f"pg{i}": Polygon.rectangle(3 * i, 0, 3 * i + 2, 2) for i in range(16)
    }
    density = 7.0
    facts = GISFactTable(POLYGON, "L", ["mass"])
    for gid, polygon in polygons.items():
        facts.set(gid, density * polygon.area)

    def integral():
        return sum(
            integrate_over_polygon(lambda x, y: density, polygon)
            for polygon in polygons.values()
        )

    def summable():
        return summable_aggregate(polygons.keys(), facts, "mass", "SUM")

    integral_time, integral_value = timed(integral, repeat=1)
    summable_time, summable_value = timed(summable, repeat=3)
    assert summable_value == pytest.approx(integral_value, rel=1e-9)
    print_table(
        "Summable rewriting vs direct integral",
        ["method", "value", "seconds"],
        [
            ("integral", integral_value, integral_time),
            ("summable", summable_value, summable_time),
        ],
    )
    assert summable_time < integral_time
    benchmark(summable)
