"""E17 — Columnar MOFT restrictions vs the seed per-row rebuild.

The seed implementation rebuilt restricted fact tables one ``add()`` at a
time — revalidating the ``(oid, t)`` invariant and invalidating the
column cache per row.  The columnar engine mask-slices whole columns.
This benchmark demonstrates the acceptance bar: on a 100k-sample MOFT,
``restrict_instants`` and ``restrict_objects`` are ≥10× faster than the
per-row path, with row-for-row identical results.
"""

import pytest

from repro.bench import large_moft, print_table, timed
from repro.mo import MOFT


def per_row_restrict(moft, predicate):
    """The seed restriction path: filter via per-row add()."""
    result = MOFT(moft.name)
    for row in moft.rows():
        if predicate(row):
            result.add(row["oid"], row["t"], row["x"], row["y"])
    return result


@pytest.fixture(scope="module")
def big_moft():
    moft = large_moft(n_objects=500, n_instants=200)
    assert len(moft) == 100_000
    moft.as_arrays()  # warm the column cache; we measure restriction
    return moft


def test_restrict_instants_speedup(big_moft):
    wanted = {float(t) for t in range(0, 200, 2)}
    slow, reference = timed(
        lambda: per_row_restrict(big_moft, lambda row: row["t"] in wanted),
        repeat=3,
    )
    fast, sliced = timed(lambda: big_moft.restrict_instants(wanted), repeat=3)
    assert list(sliced.tuples()) == list(reference.tuples())
    speedup = slow / fast if fast else float("inf")
    print_table(
        "restrict_instants on 100k samples",
        ["path", "seconds"],
        [("per-row (seed)", f"{slow:.4f}"), ("mask-sliced", f"{fast:.4f}"),
         ("speedup", f"{speedup:.1f}x")],
    )
    assert speedup >= 10, f"only {speedup:.1f}x faster"


def test_restrict_objects_speedup(big_moft):
    wanted = {f"car{i}" for i in range(0, 500, 2)}
    slow, reference = timed(
        lambda: per_row_restrict(big_moft, lambda row: row["oid"] in wanted),
        repeat=3,
    )
    fast, sliced = timed(lambda: big_moft.restrict_objects(wanted), repeat=3)
    assert list(sliced.tuples()) == list(reference.tuples())
    speedup = slow / fast if fast else float("inf")
    print_table(
        "restrict_objects on 100k samples",
        ["path", "seconds"],
        [("per-row (seed)", f"{slow:.4f}"), ("mask-sliced", f"{fast:.4f}"),
         ("speedup", f"{speedup:.1f}x")],
    )
    assert speedup >= 10, f"only {speedup:.1f}x faster"


def test_bulk_construction_speedup(big_moft):
    """from_columns beats 100k add() calls for loading the same data."""
    oids = big_moft.oid_column()
    t, x, y = big_moft.as_arrays()

    def per_row_load():
        moft = MOFT()
        for row in big_moft.tuples():
            moft.add(*row)
        return moft

    slow, by_rows = timed(per_row_load, repeat=1)
    fast, by_columns = timed(
        lambda: MOFT.from_columns(oids, t, x, y), repeat=3
    )
    assert list(by_columns.tuples()) == list(by_rows.tuples())
    assert slow > fast
    print_table(
        "bulk load of 100k samples",
        ["path", "seconds"],
        [("add() per row", f"{slow:.4f}"), ("from_columns", f"{fast:.4f}")],
    )


def test_position_lookup_scales(big_moft, benchmark):
    """Point lookups ride the cached sorted index (binary search)."""

    def lookups():
        hits = 0
        for i in range(0, 500, 7):
            if big_moft.position(f"car{i}", 100.0) is not None:
                hits += 1
        return hits

    hits = benchmark(lookups)
    assert hits > 0
