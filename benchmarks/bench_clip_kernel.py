"""E25 — Vectorized clip kernel vs the per-segment scalar path.

The dwell workload behind the Section 5 pre-aggregation build clips every
trajectory segment against every candidate city polygon.  The seed path
constructs a :class:`Segment` and calls ``Polygon.intersects_segment`` /
``Polygon.clip_segment`` per pair; the kernel
(:func:`repro.geometry.kernels.segments_dwell`) classifies whole segment
batches against the polygon's cached edge arrays and only falls back to
the scalar clip near the boundary.

The acceptance bar: ≥5× on the 10k-segment city dwell workload, with the
per-segment dwell vector *bitwise* equal to the scalar path — the kernel
is exact by construction, and the equality assert runs unconditionally
before any timing is reported.
"""

import numpy as np
import pytest

from repro.bench import print_table, timed, write_bench_json
from repro.geometry.kernels import kernel_backend, segments_dwell
from repro.geometry.point import Point
from repro.geometry.segment import Segment
from repro.obs import PipelineStats
from repro.synth.city import CityConfig, build_city
from repro.synth.movement import random_waypoint_moft

N_OBJECTS = 100
N_INSTANTS = 101
N_POLYGONS = 6


@pytest.fixture(scope="module")
def dwell_workload():
    """10k city trajectory segments plus a panel of city polygons."""
    city = build_city(CityConfig(cols=10, rows=10, seed=23))
    moft = random_waypoint_moft(
        city.bounding_box,
        n_objects=N_OBJECTS,
        n_instants=N_INSTANTS,
        speed=0.15,
        seed=23,
    )
    x0s, y0s, x1s, y1s, dts = [], [], [], [], []
    for oid in sorted(moft.objects()):
        history = moft.history(oid)
        t = np.array([s[0] for s in history])
        x = np.array([s[1] for s in history])
        y = np.array([s[2] for s in history])
        x0s.append(x[:-1])
        y0s.append(y[:-1])
        x1s.append(x[1:])
        y1s.append(y[1:])
        dts.append(t[1:] - t[:-1])
    x0 = np.concatenate(x0s)
    y0 = np.concatenate(y0s)
    x1 = np.concatenate(x1s)
    y1 = np.concatenate(y1s)
    dt = np.concatenate(dts)
    assert len(dt) == N_OBJECTS * (N_INSTANTS - 1) == 10_000
    elements = city.gis.layer("Lc").elements("polygon")
    polygons = [elements[k] for k in sorted(elements)[:N_POLYGONS]]
    return polygons, x0, y0, x1, y1, dt


def per_segment_dwell(polygon, x0, y0, x1, y1, dt):
    """The seed path: one Segment + clip_segment call per pair."""
    n = len(dt)
    dwell = np.zeros(n, dtype=np.float64)
    hits = np.zeros(n, dtype=bool)
    for i in range(n):
        seg = Segment(
            Point(float(x0[i]), float(y0[i])),
            Point(float(x1[i]), float(y1[i])),
        )
        if not polygon.intersects_segment(seg):
            continue
        hits[i] = True
        dt_i = float(dt[i])
        total = 0.0
        for s0, s1 in polygon.clip_segment(seg):
            total += (s1 - s0) * dt_i
        dwell[i] = total
    return dwell, hits


def test_clip_kernel_speedup(dwell_workload):
    """The acceptance bar: ≥5× with bitwise-identical dwell vectors."""
    polygons, x0, y0, x1, y1, dt = dwell_workload
    obs = PipelineStats()

    def scalar_pass():
        return [per_segment_dwell(p, x0, y0, x1, y1, dt) for p in polygons]

    def kernel_pass():
        return [
            segments_dwell(p, x0, y0, x1, y1, dt, obs=obs) for p in polygons
        ]

    slow_s, scalar_out = timed(scalar_pass, repeat=1)
    fast_s, kernel_out = timed(kernel_pass, repeat=3)

    # Exactness first: per-polygon dwell vectors and hit masks must be
    # bit-identical to the seed path before any speedup is reported.
    for (sd, sh), (kd, kh) in zip(scalar_out, kernel_out):
        assert sd.tobytes() == kd.tobytes()
        assert np.array_equal(sh, kh)

    classified = obs.counters.get("clip_kernel_segments", 0)
    fallbacks = obs.counters.get("clip_kernel_fallback", 0)
    assert classified >= len(dt) * len(polygons)
    speedup = slow_s / fast_s if fast_s else float("inf")
    print_table(
        f"dwell over {len(dt):,} segments x {len(polygons)} city polygons",
        ["path", "seconds"],
        [
            ("per-segment (seed)", f"{slow_s:.4f}"),
            (f"kernel ({kernel_backend()})", f"{fast_s:.4f}"),
            ("speedup", f"{speedup:.1f}x"),
            ("scalar fallback share",
             f"{fallbacks / max(classified, 1):.2%}"),
        ],
    )
    write_bench_json(
        "clip_kernel",
        {
            "segments": int(len(dt)),
            "polygons": len(polygons),
            "backend": kernel_backend(),
            "scalar_seconds": slow_s,
            "kernel_seconds": fast_s,
            "speedup": speedup,
            "classified_segments": int(classified),
            "scalar_fallbacks": int(fallbacks),
        },
    )
    assert speedup >= 5.0, f"kernel only {speedup:.1f}x faster"
