"""E22 — Streaming ingest throughput: sustained samples/sec with live readers.

One writer streams the 2,000-sample synthetic schedule through the
watermarked ingestor while reader threads continuously pin snapshots
and run the Section 5 count query against them — the MVCC promise
(readers never block, never tear) exercised as a throughput question:

* **ingest rate** — samples/sec sealed, folded and published, per
  lateness budget (zero lateness seals per batch; a budget buffers);
* **read rate** — queries/sec served from pinned snapshots while the
  writer publishes and compacts behind them.

Every run asserts exactness before it reports a number: the final
snapshot holds exactly the accepted samples and answers the count
query identically to a one-shot batch load — a throughput table
without that check would happily report a fast writer that loses rows.
"""

from __future__ import annotations

import random
import threading
import time
from datetime import datetime

import numpy as np
import pytest

from repro.bench import print_table
from repro.gis import POLYGON
from repro.ingest import IngestConfig, StoreSpec, StreamingIngestor
from repro.mo.moft import MOFT
from repro.query.evaluator import count_objects_through
from repro.query.region import EvaluationContext
from repro.synth import CityConfig, build_city
from repro.synth.movement import random_waypoint_moft
from repro.temporal.calendar import hourly
from repro.temporal.timedim import TimeDimension

TARGET = ("Ln", POLYGON)
BATCH = 100


@pytest.fixture(scope="module")
def world():
    city = build_city(
        CityConfig(cols=4, rows=4), rng=np.random.default_rng(11)
    )
    moft = random_waypoint_moft(
        city.bounding_box,
        n_objects=40,
        n_instants=50,
        speed=city.config.block_size / 2,
        rng=np.random.default_rng(5),
    )
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(50)
    )
    oids = moft.oid_column()
    t, x, y = moft.as_arrays()
    samples = [
        (oids[i], float(t[i]), float(x[i]), float(y[i]))
        for i in range(len(moft))
    ]
    return city.gis, time_dim, samples


def stream_once(gis, time_dim, samples, *, lateness, n_readers, ordered=True):
    """One writer run with live readers; returns the measured rates."""
    if ordered:
        schedule = sorted(samples, key=lambda s: (s[1], repr(s[0])))
    else:
        schedule = list(samples)
    ingestor = StreamingIngestor(
        gis,
        time_dim,
        config=IngestConfig(allowed_lateness=lateness, compact_every=4),
        store_specs=(StoreSpec("day", "Ln", POLYGON),),
    )
    stop = threading.Event()
    reads = [0] * n_readers
    read_errors = []

    def reader(slot: int) -> None:
        try:
            while not stop.is_set():
                context = ingestor.snapshot().context()
                count_objects_through(context, TARGET, [], moft_name="FM")
                reads[slot] += 1
        except Exception as exc:  # pragma: no cover - failure detail
            read_errors.append(exc)

    threads = [
        threading.Thread(target=reader, args=(slot,))
        for slot in range(n_readers)
    ]
    for thread in threads:
        thread.start()
    start = time.perf_counter()
    try:
        for i in range(0, len(schedule), BATCH):
            rows = schedule[i:i + BATCH]
            ingestor.submit(
                [s[0] for s in rows],
                [s[1] for s in rows],
                [s[2] for s in rows],
                [s[3] for s in rows],
            )
        final = ingestor.close()
    finally:
        elapsed = time.perf_counter() - start
        stop.set()
        for thread in threads:
            thread.join()
    assert read_errors == []

    # Exactness gate: the final snapshot holds exactly the accepted
    # samples and answers like a one-shot batch load of them.
    counters = ingestor.obs.counters
    assert (
        counters["samples_ingested"] + counters.get("samples_late", 0)
        == len(samples)
    )
    assert final.rows == counters["samples_ingested"]
    late = {(oid, t) for oid, t, _, _ in ingestor.late_samples()}
    accepted = [s for s in samples if (s[0], s[1]) not in late]
    reference = MOFT.from_columns(
        [s[0] for s in accepted],
        [s[1] for s in accepted],
        [s[2] for s in accepted],
        [s[3] for s in accepted],
        name="FM",
    ) if accepted else MOFT("FM")
    expected = count_objects_through(
        EvaluationContext(gis, time_dim, reference),
        TARGET, [], moft_name="FM", use_preagg=False,
    )
    got = count_objects_through(
        final.context(), TARGET, [], moft_name="FM", use_preagg=False
    )
    assert got == expected, f"ingest diverged: {got} != {expected}"

    return {
        "ingested": final.rows,
        "seconds": elapsed,
        "samples_per_s": final.rows / elapsed,
        "queries": sum(reads),
        "queries_per_s": sum(reads) / elapsed,
        "compactions": counters.get("compactions", 0),
    }


def test_sustained_ingest_with_concurrent_readers(world):
    """The headline table: ingest rate vs lateness budget and reader load."""
    gis, time_dim, samples = world
    rows = []
    for lateness in (0.0, 5.0):
        for n_readers in (0, 2):
            run = stream_once(
                gis, time_dim, samples,
                lateness=lateness, n_readers=n_readers,
            )
            rows.append(
                (
                    f"lateness={lateness:g}, {n_readers} reader(s)",
                    f"{run['ingested']}",
                    f"{run['seconds']:.3f}",
                    f"{run['samples_per_s']:.0f}",
                    f"{run['queries']}",
                    f"{run['queries_per_s']:.0f}",
                    f"{run['compactions']}",
                )
            )
    print_table(
        f"streaming ingest, {len(samples)} samples in batches of {BATCH}",
        [
            "configuration", "ingested", "seconds", "samples/s",
            "queries", "queries/s", "compactions",
        ],
        rows,
    )


def test_shuffled_schedule_throughput(world):
    """Disorderly arrival: a shuffled schedule with a lateness budget —
    the rate the watermark machinery sustains when nothing is sorted."""
    gis, time_dim, samples = world
    shuffled = list(samples)
    random.Random(7).shuffle(shuffled)
    run = stream_once(
        gis, time_dim, shuffled, lateness=10.0, n_readers=1, ordered=False
    )
    print_table(
        "shuffled schedule, lateness budget 10",
        ["ingested", "seconds", "samples/s", "queries/s"],
        [
            (
                f"{run['ingested']}",
                f"{run['seconds']:.3f}",
                f"{run['samples_per_s']:.0f}",
                f"{run['queries_per_s']:.0f}",
            )
        ],
    )
