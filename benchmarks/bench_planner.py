"""E23 — Does the cost-based planner actually pick a fast strategy?

The planner prices serial, grid-indexed, sharded and pre-aggregated
execution in abstract check units and runs the cheapest.  This
benchmark closes the loop with wall clocks: every applicable strategy
is forced and timed on the 10k-sample synthetic city, and the planner's
*auto* choice must land within a lenient factor of the fastest measured
strategy — the cost constants are coarse by design, so the bar is "not
egregiously wrong", not "optimal".  Two scenarios:

* **scan-only** — no store registered; candidates are serial, grid and
  the threads-sharded fan-out;
* **with store** — a fresh day-granule store over the answer polygons;
  the pre-agg route joins the candidate set and should win outright.

Every leg asserts exact count equality first: a fast wrong answer
fails before any timing is compared.
"""

from datetime import datetime

import numpy as np
import pytest

from repro.bench import print_table, timed
from repro.parallel import ShardedExecutor
from repro.preagg import PreAggStore
from repro.query.planner import planned_count_objects_through
from repro.query.region import EvaluationContext
from repro.synth.city import CityConfig, build_city
from repro.synth.movement import random_waypoint_moft
from repro.temporal.calendar import hourly
from repro.temporal.timedim import TimeDimension

TARGET = ("Ln", "polygon")
CONSTRAINTS = [("intersects", ("Lr", "polyline"))]

#: The planner's pick must be within this factor of the fastest
#: measured strategy.  Deliberately lenient: the model prices abstract
#: check units, and tiny absolute times make ratios noisy.
TOLERANCE = 3.0


def build_world(with_store: bool):
    city = build_city(
        CityConfig(cols=6, rows=6), rng=np.random.default_rng(20060109)
    )
    moft = random_waypoint_moft(
        city.bounding_box,
        n_objects=100,
        n_instants=100,
        speed=city.config.block_size / 2,
        rng=np.random.default_rng(42),
    )
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(100)
    )
    context = EvaluationContext(city.gis, time_dim, moft)
    if with_store:
        elements = city.gis.layer("Ln").elements("polygon")
        store = PreAggStore(
            moft, time_dim, "day", elements, layer="Ln", kind="polygon"
        )
        context.register_preagg(store)
    return context


@pytest.mark.parametrize("with_store", [False, True], ids=["scan-only", "with-store"])
def test_planner_picks_a_fast_strategy(with_store):
    context = build_world(with_store)
    executor = ShardedExecutor(backend="threads", n_shards=4, obs=context.obs)

    auto_count, auto_plan = planned_count_objects_through(
        context, TARGET, CONSTRAINTS, executor=executor
    )
    candidates = [auto_plan.strategy] + [
        name for name, _ in auto_plan.alternatives
    ]

    measured = {}
    counts = {}
    for strategy in candidates:
        seconds, (count, _) = timed(
            lambda s=strategy: planned_count_objects_through(
                context, TARGET, CONSTRAINTS, executor=executor,
                force_strategy=s,
            ),
            repeat=2,
        )
        measured[strategy] = seconds
        counts[strategy] = count

    assert set(counts.values()) == {auto_count}, (
        f"strategies disagree: {counts} vs auto {auto_count}"
    )

    fastest = min(measured, key=lambda name: measured[name])
    chosen = auto_plan.strategy
    ratio = (
        measured[chosen] / measured[fastest] if measured[fastest] else 1.0
    )
    print_table(
        f"planner strategies, 10k samples ({'store' if with_store else 'no store'})",
        ["strategy", "seconds", "est cost", "note"],
        [
            (
                name,
                f"{measured[name]:.4f}",
                f"{dict(auto_plan.alternatives).get(name, auto_plan.est_cost):.0f}",
                ("chosen" if name == chosen else "")
                + (" fastest" if name == fastest else ""),
            )
            for name in candidates
        ],
    )
    assert ratio <= TOLERANCE, (
        f"planner chose {chosen!r} ({measured[chosen]:.4f}s), "
        f"{ratio:.1f}x slower than measured-fastest {fastest!r} "
        f"({measured[fastest]:.4f}s); tolerance is {TOLERANCE}x"
    )
    if with_store:
        assert chosen == "preagg", (
            f"with a fresh aligned store the planner should route through "
            f"it, chose {chosen!r}"
        )
