"""E26 — Zero-copy shard payloads vs pickled MOFT shards.

The ``processes`` backend used to pickle every shard into its worker —
O(rows) bytes per task.  With zero-copy routing the coordinator writes
all shards once into a shared-memory block and each task carries only a
``(block, start, stop)`` descriptor — O(1) bytes regardless of shard
size.  This benchmark demonstrates the acceptance bar on a 20k-sample
world: the peak serialized payload of a zero-copy fan-out stays
descriptor-sized (hundreds of bytes) while the pickled path scales with
the rows, and both routes return answers identical to the serial scan.

The bar is on *bytes*, not wall-clock — it must hold on a single-core
CI runner where process fan-out cannot win on time.
"""

import pytest

from repro.bench import (
    large_moft,
    merge_row_counts,
    print_table,
    shard_row_counts,
    write_bench_json,
)
from repro.obs import PipelineStats
from repro.parallel.executor import ShardedExecutor
from repro.parallel.shm import leaked_segments

N_OBJECTS = 200
N_INSTANTS = 100
N_SHARDS = 4


@pytest.fixture(scope="module")
def world():
    moft = large_moft(n_objects=N_OBJECTS, n_instants=N_INSTANTS)
    assert len(moft) == N_OBJECTS * N_INSTANTS == 20_000
    moft.as_arrays()
    return moft


def run_counts(moft, backend, zero_copy):
    obs = PipelineStats()
    executor = ShardedExecutor(
        backend,
        n_shards=N_SHARDS,
        obs=obs,
        zero_copy=zero_copy,
        track_payload_bytes=True,
    )
    result = executor.aggregate_moft(
        moft, shard_row_counts, merge=merge_row_counts
    )
    return result, obs


def test_zero_copy_payloads_are_descriptor_sized(world):
    """The acceptance bar: zc payloads O(descriptor), pickled O(rows)."""
    moft = world
    before = leaked_segments()

    reference, _ = run_counts(moft, "serial", zero_copy=False)
    pickled, pickle_obs = run_counts(moft, "processes", zero_copy=False)
    zero, zc_obs = run_counts(moft, "processes", zero_copy=True)

    # Exactness before any byte accounting: every route agrees with the
    # serial scan.
    assert pickled == reference
    assert zero == reference
    assert reference == {"rows": len(moft), "objects": N_OBJECTS}

    pickle_peak = pickle_obs.count("peak_shard_payload_bytes")
    pickle_total = pickle_obs.count("bytes_serialized")
    zc_peak = zc_obs.count("peak_shard_payload_bytes")
    zc_total = zc_obs.count("bytes_serialized")
    rows_per_shard = len(moft) // N_SHARDS

    # Pickled shards carry the rows: at least the three float64 columns.
    assert pickle_peak >= rows_per_shard * 3 * 8
    # Descriptors don't: a whole zero-copy task pickles to < 4 KiB no
    # matter how many rows the shard addresses.
    assert zc_peak < 4096
    assert zc_obs.count("zero_copy_blocks") == 1
    # The shared block is unlinked by the time the fan-out returns.
    assert leaked_segments() == before

    print_table(
        f"shard payloads, {len(moft):,} samples over {N_SHARDS} shards",
        ["route", "peak payload B", "total serialized B"],
        [
            ("pickled shards", pickle_peak, pickle_total),
            ("zero-copy descriptors", zc_peak, zc_total),
            (
                "reduction",
                f"{pickle_peak / max(zc_peak, 1):.0f}x",
                f"{pickle_total / max(zc_total, 1):.0f}x",
            ),
        ],
    )
    write_bench_json(
        "zero_copy_shards",
        {
            "rows": len(moft),
            "shards": N_SHARDS,
            "pickle_peak_payload_bytes": int(pickle_peak),
            "pickle_bytes_serialized": int(pickle_total),
            "zero_copy_peak_payload_bytes": int(zc_peak),
            "zero_copy_bytes_serialized": int(zc_total),
            "reduction_peak": pickle_peak / max(zc_peak, 1),
        },
    )


def test_zero_copy_matches_on_trajectory_scan(world):
    """A real query (not a row count) agrees across routes, zc engaged."""
    moft = world
    from repro.geometry.polygon import Polygon
    from repro.query.evaluator import TrajectoryIntersectionCounter

    region = Polygon.rectangle(20.0, 20.0, 60.0, 60.0)
    counter = TrajectoryIntersectionCounter({"region": region})
    serial = ShardedExecutor("serial", n_shards=N_SHARDS)
    zc_obs = PipelineStats()
    zc = ShardedExecutor(
        "processes", n_shards=N_SHARDS, obs=zc_obs, zero_copy=True
    )
    expected = serial.matching_objects(counter, moft)
    actual = zc.matching_objects(counter, moft)
    assert actual == expected
    assert zc_obs.count("zero_copy_blocks") == 1
    assert leaked_segments() == []
