"""E2 — Figure 2: the GIS dimension schema.

Regenerates the schema (three layer hierarchies + Time dimension +
application part) and validates every structural property the figure and
Example 2 state, timing full construction + validation.
"""

import pytest

from repro.bench import print_table
from repro.gis import ALL, LINE, NODE, POINT, POLYGON, POLYLINE
from repro.synth import figure1_gis, figure1_time, figure2_schema


def _build_and_validate():
    schema = figure2_schema()
    gis = figure1_gis()
    time = figure1_time()
    time.check_consistency()
    gis.application_instance("Neighbourhoods").check_consistency()
    return schema, gis, time


def test_figure2_schema(benchmark):
    schema, gis, time = benchmark(_build_and_validate)

    # Example 2: H1(Lr) = point -> line -> polyline -> All.
    rivers = schema.hierarchy("Lr")
    assert set(rivers.edges()) == {
        (POINT, LINE),
        (LINE, POLYLINE),
        (POLYLINE, ALL),
    }
    # Schools: point -> node -> All; neighborhoods: point -> polygon -> All.
    assert set(schema.hierarchy("Ls").edges()) == {(POINT, NODE), (NODE, ALL)}
    assert set(schema.hierarchy("Ln").edges()) == {
        (POINT, POLYGON),
        (POLYGON, ALL),
    }
    # Placements of Example 2: AtG(neighborhood) = (polygon, Ln) etc.
    assert schema.placement("neighborhood").layer == "Ln"
    assert schema.placement("river").layer == "Lr"
    # Application part: neighborhood -> city (Example 1).
    neigh = schema.application_dimension("Neighbourhoods")
    assert neigh.rolls_up_to("neighborhood", "city")
    # Time dimension levels of the figure.
    for level in ("timeId", "hour", "timeOfDay", "day", "month", "year"):
        assert level in time.instance.schema.levels

    rows = [
        (name, sorted(schema.hierarchy(name).kinds - {POINT, ALL}))
        for name in schema.layer_names
    ]
    print_table("Figure 2 hierarchies", ["layer", "identifiable kinds"], rows)
