"""Shared fixtures for the benchmark suite.

Worlds are built once per session: pytest-benchmark re-invokes the timed
callable many times, so fixtures must be cheap to reference.
"""

import pytest

from repro.bench import SCALES, build_world, context_for
from repro.synth import figure1_instance


@pytest.fixture(scope="session")
def paper_world():
    """The exact Figure 1 / Table 1 instance."""
    return figure1_instance()


@pytest.fixture(scope="session")
def small_world():
    """A small synthetic world (city, MOFT, time dimension)."""
    return build_world(SCALES[0])


@pytest.fixture(scope="session")
def medium_world():
    """A medium synthetic world."""
    return build_world(SCALES[1])
