"""E1 — Figure 1: the six-bus scenario.

Regenerates the figure's content as data: which neighborhoods are
low-income, and where each bus is (or passes) relative to that region.
The assertions encode every statement the paper makes about Figure 1.
"""

import pytest

from repro.bench import print_table
from repro.geometry import Point
from repro.gis import POLYGON
from repro.mo import LinearInterpolationTrajectory, passes_through
from repro.synth import figure1_instance


def _locate(world, x, y):
    (gid,) = world.gis.point_rollup("Ln", POLYGON, Point(x, y))
    (member,) = world.gis.alpha_inverse("neighborhood", gid)
    return member


def _figure1_rows(world):
    rows = []
    low = world.low_income_neighborhoods
    for oid in sorted(world.moft.objects()):
        visited = [
            _locate(world, x, y) for _, x, y in world.moft.history(oid)
        ]
        sampled_low = [m for m in visited if m in low]
        if world.moft.sample_count(oid) >= 2:
            lit = LinearInterpolationTrajectory(
                world.moft.trajectory_sample(oid)
            )
            passes_low = any(
                passes_through(
                    lit,
                    world.gis.layer("Ln").element(
                        POLYGON, world.gis.alpha("neighborhood", member)
                    ),
                )
                for member in low
            )
        else:
            passes_low = bool(sampled_low)
        rows.append((oid, len(visited), len(sampled_low), passes_low))
    return rows


def test_figure1_scenario(paper_world, benchmark):
    rows = benchmark(_figure1_rows, paper_world)
    by_oid = {oid: (samples, low, passes) for oid, samples, low, passes in rows}

    # O1 remains always within a low income region.
    assert by_oid["O1"] == (4, 4, True)
    # O2: high -> low -> high (one low-income sample of three).
    assert by_oid["O2"] == (3, 1, True)
    # O3, O4, O5 always in high-income neighborhoods.
    for oid in ("O3", "O4", "O5"):
        samples, low, passes = by_oid[oid]
        assert low == 0 and not passes
    # O6 passes through a low-income region but was not sampled inside it.
    assert by_oid["O6"] == (2, 0, True)

    print_table(
        "Figure 1 scenario (per object)",
        ["object", "samples", "low-income samples", "passes through low"],
        rows,
    )
