"""E5 — Section 3.1: one executable instance of each of the 8 query types.

Each benchmark runs a representative query of the type and asserts both
its answer and its classification.
"""

import pytest

from repro.geometry import Polygon
from repro.gis import GISFactTable, POLYGON, integrate_over_polygon, summable_aggregate
from repro.query import (
    AggregateSpec,
    MovingObjectAggregateQuery,
    QueryType,
    RegionBuilder,
    aggregate_trajectory_measure,
    classify,
    time_spent_in,
)
from repro.query.ast import (
    Alpha,
    And,
    Compare,
    Const,
    MemberValue,
    Moft,
    PointIn,
    TimeRollup,
    Var,
)
from repro.query.region import SpatioTemporalRegion
from repro.synth import LOW_INCOME_THRESHOLD

OID, T, X, Y = Var("oid"), Var("t"), Var("x"), Var("y")
PG, N = Var("pg"), Var("n")


def test_type1_spatial_aggregation(paper_world, benchmark):
    """Type 1: geometric aggregation of a density over region geometry."""
    world = paper_world
    polygons = [
        world.gis.layer("Ln").element(
            POLYGON, world.gis.alpha("neighborhood", member)
        )
        for member in sorted(world.low_income_neighborhoods)
    ]

    def _run():
        # A uniform population density of 100 persons per unit area.
        return sum(
            integrate_over_polygon(lambda x, y: 100.0, p) for p in polygons
        )

    total = benchmark(_run)
    # zuid (100) + berchem (100 + 8 bump) = 208 area units * 100.
    expected_area = sum(p.area for p in polygons)
    assert total == pytest.approx(100.0 * expected_area)


def test_type2_spatial_with_numeric(paper_world, benchmark):
    """Type 2: numeric application-part values select the region."""
    world = paper_world
    facts = GISFactTable(POLYGON, "Ln", ["population"])
    for member in world.gis.alpha_members("neighborhood"):
        gid = world.gis.alpha("neighborhood", member)
        facts.set(gid, 10_000 if member in ("zuid", "berchem") else 40_000)

    def _run():
        low_ids = [
            world.gis.alpha("neighborhood", member)
            for member in world.gis.members_where(
                "neighborhood",
                lambda v: v("income") < LOW_INCOME_THRESHOLD,
            )
        ]
        return summable_aggregate(low_ids, facts, "population", "SUM")

    region = SpatioTemporalRegion(
        ("pg",),
        And(
            Alpha("neighborhood", N, PG),
            Compare(
                MemberValue("neighborhood", N, "income"),
                "<",
                Const(LOW_INCOME_THRESHOLD),
            ),
        ),
    )
    assert classify(region) is QueryType.SPATIAL_WITH_NUMERIC
    assert benchmark(_run) == 20_000


def test_type3_trajectory_samples(paper_world, benchmark):
    """Type 3: MOFT + Time only ("maximum number of buses per hour")."""
    world = paper_world
    region = SpatioTemporalRegion(
        ("oid", "t"),
        And(
            Moft(OID, T, X, Y, "FMbus"),
            TimeRollup(T, "timeOfDay", Const("Morning")),
        ),
    )
    assert classify(region) is QueryType.TRAJECTORY_SAMPLES
    query = MovingObjectAggregateQuery(
        region, AggregateSpec(group_by=("t",))
    )

    def _run():
        return query.run(world.context())

    per_hour = benchmark(_run)
    assert max(per_hour.values()) == 4  # t=3: O1, O2, O5, O6


def test_type4_samples_with_geometry(paper_world, benchmark):
    """Type 4: the running query's region."""
    world = paper_world
    region = (
        RegionBuilder()
        .from_moft("FMbus")
        .during("timeOfDay", "Morning")
        .in_attribute_polygon(
            "neighborhood", value_filter=("income", "<", LOW_INCOME_THRESHOLD)
        )
        .build(world.gis)
    )
    assert classify(region) is QueryType.SAMPLES_WITH_GEOMETRY

    def _run():
        return len(region.evaluate(world.context()))

    assert benchmark(_run) == 4


def test_type5_aggregation_inside_region(paper_world, benchmark):
    """Type 5: the region condition itself aggregates ("neighborhoods where
    the number of poor residents exceeds a threshold")."""
    world = paper_world
    # The inner aggregation: population * poverty share per neighborhood.
    population = {"zuid": 60_000, "berchem": 40_000, "centrum": 80_000, "noord": 90_000}
    poor_share = {"zuid": 0.9, "berchem": 0.8, "centrum": 0.2, "noord": 0.1}
    for member in population:
        world.gis.set_member_value(
            "neighborhood", member, "poor_population",
            population[member] * poor_share[member],
        )

    def _run():
        qualifying = world.gis.members_where(
            "neighborhood", lambda v: v("poor_population") > 50_000
        )
        region = (
            RegionBuilder()
            .from_moft("FMbus")
            .during("timeOfDay", "Morning")
            .where_member("neighborhood", sorted(qualifying), kind=POLYGON)
            .build(world.gis)
        )
        query = MovingObjectAggregateQuery(
            region,
            AggregateSpec(per_span_level="timeOfDay", per_span_member="Morning"),
        )
        return query.run_scalar(world.context()), region

    (answer, region) = benchmark(_run)
    # Only zuid has 54,000 poor residents; O1's 3 samples + O2's 1 / 3h.
    assert answer == pytest.approx(4 / 3)
    assert (
        classify(region, region_uses_aggregation=True)
        is QueryType.SAMPLES_WITH_AGGREGATED_REGION
    )


def test_type6_trajectory_as_spatial_object(paper_world, benchmark):
    """Type 6: fixed instant (query 4)."""
    world = paper_world
    region = (
        RegionBuilder()
        .from_moft("FMbus", at_instant=3)
        .in_attribute_polygon("neighborhood", member="zuid")
        .build(world.gis)
    )
    assert classify(region) is QueryType.TRAJECTORY_AS_SPATIAL_OBJECT

    def _run():
        return len(region.evaluate(world.context()))

    assert benchmark(_run) == 2  # O1 and O2 in zuid at t=3


def test_type7_trajectory_query(paper_world, benchmark):
    """Type 7: interpolation required (O6's pass-through)."""
    world = paper_world
    region = (
        RegionBuilder()
        .from_moft("FMbus")
        .trajectory_through_attribute(
            "neighborhood",
            value_filter=("income", "<", LOW_INCOME_THRESHOLD),
            moft_name="FMbus",
        )
        .output("oid")
        .build(world.gis)
    )
    assert classify(region) is QueryType.TRAJECTORY_QUERY

    def _run():
        return {row["oid"] for row in region.evaluate(world.context())}

    assert benchmark(_run) == {"O1", "O2", "O6"}


def test_type8_trajectory_aggregation(paper_world, benchmark):
    """Type 8: aggregate a per-trajectory measure (time in a region)."""
    world = paper_world

    def _run():
        durations = time_spent_in(
            world.context(), "neighborhood", "zuid", moft_name="FMbus"
        )
        return aggregate_trajectory_measure(durations, "SUM")

    total = benchmark(_run)
    # O1 spends its whole 3-hour span in zuid; O2 dips in around t=3.
    assert total > 3.0
    region = (
        RegionBuilder().from_moft("FMbus").build(world.gis)
    )
    assert (
        classify(region, aggregates_trajectory_measure=True)
        is QueryType.TRAJECTORY_AGGREGATION
    )
