"""E9 — Section 5: "In the worst case, the whole trajectory must be checked."

Adversarial trajectories (never intersecting the answer geometries) force a
full scan of every segment; favourable trajectories (hitting early) let the
early-exit optimization stop after a handful of checks.  The benchmark
verifies the linear-vs-constant shape and times both.
"""

import pytest

from repro.bench import Series, print_series
from repro.geometry import BoundingBox, Polygon
from repro.mo import MOFT
from repro.query import EvaluationStats, TrajectoryIntersectionCounter
from repro.synth import adversarial_moft

CITY_BOX = BoundingBox(0, 0, 100, 100)
CITY = {"city": Polygon.from_box(CITY_BOX)}
TRAJECTORY_LENGTHS = (10, 50, 200)


def _early_hit_moft(n_objects: int, n_instants: int) -> MOFT:
    """Objects that start inside the city and then leave."""
    moft = MOFT("FM")
    for i in range(n_objects):
        for t in range(n_instants):
            moft.add(f"runner{i}", t, 50.0 + 200.0 * t / n_instants, 50.0)
    return moft


@pytest.mark.parametrize("n_instants", TRAJECTORY_LENGTHS)
def test_adversarial_full_scan(benchmark, n_instants):
    moft = adversarial_moft(CITY_BOX, n_objects=20, n_instants=n_instants)
    counter = TrajectoryIntersectionCounter(CITY, use_index=False)

    def _run():
        stats = EvaluationStats()
        count = counter.count(moft, stats)
        return count, stats

    count, stats = benchmark(_run)
    assert count == 0
    # Every segment of every trajectory is visited: the paper's worst case.
    assert stats.segment_checks + stats.bbox_rejections == 20 * (n_instants - 1)


@pytest.mark.parametrize("n_instants", TRAJECTORY_LENGTHS)
def test_early_exit_constant(benchmark, n_instants):
    moft = _early_hit_moft(20, n_instants)
    counter = TrajectoryIntersectionCounter(CITY, use_index=False)

    def _run():
        stats = EvaluationStats()
        count = counter.count(moft, stats)
        return count, stats

    count, stats = benchmark(_run)
    assert count == 20
    # Early exit: one check per object regardless of trajectory length.
    assert stats.segment_checks == 20


def test_scan_cost_shape():
    """Worst case grows linearly with samples; early exit stays flat."""
    adversarial = Series("adversarial checks")
    favourable = Series("early-exit checks")
    for n in TRAJECTORY_LENGTHS:
        moft_a = adversarial_moft(CITY_BOX, 20, n)
        moft_f = _early_hit_moft(20, n)
        counter = TrajectoryIntersectionCounter(CITY, use_index=False)
        sa, sf = EvaluationStats(), EvaluationStats()
        counter.count(moft_a, sa)
        counter.count(moft_f, sf)
        adversarial.add(n, sa.segment_checks + sa.bbox_rejections)
        favourable.add(n, sf.segment_checks + sf.bbox_rejections)
    print_series("Worst-case scan cost", [adversarial, favourable])
    a_values = [v for _, v in adversarial.points]
    f_values = [v for _, v in favourable.points]
    assert a_values[-1] > a_values[0] * 10  # linear growth
    assert f_values[0] == f_values[-1]  # flat
