"""E12 — sample-only vs interpolated semantics (Type 4 vs Type 7).

The paper's O6 passes through a low-income region without being sampled in
it: sample semantics misses it, trajectory semantics catches it.  This
bench quantifies the gap as the sampling rate coarsens — the shape to
reproduce: interpolated counts ≥ sampled counts, with the gap growing as
samples thin out.
"""

import pytest

from repro.bench import Series, print_series
from repro.geometry import BoundingBox, Point, Polygon
from repro.mo import (
    MOFT,
    LinearInterpolationTrajectory,
    passes_through,
    sample_instants_inside,
)
from repro.query import RegionBuilder
from repro.synth import LOW_INCOME_THRESHOLD, figure1_instance, random_waypoint_moft

TARGET = Polygon.rectangle(40, 40, 60, 60)
BOX = BoundingBox(0, 0, 100, 100)


def _semantics_counts(n_instants: int, keep_every: int):
    """Objects detected in TARGET under both semantics at a sampling rate."""
    dense = random_waypoint_moft(BOX, 40, n_instants, speed=15.0, seed=41)
    sparse = MOFT("FM")
    for oid, t, x, y in dense.tuples():
        if int(t) % keep_every == 0:
            sparse.add(oid, t, x, y)
    sampled = set()
    interpolated = set()
    for oid in sparse.objects():
        sample = sparse.trajectory_sample(oid)
        if sample_instants_inside(sample, TARGET):
            sampled.add(oid)
        if len(sample) >= 2 and passes_through(
            LinearInterpolationTrajectory(sample), TARGET
        ):
            interpolated.add(oid)
    return sampled, interpolated


def test_paper_o6_case(paper_world, benchmark):
    """The exact Figure 1 situation: O6 only found with interpolation."""
    world = paper_world
    sampled_region = (
        RegionBuilder()
        .from_moft("FMbus")
        .in_attribute_polygon(
            "neighborhood", value_filter=("income", "<", LOW_INCOME_THRESHOLD)
        )
        .output("oid")
        .build(world.gis)
    )
    trajectory_region = (
        RegionBuilder()
        .from_moft("FMbus")
        .trajectory_through_attribute(
            "neighborhood",
            value_filter=("income", "<", LOW_INCOME_THRESHOLD),
            moft_name="FMbus",
        )
        .output("oid")
        .build(world.gis)
    )

    def _run():
        ctx = world.context()
        s = {r["oid"] for r in sampled_region.evaluate(ctx)}
        i = {r["oid"] for r in trajectory_region.evaluate(ctx)}
        return s, i

    sampled, interpolated = benchmark(_run)
    assert sampled == {"O1", "O2"}
    assert interpolated == {"O1", "O2", "O6"}


@pytest.mark.parametrize("keep_every", [1, 2, 4, 8])
def test_semantics_gap(benchmark, keep_every):
    sampled, interpolated = benchmark(_semantics_counts, 32, keep_every)
    assert sampled <= interpolated


def test_gap_grows_with_sparser_sampling():
    sampled_series = Series("sampled")
    interpolated_series = Series("interpolated")
    gap_series = Series("missed by sampling")
    gaps = []
    for keep_every in (1, 2, 4, 8):
        sampled, interpolated = _semantics_counts(32, keep_every)
        sampled_series.add(keep_every, len(sampled))
        interpolated_series.add(keep_every, len(interpolated))
        gap = len(interpolated - sampled)
        gap_series.add(keep_every, gap)
        gaps.append(gap)
    print_series(
        "Sampling rate vs detection (keep every k-th sample)",
        [sampled_series, interpolated_series, gap_series],
    )
    # Dense sampling misses nothing extra... sparse sampling does.
    assert gaps[-1] >= gaps[0]
    assert max(gaps) > 0
