"""E21 — Query-service throughput: sustained jobs/sec through the queue.

Two workloads over the Figure 1 world (queries short enough that the
*service machinery* — claim transactions, lease bookkeeping, result
persistence — is a visible fraction of each job):

* **batch drain** — N jobs pre-queued, then a worker pool drains them;
  measures steady-state throughput per backend (memory vs SQLite) and
  per worker count;
* **concurrent submit+drain** — submitter threads race the running
  pool; measures end-to-end throughput when the queue never idles, and
  checks the admission/bookkeeping invariants under that load.

Every run asserts exactness before it reports a number: all jobs
``done``, each with the serial answer, no retries consumed.  A
throughput table without that check would happily report a fast queue
that loses jobs.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.bench import print_table
from repro.gis import NODE, POLYGON, POLYLINE
from repro.service import (
    MemoryJobQueue,
    QueryService,
    QuerySpec,
    SQLiteJobQueue,
    ServiceWorld,
    load_world,
)

SPEC = QuerySpec.through(
    ("Ln", POLYGON),
    [("intersects", ("Lr", POLYLINE)), ("contains", ("Ls", NODE))],
    moft_name="FMbus",
)
N_JOBS = 40


@pytest.fixture(scope="module")
def world() -> ServiceWorld:
    return load_world("fig1")


def make_queue(kind: str, tmp_path, tag: str):
    if kind == "memory":
        return MemoryJobQueue()
    return SQLiteJobQueue(str(tmp_path / f"bench-{tag}.db"))


def assert_all_exact(service, job_ids) -> None:
    for job_id in job_ids:
        job = service.status(job_id)
        assert job.state == "done", job.describe()
        assert job.attempts == 1, job.describe()
        assert service.result(job_id) == {"kind": "through", "count": 5}


def drain_batch(world, queue, n_workers: int) -> float:
    """Queue N_JOBS, drain them, return wall seconds for the drain."""
    service = QueryService(queue=queue, world=world, n_workers=n_workers)
    job_ids = [service.submit(SPEC) for _ in range(N_JOBS)]
    start = time.perf_counter()
    with service:
        service.drain(timeout=300.0)
    elapsed = time.perf_counter() - start
    assert_all_exact(service, job_ids)
    return elapsed


def test_batch_drain_throughput(world, tmp_path):
    """Sustained jobs/sec per queue backend and worker count."""
    rows = []
    for kind in ("memory", "sqlite"):
        for n_workers in (1, 2, 4):
            queue = make_queue(kind, tmp_path, f"{kind}{n_workers}")
            try:
                seconds = drain_batch(world, queue, n_workers)
            finally:
                if isinstance(queue, SQLiteJobQueue):
                    queue.close()
            rows.append(
                (
                    f"{kind}, {n_workers} worker(s)",
                    f"{seconds:.3f}",
                    f"{N_JOBS / seconds:.1f}",
                )
            )
    print_table(
        f"batch drain, {N_JOBS} Figure-1 count jobs",
        ["configuration", "seconds", "jobs/s"],
        rows,
    )


def test_concurrent_submit_and_drain(world, tmp_path):
    """Submitters race the running pool; the queue never idles."""
    n_submitters, per_submitter = 4, 10
    n_jobs = n_submitters * per_submitter
    rows = []
    for kind in ("memory", "sqlite"):
        queue = make_queue(kind, tmp_path, f"live-{kind}")
        service = QueryService(queue=queue, world=world, n_workers=4)
        job_ids, lock = [], threading.Lock()

        def submitter() -> None:
            for _ in range(per_submitter):
                job_id = service.submit(SPEC)
                with lock:
                    job_ids.append(job_id)

        try:
            start = time.perf_counter()
            with service:
                threads = [
                    threading.Thread(target=submitter)
                    for _ in range(n_submitters)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                service.drain(timeout=300.0)
            elapsed = time.perf_counter() - start
            assert len(job_ids) == n_jobs
            assert_all_exact(service, job_ids)
            metrics = service.metrics()
            assert metrics["jobs_submitted"] == n_jobs
            assert metrics["jobs_completed"] == n_jobs
            wait = metrics.get("service_queue_wait_seconds", 0.0)
            rows.append(
                (
                    kind,
                    f"{elapsed:.3f}",
                    f"{n_jobs / elapsed:.1f}",
                    f"{wait / n_jobs:.4f}",
                )
            )
        finally:
            if isinstance(queue, SQLiteJobQueue):
                queue.close()
    print_table(
        f"concurrent submit+drain, {n_jobs} jobs, "
        f"{n_submitters} submitters vs 4 workers",
        ["queue", "seconds", "jobs/s", "mean queue wait (s)"],
        rows,
    )
