"""E15 — GIS + OLAP combination: warehouse aggregates over geometric results.

The paper's Section 1 motivation: economic facts live in a conventional
data warehouse, geometry in GIS layers, and queries combine both ("revenue
of stores in cities crossed by the river").  Benchmarks the combined query
under both evaluation strategies and validates the cube cross-check.
"""

from datetime import datetime

import pytest

from repro.gis import POLYGON, POLYLINE
from repro.query import EvaluationContext, geometric_subquery
from repro.synth import (
    CityConfig,
    build_city,
    revenue_of_cities,
    sales_cube,
    sales_fact_table,
)
from repro.temporal import TimeDimension, hourly

DAYS = ["2006-01-09", "2006-01-10"]


@pytest.fixture(scope="module")
def warehouse_world():
    city = build_city(CityConfig(cols=6, rows=6, seed=15))
    table = sales_fact_table(city, DAYS, seed=15)
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(48)
    )
    return city, table, time_dim


@pytest.mark.parametrize("use_overlay", [True, False], ids=["overlay", "naive"])
def test_revenue_of_crossed_cities(warehouse_world, benchmark, use_overlay):
    city, table, time_dim = warehouse_world
    ctx = EvaluationContext(city.gis, time_dim, None, use_overlay=use_overlay)

    def _run():
        crossed = geometric_subquery(
            ctx, ("Lc", POLYGON), [("intersects", ("Lr", POLYLINE))]
        )
        names = {
            name
            for gid in crossed
            for name in city.gis.alpha_inverse("city", gid)
        }
        return revenue_of_cities(city, table, names)

    revenue = benchmark(_run)
    assert revenue > 0


def test_cube_rollup_cost(warehouse_world, benchmark):
    city, table, time_dim = warehouse_world
    cube = sales_cube(city, table, time_dim)

    def _run():
        return cube.rollup({"store": "city", "day": "month"}, "SUM", "revenue")

    cells = benchmark(_run)
    total = sum(cells.values())
    direct = sum(row["revenue"] for row in table.rows())
    assert total == pytest.approx(direct)
