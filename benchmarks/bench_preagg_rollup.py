"""E22 — Materialized pre-aggregation vs the scan path.

The preagg store (:mod:`repro.preagg`) trades one build pass over the
MOFT for per-(geometry, granule) cells that answer granule-run queries
in microseconds.  The world is the 250k-sample city of the parallel
benchmark; the store materializes the ~100 city polygons at the ``day``
granule (11 granules over 250 hourly instants).

Three measured legs:

* **cold scan** — the seed vectorized pipeline, no store registered;
* **warm store** — the identical query routed through the registered
  store (the full pipeline including the geometric subquery, so the
  speedup is end-to-end, not a cherry-picked cell read);
* **incremental update + query** — append fresh samples, fold them in
  with :meth:`PreAggStore.update` (``"delta"``, no rebuild), re-query.

Every leg asserts exact equality with the scan answer unconditionally —
the bar is ≥10× warm-vs-cold, and a wrong fast answer fails before any
timing is reported.  The one-off build cost is reported for the record
but excluded from the bar: it amortizes over every later query.
"""

from datetime import datetime

import numpy as np
import pytest

from repro.bench import print_table, timed
from repro.preagg import PreAggStore
from repro.query.evaluator import count_objects_through
from repro.query.region import EvaluationContext
from repro.synth.city import CityConfig, build_city
from repro.synth.movement import random_waypoint_moft
from repro.temporal.calendar import hourly
from repro.temporal.timedim import TimeDimension

TARGET = ("Lc", "polygon")
CONSTRAINTS = [
    ("intersects", ("Lr", "polyline")),
    ("contains", ("Lsto", "node")),
]
N_OBJECTS = 1_000
N_INSTANTS = 250


@pytest.fixture(scope="module")
def world():
    """The parallel benchmark's 10×10-block city with 250k samples."""
    city = build_city(CityConfig(cols=10, rows=10, seed=23))
    moft = random_waypoint_moft(
        city.bounding_box,
        n_objects=N_OBJECTS,
        n_instants=N_INSTANTS,
        speed=0.15,
        seed=23,
    )
    assert len(moft) == N_OBJECTS * N_INSTANTS >= 200_000
    moft.as_arrays()  # warm the column cache; we measure the query
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(N_INSTANTS)
    )
    context = EvaluationContext(city.gis, time_dim, moft)
    return context, moft, city


def test_warm_store_vs_cold_scan(world):
    """The acceptance bar: ≥10× warm store query vs the cold scan."""
    context, moft, city = world
    elements = city.gis.layer("Lc").elements("polygon")

    cold_s, cold_count = timed(
        lambda: count_objects_through(
            context, TARGET, CONSTRAINTS, use_preagg=False
        ),
        repeat=2,
    )

    build_s, store = timed(
        lambda: PreAggStore(
            moft, context.time, "day", elements,
            layer="Lc", kind="polygon", obs=context.obs,
        ),
        repeat=1,
    )
    context.register_preagg(store)

    warm_s, warm_count = timed(
        lambda: count_objects_through(context, TARGET, CONSTRAINTS),
        repeat=3,
    )
    assert warm_count == cold_count, (
        f"store route diverged: {warm_count} != {cold_count}"
    )
    assert context.obs.counters.get("preagg_hits", 0) >= 1, (
        "warm leg never routed through the store"
    )

    # Incremental leg: fresh objects appended in time order, folded in
    # with a delta update, then the same query again.
    rng = np.random.default_rng(29)
    box = city.bounding_box
    oids, ts, xs, ys = [], [], [], []
    for oid in ("late-1", "late-2", "late-3", "late-4"):
        for t in range(200, N_INSTANTS):
            oids.append(oid)
            ts.append(float(t))
            xs.append(float(rng.uniform(box.min_x, box.max_x)))
            ys.append(float(rng.uniform(box.min_y, box.max_y)))
    moft.extend_columns(oids, ts, xs, ys)
    assert store.is_stale()

    def update_and_query():
        outcome = store.update()
        assert outcome in ("delta", "fresh")
        return count_objects_through(context, TARGET, CONSTRAINTS)

    incr_s, incr_count = timed(update_and_query, repeat=1)
    reference = count_objects_through(
        context, TARGET, CONSTRAINTS, use_preagg=False
    )
    assert incr_count == reference, (
        f"incrementally updated store diverged: {incr_count} != {reference}"
    )

    speedup = cold_s / warm_s if warm_s else float("inf")
    print_table(
        "pre-aggregated count_objects_through, 250k samples",
        ["path", "seconds", "speedup"],
        [
            ("cold scan (seed)", f"{cold_s:.4f}", "1.0x"),
            ("warm store", f"{warm_s:.4f}", f"{speedup:.1f}x"),
            (
                "incremental update + query",
                f"{incr_s:.4f}",
                f"{cold_s / incr_s:.1f}x" if incr_s else "inf",
            ),
            ("store build (one-off)", f"{build_s:.4f}", "-"),
        ],
    )
    assert speedup >= 10.0, (
        f"warm store only {speedup:.2f}x faster than the cold scan"
    )


def test_window_queries_route_and_agree(world):
    """Aligned and misaligned windows: exact answers, hybrid sliver scan.

    No speedup bar on the misaligned row: every object in this world is
    sampled at every instant, so every object touches the edge slivers
    and the hybrid's residual scan approaches the full window scan.  The
    table documents that honestly; the win case is the aligned row.
    """
    context, _, _ = world
    store = context._preagg_stores[0] if context.has_preagg else None
    if store is None:
        pytest.skip("store fixture leg did not run")
    store.update()
    rows = []
    for label, window in (
        ("aligned days 2-8", (24.0, 215.0)),
        ("misaligned", (30.5, 200.5)),
    ):
        routed_s, routed = timed(
            lambda: count_objects_through(
                context, TARGET, CONSTRAINTS, window=window
            ),
            repeat=3,
        )
        scan_s, scanned = timed(
            lambda: count_objects_through(
                context, TARGET, CONSTRAINTS, window=window,
                use_preagg=False,
            ),
            repeat=2,
        )
        assert routed == scanned, (
            f"{label}: store route diverged: {routed} != {scanned}"
        )
        rows.append(
            (label, f"{scan_s:.4f}", f"{routed_s:.4f}",
             f"{scan_s / routed_s:.1f}x" if routed_s else "inf")
        )
    print_table(
        "windowed queries: scan vs store route",
        ["window", "scan s", "store s", "speedup"],
        rows,
    )
