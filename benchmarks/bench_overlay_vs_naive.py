"""E8 — Section 5's evaluation strategy: overlay precomputation vs naive.

The paper proposes precomputing the layer overlay so geometric subqueries
reduce to id joins.  This benchmark measures the full pipeline (geometric
subquery + trajectory intersection) under both strategies across world
scales, and ablates the grid-index cell size.

Expected shape: once the overlay is precomputed, the overlay strategy
answers geometric subqueries in near-constant time, while the naive
strategy rescans all layer pairs per query — the gap grows with layer
complexity.
"""

import pytest

from repro.bench import SCALES, Series, build_world, context_for, print_series, timed
from repro.geometry import UniformGridIndex, index_for_geometries
from repro.gis import NODE, POLYGON, POLYLINE
from repro.query import count_objects_through, geometric_subquery

CONSTRAINTS = [
    ("intersects", ("Lr", POLYLINE)),
    ("contains", ("Lsto", NODE)),
]


@pytest.mark.parametrize("scale", SCALES, ids=[s.name for s in SCALES])
@pytest.mark.parametrize("strategy", ["overlay", "naive"])
def test_pipeline_strategies(benchmark, scale, strategy):
    city, moft, time_dim = build_world(scale)
    ctx = context_for(city, moft, time_dim, use_overlay=(strategy == "overlay"))
    if strategy == "overlay":
        # Piet: the overlay is precomputed before queries arrive.
        ctx.gis.overlay().precompute_all()

    def _run():
        return count_objects_through(ctx, ("Lc", POLYGON), CONSTRAINTS)

    count = benchmark(_run)
    assert count >= 0


def test_strategies_agree_and_gap_grows():
    """The two strategies agree everywhere; report the timing series."""
    overlay_series = Series("overlay (s)")
    naive_series = Series("naive (s)")
    ratio_series = Series("naive/overlay")
    for scale in SCALES:
        city, moft, time_dim = build_world(scale)
        octx = context_for(city, moft, time_dim, use_overlay=True)
        octx.gis.overlay().precompute_all()
        nctx = context_for(city, moft, time_dim, use_overlay=False)

        o_ids = geometric_subquery(octx, ("Lc", POLYGON), CONSTRAINTS)
        n_ids = geometric_subquery(nctx, ("Lc", POLYGON), CONSTRAINTS)
        assert o_ids == n_ids

        o_time, _ = timed(
            lambda: geometric_subquery(octx, ("Lc", POLYGON), CONSTRAINTS)
        )
        n_time, _ = timed(
            lambda: geometric_subquery(nctx, ("Lc", POLYGON), CONSTRAINTS)
        )
        overlay_series.add(scale.name, o_time)
        naive_series.add(scale.name, n_time)
        ratio_series.add(scale.name, n_time / o_time if o_time else float("inf"))
    print_series(
        "Geometric subquery: overlay vs naive",
        [overlay_series, naive_series, ratio_series],
    )
    # The overlay strategy must win at every scale once precomputed.
    assert all(r > 1 for _, r in ratio_series.points)


@pytest.mark.parametrize("cell_divisor", [1, 4, 16, 64])
def test_grid_cell_size_ablation(benchmark, cell_divisor):
    """Ablation: index cell size vs query time on the medium world."""
    city, moft, time_dim = build_world(SCALES[1])
    elements = city.gis.layer("Ln").elements(POLYGON)
    span = city.bounding_box.width
    index = UniformGridIndex(city.bounding_box, span / cell_divisor)
    boxes = {gid: geom.bbox for gid, geom in elements.items()}
    for gid, box in boxes.items():
        index.insert(gid, box)
    probes = [box for box in list(boxes.values())[:32]]

    def _run():
        return sum(len(index.query_box(p)) for p in probes)

    hits = benchmark(_run)
    assert hits > 0
