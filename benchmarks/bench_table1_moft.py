"""E3 — Table 1: the moving-object fact table FM_bus.

Regenerates the table and its derived per-object statistics (sample
counts, time spans, trajectory lengths).
"""

import pytest

from repro.bench import print_table
from repro.mo import LinearInterpolationTrajectory
from repro.synth import TABLE1_SAMPLES, table1_moft


def _stats():
    moft = table1_moft()
    rows = []
    for oid in sorted(moft.objects()):
        history = moft.history(oid)
        span = history[-1][0] - history[0][0]
        if len(history) >= 2:
            length = LinearInterpolationTrajectory(
                moft.trajectory_sample(oid)
            ).length
        else:
            length = 0.0
        rows.append((oid, len(history), history[0][0], history[-1][0], length))
    return moft, rows


def test_table1_moft(benchmark):
    moft, rows = benchmark(_stats)

    assert len(moft) == len(TABLE1_SAMPLES) == 12
    by_oid = {r[0]: r for r in rows}
    # Table 1 row counts: O1 has 4 tuples at t=1..4, O2 3 at t=2..4, …
    assert by_oid["O1"][1:4] == (4, 1.0, 4.0)
    assert by_oid["O2"][1:4] == (3, 2.0, 4.0)
    assert by_oid["O3"][1:4] == (1, 5.0, 5.0)
    assert by_oid["O4"][1:4] == (1, 6.0, 6.0)
    assert by_oid["O5"][1:4] == (1, 3.0, 3.0)
    assert by_oid["O6"][1:4] == (2, 2.0, 3.0)
    # Uniqueness of (Oid, t): the physical invariant of the table.
    assert len({(oid, t) for oid, t, _, _ in moft.tuples()}) == 12

    print_table(
        "Table 1 (FM_bus) derived statistics",
        ["object", "samples", "first t", "last t", "LIT length"],
        rows,
    )
