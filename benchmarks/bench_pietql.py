"""E7 — Section 5: the Piet-QL pipeline.

Parses and executes the paper's query shape ("cities crossed by a river,
containing at least one store", plus the moving-objects part) and checks
the language result against the direct geometric-subquery API.
"""

import pytest

from repro.gis import NODE, POLYGON, POLYLINE
from repro.pietql import LayerBinding, PietQLExecutor, parse
from repro.query import count_objects_through, geometric_subquery


PAPER_TEXT = """
SELECT layer.rivers, layer.cities, layer.stores;
FROM CitySchema;
WHERE intersection(layer.rivers, layer.cities, sublevel.polyline)
AND (layer.cities) CONTAINS (layer.cities, layer.stores, sublevel.node);
| COUNT OBJECTS FROM FM THROUGH RESULT
"""


def test_parse_throughput(benchmark):
    query = benchmark(parse, PAPER_TEXT)
    assert query.geometric.target.name == "cities"
    assert query.moving_objects is not None


def test_pietql_pipeline(medium_world, benchmark):
    city, moft, time_dim = medium_world
    from repro.query import EvaluationContext

    ctx = EvaluationContext(city.gis, time_dim, moft)
    executor = PietQLExecutor(
        ctx,
        {
            "cities": LayerBinding("Lc", POLYGON),
            "rivers": LayerBinding("Lr", POLYLINE),
            "stores": LayerBinding("Lsto", NODE),
        },
    )

    result = benchmark(executor.execute, PAPER_TEXT)

    # Cross-check against the direct API.
    expected_ids = geometric_subquery(
        ctx,
        ("Lc", POLYGON),
        [("intersects", ("Lr", POLYLINE)), ("contains", ("Lsto", NODE))],
    )
    expected_count = count_objects_through(
        ctx,
        ("Lc", POLYGON),
        [("intersects", ("Lr", POLYLINE)), ("contains", ("Lsto", NODE))],
    )
    assert set(result.geometry_ids) == expected_ids
    assert result.count == expected_count
    assert expected_ids  # the river crosses some cities with stores


def test_pietql_geometric_only(medium_world, benchmark):
    city, moft, time_dim = medium_world
    from repro.query import EvaluationContext

    ctx = EvaluationContext(city.gis, time_dim, moft)
    executor = PietQLExecutor(
        ctx,
        {
            "cities": LayerBinding("Lc", POLYGON),
            "rivers": LayerBinding("Lr", POLYLINE),
        },
    )
    text = (
        "SELECT layer.cities FROM CitySchema "
        "WHERE intersection(layer.rivers, layer.cities)"
    )
    result = benchmark(executor.execute, text)
    assert result.count is None
    assert result.geometry_ids
