"""E6 — Section 4: the seven example queries, timed.

Each benchmark runs one of the paper's worked examples (as reproduced in
``tests/query/test_section4_examples.py``) against the Figure 1 world or a
synthetic stand-in, asserting the expected answer.
"""

from datetime import datetime

import pytest

from repro.geometry import Point, Polygon
from repro.gis import (
    ALL,
    NODE,
    POINT,
    POLYGON,
    AttributePlacement,
    GISDimensionInstance,
    GISDimensionSchema,
    LayerHierarchy,
)
from repro.mo import MOFT
from repro.query import (
    EvaluationContext,
    RegionBuilder,
    aggregate_trajectory_measure,
    count_per_group,
    time_spent_in,
)
from repro.temporal import TimeDimension, hourly


def test_q1_region_count(paper_world, benchmark):
    """Q1: number of cars in region South on a weekday morning."""
    world = paper_world
    query = (
        RegionBuilder()
        .from_moft("FMbus")
        .during("timeOfDay", "Morning")
        .during("typeOfDay", "Weekday")
        .in_attribute_polygon("neighborhood", member="zuid")
        .count_query(distinct_objects=True, gis=world.gis)
    )
    assert benchmark(lambda: query.run_scalar(world.context())) == 2


def test_q2_street_density(small_world, benchmark):
    """Q2: maximal density of cars on all roads (reading (b))."""
    city, moft, time_dim = small_world
    # Cars exactly on street h2 of the small city at two instants.
    street_moft = MOFT("FM")
    y = 2 * city.config.block_size
    street_moft.add_many(
        [
            ("carA", 0, 5.0, y),
            ("carA", 1, 12.0, y),
            ("carB", 1, 20.0, y),
        ]
    )
    ctx = EvaluationContext(city.gis, time_dim, street_moft)
    region = (
        RegionBuilder()
        .from_moft("FM")
        .in_attribute_geometry("street", "polyline")
        .build(city.gis)
    )

    def _run():
        return count_per_group(region, ctx, ["t"])

    counts = benchmark(_run)
    assert counts[(1.0,)] == 2


def test_q4_snapshot(paper_world, benchmark):
    """Q4: how many cars in a neighborhood at a fixed instant."""
    world = paper_world
    query = (
        RegionBuilder()
        .from_moft("FMbus", at_instant=3)
        .in_attribute_polygon("neighborhood", member="zuid")
        .count_query(gis=world.gis)
    )
    assert benchmark(lambda: query.run_scalar(world.context())) == 2


def _antwerp_context():
    schema = GISDimensionSchema(
        [LayerHierarchy("Lc", [(POINT, POLYGON), (POLYGON, ALL)])],
        [AttributePlacement("city", POLYGON, "Lc")],
    )
    gis = GISDimensionInstance(schema)
    gis.add_geometry("Lc", POLYGON, "pg_antwerp", Polygon.rectangle(0, 0, 10, 10))
    gis.set_alpha("city", "antwerp", "pg_antwerp")
    moft = MOFT("FM")
    moft.add_many(
        [
            ("crosser", 0, -5.0, 5.0),
            ("crosser", 10, 15.0, 5.0),
            ("resident", 0, 2.0, 2.0),
            ("resident", 10, 8.0, 8.0),
        ]
    )
    time_dim = TimeDimension.from_explicit_rollups(
        [("timeId", t, "hour", t) for t in (0, 10)]
    )
    return EvaluationContext(gis, time_dim, moft)


def test_q5_time_in_city(benchmark):
    """Q5: total time spent continuously in Antwerp (interpolated)."""
    ctx = _antwerp_context()

    def _run():
        return aggregate_trajectory_measure(
            time_spent_in(ctx, "city", "antwerp"), "SUM"
        )

    assert benchmark(_run) == pytest.approx(15.0)


def test_q6_near_schools_both_semantics(paper_world, benchmark):
    """Q6: near-school counts, sampled vs interpolated semantics."""
    world = paper_world
    sampled = (
        RegionBuilder()
        .from_moft("FMbus")
        .near_attribute_node("school", 3.0)
        .output("oid")
        .build(world.gis)
    )
    interpolated = (
        RegionBuilder()
        .from_moft("FMbus")
        .trajectory_near_attribute_node("school", 3.0, moft_name="FMbus")
        .output("oid")
        .build(world.gis)
    )

    def _run():
        ctx = world.context()
        s = {r["oid"] for r in sampled.evaluate(ctx)}
        i = {r["oid"] for r in interpolated.evaluate(ctx)}
        return s, i

    s, i = benchmark(_run)
    assert s <= i


def test_q7_tram_stop(benchmark):
    """Q7: persons waiting at the Groenplaats stop, 8–10 on weekdays."""
    schema = GISDimensionSchema(
        [LayerHierarchy("Lbus", [(POINT, NODE), (NODE, ALL)])],
        [AttributePlacement("stop", NODE, "Lbus")],
    )
    gis = GISDimensionInstance(schema)
    gis.add_geometry("Lbus", NODE, "nd_stop", Point(50.0, 50.0))
    gis.set_alpha("stop", "Groenplaats", "nd_stop")
    moft = MOFT("FM")
    moft.add_many(
        [
            ("waiter1", 8, 51.0, 50.0),
            ("waiter1", 9, 50.5, 49.5),
            ("waiter2", 9, 48.0, 50.0),
            ("walker", 8, 10.0, 10.0),
        ]
    )
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(24)
    )
    ctx = EvaluationContext(gis, time_dim, moft)
    region = (
        RegionBuilder()
        .from_moft("FM")
        .during("typeOfDay", "Weekday")
        .where_time("hour", ">=", 8)
        .where_time("hour", "<=", 10)
        .near_attribute_node("stop", 4.0, member="Groenplaats")
        .build()
    )

    def _run():
        return count_per_group(region, ctx, ["t"])

    counts = benchmark(_run)
    assert counts == {(8.0,): 1, (9.0,): 2}
