"""E14 (ablation) — row-at-a-time solver vs columnar fast path.

The logical solver handles arbitrary formulas; the common Type-4 shape
vectorizes over the MOFT's columnar arrays.  Expected shape: identical
answers, with the columnar path winning by a growing factor as the MOFT
grows.
"""

import pytest

from repro.bench import Series, print_series, timed
from repro.geometry import BoundingBox
from repro.query import EvaluationContext, RegionBuilder
from repro.query.vectorized import samples_in_polygons
from repro.synth import CityConfig, build_city, random_waypoint_moft
from repro.temporal import TimeDimension, hourly

from datetime import datetime

MOFT_SIZES = (500, 2_000, 8_000)


def _world(n_samples: int):
    city = build_city(CityConfig(cols=6, rows=6, seed=9))
    n_objects = max(10, n_samples // 40)
    n_instants = max(2, n_samples // n_objects)
    moft = random_waypoint_moft(
        city.bounding_box, n_objects, n_instants, speed=8.0, seed=9
    )
    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(n_instants)
    )
    threshold = 2000
    low = city.low_income_neighborhoods(threshold)
    polygons = [
        city.gis.layer("Ln").element(
            "polygon", city.gis.alpha("neighborhood", member)
        )
        for member in low
    ]
    ctx = EvaluationContext(city.gis, time_dim, moft)
    region = (
        RegionBuilder()
        .from_moft("FM")
        .during("timeOfDay", "Morning")
        .in_attribute_polygon(
            "neighborhood", value_filter=("income", "<", threshold)
        )
        .build(city.gis)
    )
    morning = time_dim.instants_where("timeOfDay", "Morning")
    return ctx, region, moft, polygons, morning


@pytest.mark.parametrize("n_samples", MOFT_SIZES)
def test_columnar_path(benchmark, n_samples):
    ctx, region, moft, polygons, morning = _world(n_samples)

    def _run():
        return samples_in_polygons(moft, polygons, morning)

    fast = benchmark(_run)
    assert fast == region.evaluate_tuples(ctx)


@pytest.mark.parametrize("n_samples", MOFT_SIZES[:2])
def test_solver_path(benchmark, n_samples):
    ctx, region, _, _, _ = _world(n_samples)

    def _run():
        return region.evaluate_tuples(ctx)

    assert isinstance(benchmark(_run), set)


def test_speedup_shape():
    solver_series = Series("solver (s)")
    columnar_series = Series("columnar (s)")
    speedup_series = Series("speedup")
    for n_samples in MOFT_SIZES:
        ctx, region, moft, polygons, morning = _world(n_samples)
        solver_time, solver_answer = timed(
            lambda: region.evaluate_tuples(ctx), repeat=1
        )
        columnar_time, columnar_answer = timed(
            lambda: samples_in_polygons(moft, polygons, morning), repeat=3
        )
        assert columnar_answer == solver_answer
        solver_series.add(n_samples, solver_time)
        columnar_series.add(n_samples, columnar_time)
        speedup_series.add(
            n_samples,
            solver_time / columnar_time if columnar_time else float("inf"),
        )
    print_series(
        "Row solver vs columnar fast path",
        [solver_series, columnar_series, speedup_series],
    )
    assert all(s > 1 for _, s in speedup_series.points)
