"""E13 (ablation) — temporal selection push-down.

The solver filters rollup atoms after the MOFT atom enumerates samples;
:func:`~repro.query.optimizer.push_down_time` inverts constant Time-rollup
constraints into an instant set first.  Expected shape: the optimized plan
wins, and the win grows as the selected window shrinks relative to the
MOFT's time span.
"""

import pytest

from repro.bench import SCALES, Series, build_world, context_for, print_series, timed
from repro.query import RegionBuilder, push_down_time


def _query_region(city):
    return (
        RegionBuilder()
        .from_moft("FM")
        .during("timeOfDay", "Morning")
        .in_attribute_polygon("neighborhood")
        .build(city.gis)
    )


@pytest.mark.parametrize("optimized", [False, True], ids=["plain", "pushdown"])
def test_running_shape_query(benchmark, optimized):
    city, moft, time_dim = build_world(SCALES[1])
    ctx = context_for(city, moft, time_dim)
    region = _query_region(city)
    if optimized:
        region = push_down_time(region, ctx)

    def _run():
        return len(region.evaluate(ctx))

    count = benchmark(_run)
    assert count >= 0


def test_pushdown_equivalent_and_faster():
    series_plain = Series("plain (s)")
    series_optimized = Series("push-down (s)")
    for scale in SCALES:
        city, moft, time_dim = build_world(scale)
        ctx = context_for(city, moft, time_dim)
        region = _query_region(city)
        optimized = push_down_time(region, ctx)
        assert optimized.evaluate_tuples(ctx) == region.evaluate_tuples(ctx)
        plain_time, _ = timed(lambda: region.evaluate(ctx))
        optimized_time, _ = timed(lambda: optimized.evaluate(ctx))
        series_plain.add(scale.name, plain_time)
        series_optimized.add(scale.name, optimized_time)
    print_series(
        "Temporal push-down ablation", [series_plain, series_optimized]
    )
    # The push-down should not lose at any scale (the Morning window is a
    # quarter of the instants in these worlds).
    for (_, plain), (_, optimized) in zip(
        series_plain.points, series_optimized.points
    ):
        assert optimized <= plain * 1.1
