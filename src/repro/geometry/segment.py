"""Line segments: the building block of polylines, polygon edges and
linearly-interpolated trajectory pieces.

A trajectory sample interval ``(t_i, p_i) .. (t_{i+1}, p_{i+1})`` maps to a
:class:`Segment` whose parameter ``s in [0, 1]`` is an affine re-scaling of
time; the crossing parameters returned by :meth:`Segment.intersection_parameters`
therefore convert directly to crossing *times*, which is what the paper's
Type-7 (trajectory) queries need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.errors import GeometryError
from repro.geometry import predicates
from repro.geometry.point import BoundingBox, Point


@dataclass(frozen=True)
class Segment:
    """A closed, directed line segment from ``start`` to ``end``."""

    start: Point
    end: Point

    @property
    def is_degenerate(self) -> bool:
        """True when start and end coincide (a zero-length segment)."""
        return self.start.x == self.end.x and self.start.y == self.end.y

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    @property
    def midpoint(self) -> Point:
        """Midpoint of the segment."""
        return self.start.midpoint(self.end)

    @property
    def bbox(self) -> BoundingBox:
        """Tight axis-aligned bounding box."""
        return BoundingBox.from_points((self.start, self.end))

    def point_at(self, s: float) -> Point:
        """Return the point at parameter ``s``; ``s=0`` is start, ``s=1`` end.

        Values outside ``[0, 1]`` extrapolate along the supporting line.
        """
        return Point(
            self.start.x + s * (self.end.x - self.start.x),
            self.start.y + s * (self.end.y - self.start.y),
        )

    def reversed(self) -> "Segment":
        """Return the segment traversed in the opposite direction."""
        return Segment(self.end, self.start)

    def contains_point(self, point: Point) -> bool:
        """Return True when ``point`` lies on the closed segment."""
        return predicates.on_segment(
            point.as_tuple(), self.start.as_tuple(), self.end.as_tuple()
        )

    def parameter_of(self, point: Point) -> float:
        """Return the parameter ``s`` of a point assumed on the segment.

        Raises :class:`GeometryError` for degenerate segments; for points off
        the segment the result is the parameter of the orthogonal projection.
        """
        dx = self.end.x - self.start.x
        dy = self.end.y - self.start.y
        denom = dx * dx + dy * dy
        if denom == 0:
            if self.is_degenerate:
                raise GeometryError("parameter_of on a degenerate segment")
            # Subnormal extents underflow in float; fall back to exact
            # rational arithmetic.
            from fractions import Fraction

            edx = Fraction(float(self.end.x)) - Fraction(float(self.start.x))
            edy = Fraction(float(self.end.y)) - Fraction(float(self.start.y))
            enum = (
                (Fraction(float(point.x)) - Fraction(float(self.start.x))) * edx
                + (Fraction(float(point.y)) - Fraction(float(self.start.y))) * edy
            )
            return float(enum / (edx * edx + edy * edy))
        return ((point.x - self.start.x) * dx + (point.y - self.start.y) * dy) / denom

    def distance_to_point(self, point: Point) -> float:
        """Return the distance from ``point`` to the closed segment."""
        dx = self.end.x - self.start.x
        dy = self.end.y - self.start.y
        # The squared length can underflow to zero for subnormal extents;
        # treat those as degenerate too.
        if self.is_degenerate or dx * dx + dy * dy == 0:
            return self.start.distance_to(point)
        s = self.parameter_of(point)
        s = min(1.0, max(0.0, s))
        return self.point_at(s).distance_to(point)

    def intersects(self, other: "Segment") -> bool:
        """Return True when the two closed segments share at least one point."""
        return predicates.segments_intersect(
            self.start.as_tuple(),
            self.end.as_tuple(),
            other.start.as_tuple(),
            other.end.as_tuple(),
        )

    def intersection_parameters(
        self, other: "Segment"
    ) -> Optional[Tuple[float, float]]:
        """Return ``(s, u)`` for a unique crossing point, else None.

        ``s`` parameterizes this segment, ``u`` the other.  Collinear
        overlaps return None (no unique point); use :meth:`overlap` for them.
        """
        return predicates.segment_intersection_parameters(
            self.start.as_tuple(),
            self.end.as_tuple(),
            other.start.as_tuple(),
            other.end.as_tuple(),
        )

    def intersection(self, other: "Segment") -> Union[None, Point, "Segment"]:
        """Return the intersection: None, a single Point, or an overlap Segment."""
        params = self.intersection_parameters(other)
        if params is not None:
            return self.point_at(float(params[0]))
        overlap = self.overlap(other)
        if overlap is not None:
            return overlap
        if self.intersects(other):
            # Parallel but touching in exactly one point (shared endpoint).
            for p in (self.start, self.end):
                if other.contains_point(p):
                    return p
            for p in (other.start, other.end):
                if self.contains_point(p):
                    return p
        return None

    def overlap(self, other: "Segment") -> Optional["Segment"]:
        """Return the shared collinear sub-segment, or None.

        Returns None when the overlap degenerates to a single point or the
        segments are not collinear.
        """
        a, b = self.start.as_tuple(), self.end.as_tuple()
        c, d = other.start.as_tuple(), other.end.as_tuple()
        if predicates.orientation(a, b, c) != 0 or predicates.orientation(a, b, d) != 0:
            return None
        if self.is_degenerate or other.is_degenerate:
            return None
        candidates: List[Tuple[float, Point]] = []
        for p in (other.start, other.end):
            if self.contains_point(p):
                candidates.append((self.parameter_of(p), p))
        for p in (self.start, self.end):
            if other.contains_point(p):
                candidates.append((self.parameter_of(p), p))
        if len(candidates) < 2:
            return None
        candidates.sort(key=lambda item: item[0])
        lo, hi = candidates[0], candidates[-1]
        if math.isclose(lo[0], hi[0], abs_tol=1e-15):
            return None
        return Segment(lo[1], hi[1])

    def clipped_to_box(self, box: BoundingBox) -> Optional["Segment"]:
        """Return the sub-segment inside ``box`` (Liang-Barsky), or None.

        Degenerate clips (single touching point) return None.
        """
        x0, y0 = float(self.start.x), float(self.start.y)
        dx = float(self.end.x) - x0
        dy = float(self.end.y) - y0
        t0, t1 = 0.0, 1.0
        checks = (
            (-dx, x0 - box.min_x),
            (dx, box.max_x - x0),
            (-dy, y0 - box.min_y),
            (dy, box.max_y - y0),
        )
        for p, q in checks:
            if p == 0:
                if q < 0:
                    return None
                continue
            r = q / p
            if p < 0:
                if r > t1:
                    return None
                t0 = max(t0, r)
            else:
                if r < t0:
                    return None
                t1 = min(t1, r)
        if t0 >= t1:
            return None
        return Segment(self.point_at(t0), self.point_at(t1))
