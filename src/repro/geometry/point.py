"""Points and axis-aligned bounding boxes.

These are the leaves of the geometry kernel: every other geometry class is
built from :class:`Point` and answers extent queries with
:class:`BoundingBox`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

from repro.errors import GeometryError


@dataclass(frozen=True, order=True)
class Point:
    """An immutable point of the Euclidean plane.

    Coordinates are typically floats, but any :class:`numbers.Rational`
    (int, :class:`fractions.Fraction`) works; the robust predicates in
    :mod:`repro.geometry.predicates` exploit exact inputs.
    """

    x: float
    y: float

    def as_tuple(self) -> Tuple[float, float]:
        """Return the point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Return the Euclidean distance to ``other``."""
        return math.hypot(float(self.x) - float(other.x), float(self.y) - float(other.y))

    def squared_distance_to(self, other: "Point") -> float:
        """Return the squared Euclidean distance (no square root, exact for rationals)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint of the segment joining this point to ``other``."""
        return Point((self.x + other.x) / 2, (self.y + other.y) / 2)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


@dataclass(frozen=True)
class BoundingBox:
    """A closed axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise GeometryError(
                f"degenerate bounding box: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "BoundingBox":
        """Return the tightest box covering ``points`` (at least one required)."""
        pts = list(points)
        if not pts:
            raise GeometryError("bounding box of an empty point set")
        return cls(
            min(p.x for p in pts),
            min(p.y for p in pts),
            max(p.x for p in pts),
            max(p.y for p in pts),
        )

    @property
    def width(self) -> float:
        """Extent along the x axis."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along the y axis."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Area of the box (zero for degenerate boxes)."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Center point of the box."""
        return Point((self.min_x + self.max_x) / 2, (self.min_y + self.max_y) / 2)

    def contains_point(self, point: Point) -> bool:
        """Return True when ``point`` lies in the closed box."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        """Return True when ``other`` lies entirely inside this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and other.max_x <= self.max_x
            and other.max_y <= self.max_y
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """Return True when the closed boxes share at least one point."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Return the smallest box covering both boxes."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """Return the box grown by ``margin`` on all four sides."""
        if margin < 0 and (2 * margin > self.width or 2 * margin > self.height):
            raise GeometryError("negative margin larger than box extent")
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """Return the four corners in counter-clockwise order from min-min."""
        return (
            Point(self.min_x, self.min_y),
            Point(self.max_x, self.min_y),
            Point(self.max_x, self.max_y),
            Point(self.min_x, self.max_y),
        )
