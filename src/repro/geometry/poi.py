"""Place-of-interest geometry: a point feature with an influence radius.

The follow-up paper ("Aggregation Languages for Moving Object and Places
of Interest Data") extends the GIS dimension model with *places of
interest*: point features carrying a radius within which a moving object
is considered to be *at* the place.  Geometrically a POI is a closed
disc; it participates in layers, overlays and spatial indexes through
the same ``geometry_bbox`` / ``geometries_intersect`` dispatch as the
other kinds.

``Poi`` is deliberately *not* a :class:`~repro.geometry.point.Point`
subclass: :func:`repro.gis.geometries.kind_of` classifies by
``isinstance`` and a disc must never masquerade as a node.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import GeometryError
from repro.geometry.point import BoundingBox, Point
from repro.geometry.polygon import Polygon
from repro.geometry.polyline import Polyline
from repro.geometry.segment import Segment


class Poi:
    """A closed disc: ``center`` plus a strictly positive ``radius``.

    Membership is inclusive (``distance <= radius``), matching the
    closed polygons elsewhere in the model: an object sampled exactly
    on the rim is *at* the place.
    """

    __slots__ = ("center", "radius")

    def __init__(self, center: Point, radius: float) -> None:
        if not isinstance(center, Point):
            raise GeometryError(
                f"POI center must be a Point, got {type(center).__name__}"
            )
        radius = float(radius)
        if not math.isfinite(radius) or radius <= 0.0:
            raise GeometryError(
                f"POI radius must be finite and > 0, got {radius!r}"
            )
        object.__setattr__(self, "center", center)
        object.__setattr__(self, "radius", radius)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Poi is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Poi):
            return NotImplemented
        return self.center == other.center and self.radius == other.radius

    def __hash__(self) -> int:
        return hash((Poi, self.center, self.radius))

    def __repr__(self) -> str:
        return f"Poi({self.center!r}, {self.radius!r})"

    @classmethod
    def at(cls, x: float, y: float, radius: float) -> "Poi":
        return cls(Point(x, y), radius)

    @property
    def bbox(self) -> BoundingBox:
        c, r = self.center, self.radius
        return BoundingBox(c.x - r, c.y - r, c.x + r, c.y + r)

    @property
    def area(self) -> float:
        return math.pi * self.radius * self.radius

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.center.x, self.center.y, self.radius)

    # -- predicates -----------------------------------------------------------

    def contains_point(self, point: Point) -> bool:
        """Closed-disc membership: ``|point - center| <= radius``."""
        return self.center.squared_distance_to(point) <= self.radius * self.radius

    def contains_segment(self, segment: Segment) -> bool:
        """Both endpoints in the disc (discs are convex)."""
        return self.contains_point(segment.start) and self.contains_point(
            segment.end
        )

    def intersects_segment(self, segment: Segment) -> bool:
        """Does the segment touch the closed disc?"""
        return segment.distance_to_point(self.center) <= self.radius

    def intersects_polyline(self, polyline: Polyline) -> bool:
        return any(self.intersects_segment(s) for s in polyline.segments())

    def intersects_polygon(self, polygon: Polygon) -> bool:
        """Disc-vs-polygon: center inside, or boundary within radius."""
        if polygon.contains_point(self.center):
            return True
        return any(
            seg.distance_to_point(self.center) <= self.radius
            for seg in polygon.boundary_segments()
        )

    def intersects_poi(self, other: "Poi") -> bool:
        limit = self.radius + other.radius
        return self.center.squared_distance_to(other.center) <= limit * limit

    def contains_poi(self, other: "Poi") -> bool:
        """Disc containment: ``|c1-c2| + r2 <= r1``."""
        return (
            self.center.distance_to(other.center) + other.radius
            <= self.radius
        )

    def contains_polygon(self, polygon: Polygon) -> bool:
        """All boundary vertices in the disc (convexity covers the rest)."""
        return all(
            self.contains_point(seg.start) and self.contains_point(seg.end)
            for seg in polygon.boundary_segments()
        )

    def inside_polygon(self, polygon: Polygon) -> bool:
        """Is the whole disc inside the polygon?

        Center containment plus a boundary-clearance test: the disc fits
        iff the center is interior and no boundary edge comes within
        ``radius`` of it.
        """
        if not polygon.contains_point(self.center):
            return False
        return all(
            seg.distance_to_point(self.center) >= self.radius
            for seg in polygon.boundary_segments()
        )
