"""Polylines: streets, highways, rivers — and the spatial projection of a
linearly-interpolated trajectory.

The paper's geometry hierarchy puts ``line`` below ``polyline`` (Figure 2);
here a :class:`Polyline` is the polyline level and its :meth:`segments` are
the ``line`` elements beneath it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.point import BoundingBox, Point
from repro.geometry.segment import Segment


@dataclass(frozen=True)
class Polyline:
    """An open chain of two or more vertices joined by straight segments."""

    vertices: Tuple[Point, ...]

    def __init__(self, vertices: Sequence[Point]) -> None:
        pts = tuple(vertices)
        if len(pts) < 2:
            raise GeometryError("a polyline needs at least two vertices")
        object.__setattr__(self, "vertices", pts)

    def __len__(self) -> int:
        return len(self.vertices)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.vertices)

    def segments(self) -> List[Segment]:
        """Return the consecutive segments of the chain."""
        return [
            Segment(a, b) for a, b in zip(self.vertices, self.vertices[1:])
        ]

    @property
    def length(self) -> float:
        """Total Euclidean length of the chain."""
        return sum(seg.length for seg in self.segments())

    @property
    def bbox(self) -> BoundingBox:
        """Tight axis-aligned bounding box over all vertices."""
        return BoundingBox.from_points(self.vertices)

    @property
    def is_closed(self) -> bool:
        """True when the first and last vertices coincide."""
        return self.vertices[0] == self.vertices[-1]

    def contains_point(self, point: Point) -> bool:
        """Return True when ``point`` lies on one of the chain's segments."""
        return any(seg.contains_point(point) for seg in self.segments())

    def distance_to_point(self, point: Point) -> float:
        """Return the distance from ``point`` to the nearest chain point."""
        return min(seg.distance_to_point(point) for seg in self.segments())

    def point_at_distance(self, distance: float) -> Point:
        """Return the point reached after walking ``distance`` from the start.

        Distances are clamped to ``[0, length]``.
        """
        if distance <= 0:
            return self.vertices[0]
        remaining = distance
        for seg in self.segments():
            seg_len = seg.length
            if remaining <= seg_len and seg_len > 0:
                return seg.point_at(remaining / seg_len)
            remaining -= seg_len
        return self.vertices[-1]

    def point_at_fraction(self, fraction: float) -> Point:
        """Return the point at ``fraction`` of total length (0 = start)."""
        return self.point_at_distance(fraction * self.length)

    def intersects_segment(self, segment: Segment) -> bool:
        """Return True when any chain segment touches ``segment``."""
        if not self.bbox.intersects(segment.bbox):
            return False
        return any(seg.intersects(segment) for seg in self.segments())

    def intersects_polyline(self, other: "Polyline") -> bool:
        """Return True when the two chains share at least one point."""
        if not self.bbox.intersects(other.bbox):
            return False
        other_segments = other.segments()
        return any(
            a.intersects(b) for a in self.segments() for b in other_segments
        )

    def intersection_points(self, segment: Segment) -> List[Point]:
        """Return the (deduplicated) crossing points with ``segment``."""
        points: List[Point] = []
        for seg in self.segments():
            params = seg.intersection_parameters(segment)
            if params is None:
                continue
            candidate = seg.point_at(float(params[0]))
            if not any(
                math.isclose(candidate.x, p.x, abs_tol=1e-12)
                and math.isclose(candidate.y, p.y, abs_tol=1e-12)
                for p in points
            ):
                points.append(candidate)
        return points

    def resampled(self, num_points: int) -> "Polyline":
        """Return a copy re-sampled to ``num_points`` equally spaced vertices."""
        if num_points < 2:
            raise GeometryError("resampling needs at least two points")
        total = self.length
        if total == 0:
            raise GeometryError("cannot resample a zero-length polyline")
        return Polyline(
            [
                self.point_at_distance(total * i / (num_points - 1))
                for i in range(num_points)
            ]
        )

    def simplified(self, tolerance: float) -> "Polyline":
        """Return a Douglas-Peucker simplification within ``tolerance``."""
        if tolerance < 0:
            raise GeometryError("tolerance must be non-negative")
        keep = _douglas_peucker(list(self.vertices), tolerance)
        return Polyline(keep)


def _douglas_peucker(points: List[Point], tolerance: float) -> List[Point]:
    """Recursively simplify ``points``, keeping endpoints always."""
    if len(points) < 3:
        return points
    chord = Segment(points[0], points[-1])
    if chord.is_degenerate:
        distances = [points[0].distance_to(p) for p in points[1:-1]]
    else:
        distances = [chord.distance_to_point(p) for p in points[1:-1]]
    worst = max(range(len(distances)), key=distances.__getitem__)
    if distances[worst] <= tolerance:
        return [points[0], points[-1]]
    split = worst + 1
    left = _douglas_peucker(points[: split + 1], tolerance)
    right = _douglas_peucker(points[split:], tolerance)
    return left[:-1] + right
