"""Vectorized segment-vs-polygon clip kernels.

The hot loops of the dwell/THROUGH machinery — the pre-agg builder, the
moving-object operations and the overlay path — all reduce to "clip many
trajectory segments against one polygon".  The scalar path
(:meth:`Polygon.clip_segment` / :meth:`Polygon.intersects_segment`)
costs hundreds of Python bytecodes per segment.  This module batches it.

**Exact by construction.**  The kernel never *approximates* the scalar
answer; it partitions segments into three classes with a conservative,
vectorized test and only answers the easy ones itself:

* status ``0`` — provably outside: the segment's bbox misses the
  polygon's, or the segment provably touches no boundary edge and its
  midpoint parity says *outside*.  Scalar result: no clip intervals,
  no intersection.
* status ``1`` — provably inside, far from the boundary: no possible
  edge contact and start/mid/end all at least ``2 x tolerance`` from
  every edge, midpoint parity *inside*.  Scalar result: one interval
  ``(0.0, 1.0)``.
* status ``2`` — everything else (possible boundary contact, degenerate
  segments, near-boundary geometry): the kernel calls the scalar
  methods, so these are bit-identical trivially.

For statuses 0/1 the equivalence argument: a conservatively *clean*
segment has no boundary contact, so the scalar cut set is ``[0, 1]`` and
its answer is ``contains_point(midpoint)``; for points ``>= 2 x
tolerance`` from every edge the boundary/near-boundary branches cannot
fire and the vectorized even-odd parity evaluates the *same float
expressions* as :func:`~repro.geometry.polygon._point_in_ring`, hence
bit-equal.  A clean segment lies in a single component, so inside/
outside extends from the midpoint to the whole segment, which also
settles ``intersects_segment``.

Backends (``REPRO_CLIP_KERNEL`` env var or :func:`set_kernel_backend`):

========== =====================================================
``auto``   the default: pure numpy
``numpy``  vectorized classification in numpy
``numba``  jit-compiled classification loops (falls back to
           ``numpy`` when numba is not installed)
``scalar`` classify everything as status 2 — the old per-segment
           path, kept as the differential-testing baseline
========== =====================================================
"""

from __future__ import annotations

import math
import os
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.segment import Segment

#: Relative half-width of the sign-uncertainty band around cross
#: products: a computed cross product within ``_SEP_EPS x magnitude`` of
#: zero is treated as "could be either sign" and routed to the scalar
#: fallback.  Double arithmetic errs by a few ulps (~1e-16 relative), so
#: 1e-9 is a ~1e7-fold safety margin.
_SEP_EPS = 1e-9

#: Segment batch size for the pairwise (segment x edge) work arrays.
_CHUNK = 4096

_BACKENDS = ("auto", "numpy", "numba", "scalar")
_backend: Optional[str] = None


def set_kernel_backend(name: Optional[str]) -> str:
    """Select the classification backend; returns the *effective* one.

    ``None`` re-resolves from the ``REPRO_CLIP_KERNEL`` environment
    variable (defaulting to ``auto``).  Requesting ``numba`` without
    numba installed degrades to ``numpy`` — the fallback the ISSUE's
    feature flag promises.
    """
    global _backend
    if name is None:
        name = os.environ.get("REPRO_CLIP_KERNEL", "auto").strip() or "auto"
    name = name.lower()
    if name not in _BACKENDS:
        raise GeometryError(
            f"unknown clip-kernel backend {name!r}; "
            f"choose from {', '.join(_BACKENDS)}"
        )
    if name == "auto":
        name = "numpy"
    if name == "numba" and _numba_classify() is None:
        name = "numpy"
    _backend = name
    return name


def kernel_backend() -> str:
    """The effective classification backend (resolving lazily)."""
    if _backend is None:
        return set_kernel_backend(None)
    return _backend


_numba_compiled = None
_numba_failed = False


def _numba_classify():
    """The jitted classification loops, or None when numba is missing."""
    global _numba_compiled, _numba_failed
    if _numba_compiled is None and not _numba_failed:
        try:
            import numba
        except ImportError:
            _numba_failed = True
            return None
        _numba_compiled = numba.njit(cache=False)(_classify_loops)
    return _numba_compiled


# -- per-polygon edge arrays (cached) -----------------------------------------


class EdgeArrays:
    """A polygon's boundary flattened into numpy vectors (plus bboxes).

    ``ax/ay -> bx/by`` are the directed boundary edges, shell ring
    first, then each hole; ``ring_offsets`` gives the edge-index range
    of ring ``i`` as ``[ring_offsets[i], ring_offsets[i+1])``.
    """

    __slots__ = (
        "ax", "ay", "bx", "by",
        "ring_offsets",
        "eminx", "eminy", "emaxx", "emaxy",
        "bminx", "bminy", "bmaxx", "bmaxy",
        "tolerance",
    )

    def __init__(self, polygon: Polygon) -> None:
        rings = [polygon.shell, *polygon.holes]
        ax: List[float] = []
        ay: List[float] = []
        bx: List[float] = []
        by: List[float] = []
        offsets = [0]
        for ring in rings:
            n = len(ring)
            for i in range(n):
                p, q = ring[i], ring[(i + 1) % n]
                ax.append(float(p.x))
                ay.append(float(p.y))
                bx.append(float(q.x))
                by.append(float(q.y))
            offsets.append(len(ax))
        self.ax = np.asarray(ax, dtype=np.float64)
        self.ay = np.asarray(ay, dtype=np.float64)
        self.bx = np.asarray(bx, dtype=np.float64)
        self.by = np.asarray(by, dtype=np.float64)
        self.ring_offsets = np.asarray(offsets, dtype=np.int64)
        self.eminx = np.minimum(self.ax, self.bx)
        self.emaxx = np.maximum(self.ax, self.bx)
        self.eminy = np.minimum(self.ay, self.by)
        self.emaxy = np.maximum(self.ay, self.by)
        box = polygon.bbox
        self.bminx = float(box.min_x)
        self.bminy = float(box.min_y)
        self.bmaxx = float(box.max_x)
        self.bmaxy = float(box.max_y)
        # The same scale-relative tolerance Polygon.clip_segment uses for
        # its near-boundary rescue; the kernel demands 2x this clearance
        # before trusting parity alone.
        self.tolerance = 1e-9 * max(box.width, box.height, 1.0)


def polygon_edge_arrays(polygon: Polygon) -> EdgeArrays:
    """The polygon's :class:`EdgeArrays`, built once and cached on it.

    Polygons are frozen (immutable), so the cache can never go stale;
    :meth:`Polygon.__getstate__` strips it, so pickled geometries stay
    lean.
    """
    cached = getattr(polygon, "_edge_arrays", None)
    if cached is None:
        cached = EdgeArrays(polygon)
        object.__setattr__(polygon, "_edge_arrays", cached)
    return cached


# -- classification -----------------------------------------------------------


def _ring_parity(
    px: np.ndarray,
    py: np.ndarray,
    ax: np.ndarray,
    ay: np.ndarray,
    bx: np.ndarray,
    by: np.ndarray,
) -> np.ndarray:
    """Vectorized even-odd ray cast of points against one ring.

    Evaluates exactly the expressions of
    :func:`repro.geometry.polygon._point_in_ring` — crossing condition
    ``(ay > y) != (by > y)`` and ``x < ax + (y - ay) * (bx - ax) /
    (by - ay)`` — so for any point the result is bit-identical to the
    scalar loop.
    """
    cond = (ay[None, :] > py[:, None]) != (by[None, :] > py[:, None])
    with np.errstate(divide="ignore", invalid="ignore"):
        x_cross = (
            ax[None, :]
            + (py[:, None] - ay[None, :])
            * (bx - ax)[None, :]
            / (by - ay)[None, :]
        )
        hits = cond & (px[:, None] < x_cross)
    return (hits.sum(axis=1) & 1).astype(bool)


def _points_inside(px: np.ndarray, py: np.ndarray, edges: EdgeArrays) -> np.ndarray:
    """Parity containment (shell AND NOT any hole) for far-field points."""
    offs = edges.ring_offsets
    o0, o1 = int(offs[0]), int(offs[1])
    inside = _ring_parity(
        px, py,
        edges.ax[o0:o1], edges.ay[o0:o1],
        edges.bx[o0:o1], edges.by[o0:o1],
    )
    for r in range(1, len(offs) - 1):
        h0, h1 = int(offs[r]), int(offs[r + 1])
        inside &= ~_ring_parity(
            px, py,
            edges.ax[h0:h1], edges.ay[h0:h1],
            edges.bx[h0:h1], edges.by[h0:h1],
        )
    return inside


def _min_dist2_to_edges(
    px: np.ndarray, py: np.ndarray, edges: EdgeArrays
) -> np.ndarray:
    """Squared distance from each point to the nearest boundary edge."""
    dx = (edges.bx - edges.ax)[None, :]
    dy = (edges.by - edges.ay)[None, :]
    rx = px[:, None] - edges.ax[None, :]
    ry = py[:, None] - edges.ay[None, :]
    len2 = dx * dx + dy * dy
    safe = np.where(len2 > 0.0, len2, 1.0)
    tproj = np.clip((rx * dx + ry * dy) / safe, 0.0, 1.0)
    tproj = np.where(len2 > 0.0, tproj, 0.0)
    cx = rx - tproj * dx
    cy = ry - tproj * dy
    d2 = cx * cx + cy * cy
    return d2.min(axis=1)


def _classify_chunk_numpy(
    x0: np.ndarray,
    y0: np.ndarray,
    x1: np.ndarray,
    y1: np.ndarray,
    edges: EdgeArrays,
) -> np.ndarray:
    n = x0.shape[0]
    status = np.full(n, 2, dtype=np.uint8)
    sminx = np.minimum(x0, x1)
    smaxx = np.maximum(x0, x1)
    sminy = np.minimum(y0, y1)
    smaxy = np.maximum(y0, y1)
    disjoint = (
        (sminx > edges.bmaxx)
        | (smaxx < edges.bminx)
        | (sminy > edges.bmaxy)
        | (smaxy < edges.bminy)
    )
    status[disjoint] = 0
    cand = ~disjoint & ~((x0 == x1) & (y0 == y1))
    idx = np.nonzero(cand)[0]
    if idx.size == 0:
        return status

    cx0, cy0 = x0[idx], y0[idx]
    cx1, cy1 = x1[idx], y1[idx]
    # Pairwise (segment x edge) bbox overlap.
    overlap = ~(
        (sminx[idx, None] > edges.emaxx[None, :])
        | (smaxx[idx, None] < edges.eminx[None, :])
        | (sminy[idx, None] > edges.emaxy[None, :])
        | (smaxy[idx, None] < edges.eminy[None, :])
    )
    # Separation by the segment's supporting line: both edge endpoints
    # strictly (beyond the uncertainty band) on one side.
    dsx = (cx1 - cx0)[:, None]
    dsy = (cy1 - cy0)[:, None]
    rax = edges.ax[None, :] - cx0[:, None]
    ray = edges.ay[None, :] - cy0[:, None]
    rbx = edges.bx[None, :] - cx0[:, None]
    rby = edges.by[None, :] - cy0[:, None]
    d1 = dsx * ray - dsy * rax
    d2 = dsx * rby - dsy * rbx
    b1 = _SEP_EPS * (np.abs(dsx) * np.abs(ray) + np.abs(dsy) * np.abs(rax))
    b2 = _SEP_EPS * (np.abs(dsx) * np.abs(rby) + np.abs(dsy) * np.abs(rbx))
    sep_seg = ((d1 > b1) & (d2 > b2)) | ((d1 < -b1) & (d2 < -b2))
    # Separation by the edge's supporting line: both segment endpoints
    # strictly on one side.
    dex = (edges.bx - edges.ax)[None, :]
    dey = (edges.by - edges.ay)[None, :]
    r1x = cx1[:, None] - edges.ax[None, :]
    r1y = cy1[:, None] - edges.ay[None, :]
    d3 = dex * (-ray) - dey * (-rax)
    d4 = dex * r1y - dey * r1x
    b3 = _SEP_EPS * (np.abs(dex) * np.abs(ray) + np.abs(dey) * np.abs(rax))
    b4 = _SEP_EPS * (np.abs(dex) * np.abs(r1y) + np.abs(dey) * np.abs(r1x))
    sep_edge = ((d3 > b3) & (d4 > b4)) | ((d3 < -b3) & (d4 < -b4))
    contact = overlap & ~sep_seg & ~sep_edge
    clean = ~contact.any(axis=1)
    if not clean.any():
        return status

    kept = idx[clean]
    kx0, ky0 = x0[kept], y0[kept]
    kx1, ky1 = x1[kept], y1[kept]
    # Midpoint exactly as the scalar path: Segment.point_at(0.5) is
    # start + 0.5 * (end - start), NOT (start + end) / 2.
    mx = kx0 + 0.5 * (kx1 - kx0)
    my = ky0 + 0.5 * (ky1 - ky0)
    pts_x = np.concatenate([kx0, mx, kx1])
    pts_y = np.concatenate([ky0, my, ky1])
    d2min = _min_dist2_to_edges(pts_x, pts_y, edges).reshape(3, kept.size)
    clear2 = (2.0 * edges.tolerance) ** 2
    far = (d2min >= clear2).all(axis=0)
    if not far.any():
        return status
    final = kept[far]
    inside = _points_inside(mx[far], my[far], edges)
    status[final] = np.where(inside, 1, 0).astype(np.uint8)
    return status


def _classify_loops(
    x0, y0, x1, y1,
    ax, ay, bx, by, ring_offsets,
    bminx, bminy, bmaxx, bmaxy, tolerance,
):
    """Loop form of :func:`_classify_chunk_numpy` — same math, scalar
    control flow, so ``numba.njit`` compiles it directly.  Runs (slowly)
    uncompiled too, which is how the equivalence tests pin it against
    the numpy implementation without numba installed.
    """
    n = x0.shape[0]
    n_edges = ax.shape[0]
    n_rings = ring_offsets.shape[0] - 1
    status = np.full(n, 2, dtype=np.uint8)
    clear2 = (2.0 * tolerance) * (2.0 * tolerance)
    for i in range(n):
        sx0, sy0, sx1, sy1 = x0[i], y0[i], x1[i], y1[i]
        sminx = sx0 if sx0 < sx1 else sx1
        smaxx = sx1 if sx0 < sx1 else sx0
        sminy = sy0 if sy0 < sy1 else sy1
        smaxy = sy1 if sy0 < sy1 else sy0
        if sminx > bmaxx or smaxx < bminx or sminy > bmaxy or smaxy < bminy:
            status[i] = 0
            continue
        if sx0 == sx1 and sy0 == sy1:
            continue  # degenerate: scalar fallback
        dsx = sx1 - sx0
        dsy = sy1 - sy0
        contact = False
        for e in range(n_edges):
            eax, eay, ebx, eby = ax[e], ay[e], bx[e], by[e]
            eminx = eax if eax < ebx else ebx
            emaxx = ebx if eax < ebx else eax
            eminy = eay if eay < eby else eby
            emaxy = eby if eay < eby else eay
            if (
                sminx > emaxx or smaxx < eminx
                or sminy > emaxy or smaxy < eminy
            ):
                continue
            rax_ = eax - sx0
            ray_ = eay - sy0
            rbx_ = ebx - sx0
            rby_ = eby - sy0
            d1 = dsx * ray_ - dsy * rax_
            d2 = dsx * rby_ - dsy * rbx_
            b1 = _SEP_EPS * (abs(dsx) * abs(ray_) + abs(dsy) * abs(rax_))
            b2 = _SEP_EPS * (abs(dsx) * abs(rby_) + abs(dsy) * abs(rbx_))
            if (d1 > b1 and d2 > b2) or (d1 < -b1 and d2 < -b2):
                continue
            dex = ebx - eax
            dey = eby - eay
            r1x = sx1 - eax
            r1y = sy1 - eay
            d3 = dex * (-ray_) - dey * (-rax_)
            d4 = dex * r1y - dey * r1x
            b3 = _SEP_EPS * (abs(dex) * abs(ray_) + abs(dey) * abs(rax_))
            b4 = _SEP_EPS * (abs(dex) * abs(r1y) + abs(dey) * abs(r1x))
            if (d3 > b3 and d4 > b4) or (d3 < -b3 and d4 < -b4):
                continue
            contact = True
            break
        if contact:
            continue
        mx = sx0 + 0.5 * (sx1 - sx0)
        my = sy0 + 0.5 * (sy1 - sy0)
        far = True
        for e in range(n_edges):
            eax, eay = ax[e], ay[e]
            dex = bx[e] - eax
            dey = by[e] - eay
            len2 = dex * dex + dey * dey
            for (px, py) in ((sx0, sy0), (mx, my), (sx1, sy1)):
                rx = px - eax
                ry = py - eay
                if len2 > 0.0:
                    tproj = (rx * dex + ry * dey) / len2
                    if tproj < 0.0:
                        tproj = 0.0
                    elif tproj > 1.0:
                        tproj = 1.0
                else:
                    tproj = 0.0
                cx = rx - tproj * dex
                cy = ry - tproj * dey
                if cx * cx + cy * cy < clear2:
                    far = False
                    break
            if not far:
                break
        if not far:
            continue
        inside = False
        s0, s1 = ring_offsets[0], ring_offsets[1]
        for e in range(s0, s1):
            if (ay[e] > my) != (by[e] > my):
                x_cross = ax[e] + (my - ay[e]) * (bx[e] - ax[e]) / (by[e] - ay[e])
                if mx < x_cross:
                    inside = not inside
        if inside:
            for r in range(1, n_rings):
                h0, h1 = ring_offsets[r], ring_offsets[r + 1]
                in_hole = False
                for e in range(h0, h1):
                    if (ay[e] > my) != (by[e] > my):
                        x_cross = (
                            ax[e]
                            + (my - ay[e]) * (bx[e] - ax[e]) / (by[e] - ay[e])
                        )
                        if mx < x_cross:
                            in_hole = not in_hole
                if in_hole:
                    inside = False
                    break
        status[i] = 1 if inside else 0
    return status


def classify_segments(
    polygon: Polygon,
    x0: np.ndarray,
    y0: np.ndarray,
    x1: np.ndarray,
    y1: np.ndarray,
) -> np.ndarray:
    """Classify segments vs ``polygon`` into status codes 0/1/2.

    0 = provably outside, 1 = provably fully inside (far from the
    boundary), 2 = undecided, answer with the scalar path.
    """
    x0 = np.ascontiguousarray(x0, dtype=np.float64)
    y0 = np.ascontiguousarray(y0, dtype=np.float64)
    x1 = np.ascontiguousarray(x1, dtype=np.float64)
    y1 = np.ascontiguousarray(y1, dtype=np.float64)
    n = x0.shape[0]
    backend = kernel_backend()
    if backend == "scalar" or n == 0:
        return np.full(n, 2, dtype=np.uint8)
    edges = polygon_edge_arrays(polygon)
    jitted = _numba_classify() if backend == "numba" else None
    out = np.empty(n, dtype=np.uint8)
    for lo in range(0, n, _CHUNK):
        hi = min(lo + _CHUNK, n)
        if jitted is not None:
            out[lo:hi] = jitted(
                x0[lo:hi], y0[lo:hi], x1[lo:hi], y1[lo:hi],
                edges.ax, edges.ay, edges.bx, edges.by,
                edges.ring_offsets,
                edges.bminx, edges.bminy, edges.bmaxx, edges.bmaxy,
                edges.tolerance,
            )
        else:
            out[lo:hi] = _classify_chunk_numpy(
                x0[lo:hi], y0[lo:hi], x1[lo:hi], y1[lo:hi], edges
            )
    return out


# -- batch answers ------------------------------------------------------------


def _record_status(obs, status: np.ndarray) -> None:
    if obs is not None and status.size:
        fallback = int(np.count_nonzero(status == 2))
        obs.incr("clip_kernel_segments", status.size)
        if fallback:
            obs.incr("clip_kernel_fallback", fallback)


def clip_segments_batch(
    polygon: Polygon,
    x0: np.ndarray,
    y0: np.ndarray,
    x1: np.ndarray,
    y1: np.ndarray,
    obs=None,
) -> List[List[Tuple[float, float]]]:
    """Per-segment clip intervals, bit-identical to
    :meth:`Polygon.clip_segment` on every segment."""
    status = classify_segments(polygon, x0, y0, x1, y1)
    _record_status(obs, status)
    out: List[List[Tuple[float, float]]] = []
    for i, s in enumerate(status):
        if s == 1:
            out.append([(0.0, 1.0)])
        elif s == 0:
            out.append([])
        else:
            out.append(
                polygon.clip_segment(
                    Segment(
                        Point(float(x0[i]), float(y0[i])),
                        Point(float(x1[i]), float(y1[i])),
                    )
                )
            )
    return out


def segments_dwell(
    polygon: Polygon,
    x0: np.ndarray,
    y0: np.ndarray,
    x1: np.ndarray,
    y1: np.ndarray,
    dt: np.ndarray,
    obs=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment dwell time inside ``polygon`` plus the intersection mask.

    ``dwell[i]`` bit-equals ``sum((s1 - s0) * dt[i] for (s0, s1) in
    polygon.clip_segment(seg_i))`` and ``hits[i]`` equals
    ``polygon.intersects_segment(seg_i)``.
    """
    status = classify_segments(polygon, x0, y0, x1, y1)
    _record_status(obs, status)
    n = status.shape[0]
    dwell = np.zeros(n, dtype=np.float64)
    hits = np.zeros(n, dtype=bool)
    fast_in = status == 1
    if fast_in.any():
        # Scalar arithmetic for a fully-inside segment is
        # (1.0 - 0.0) * dt, which is exactly dt.
        dwell[fast_in] = np.asarray(dt, dtype=np.float64)[fast_in]
        hits[fast_in] = True
    for i in np.nonzero(status == 2)[0]:
        seg = Segment(
            Point(float(x0[i]), float(y0[i])),
            Point(float(x1[i]), float(y1[i])),
        )
        if polygon.intersects_segment(seg):
            hits[i] = True
            dt_i = float(dt[i])
            total = 0.0
            for s0, s1 in polygon.clip_segment(seg):
                total += (s1 - s0) * dt_i
            dwell[i] = total
    return dwell, hits


def segments_intersect(
    polygon: Polygon,
    x0: np.ndarray,
    y0: np.ndarray,
    x1: np.ndarray,
    y1: np.ndarray,
    obs=None,
) -> np.ndarray:
    """Per-segment :meth:`Polygon.intersects_segment`, batched."""
    status = classify_segments(polygon, x0, y0, x1, y1)
    _record_status(obs, status)
    hits = status == 1
    for i in np.nonzero(status == 2)[0]:
        hits[i] = polygon.intersects_segment(
            Segment(
                Point(float(x0[i]), float(y0[i])),
                Point(float(x1[i]), float(y1[i])),
            )
        )
    return hits


def segments_fully_inside(
    polygon: Polygon,
    x0: np.ndarray,
    y0: np.ndarray,
    x1: np.ndarray,
    y1: np.ndarray,
    obs=None,
) -> np.ndarray:
    """Per-segment "clip == [(0.0, 1.0)]" — full containment, batched."""
    status = classify_segments(polygon, x0, y0, x1, y1)
    _record_status(obs, status)
    inside = status == 1
    for i in np.nonzero(status == 2)[0]:
        clips = polygon.clip_segment(
            Segment(
                Point(float(x0[i]), float(y0[i])),
                Point(float(x1[i]), float(y1[i])),
            )
        )
        inside[i] = clips == [(0.0, 1.0)]
    return inside


# -- disc (POI) kernels -------------------------------------------------------
#
# The stop/move machinery (:mod:`repro.poi`) clips trajectory segments
# against closed discs.  Unlike the polygon kernel there is no scalar
# fallback class: the quadratic |p0 + w*d - c|^2 = r^2 solves every
# segment outright, so the batched fold below IS the kernel path and the
# scalar fold exists only as its bit-identical reference (pinned by
# tests/poi/test_dwell_fold_kernel.py).  Both evaluate the exact same
# IEEE-754 expression sequence per element, hence bitwise equality.


def disc_clip_scalar(
    cx: float,
    cy: float,
    r: float,
    x0: float,
    y0: float,
    x1: float,
    y1: float,
) -> Tuple[float, float]:
    """Parameter interval ``[lo, hi]`` of one segment inside the closed disc.

    Returns ``(0.0, 0.0)`` (empty) when the segment misses the disc or
    only grazes it tangentially (measure-zero contact).  A stationary
    segment (coincident endpoints) is wholly in (``(0.0, 1.0)``) or
    wholly out by endpoint membership.
    """
    dx = x1 - x0
    dy = y1 - y0
    fx = x0 - cx
    fy = y0 - cy
    a = dx * dx + dy * dy
    c = fx * fx + fy * fy - r * r
    if a == 0.0:
        return (0.0, 1.0) if c <= 0.0 else (0.0, 0.0)
    b = fx * dx + fy * dy
    disc = b * b - a * c
    if disc <= 0.0:
        return (0.0, 0.0)
    sq = math.sqrt(disc)
    w1 = (-b - sq) / a
    w2 = (-b + sq) / a
    lo = 0.0 if w1 < 0.0 else (1.0 if w1 > 1.0 else w1)
    hi = 0.0 if w2 < 0.0 else (1.0 if w2 > 1.0 else w2)
    return (lo, hi)


def disc_clip_batch(
    cx: float,
    cy: float,
    r: float,
    x0: np.ndarray,
    y0: np.ndarray,
    x1: np.ndarray,
    y1: np.ndarray,
    obs=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched :func:`disc_clip_scalar` over segment arrays.

    Bitwise-identical to the scalar fold: every element goes through the
    same expression sequence (products, discriminant, sqrt, division,
    branch-style clamp), just vectorized.  The ``scalar`` kernel backend
    routes through the reference loop outright.
    """
    x0 = np.asarray(x0, dtype=np.float64)
    y0 = np.asarray(y0, dtype=np.float64)
    x1 = np.asarray(x1, dtype=np.float64)
    y1 = np.asarray(y1, dtype=np.float64)
    n = x0.shape[0]
    if obs is not None:
        obs.incr("disc_kernel_segments", n)
    if kernel_backend() == "scalar":
        lo = np.zeros(n, dtype=np.float64)
        hi = np.zeros(n, dtype=np.float64)
        cxf, cyf, rf = float(cx), float(cy), float(r)
        for i in range(n):
            lo[i], hi[i] = disc_clip_scalar(
                cxf, cyf, rf,
                float(x0[i]), float(y0[i]), float(x1[i]), float(y1[i]),
            )
        return lo, hi
    dx = x1 - x0
    dy = y1 - y0
    fx = x0 - cx
    fy = y0 - cy
    a = dx * dx + dy * dy
    c = fx * fx + fy * fy - r * r
    b = fx * dx + fy * dy
    lo = np.zeros(n, dtype=np.float64)
    hi = np.zeros(n, dtype=np.float64)
    degenerate = a == 0.0
    if degenerate.any():
        hi[degenerate & (c <= 0.0)] = 1.0
    with np.errstate(invalid="ignore"):
        # Stationary pieces with an infinite radius produce 0 * inf
        # here; the `degenerate` mask already answered them above.
        disc = b * b - a * c
    solve = (~degenerate) & (disc > 0.0)
    if solve.any():
        sq = np.sqrt(disc[solve])
        aa = a[solve]
        bb = b[solve]
        w1 = (-bb - sq) / aa
        w2 = (-bb + sq) / aa
        lo[solve] = np.where(w1 < 0.0, 0.0, np.where(w1 > 1.0, 1.0, w1))
        hi[solve] = np.where(w2 < 0.0, 0.0, np.where(w2 > 1.0, 1.0, w2))
    return lo, hi


def disc_dwell(
    cx: float,
    cy: float,
    r: float,
    x0: np.ndarray,
    y0: np.ndarray,
    x1: np.ndarray,
    y1: np.ndarray,
    dt: np.ndarray,
    obs=None,
) -> np.ndarray:
    """Per-segment dwell time inside the closed disc, batched.

    ``dwell[i]`` bit-equals ``(hi - lo) * dt[i]`` from
    :func:`disc_clip_scalar` on segment ``i``.
    """
    lo, hi = disc_clip_batch(cx, cy, r, x0, y0, x1, y1, obs=obs)
    return (hi - lo) * np.asarray(dt, dtype=np.float64)


def disc_dwell_scalar(
    cx: float,
    cy: float,
    r: float,
    x0: np.ndarray,
    y0: np.ndarray,
    x1: np.ndarray,
    y1: np.ndarray,
    dt: np.ndarray,
) -> np.ndarray:
    """Reference scalar dwell fold (same expressions, Python floats)."""
    n = len(x0)
    out = np.zeros(n, dtype=np.float64)
    cxf, cyf, rf = float(cx), float(cy), float(r)
    for i in range(n):
        lo, hi = disc_clip_scalar(
            cxf, cyf, rf,
            float(x0[i]), float(y0[i]), float(x1[i]), float(y1[i]),
        )
        out[i] = (hi - lo) * float(dt[i])
    return out


__all__ = [
    "EdgeArrays",
    "classify_segments",
    "clip_segments_batch",
    "disc_clip_batch",
    "disc_clip_scalar",
    "disc_dwell",
    "disc_dwell_scalar",
    "kernel_backend",
    "polygon_edge_arrays",
    "segments_dwell",
    "segments_fully_inside",
    "segments_intersect",
    "set_kernel_backend",
]
