"""Layer overlay precomputation — the Piet strategy of Section 5.

The paper evaluates the geometric part of a query ("cities crossed by a
river, containing at least one store") against a *precomputed overlay* of
the thematic layers, so that at query time only geometry-id joins remain.
:class:`LayerOverlay` reproduces this: it holds one spatial index per layer
and materializes, per (layer pair, predicate), the relation of geometry-id
pairs satisfying the predicate.  Query evaluation then reduces to set
operations over those id relations (see :mod:`repro.query.evaluator`).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple

from repro.errors import GeometryError
from repro.geometry.index import UniformGridIndex, index_for_geometries
from repro.geometry.point import BoundingBox, Point
from repro.geometry.poi import Poi
from repro.geometry.polygon import Polygon
from repro.geometry.polyline import Polyline
from repro.geometry.segment import Segment

Geometry = object  # Point | Segment | Polyline | Polygon | Poi (duck-typed)


def geometry_bbox(geom: Geometry) -> BoundingBox:
    """Return the bounding box of any supported geometry."""
    if isinstance(geom, Point):
        return BoundingBox(geom.x, geom.y, geom.x, geom.y)
    if isinstance(geom, (Segment, Polyline, Polygon, Poi)):
        return geom.bbox
    raise GeometryError(f"unsupported geometry type: {type(geom).__name__}")


def geometries_intersect(a: Geometry, b: Geometry) -> bool:
    """Exact intersection test across all supported geometry-type pairs."""
    if isinstance(a, Point) and isinstance(b, Point):
        return a == b
    if isinstance(a, Point):
        return geometries_intersect(b, a)
    if isinstance(b, Point):
        if isinstance(a, Segment):
            return a.contains_point(b)
        if isinstance(a, Polyline):
            return a.contains_point(b)
        if isinstance(a, Polygon):
            return a.contains_point(b)
        if isinstance(a, Poi):
            return a.contains_point(b)
    if isinstance(a, Poi) and isinstance(b, Poi):
        return a.intersects_poi(b)
    if isinstance(a, Poi):
        if isinstance(b, Segment):
            return a.intersects_segment(b)
        if isinstance(b, Polyline):
            return a.intersects_polyline(b)
        if isinstance(b, Polygon):
            return a.intersects_polygon(b)
    if isinstance(b, Poi):
        return geometries_intersect(b, a)
    if isinstance(a, Segment) and isinstance(b, Segment):
        return a.intersects(b)
    if isinstance(a, Segment) and isinstance(b, Polyline):
        return b.intersects_segment(a)
    if isinstance(a, Polyline) and isinstance(b, Segment):
        return a.intersects_segment(b)
    if isinstance(a, Segment) and isinstance(b, Polygon):
        return b.intersects_segment(a)
    if isinstance(a, Polygon) and isinstance(b, Segment):
        return a.intersects_segment(b)
    if isinstance(a, Polyline) and isinstance(b, Polyline):
        return a.intersects_polyline(b)
    if isinstance(a, Polyline) and isinstance(b, Polygon):
        return b.intersects_polyline(a)
    if isinstance(a, Polygon) and isinstance(b, Polyline):
        return a.intersects_polyline(b)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return a.intersects_polygon(b)
    raise GeometryError(
        f"unsupported geometry pair: {type(a).__name__}, {type(b).__name__}"
    )


def geometry_contains(container: Geometry, contained: Geometry) -> bool:
    """Exact containment test: does ``container`` fully contain ``contained``?

    Only polygons and POI discs can contain other geometries; everything
    else contains at most points (on itself).
    """
    if isinstance(container, Poi):
        if isinstance(contained, Point):
            return container.contains_point(contained)
        if isinstance(contained, Segment):
            return container.contains_segment(contained)
        if isinstance(contained, Polyline):
            return all(
                container.contains_segment(s) for s in contained.segments()
            )
        if isinstance(contained, Polygon):
            return container.contains_polygon(contained)
        if isinstance(contained, Poi):
            return container.contains_poi(contained)
    if isinstance(container, Polygon) and isinstance(contained, Poi):
        return contained.inside_polygon(container)
    if isinstance(container, Polygon):
        if isinstance(contained, Point):
            return container.contains_point(contained)
        if isinstance(contained, Segment):
            intervals = container.clip_segment(contained)
            return intervals == [(0.0, 1.0)]
        if isinstance(contained, Polyline):
            # Batched form of "every chain segment clips to [(0, 1)]" —
            # the clip kernel answers far-field segments vectorized and
            # falls back to Polygon.clip_segment near the boundary.
            from repro.geometry import kernels

            segments = contained.segments()
            if not segments:
                return True
            import numpy as np

            x0 = np.array([float(s.start.x) for s in segments])
            y0 = np.array([float(s.start.y) for s in segments])
            x1 = np.array([float(s.end.x) for s in segments])
            y1 = np.array([float(s.end.y) for s in segments])
            return bool(
                kernels.segments_fully_inside(container, x0, y0, x1, y1).all()
            )
        if isinstance(contained, Polygon):
            return container.contains_polygon(contained)
    if isinstance(contained, Point):
        if isinstance(container, Segment):
            return container.contains_point(contained)
        if isinstance(container, Polyline):
            return container.contains_point(contained)
        if isinstance(container, Point):
            return container == contained
    return False


#: Predicates the overlay can precompute.
PREDICATES = ("intersects", "contains", "within")


class LayerOverlay:
    """Precomputed cross-layer geometry-id relations.

    Parameters
    ----------
    layers:
        Mapping ``layer name -> {geometry id -> geometry}``.  Geometry ids
        must be unique within their layer.

    The pairwise relations are computed lazily per ``(layer_a, layer_b,
    predicate)`` and cached, so building the overlay is cheap and only the
    pairs a workload touches are materialized — mirroring Piet's selective
    overlay precomputation.  :meth:`precompute_all` forces the full overlay.
    """

    def __init__(self, layers: Dict[str, Dict[Hashable, Geometry]]) -> None:
        if not layers:
            raise GeometryError("overlay needs at least one layer")
        self._layers: Dict[str, Dict[Hashable, Geometry]] = {
            name: dict(geoms) for name, geoms in layers.items()
        }
        self._indexes: Dict[str, UniformGridIndex] = {}
        for name, geoms in self._layers.items():
            if geoms:
                self._indexes[name] = index_for_geometries(geoms)
        self._cache: Dict[
            Tuple[str, str, str], Set[Tuple[Hashable, Hashable]]
        ] = {}

    # -- layer access --------------------------------------------------------

    @property
    def layer_names(self) -> List[str]:
        """Names of all layers in the overlay."""
        return sorted(self._layers)

    def layer(self, name: str) -> Dict[Hashable, Geometry]:
        """Return the geometry mapping of a layer."""
        try:
            return self._layers[name]
        except KeyError:
            raise GeometryError(f"unknown layer: {name!r}") from None

    def geometry(self, layer_name: str, geometry_id: Hashable) -> Geometry:
        """Return one geometry by layer and id."""
        layer = self.layer(layer_name)
        try:
            return layer[geometry_id]
        except KeyError:
            raise GeometryError(
                f"unknown geometry {geometry_id!r} in layer {layer_name!r}"
            ) from None

    def index(self, name: str) -> UniformGridIndex:
        """Return the spatial index of a layer (layers must be non-empty)."""
        self.layer(name)
        try:
            return self._indexes[name]
        except KeyError:
            raise GeometryError(f"layer {name!r} is empty") from None

    # -- precomputed relations ------------------------------------------------

    def pairs(
        self, layer_a: str, layer_b: str, predicate: str = "intersects"
    ) -> Set[Tuple[Hashable, Hashable]]:
        """Return all ``(id_a, id_b)`` with ``predicate(geom_a, geom_b)``.

        ``predicate`` is one of ``intersects`` (symmetric), ``contains``
        (geom_a contains geom_b) or ``within`` (geom_a inside geom_b).
        """
        if predicate not in PREDICATES:
            raise GeometryError(
                f"unknown predicate {predicate!r}; expected one of {PREDICATES}"
            )
        key = (layer_a, layer_b, predicate)
        if key not in self._cache:
            self._cache[key] = self._compute_pairs(layer_a, layer_b, predicate)
        return self._cache[key]

    def related(
        self,
        layer_a: str,
        geometry_id: Hashable,
        layer_b: str,
        predicate: str = "intersects",
    ) -> Set[Hashable]:
        """Return ids in ``layer_b`` related to one geometry of ``layer_a``."""
        return {
            id_b
            for id_a, id_b in self.pairs(layer_a, layer_b, predicate)
            if id_a == geometry_id
        }

    def precompute_all(self) -> int:
        """Materialize every (ordered layer pair, predicate) relation.

        Returns the number of relations computed.  This is the full Piet
        overlay; benchmarks compare it against the lazy/naive strategies.
        """
        count = 0
        names = self.layer_names
        for a in names:
            for b in names:
                if a == b:
                    continue
                for predicate in PREDICATES:
                    self.pairs(a, b, predicate)
                    count += 1
        return count

    @property
    def cached_relations(self) -> int:
        """Number of (layer pair, predicate) relations materialized so far."""
        return len(self._cache)

    # -- persistence ------------------------------------------------------------

    def export_cache(self) -> Dict:
        """Serialize the materialized relations to a JSON-compatible dict.

        The Piet strategy's whole point is precomputing the overlay once;
        exporting the cache lets a deployment persist that work across
        processes.  Only relations with string/number ids serialize; the
        layer geometries themselves are not included (the cache is only
        valid for the same layer contents).
        """
        return {
            "relations": [
                {
                    "layer_a": key[0],
                    "layer_b": key[1],
                    "predicate": key[2],
                    "pairs": sorted(
                        [list(pair) for pair in pairs], key=repr
                    ),
                }
                for key, pairs in sorted(self._cache.items())
            ]
        }

    def import_cache(self, data: Dict) -> int:
        """Load previously exported relations; returns how many were loaded.

        Entries referring to unknown layers are rejected with
        :class:`GeometryError` (a stale cache must not silently answer for
        a different world).  Loaded relations overwrite existing ones.
        """
        try:
            relations = data["relations"]
        except (KeyError, TypeError):
            raise GeometryError("malformed overlay cache") from None
        loaded = 0
        for entry in relations:
            try:
                layer_a = entry["layer_a"]
                layer_b = entry["layer_b"]
                predicate = entry["predicate"]
                pairs = entry["pairs"]
            except (KeyError, TypeError):
                raise GeometryError("malformed overlay cache entry") from None
            self.layer(layer_a)
            self.layer(layer_b)
            if predicate not in PREDICATES:
                raise GeometryError(
                    f"unknown predicate {predicate!r} in overlay cache"
                )
            self._cache[(layer_a, layer_b, predicate)] = {
                (a, b) for a, b in pairs
            }
            loaded += 1
        return loaded

    def _compute_pairs(
        self, layer_a: str, layer_b: str, predicate: str
    ) -> Set[Tuple[Hashable, Hashable]]:
        geoms_a = self.layer(layer_a)
        geoms_b = self.layer(layer_b)
        result: Set[Tuple[Hashable, Hashable]] = set()
        if not geoms_a or not geoms_b:
            return result
        index_b = self.index(layer_b)
        for id_a, geom_a in geoms_a.items():
            candidates = index_b.query_box(geometry_bbox(geom_a))
            for id_b in candidates:
                geom_b = geoms_b[id_b]
                if predicate == "intersects":
                    hit = geometries_intersect(geom_a, geom_b)
                elif predicate == "contains":
                    hit = geometry_contains(geom_a, geom_b)
                else:  # within
                    hit = geometry_contains(geom_b, geom_a)
                if hit:
                    result.add((id_a, id_b))
        return result

    # -- point location --------------------------------------------------------

    def locate_point(self, layer_name: str, point: Point) -> Set[Hashable]:
        """Return ids of geometries in ``layer_name`` containing ``point``.

        This implements the paper's rollup relation ``r^{Pt,G}_L(x, y, g)``:
        the (infinite) point-to-geometry relation of the algebraic part,
        answered on demand.  A point on a shared boundary belongs to every
        adjacent geometry, as the paper requires.
        """
        geoms = self.layer(layer_name)
        if not geoms:
            return set()
        index = self.index(layer_name)
        hits: Set[Hashable] = set()
        for candidate in index.query_point(point):
            geom = geoms[candidate]
            if geometries_intersect(geom, point):
                hits.add(candidate)
        return hits
