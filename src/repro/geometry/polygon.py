"""Simple polygons with optional holes.

Polygons carry the paper's region semantics: neighborhoods, cities and the
income regions of Figure 1 are polygons; queries of Types 4–7 test whether a
sampled position or an interpolated trajectory segment lies inside them.
The central non-trivial operation is :meth:`Polygon.clip_segment`, which
returns the *parameter intervals* of a segment inside the polygon — these
intervals convert linearly to time intervals for trajectory pieces, giving
region entry/exit times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry import predicates
from repro.geometry.point import BoundingBox, Point
from repro.geometry.polyline import Polyline
from repro.geometry.segment import Segment


def _normalize_ring(points: Sequence[Point]) -> Tuple[Point, ...]:
    """Drop a duplicated closing vertex and validate ring size."""
    pts = list(points)
    if len(pts) >= 2 and pts[0] == pts[-1]:
        pts = pts[:-1]
    if len(pts) < 3:
        raise GeometryError("a polygon ring needs at least three distinct vertices")
    return tuple(pts)


def _ring_signed_area(ring: Sequence[Point]) -> float:
    """Shoelace signed area: positive for counter-clockwise rings."""
    total = 0.0
    n = len(ring)
    for i in range(n):
        a = ring[i]
        b = ring[(i + 1) % n]
        total += float(a.x) * float(b.y) - float(b.x) * float(a.y)
    return total / 2.0


def _ring_segments(ring: Sequence[Point]) -> List[Segment]:
    n = len(ring)
    return [Segment(ring[i], ring[(i + 1) % n]) for i in range(n)]


def _point_in_ring(point: Point, ring: Sequence[Point]) -> bool:
    """Even-odd ray-casting test; boundary points are NOT handled here."""
    x, y = float(point.x), float(point.y)
    inside = False
    n = len(ring)
    for i in range(n):
        ax, ay = float(ring[i].x), float(ring[i].y)
        bx, by = float(ring[(i + 1) % n].x), float(ring[(i + 1) % n].y)
        if (ay > y) != (by > y):
            x_cross = ax + (y - ay) * (bx - ax) / (by - ay)
            if x < x_cross:
                inside = not inside
    return inside


@dataclass(frozen=True)
class Polygon:
    """A simple polygon with an outer shell and zero or more holes.

    The region is *closed*: boundary points (including hole boundaries)
    belong to the polygon, matching the paper's remark that a point may
    belong to two adjacent polygons.
    """

    shell: Tuple[Point, ...]
    holes: Tuple[Tuple[Point, ...], ...]

    def __init__(
        self,
        shell: Sequence[Point],
        holes: Sequence[Sequence[Point]] = (),
    ) -> None:
        object.__setattr__(self, "shell", _normalize_ring(shell))
        object.__setattr__(
            self, "holes", tuple(_normalize_ring(hole) for hole in holes)
        )

    def __getstate__(self) -> dict:
        # The clip kernel (repro.geometry.kernels) caches this polygon's
        # flattened edge arrays on the instance; keep pickled payloads
        # lean by carrying only the defining rings across process
        # boundaries — each worker rebuilds its own cache on first use.
        return {"shell": self.shell, "holes": self.holes}

    def __setstate__(self, state: dict) -> None:
        object.__setattr__(self, "shell", state["shell"])
        object.__setattr__(self, "holes", state["holes"])

    # -- constructors ------------------------------------------------------

    @classmethod
    def rectangle(
        cls, min_x: float, min_y: float, max_x: float, max_y: float
    ) -> "Polygon":
        """Return the axis-aligned rectangle with the given extent."""
        if min_x >= max_x or min_y >= max_y:
            raise GeometryError("rectangle needs positive extent")
        return cls(
            [
                Point(min_x, min_y),
                Point(max_x, min_y),
                Point(max_x, max_y),
                Point(min_x, max_y),
            ]
        )

    @classmethod
    def from_box(cls, box: BoundingBox) -> "Polygon":
        """Return the rectangle covering ``box``."""
        return cls.rectangle(box.min_x, box.min_y, box.max_x, box.max_y)

    @classmethod
    def regular(cls, center: Point, radius: float, sides: int) -> "Polygon":
        """Return a regular ``sides``-gon inscribed in the given circle."""
        if sides < 3:
            raise GeometryError("a regular polygon needs at least three sides")
        if radius <= 0:
            raise GeometryError("radius must be positive")
        return cls(
            [
                Point(
                    center.x + radius * math.cos(2 * math.pi * i / sides),
                    center.y + radius * math.sin(2 * math.pi * i / sides),
                )
                for i in range(sides)
            ]
        )

    # -- basic measures ----------------------------------------------------

    @property
    def signed_area(self) -> float:
        """Shoelace area of the shell; positive when counter-clockwise."""
        return _ring_signed_area(self.shell)

    @property
    def area(self) -> float:
        """Area of the region: |shell| minus the holes' areas."""
        total = abs(_ring_signed_area(self.shell))
        for hole in self.holes:
            total -= abs(_ring_signed_area(hole))
        return total

    @property
    def perimeter(self) -> float:
        """Total boundary length, holes included."""
        total = sum(seg.length for seg in _ring_segments(self.shell))
        for hole in self.holes:
            total += sum(seg.length for seg in _ring_segments(hole))
        return total

    @property
    def centroid(self) -> Point:
        """Area centroid of the region (holes subtracted)."""
        def ring_moments(ring: Sequence[Point]) -> Tuple[float, float, float]:
            a = cx = cy = 0.0
            n = len(ring)
            for i in range(n):
                p, q = ring[i], ring[(i + 1) % n]
                cross = float(p.x) * float(q.y) - float(q.x) * float(p.y)
                a += cross
                cx += (float(p.x) + float(q.x)) * cross
                cy += (float(p.y) + float(q.y)) * cross
            return a / 2.0, cx / 6.0, cy / 6.0

        area, mx, my = ring_moments(self.shell)
        sign = 1.0 if area >= 0 else -1.0
        area, mx, my = sign * area, sign * mx, sign * my
        for hole in self.holes:
            ha, hx, hy = ring_moments(hole)
            hsign = 1.0 if ha >= 0 else -1.0
            area -= hsign * ha
            mx -= hsign * hx
            my -= hsign * hy
        if area == 0:
            raise GeometryError("centroid of a zero-area polygon")
        return Point(mx / area, my / area)

    @property
    def bbox(self) -> BoundingBox:
        """Tight bounding box of the shell."""
        return BoundingBox.from_points(self.shell)

    # -- boundary access ----------------------------------------------------

    def boundary_segments(self) -> List[Segment]:
        """Return all boundary segments: shell first, then each hole."""
        segments = _ring_segments(self.shell)
        for hole in self.holes:
            segments.extend(_ring_segments(hole))
        return segments

    def boundary_polylines(self) -> List[Polyline]:
        """Return closed polylines tracing the shell and each hole."""
        rings = [self.shell] + list(self.holes)
        return [Polyline(list(ring) + [ring[0]]) for ring in rings]

    def on_boundary(self, point: Point) -> bool:
        """Return True when ``point`` lies on the shell or a hole boundary."""
        return any(
            seg.contains_point(point) for seg in self.boundary_segments()
        )

    # -- point / region predicates ------------------------------------------

    def contains_point(self, point: Point) -> bool:
        """Return True when ``point`` lies in the closed region.

        Boundary points count as inside; hole interiors count as outside.
        """
        if not self.bbox.contains_point(point):
            return False
        if self.on_boundary(point):
            return True
        if not _point_in_ring(point, self.shell):
            return False
        return not any(_point_in_ring(point, hole) for hole in self.holes)

    def strictly_contains_point(self, point: Point) -> bool:
        """Return True for interior points only (boundary excluded)."""
        return self.contains_point(point) and not self.on_boundary(point)

    def intersects_segment(self, segment: Segment) -> bool:
        """Return True when the closed region meets the closed segment."""
        if not self.bbox.intersects(segment.bbox):
            return False
        if self.contains_point(segment.start) or self.contains_point(segment.end):
            return True
        return any(seg.intersects(segment) for seg in self.boundary_segments())

    def intersects_polyline(self, polyline: Polyline) -> bool:
        """Return True when any chain segment meets the region."""
        if not self.bbox.intersects(polyline.bbox):
            return False
        return any(self.intersects_segment(seg) for seg in polyline.segments())

    def intersects_polygon(self, other: "Polygon") -> bool:
        """Return True when the two closed regions share at least one point."""
        if not self.bbox.intersects(other.bbox):
            return False
        if any(self.contains_point(p) for p in other.shell):
            return True
        if any(other.contains_point(p) for p in self.shell):
            return True
        other_boundary = other.boundary_segments()
        return any(
            a.intersects(b)
            for a in self.boundary_segments()
            for b in other_boundary
        )

    def contains_polygon(self, other: "Polygon") -> bool:
        """Return True when ``other`` lies entirely inside this region.

        Checked as: every vertex of ``other`` inside, and no proper boundary
        crossing between the two boundaries.
        """
        if not self.bbox.contains_box(other.bbox):
            return False
        if not all(self.contains_point(p) for p in other.shell):
            return False
        for a in self.boundary_segments():
            for b in other.boundary_segments():
                if predicates.segments_properly_intersect(
                    a.start.as_tuple(),
                    a.end.as_tuple(),
                    b.start.as_tuple(),
                    b.end.as_tuple(),
                ):
                    return False
        return True

    # -- segment clipping (entry/exit parameters) ----------------------------

    def boundary_crossing_parameters(self, segment: Segment) -> List[float]:
        """Return sorted parameters of ``segment`` where it meets the boundary."""
        params: List[float] = []
        for edge in self.boundary_segments():
            hit = segment.intersection_parameters(edge)
            if hit is not None:
                params.append(float(hit[0]))
                continue
            overlap = segment.overlap(edge)
            if overlap is not None:
                params.append(segment.parameter_of(overlap.start))
                params.append(segment.parameter_of(overlap.end))
        params.sort()
        deduped: List[float] = []
        for p in params:
            if not deduped or not math.isclose(p, deduped[-1], abs_tol=1e-12):
                deduped.append(p)
        return deduped

    def clip_segment(self, segment: Segment) -> List[Tuple[float, float]]:
        """Return the parameter intervals of ``segment`` inside the region.

        Each returned ``(s0, s1)`` with ``0 <= s0 < s1 <= 1`` marks a maximal
        sub-segment contained in the closed polygon.  For a trajectory piece
        covering times ``[t_i, t_{i+1}]`` the interval maps affinely to the
        time spent inside the region.
        """
        if segment.is_degenerate:
            if self.contains_point(segment.start):
                return [(0.0, 1.0)]
            return []
        if not self.bbox.intersects(segment.bbox):
            return []
        cuts = [0.0] + [
            p for p in self.boundary_crossing_parameters(segment) if 0 < p < 1
        ] + [1.0]
        # Midpoints of boundary-sliding pieces can land a few ulps off the
        # boundary; treat points within a scale-relative tolerance of the
        # boundary as inside (the region is closed).
        box = self.bbox
        tolerance = 1e-9 * max(box.width, box.height, 1.0)
        intervals: List[Tuple[float, float]] = []
        for s0, s1 in zip(cuts, cuts[1:]):
            if s1 - s0 <= 1e-12:
                continue
            mid = segment.point_at((s0 + s1) / 2)
            inside = self.contains_point(mid)
            if not inside and self._near_boundary(mid, tolerance):
                # Candidate boundary-sliding piece.  The cut set only
                # contains true boundary crossings, so a piece can drift
                # in and out of the tolerance band without a cut; demand
                # the piece endpoints hug the region too, or a segment
                # passing just outside a (near-degenerate) edge would be
                # swallowed whole.
                inside = all(
                    self.contains_point(p) or self._near_boundary(p, tolerance)
                    for p in (segment.point_at(s0), segment.point_at(s1))
                )
            if inside:
                if intervals and math.isclose(intervals[-1][1], s0, abs_tol=1e-12):
                    intervals[-1] = (intervals[-1][0], s1)
                else:
                    intervals.append((s0, s1))
        return intervals

    def _near_boundary(self, point: Point, tolerance: float) -> bool:
        """True when ``point`` lies within ``tolerance`` of any edge."""
        return any(
            edge.distance_to_point(point) <= tolerance
            for edge in self.boundary_segments()
        )

    def clipped_segment_length(self, segment: Segment) -> float:
        """Return the length of the part of ``segment`` inside the region."""
        total = segment.length
        return sum((s1 - s0) * total for s0, s1 in self.clip_segment(segment))

    # -- sampling ------------------------------------------------------------

    def sample_interior_point(self) -> Point:
        """Return some point strictly inside the region.

        Uses the centroid when it lies inside; otherwise scans a diagonal
        fan from each shell vertex.  Raises when the polygon is degenerate.
        """
        centroid = self.centroid
        if self.contains_point(centroid) and not self.on_boundary(centroid):
            return centroid
        n = len(self.shell)
        for i in range(n):
            a = self.shell[i]
            b = self.shell[(i + 1) % n]
            c = self.shell[(i + 2) % n]
            candidate = Point((a.x + b.x + c.x) / 3, (a.y + b.y + c.y) / 3)
            if self.contains_point(candidate) and not self.on_boundary(candidate):
                return candidate
        raise GeometryError("could not find an interior point")
