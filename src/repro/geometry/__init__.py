"""Computational-geometry substrate for the GISOLAP moving-objects model.

Pure-Python (plus NumPy in bulk paths elsewhere) geometry kernel: points,
segments, polylines, polygons with holes, robust predicates, a uniform-grid
spatial index, and the layer-overlay precomputation used by the Piet
evaluation strategy.
"""

from repro.geometry.point import BoundingBox, Point
from repro.geometry.poi import Poi
from repro.geometry.segment import Segment
from repro.geometry.polyline import Polyline
from repro.geometry.polygon import Polygon
from repro.geometry.index import UniformGridIndex, index_for_geometries
from repro.geometry.overlay import (
    LayerOverlay,
    geometries_intersect,
    geometry_bbox,
    geometry_contains,
)
from repro.geometry.algorithms import (
    convex_hull,
    is_convex,
    polygon_intersection_area,
    polyline_length_inside,
    segment_intersections,
    triangulate,
)
from repro.geometry.io import from_geojson, from_wkt, to_geojson, to_wkt

__all__ = [
    "BoundingBox",
    "Point",
    "Poi",
    "Segment",
    "Polyline",
    "Polygon",
    "UniformGridIndex",
    "index_for_geometries",
    "LayerOverlay",
    "geometries_intersect",
    "geometry_bbox",
    "geometry_contains",
    "convex_hull",
    "is_convex",
    "polygon_intersection_area",
    "polyline_length_inside",
    "segment_intersections",
    "triangulate",
    "from_geojson",
    "from_wkt",
    "to_geojson",
    "to_wkt",
]
