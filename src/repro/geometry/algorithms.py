"""Higher-level geometric algorithms used by aggregation and overlay.

The geometric-aggregation operator of Definition 4 integrates a density over
a region built from layer geometries; the summable rewriting needs areas,
lengths and pairwise intersection measures, which this module provides:
convex hulls, ear-clipping triangulation, convex clipping
(Sutherland-Hodgman) and an exact/approximate polygon-intersection area.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry import predicates
from repro.geometry.point import BoundingBox, Point
from repro.geometry.polygon import Polygon
from repro.geometry.segment import Segment


def convex_hull(points: Iterable[Point]) -> List[Point]:
    """Return the convex hull as a counter-clockwise list of vertices.

    Uses Andrew's monotone chain.  Collinear points on the hull boundary are
    dropped.  Fewer than three non-collinear input points raise
    :class:`GeometryError`.
    """
    pts = sorted(set((float(p.x), float(p.y)) for p in points))
    if len(pts) < 3:
        raise GeometryError("convex hull needs at least three distinct points")

    def half_hull(sequence: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
        hull: List[Tuple[float, float]] = []
        for p in sequence:
            while (
                len(hull) >= 2
                and predicates.orientation(hull[-2], hull[-1], p) <= 0
            ):
                hull.pop()
            hull.append(p)
        return hull

    lower = half_hull(pts)
    upper = half_hull(list(reversed(pts)))
    ring = lower[:-1] + upper[:-1]
    if len(ring) < 3:
        raise GeometryError("all points are collinear")
    return [Point(x, y) for x, y in ring]


def is_convex(polygon: Polygon) -> bool:
    """Return True when the polygon shell is convex (and has no holes)."""
    if polygon.holes:
        return False
    ring = polygon.shell
    n = len(ring)
    signs = set()
    for i in range(n):
        o = predicates.orientation(
            ring[i].as_tuple(),
            ring[(i + 1) % n].as_tuple(),
            ring[(i + 2) % n].as_tuple(),
        )
        if o != 0:
            signs.add(o)
        if len(signs) > 1:
            return False
    return True


def triangulate(polygon: Polygon) -> List[Tuple[Point, Point, Point]]:
    """Ear-clipping triangulation of a simple polygon without holes.

    Returns ``len(shell) - 2`` triangles whose areas sum to the polygon
    area.  Raises for polygons with holes (triangulate the shell instead).
    """
    if polygon.holes:
        raise GeometryError("ear clipping does not support holes")
    ring = list(polygon.shell)
    if polygon.signed_area < 0:
        ring.reverse()
    triangles: List[Tuple[Point, Point, Point]] = []
    guard = 0
    while len(ring) > 3:
        guard += 1
        if guard > 10000:
            raise GeometryError("triangulation did not converge (non-simple polygon?)")
        n = len(ring)
        clipped = False
        for i in range(n):
            prev_pt, ear_pt, next_pt = ring[i - 1], ring[i], ring[(i + 1) % n]
            if (
                predicates.orientation(
                    prev_pt.as_tuple(), ear_pt.as_tuple(), next_pt.as_tuple()
                )
                <= 0
            ):
                continue
            triangle = (prev_pt, ear_pt, next_pt)
            if any(
                _point_in_triangle(other, triangle)
                for j, other in enumerate(ring)
                if other not in triangle
            ):
                continue
            triangles.append(triangle)
            del ring[i]
            clipped = True
            break
        if not clipped:
            raise GeometryError("no ear found (non-simple polygon?)")
    triangles.append((ring[0], ring[1], ring[2]))
    return triangles


def _point_in_triangle(p: Point, triangle: Tuple[Point, Point, Point]) -> bool:
    """Closed containment test against a CCW triangle.

    Boundary points count as inside: an ear whose diagonal passes through a
    reflex vertex is invalid, so ear clipping must reject it.
    """
    a, b, c = triangle
    return (
        predicates.orientation(a.as_tuple(), b.as_tuple(), p.as_tuple()) >= 0
        and predicates.orientation(b.as_tuple(), c.as_tuple(), p.as_tuple()) >= 0
        and predicates.orientation(c.as_tuple(), a.as_tuple(), p.as_tuple()) >= 0
    )


def triangle_area(a: Point, b: Point, c: Point) -> float:
    """Unsigned area of the triangle ``abc``."""
    return abs(
        (float(b.x) - float(a.x)) * (float(c.y) - float(a.y))
        - (float(b.y) - float(a.y)) * (float(c.x) - float(a.x))
    ) / 2.0


def clip_ring_convex(
    subject: Sequence[Point], clip: Polygon
) -> List[Point]:
    """Sutherland-Hodgman: clip a ring against a *convex* polygon.

    Returns the clipped ring (possibly empty).  The clip polygon must be
    convex and hole-free.
    """
    if not is_convex(clip):
        raise GeometryError("Sutherland-Hodgman requires a convex clip polygon")
    ring = list(clip.shell)
    if clip.signed_area < 0:
        ring.reverse()
    output = list(subject)
    n = len(ring)
    for i in range(n):
        if not output:
            return []
        edge_a, edge_b = ring[i], ring[(i + 1) % n]
        input_ring = output
        output = []
        for j, current in enumerate(input_ring):
            previous = input_ring[j - 1]
            current_in = (
                predicates.orientation(
                    edge_a.as_tuple(), edge_b.as_tuple(), current.as_tuple()
                )
                >= 0
            )
            previous_in = (
                predicates.orientation(
                    edge_a.as_tuple(), edge_b.as_tuple(), previous.as_tuple()
                )
                >= 0
            )
            if current_in:
                if not previous_in:
                    crossing = _line_intersection(previous, current, edge_a, edge_b)
                    if crossing is not None:
                        output.append(crossing)
                output.append(current)
            elif previous_in:
                crossing = _line_intersection(previous, current, edge_a, edge_b)
                if crossing is not None:
                    output.append(crossing)
    return output


def _line_intersection(
    a: Point, b: Point, c: Point, d: Point
) -> Point | None:
    """Intersection of line ``ab`` with line ``cd`` (not segment-bounded)."""
    rx, ry = float(b.x) - float(a.x), float(b.y) - float(a.y)
    qx, qy = float(d.x) - float(c.x), float(d.y) - float(c.y)
    denom = rx * qy - ry * qx
    if denom == 0:
        return None
    s = ((float(c.x) - float(a.x)) * qy - (float(c.y) - float(a.y)) * qx) / denom
    return Point(float(a.x) + s * rx, float(a.y) + s * ry)


def polygon_intersection_area(
    a: Polygon, b: Polygon, resolution: int = 128
) -> float:
    """Area of the intersection of two polygons.

    Exact (via triangulation + convex clipping) when either polygon is
    convex and both are hole-free; otherwise estimated on a
    ``resolution x resolution`` grid over the bounding-box overlap.
    """
    if not a.bbox.intersects(b.bbox):
        return 0.0
    if not a.holes and not b.holes:
        if is_convex(b):
            return _triangulated_clip_area(a, b)
        if is_convex(a):
            return _triangulated_clip_area(b, a)
    return _grid_intersection_area(a, b, resolution)


def _triangulated_clip_area(subject: Polygon, convex_clip: Polygon) -> float:
    total = 0.0
    for tri in triangulate(subject):
        clipped = clip_ring_convex(tri, convex_clip)
        if len(clipped) >= 3:
            total += abs(_ring_area(clipped))
    return total


def _ring_area(ring: Sequence[Point]) -> float:
    total = 0.0
    n = len(ring)
    for i in range(n):
        p, q = ring[i], ring[(i + 1) % n]
        total += float(p.x) * float(q.y) - float(q.x) * float(p.y)
    return total / 2.0


def _grid_intersection_area(a: Polygon, b: Polygon, resolution: int) -> float:
    box_a, box_b = a.bbox, b.bbox
    overlap = BoundingBox(
        max(box_a.min_x, box_b.min_x),
        max(box_a.min_y, box_b.min_y),
        min(box_a.max_x, box_b.max_x),
        min(box_a.max_y, box_b.max_y),
    )
    if overlap.width <= 0 or overlap.height <= 0:
        return 0.0
    dx = overlap.width / resolution
    dy = overlap.height / resolution
    cell_area = dx * dy
    total = 0.0
    for i in range(resolution):
        x = overlap.min_x + (i + 0.5) * dx
        for j in range(resolution):
            y = overlap.min_y + (j + 0.5) * dy
            p = Point(x, y)
            if a.contains_point(p) and b.contains_point(p):
                total += cell_area
    return total


def segment_intersections(
    segments: Sequence[Segment],
) -> List[Tuple[int, int, Point]]:
    """Return all pairwise proper crossings ``(i, j, point)`` with ``i < j``.

    Brute force over bbox-filtered pairs; adequate for layer sizes used in
    the overlay precomputation (thousands of segments).
    """
    results: List[Tuple[int, int, Point]] = []
    boxes = [seg.bbox for seg in segments]
    for i, j in itertools.combinations(range(len(segments)), 2):
        if not boxes[i].intersects(boxes[j]):
            continue
        params = segments[i].intersection_parameters(segments[j])
        if params is not None:
            results.append((i, j, segments[i].point_at(float(params[0]))))
    return results


def polyline_length_inside(polygon: Polygon, segments: Iterable[Segment]) -> float:
    """Total length of the given segments that lies inside ``polygon``."""
    return sum(polygon.clipped_segment_length(seg) for seg in segments)
