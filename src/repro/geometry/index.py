"""A uniform-grid spatial index.

The Piet evaluation strategy (Section 5 of the paper) precomputes layer
overlays and then intersects trajectory segments with the geometries
returned by the geometric subquery.  Both steps need a candidate filter:
given a bounding box, which geometry ids can possibly intersect it?  A
uniform grid answers this in O(cells touched) and is trivially correct,
which suits a reproduction better than a tuned R-tree.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Set, Tuple

from repro.errors import GeometryError
from repro.geometry.point import BoundingBox, Point


class UniformGridIndex:
    """Maps object ids to grid cells by bounding box.

    Parameters
    ----------
    extent:
        The world box covered by the grid.  Objects may spill outside it;
        coordinates are clamped to the border cells.
    cell_size:
        Edge length of the square cells.  Smaller cells mean fewer false
        positives per query but more cells per insertion.
    """

    def __init__(self, extent: BoundingBox, cell_size: float) -> None:
        if cell_size <= 0:
            raise GeometryError("cell size must be positive")
        self.extent = extent
        self.cell_size = float(cell_size)
        self._cols = max(1, math.ceil(extent.width / self.cell_size))
        self._rows = max(1, math.ceil(extent.height / self.cell_size))
        self._cells: Dict[Tuple[int, int], Set[Hashable]] = {}
        self._boxes: Dict[Hashable, BoundingBox] = {}

    def __len__(self) -> int:
        return len(self._boxes)

    def __contains__(self, object_id: Hashable) -> bool:
        return object_id in self._boxes

    @property
    def shape(self) -> Tuple[int, int]:
        """Grid dimensions as ``(columns, rows)``."""
        return (self._cols, self._rows)

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        col = int((x - self.extent.min_x) / self.cell_size)
        row = int((y - self.extent.min_y) / self.cell_size)
        return (
            min(max(col, 0), self._cols - 1),
            min(max(row, 0), self._rows - 1),
        )

    def _cells_for_box(self, box: BoundingBox) -> Iterable[Tuple[int, int]]:
        c0, r0 = self._cell_of(box.min_x, box.min_y)
        c1, r1 = self._cell_of(box.max_x, box.max_y)
        for col in range(c0, c1 + 1):
            for row in range(r0, r1 + 1):
                yield (col, row)

    def insert(self, object_id: Hashable, box: BoundingBox) -> None:
        """Register ``object_id`` with extent ``box``.

        Re-inserting an id replaces its previous extent.
        """
        if object_id in self._boxes:
            self.remove(object_id)
        self._boxes[object_id] = box
        for cell in self._cells_for_box(box):
            self._cells.setdefault(cell, set()).add(object_id)

    def remove(self, object_id: Hashable) -> None:
        """Remove ``object_id``; unknown ids raise KeyError."""
        box = self._boxes.pop(object_id)
        for cell in self._cells_for_box(box):
            bucket = self._cells.get(cell)
            if bucket is not None:
                bucket.discard(object_id)
                if not bucket:
                    del self._cells[cell]

    def bbox_of(self, object_id: Hashable) -> BoundingBox:
        """Return the registered extent of ``object_id``."""
        return self._boxes[object_id]

    def query_box(self, box: BoundingBox) -> Set[Hashable]:
        """Return ids whose registered extent intersects ``box``.

        This is a *candidate* set at grid granularity refined by an exact
        bbox check; callers apply exact geometry predicates afterwards.
        """
        found: Set[Hashable] = set()
        for cell in self._cells_for_box(box):
            for object_id in self._cells.get(cell, ()):
                if object_id not in found and self._boxes[object_id].intersects(box):
                    found.add(object_id)
        return found

    def query_point(self, point: Point) -> Set[Hashable]:
        """Return ids whose registered extent contains ``point``."""
        cell = self._cell_of(float(point.x), float(point.y))
        return {
            object_id
            for object_id in self._cells.get(cell, ())
            if self._boxes[object_id].contains_point(point)
        }

    def items(self) -> Iterable[Tuple[Hashable, BoundingBox]]:
        """Iterate over ``(object_id, bbox)`` pairs."""
        return self._boxes.items()


def index_for_geometries(
    geometries: Dict[Hashable, object], cell_size: float | None = None
) -> UniformGridIndex:
    """Build an index over a mapping ``id -> geometry``.

    Every geometry must expose a ``bbox`` attribute (Point gets a degenerate
    box).  When ``cell_size`` is omitted, a heuristic picks the size so the
    grid has on the order of one object per cell.
    """
    if not geometries:
        raise GeometryError("cannot index an empty geometry collection")
    boxes: Dict[Hashable, BoundingBox] = {}
    for object_id, geom in geometries.items():
        if isinstance(geom, Point):
            boxes[object_id] = BoundingBox(geom.x, geom.y, geom.x, geom.y)
        else:
            boxes[object_id] = geom.bbox
    extent = None
    for box in boxes.values():
        extent = box if extent is None else extent.union(box)
    assert extent is not None
    if cell_size is None:
        span = max(extent.width, extent.height)
        if span == 0:
            cell_size = 1.0
        else:
            cell_size = span / max(1.0, math.sqrt(len(boxes)))
    index = UniformGridIndex(extent.expanded(cell_size), cell_size)
    for object_id, box in boxes.items():
        index.insert(object_id, box)
    return index
