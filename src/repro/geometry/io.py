"""Geometry interchange: WKT and GeoJSON.

The geometry kernel is self-contained, but downstream users live in a
Shapely/PostGIS world; this module converts both ways for the kernel's
types (Point, Segment as LINESTRING, Polyline as LINESTRING, Polygon with
holes) so layers can be loaded from, and exported to, standard formats.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.polyline import Polyline
from repro.geometry.segment import Segment


def _format_coord(value: float) -> str:
    text = f"{float(value):.10f}".rstrip("0").rstrip(".")
    return text if text not in ("-0", "") else "0"


def _format_points(points: Sequence[Point]) -> str:
    return ", ".join(
        f"{_format_coord(p.x)} {_format_coord(p.y)}" for p in points
    )


def to_wkt(geometry: object) -> str:
    """Serialize a geometry to WKT."""
    if isinstance(geometry, Point):
        return f"POINT ({_format_coord(geometry.x)} {_format_coord(geometry.y)})"
    if isinstance(geometry, Segment):
        return f"LINESTRING ({_format_points((geometry.start, geometry.end))})"
    if isinstance(geometry, Polyline):
        return f"LINESTRING ({_format_points(geometry.vertices)})"
    if isinstance(geometry, Polygon):
        rings = [list(geometry.shell) + [geometry.shell[0]]]
        for hole in geometry.holes:
            rings.append(list(hole) + [hole[0]])
        body = ", ".join(f"({_format_points(ring)})" for ring in rings)
        return f"POLYGON ({body})"
    raise GeometryError(
        f"cannot serialize {type(geometry).__name__} to WKT"
    )


_WKT_RE = re.compile(r"^\s*(POINT|LINESTRING|POLYGON)\s*\((.*)\)\s*$", re.S)


def _parse_coords(text: str) -> List[Point]:
    points = []
    for pair in text.split(","):
        parts = pair.split()
        if len(parts) != 2:
            raise GeometryError(f"malformed WKT coordinate pair: {pair!r}")
        try:
            points.append(Point(float(parts[0]), float(parts[1])))
        except ValueError as exc:
            raise GeometryError(
                f"non-numeric WKT coordinate in pair {pair!r}"
            ) from exc
    return points


def from_wkt(text: str) -> object:
    """Parse WKT into a kernel geometry.

    POINT → Point, LINESTRING → Polyline (two-vertex linestrings stay
    polylines; use ``.segments()[0]`` for a Segment), POLYGON → Polygon
    with holes.
    """
    match = _WKT_RE.match(text.upper().replace("\n", " "))
    if not match:
        raise GeometryError(f"unparseable WKT: {text[:60]!r}")
    kind, body = match.group(1), match.group(2).strip()
    if kind == "POINT":
        points = _parse_coords(body)
        if len(points) != 1:
            raise GeometryError(
                f"POINT must have exactly one coordinate pair, "
                f"got {len(points)}: {text[:60]!r}"
            )
        return points[0]
    if kind == "LINESTRING":
        return Polyline(_parse_coords(body))
    # POLYGON: split rings on top-level parentheses.
    rings: List[List[Point]] = []
    depth = 0
    start = None
    for i, ch in enumerate(body):
        if ch == "(":
            if depth == 0:
                start = i + 1
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0 and start is not None:
                rings.append(_parse_coords(body[start:i]))
    if not rings:
        raise GeometryError(f"POLYGON without rings: {text[:60]!r}")
    return Polygon(rings[0], holes=rings[1:])


def to_geojson(geometry: object) -> Dict:
    """Serialize a geometry to a GeoJSON geometry dict."""
    if isinstance(geometry, Point):
        return {
            "type": "Point",
            "coordinates": [float(geometry.x), float(geometry.y)],
        }
    if isinstance(geometry, Segment):
        return {
            "type": "LineString",
            "coordinates": [
                [float(geometry.start.x), float(geometry.start.y)],
                [float(geometry.end.x), float(geometry.end.y)],
            ],
        }
    if isinstance(geometry, Polyline):
        return {
            "type": "LineString",
            "coordinates": [
                [float(p.x), float(p.y)] for p in geometry.vertices
            ],
        }
    if isinstance(geometry, Polygon):
        rings = [list(geometry.shell) + [geometry.shell[0]]]
        for hole in geometry.holes:
            rings.append(list(hole) + [hole[0]])
        return {
            "type": "Polygon",
            "coordinates": [
                [[float(p.x), float(p.y)] for p in ring] for ring in rings
            ],
        }
    raise GeometryError(
        f"cannot serialize {type(geometry).__name__} to GeoJSON"
    )


def from_geojson(data: Dict) -> object:
    """Parse a GeoJSON geometry dict into a kernel geometry."""
    try:
        kind = data["type"]
        coordinates = data["coordinates"]
    except (KeyError, TypeError):
        raise GeometryError("malformed GeoJSON geometry") from None
    try:
        if kind == "Point":
            return Point(float(coordinates[0]), float(coordinates[1]))
        if kind == "LineString":
            return Polyline(
                [Point(float(x), float(y)) for x, y in coordinates]
            )
        if kind == "Polygon":
            rings = [
                [Point(float(x), float(y)) for x, y in ring]
                for ring in coordinates
            ]
            if not rings:
                raise GeometryError("GeoJSON polygon without rings")
            return Polygon(rings[0], holes=rings[1:])
    except GeometryError:
        raise
    except (ValueError, TypeError, IndexError, KeyError) as exc:
        raise GeometryError(
            f"malformed GeoJSON {kind} coordinates: {exc}"
        ) from exc
    raise GeometryError(f"unsupported GeoJSON type {kind!r}")
