"""Robust low-level geometric predicates.

The paper assumes coordinates are rational numbers (Section 1.2: "The
elements in the tuples are given by rational numbers").  We therefore make
the core incidence predicates *exact* for rational inputs: every predicate
first evaluates in floating point and, when the result is too close to zero
to be trusted, re-evaluates with :class:`fractions.Fraction` arithmetic.
For inputs that are ints, Fractions, or floats (floats are binary rationals)
this two-stage scheme returns the mathematically exact sign.
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Rational
from typing import Tuple

Coordinate = Tuple[float, float]

#: Relative threshold under which a floating-point determinant is re-evaluated
#: exactly.  The bound follows Shewchuk-style forward error analysis for a
#: 2x2 determinant of differences: ~4 ulps of the magnitude of the terms.
_ORIENT_EPS = 1e-12


def _exact(value: float) -> Fraction:
    """Convert a coordinate to an exact rational.

    Floats convert losslessly (binary floats are rationals); ints and
    Fractions pass through.
    """
    if isinstance(value, Rational):
        return Fraction(value)
    return Fraction(float(value))


def orientation(p: Coordinate, q: Coordinate, r: Coordinate) -> int:
    """Return the orientation of the ordered triple ``(p, q, r)``.

    Returns ``+1`` when the triple turns counter-clockwise, ``-1`` when it
    turns clockwise and ``0`` when the three points are collinear.  The
    result is exact for rational coordinates.
    """
    ax, ay = float(p[0]), float(p[1])
    bx, by = float(q[0]), float(q[1])
    cx, cy = float(r[0]), float(r[1])
    det = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    # Scale against the largest term involved to get a relative bound.
    magnitude = (
        abs((bx - ax) * (cy - ay)) + abs((by - ay) * (cx - ax))
    )
    if abs(det) > _ORIENT_EPS * magnitude:
        return 1 if det > 0 else -1
    # Ambiguous in floating point: fall back to exact rational arithmetic.
    exact_det = (
        (_exact(q[0]) - _exact(p[0])) * (_exact(r[1]) - _exact(p[1]))
        - (_exact(q[1]) - _exact(p[1])) * (_exact(r[0]) - _exact(p[0]))
    )
    if exact_det > 0:
        return 1
    if exact_det < 0:
        return -1
    return 0


def collinear(p: Coordinate, q: Coordinate, r: Coordinate) -> bool:
    """Return True when the three points lie on one line."""
    return orientation(p, q, r) == 0


def on_segment(p: Coordinate, a: Coordinate, b: Coordinate) -> bool:
    """Return True when point ``p`` lies on the closed segment ``[a, b]``.

    Collinearity is decided exactly; the box test then places ``p`` within
    the segment's axis-aligned extent.
    """
    if orientation(a, b, p) != 0:
        return False
    return (
        min(a[0], b[0]) <= p[0] <= max(a[0], b[0])
        and min(a[1], b[1]) <= p[1] <= max(a[1], b[1])
    )


def segments_properly_intersect(
    a: Coordinate, b: Coordinate, c: Coordinate, d: Coordinate
) -> bool:
    """Return True when open segments ``(a,b)`` and ``(c,d)`` cross.

    A *proper* intersection is a single interior crossing point: endpoints
    touching or collinear overlap do not count.
    """
    o1 = orientation(a, b, c)
    o2 = orientation(a, b, d)
    o3 = orientation(c, d, a)
    o4 = orientation(c, d, b)
    return o1 != o2 and o3 != o4 and 0 not in (o1, o2, o3, o4)


def segments_intersect(
    a: Coordinate, b: Coordinate, c: Coordinate, d: Coordinate
) -> bool:
    """Return True when closed segments ``[a,b]`` and ``[c,d]`` share a point.

    Handles all degeneracies: shared endpoints, endpoint-on-interior and
    collinear overlap.
    """
    o1 = orientation(a, b, c)
    o2 = orientation(a, b, d)
    o3 = orientation(c, d, a)
    o4 = orientation(c, d, b)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and on_segment(c, a, b):
        return True
    if o2 == 0 and on_segment(d, a, b):
        return True
    if o3 == 0 and on_segment(a, c, d):
        return True
    if o4 == 0 and on_segment(b, c, d):
        return True
    return False


def segment_intersection_parameters(
    a: Coordinate, b: Coordinate, c: Coordinate, d: Coordinate
):
    """Solve ``a + s (b - a) = c + u (d - c)`` for the crossing parameters.

    Returns ``(s, u)`` with both in ``[0, 1]`` when the closed segments meet
    in exactly one point, or ``None`` when they are parallel (including
    collinear overlap, which has no unique crossing) or disjoint.  The
    parameters are computed exactly (as :class:`~fractions.Fraction`) when
    the float determinant is untrustworthy.
    """
    ax, ay = float(a[0]), float(a[1])
    bx, by = float(b[0]), float(b[1])
    cx, cy = float(c[0]), float(c[1])
    dx, dy = float(d[0]), float(d[1])
    rx, ry = bx - ax, by - ay
    qx, qy = dx - cx, dy - cy
    denom = rx * qy - ry * qx
    magnitude = abs(rx * qy) + abs(ry * qx)
    if abs(denom) <= _ORIENT_EPS * magnitude:
        # Parallel or numerically ambiguous: decide exactly.
        ea, eb = (_exact(a[0]), _exact(a[1])), (_exact(b[0]), _exact(b[1]))
        ec, ed = (_exact(c[0]), _exact(c[1])), (_exact(d[0]), _exact(d[1]))
        erx, ery = eb[0] - ea[0], eb[1] - ea[1]
        eqx, eqy = ed[0] - ec[0], ed[1] - ec[1]
        edenom = erx * eqy - ery * eqx
        if edenom == 0:
            return None
        es = ((ec[0] - ea[0]) * eqy - (ec[1] - ea[1]) * eqx) / edenom
        eu = ((ec[0] - ea[0]) * ery - (ec[1] - ea[1]) * erx) / edenom
        if 0 <= es <= 1 and 0 <= eu <= 1:
            return es, eu
        return None
    s = ((cx - ax) * qy - (cy - ay) * qx) / denom
    u = ((cx - ax) * ry - (cy - ay) * rx) / denom
    boundary_eps = 1e-9
    clearly_inside = (
        boundary_eps < s < 1 - boundary_eps and boundary_eps < u < 1 - boundary_eps
    )
    if clearly_inside:
        return s, u
    clearly_outside = (
        s < -boundary_eps or s > 1 + boundary_eps
        or u < -boundary_eps or u > 1 + boundary_eps
    )
    if clearly_outside:
        return None
    # A parameter sits on (or hair-close to) an endpoint: underflow or
    # rounding could flip the verdict, so decide exactly.
    ea, eb = (_exact(a[0]), _exact(a[1])), (_exact(b[0]), _exact(b[1]))
    ec, ed = (_exact(c[0]), _exact(c[1])), (_exact(d[0]), _exact(d[1]))
    erx, ery = eb[0] - ea[0], eb[1] - ea[1]
    eqx, eqy = ed[0] - ec[0], ed[1] - ec[1]
    edenom = erx * eqy - ery * eqx
    if edenom == 0:
        return None
    es = ((ec[0] - ea[0]) * eqy - (ec[1] - ea[1]) * eqx) / edenom
    eu = ((ec[0] - ea[0]) * ery - (ec[1] - ea[1]) * erx) / edenom
    if 0 <= es <= 1 and 0 <= eu <= 1:
        return es, eu
    return None
