"""ASCII rendering of layers and trajectories.

Regenerates Figure 1 as a terminal artifact: neighborhoods shaded by a
predicate (the paper shades low-income regions), trajectory samples as the
object's digit, and optional polyline layers as ``~``.  Dependency-free and
deterministic, so renders can be asserted in tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.errors import GeometryError
from repro.geometry.point import BoundingBox, Point
from repro.geometry.polygon import Polygon
from repro.geometry.polyline import Polyline
from repro.mo.moft import MOFT

#: Cell glyphs, in increasing precedence (later overwrites earlier).
EMPTY = "."
SHADED = "#"
LINE_GLYPH = "~"


class AsciiMap:
    """A character raster over a world box."""

    def __init__(
        self, extent: BoundingBox, width: int = 60, height: int = 24
    ) -> None:
        if width < 2 or height < 2:
            raise GeometryError("ascii map needs at least a 2x2 raster")
        if extent.width <= 0 or extent.height <= 0:
            raise GeometryError("ascii map needs a non-degenerate extent")
        self.extent = extent
        self.width = width
        self.height = height
        self._cells: List[List[str]] = [
            [EMPTY] * width for _ in range(height)
        ]

    # -- raster addressing ------------------------------------------------------

    def _cell_center(self, col: int, row: int) -> Point:
        x = self.extent.min_x + (col + 0.5) * self.extent.width / self.width
        # Row 0 is the top of the map.
        y = self.extent.max_y - (row + 0.5) * self.extent.height / self.height
        return Point(x, y)

    def _cell_of(self, point: Point) -> Optional[Tuple[int, int]]:
        if not self.extent.contains_point(point):
            return None
        col = int(
            (float(point.x) - self.extent.min_x)
            / self.extent.width
            * self.width
        )
        row = int(
            (self.extent.max_y - float(point.y))
            / self.extent.height
            * self.height
        )
        return (
            min(max(col, 0), self.width - 1),
            min(max(row, 0), self.height - 1),
        )

    # -- drawing -------------------------------------------------------------------

    def shade_polygon(self, polygon: Polygon, glyph: str = SHADED) -> None:
        """Fill raster cells whose centers lie in the polygon."""
        for row in range(self.height):
            for col in range(self.width):
                if polygon.contains_point(self._cell_center(col, row)):
                    self._cells[row][col] = glyph

    def draw_polyline(self, polyline: Polyline, glyph: str = LINE_GLYPH) -> None:
        """Trace a polyline by sampling it densely."""
        steps = 4 * max(self.width, self.height)
        for i in range(steps + 1):
            cell = self._cell_of(polyline.point_at_fraction(i / steps))
            if cell is not None:
                col, row = cell
                self._cells[row][col] = glyph

    def plot_point(self, point: Point, glyph: str) -> None:
        """Mark a single point (ignored when outside the extent)."""
        cell = self._cell_of(point)
        if cell is not None:
            col, row = cell
            self._cells[row][col] = glyph[0]

    def render(self) -> str:
        """Return the raster as a newline-joined string."""
        return "\n".join("".join(row) for row in self._cells)


def render_world(
    polygons: Dict[Hashable, Polygon],
    shaded: Callable[[Hashable], bool] = lambda member: False,
    polylines: Iterable[Polyline] = (),
    moft: Optional[MOFT] = None,
    width: int = 60,
    height: int = 24,
) -> str:
    """Render a Figure 1-style map.

    Polygons satisfying ``shaded`` fill with ``#`` (the paper's low-income
    shading); polylines draw as ``~``; each MOFT object's samples plot as
    the last character of its id (O1 → '1').
    """
    if not polygons:
        raise GeometryError("nothing to render")
    extent = None
    for polygon in polygons.values():
        extent = polygon.bbox if extent is None else extent.union(polygon.bbox)
    assert extent is not None
    ascii_map = AsciiMap(extent, width, height)
    for member, polygon in polygons.items():
        if shaded(member):
            ascii_map.shade_polygon(polygon)
    for polyline in polylines:
        ascii_map.draw_polyline(polyline)
    if moft is not None:
        for oid, _, x, y in moft.tuples():
            ascii_map.plot_point(Point(x, y), str(oid)[-1])
    return ascii_map.render()


def render_figure1(width: int = 60, height: int = 24) -> str:
    """Regenerate the paper's Figure 1 as ASCII art."""
    from repro.synth.paperdata import (
        LOW_INCOME_THRESHOLD,
        figure1_instance,
        neighborhood_polygons,
    )

    world = figure1_instance()
    polygons = neighborhood_polygons()
    low = world.low_income_neighborhoods
    river = world.gis.layer("Lr").element("polyline", "pl_scheldt")
    return render_world(
        polygons,
        shaded=lambda member: member in low,
        polylines=[river],
        moft=world.moft,
        width=width,
        height=height,
    )
