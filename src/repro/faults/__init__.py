"""Deterministic fault injection for the sharded execution engine.

``repro.faults`` supplies the *chaos* side of the engine's
exact-or-error contract: a seeded :class:`FaultPlan` schedules per-shard
failures (raised exceptions, artificial latency, dropped tasks,
truncated partial results) that the resilient fan-out in
:mod:`repro.parallel` must absorb — by retrying, degrading backends, or
raising a typed :class:`~repro.errors.ShardExecutionError` carrying the
injected-fault trace — while never returning an answer that differs
from the serial scan.  The chaos differential campaign in
``tests/faults`` generates plans with hypothesis and enforces exactly
that invariant.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    FaultInjected,
    FaultPlan,
    FaultSpec,
)

__all__ = ["FAULT_KINDS", "FaultInjected", "FaultPlan", "FaultSpec"]
