"""Deterministic, seeded fault plans for the resilient execution layer.

A :class:`FaultPlan` schedules injectable faults per *(shard task,
attempt)* pair.  The resilient fan-out loop in
:func:`repro.parallel.backends.resilient_map` consults the plan before
accepting each task attempt's outcome and, when a fault is scheduled,
replaces the real outcome with the faulted one — a raised exception, an
artificially slow attempt (which trips the per-task timeout), a dropped
task, or a truncated partial result.  Injection happens in the
*coordinator*, not the workers, so a plan behaves identically under the
serial, thread and process backends — the property the chaos
differential campaign (``tests/faults``) depends on.

Plans are deterministic by construction: :meth:`FaultPlan.random` draws
from an explicitly seeded stream via :func:`repro.synth.rng.resolve_rng`
(never wall-clock, never global random state), so a failing chaos
example replays from its seed alone.  Faults that actually fire are
recorded on the plan's :attr:`~FaultPlan.injected` trace and travel on
the :class:`~repro.errors.ShardExecutionError` a doomed run raises.

Fault kinds
-----------

``raise``
    The attempt raises :class:`FaultInjected` instead of returning.
``latency``
    The attempt's reported wall time is inflated by ``latency_s``
    seconds (no real sleep — the campaign stays fast), deterministically
    exercising the timeout path when a
    :class:`~repro.parallel.backends.RetryPolicy` timeout is set.
``drop``
    The attempt's result vanishes, as if the worker died before
    replying; completeness verification sees the hole and retries.
``truncate``
    The attempt's result arrives corrupt — the envelope fails its
    integrity check (a worker died mid-serialization) — and is treated
    as a failure, never merged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.synth.rng import RandomLike, resolve_rng

#: Every injectable fault kind, in the order the seeded generator draws.
FAULT_KINDS: Tuple[str, ...] = ("raise", "latency", "drop", "truncate")


class FaultInjected(ReproError):
    """The exception an injected ``raise`` fault makes an attempt raise."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what happens to one task's attempt.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    task_index:
        Index of the shard task in the fan-out's payload order.
    attempt:
        Which attempt of that task the fault hits (0 = first try), so a
        plan can make a task fail once and then succeed on retry, or
        fail every attempt to force a typed error.
    latency_s:
        For ``latency`` faults: seconds added to the attempt's reported
        wall time.
    """

    kind: str
    task_index: int
    attempt: int = 0
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.task_index < 0 or self.attempt < 0:
            raise ReproError(
                f"fault coordinates must be >= 0, got task_index="
                f"{self.task_index}, attempt={self.attempt}"
            )
        if self.latency_s < 0:
            raise ReproError(f"latency_s must be >= 0, got {self.latency_s}")

    def describe(self) -> str:
        extra = f", latency_s={self.latency_s:g}" if self.kind == "latency" else ""
        return f"{self.kind}(task={self.task_index}, attempt={self.attempt}{extra})"


class FaultPlan:
    """A schedule of faults keyed by ``(task_index, attempt)``.

    At most one fault per key (two faults on the same attempt would be
    order-ambiguous, which a deterministic harness cannot allow).  The
    plan doubles as the injection *trace*: every fault that actually
    fires is appended to :attr:`injected`, in firing order, and a
    :class:`~repro.errors.ShardExecutionError` raised under the plan
    carries that trace.
    """

    def __init__(self, faults: Iterable[FaultSpec] = ()) -> None:
        self._by_key: Dict[Tuple[int, int], FaultSpec] = {}
        for fault in faults:
            key = (fault.task_index, fault.attempt)
            if key in self._by_key:
                raise ReproError(
                    f"duplicate fault for task {fault.task_index} attempt "
                    f"{fault.attempt}: {self._by_key[key].describe()} vs "
                    f"{fault.describe()}"
                )
            self._by_key[key] = fault
        #: Faults that actually fired, in firing order (the trace).
        self.injected: List[FaultSpec] = []

    # -- schedule ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(sorted(
            self._by_key.values(), key=lambda f: (f.task_index, f.attempt)
        ))

    def __bool__(self) -> bool:
        # A plan with zero faults is still a plan (the zero-fault chaos
        # case); truthiness reflects "has any fault", which callers use
        # to pick the fast path.
        return bool(self._by_key)

    def fault_for(self, task_index: int, attempt: int) -> Optional[FaultSpec]:
        """The fault scheduled for this task attempt, if any."""
        return self._by_key.get((task_index, attempt))

    # -- trace ---------------------------------------------------------------

    def record(self, fault: FaultSpec) -> None:
        """Append one fired fault to the injection trace."""
        self.injected.append(fault)

    @property
    def trace(self) -> Tuple[FaultSpec, ...]:
        """The faults that fired so far, in firing order."""
        return tuple(self.injected)

    def reset_trace(self) -> None:
        """Clear the firing record (the schedule is untouched)."""
        self.injected.clear()

    # -- constructors --------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: resilient machinery engaged, zero faults."""
        return cls(())

    @classmethod
    def single(
        cls,
        kind: str,
        task_index: int = 0,
        attempt: int = 0,
        latency_s: float = 0.0,
    ) -> "FaultPlan":
        """A one-fault plan (unit-test convenience)."""
        return cls([FaultSpec(kind, task_index, attempt, latency_s)])

    @classmethod
    def always(
        cls, kind: str, n_tasks: int, max_attempts: int = 8
    ) -> "FaultPlan":
        """Fault every attempt of every task — forces a typed error."""
        return cls([
            FaultSpec(kind, task, attempt)
            for task in range(n_tasks)
            for attempt in range(max_attempts)
        ])

    @classmethod
    def random(
        cls,
        seed: RandomLike,
        n_tasks: int,
        rate: float = 0.25,
        max_attempts: int = 3,
        kinds: Sequence[str] = FAULT_KINDS,
        latency_s: float = 10.0,
    ) -> "FaultPlan":
        """Draw a plan from a seeded stream (deterministic per seed).

        For every ``(task, attempt)`` pair with ``task < n_tasks`` and
        ``attempt < max_attempts``, a fault fires with probability
        ``rate``; its kind is drawn uniformly from ``kinds`` and
        ``latency`` faults carry up to ``latency_s`` seconds.  ``seed``
        is anything :func:`repro.synth.rng.resolve_rng` accepts (an int,
        a ``numpy.random.Generator``, a ``random.Random``); equal seeds
        give equal plans, byte for byte.
        """
        if not 0.0 <= rate <= 1.0:
            raise ReproError(f"fault rate must be in [0, 1], got {rate}")
        if not kinds:
            raise ReproError("fault plan needs at least one kind to draw")
        source = resolve_rng(0, rng=seed) if seed is not None else resolve_rng(0)
        faults: List[FaultSpec] = []
        for task in range(n_tasks):
            for attempt in range(max_attempts):
                if source.random() >= rate:
                    continue
                kind = kinds[source.randint(0, len(kinds) - 1)]
                injected_latency = (
                    source.uniform(0.0, latency_s) if kind == "latency" else 0.0
                )
                faults.append(FaultSpec(kind, task, attempt, injected_latency))
        return cls(faults)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(faults={len(self._by_key)}, "
            f"fired={len(self.injected)})"
        )


__all__ = ["FAULT_KINDS", "FaultInjected", "FaultSpec", "FaultPlan"]
