"""The query-type taxonomy of Section 3.1.

The paper characterizes eight situations for spatio-temporal aggregate
queries.  :func:`classify` inspects a region formula (and, optionally, its
aggregate spec) and assigns the type by structural rules mirroring the
paper's characterization:

1. spatial aggregation over a density fact table;
2. spatial aggregation with numeric application-part information in ``C``;
3. pure trajectory-sample queries (MOFT + Time only);
4. trajectory samples constrained by geometry;
5. trajectory samples with *aggregation inside* ``C``;
6. trajectory treated as a static spatial object (time fixed);
7. trajectory queries (interpolation between samples);
8. aggregation over trajectory-derived measures.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional

from repro.query import ast
from repro.query.region import SpatioTemporalRegion


class QueryType(enum.IntEnum):
    """The eight query types of Section 3.1."""

    SPATIAL_AGGREGATION = 1
    SPATIAL_WITH_NUMERIC = 2
    TRAJECTORY_SAMPLES = 3
    SAMPLES_WITH_GEOMETRY = 4
    SAMPLES_WITH_AGGREGATED_REGION = 5
    TRAJECTORY_AS_SPATIAL_OBJECT = 6
    TRAJECTORY_QUERY = 7
    TRAJECTORY_AGGREGATION = 8

    @property
    def description(self) -> str:
        """The paper's one-line characterization."""
        return _DESCRIPTIONS[self]


_DESCRIPTIONS = {
    QueryType.SPATIAL_AGGREGATION: (
        "Spatial aggregation: the fact table is a density function in the "
        "geometric part"
    ),
    QueryType.SPATIAL_WITH_NUMERIC: (
        "Spatial aggregation & numeric information from the application part"
    ),
    QueryType.TRAJECTORY_SAMPLES: (
        "Trajectory samples: MOFT and Time dimension only, no spatial data"
    ),
    QueryType.SAMPLES_WITH_GEOMETRY: (
        "Trajectory samples & condition over the geometry"
    ),
    QueryType.SAMPLES_WITH_AGGREGATED_REGION: (
        "Trajectory samples & spatial aggregation inside the region C"
    ),
    QueryType.TRAJECTORY_AS_SPATIAL_OBJECT: (
        "Trajectory as a spatial object: time instant fixed"
    ),
    QueryType.TRAJECTORY_QUERY: (
        "Trajectory query: linear interpolation between samples required"
    ),
    QueryType.TRAJECTORY_AGGREGATION: (
        "Trajectory aggregation: aggregate over trajectory-derived measures"
    ),
}


def _walk(formula: ast.Formula) -> Iterator[ast.Formula]:
    yield formula
    if isinstance(formula, (ast.And, ast.Or)):
        for child in formula.children:
            yield from _walk(child)
    elif isinstance(formula, ast.Not):
        yield from _walk(formula.child)
    elif isinstance(formula, (ast.Exists, ast.ForAll)):
        yield from _walk(formula.child)


def classify(
    region: SpatioTemporalRegion,
    aggregates_trajectory_measure: bool = False,
    region_uses_aggregation: bool = False,
) -> QueryType:
    """Assign a Section-3.1 type to a region query.

    ``aggregates_trajectory_measure`` marks queries whose aggregate folds
    per-trajectory quantities (Type 8); ``region_uses_aggregation`` marks
    regions whose membership condition itself required an aggregation
    ("second-order" regions, Type 5) — both facts live outside the formula
    and are supplied by the caller.
    """
    nodes = list(_walk(region.formula))
    has_moft = any(isinstance(n, ast.Moft) for n in nodes)
    has_trajectory = any(
        isinstance(n, (ast.TrajectoryIntersects, ast.TrajectoryWithinDistance))
        for n in nodes
    )
    has_spatial = any(
        isinstance(
            n, (ast.PointIn, ast.GeometryRelation, ast.WithinDistance, ast.Alpha)
        )
        for n in nodes
    ) or has_trajectory
    has_member_numeric = any(
        isinstance(n, ast.Compare)
        and (
            isinstance(n.lhs, ast.MemberValue)
            or isinstance(n.rhs, ast.MemberValue)
        )
        for n in nodes
    )
    time_fixed = any(
        isinstance(n, ast.Moft) and isinstance(n.t, ast.Const) for n in nodes
    )

    if aggregates_trajectory_measure:
        return QueryType.TRAJECTORY_AGGREGATION
    if not has_moft:
        if has_member_numeric:
            return QueryType.SPATIAL_WITH_NUMERIC
        return QueryType.SPATIAL_AGGREGATION
    if region_uses_aggregation:
        return QueryType.SAMPLES_WITH_AGGREGATED_REGION
    if has_trajectory:
        return QueryType.TRAJECTORY_QUERY
    if time_fixed:
        return QueryType.TRAJECTORY_AS_SPATIAL_OBJECT
    if has_spatial:
        return QueryType.SAMPLES_WITH_GEOMETRY
    return QueryType.TRAJECTORY_SAMPLES
