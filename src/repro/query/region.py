"""Evaluation of spatio-temporal regions ``C``.

"Our spatial region C turns, in the spatio-temporal setting, into a set of
pairs ``(objectId, time)``" (Section 3.1) — or triples with geometry ids
(query 2).  :class:`SpatioTemporalRegion` holds the output variables and
the defining formula; :meth:`SpatioTemporalRegion.evaluate` solves the
formula against an :class:`EvaluationContext` and returns the relation as a
list of dict rows ready for γ-aggregation.

The solver treats a conjunction as a constraint-propagation problem:
atoms that can enumerate bindings under the current environment run first
(most selective atoms are ordered by the caller's formula order), pure
checks and negations wait until their variables are bound.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import EvaluationError, QueryError
from repro.geometry.index import UniformGridIndex, index_for_geometries
from repro.geometry.point import Point
from repro.gis.instance import GISDimensionInstance
from repro.mo.moft import MOFT
from repro.obs import PipelineStats
from repro.mo.operations import ever_within_distance, passes_through
from repro.mo.trajectory import LinearInterpolationTrajectory
from repro.query import ast
from repro.temporal.timedim import TimeDimension

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.preagg.store import PreAggStore


class EvaluationContext:
    """Bundles the data a formula is evaluated against.

    Parameters
    ----------
    gis:
        The GIS dimension instance (layers, α, rollup relations, values).
    time:
        The Time dimension.
    mofts:
        Moving-object fact tables by name (default name ``"FM"``).
    use_overlay:
        When True (the Piet strategy of Section 5), geometry-relation atoms
        are answered from the precomputed overlay; when False every check
        recomputes geometry predicates directly (the naive strategy).
    """

    def __init__(
        self,
        gis: GISDimensionInstance,
        time: TimeDimension,
        mofts: Dict[str, MOFT] | MOFT | None = None,
        use_overlay: bool = True,
    ) -> None:
        self.gis = gis
        self.time = time
        if mofts is None:
            self._mofts: Dict[str, MOFT] = {}
        elif isinstance(mofts, MOFT):
            self._mofts = {mofts.name: mofts, "FM": mofts}
        else:
            self._mofts = dict(mofts)
        self.use_overlay = use_overlay
        self._trajectory_cache: Dict[
            Tuple[str, Hashable], LinearInterpolationTrajectory
        ] = {}
        # Pipeline observability: named counters + per-stage timers.  The
        # legacy ``stats`` dict is a live view over the observer's
        # counters, so both vocabularies see the same numbers.
        self.obs = PipelineStats()
        self.stats: Dict[str, int] = self.obs.counters
        for counter in ("geometry_checks", "overlay_hits", "trajectory_builds"):
            self.stats[counter] = 0
        # Grid indexes keyed by (layer, kind, answer-id-set); repeated
        # queries over the same geometric answer reuse the index instead
        # of rebuilding it per query.
        self._grid_cache: Dict[
            Tuple[str, str, frozenset], UniformGridIndex
        ] = {}
        # Registered pre-aggregation stores; the planner rewrite
        # (repro.query.optimizer.route_through_window) consults these.
        self._preagg_stores: List["PreAggStore"] = []

    # -- data access ----------------------------------------------------------

    def moft(self, name: str) -> MOFT:
        """Return a MOFT by name."""
        try:
            return self._mofts[name]
        except KeyError:
            raise EvaluationError(f"no MOFT named {name!r} in context") from None

    def locate_point(self, layer: str, kind: str, point: Point) -> Set[Hashable]:
        """Evaluate the point rollup relation at a point."""
        return self.gis.point_rollup(layer, kind, point)

    # -- pre-aggregation stores ----------------------------------------------

    def register_preagg(self, store: "PreAggStore") -> "PreAggStore":
        """Make a store visible to the planner rewrite; returns it."""
        self._preagg_stores.append(store)
        return store

    @property
    def has_preagg(self) -> bool:
        """True when at least one store is registered (miss counters fire)."""
        return bool(self._preagg_stores)

    def preagg_for(
        self,
        moft: MOFT,
        layer: str,
        kind: str,
        ids: Iterable[Hashable],
    ) -> Optional["PreAggStore"]:
        """The first registered store able to serve this (moft, layer, ids).

        Matching is by MOFT *identity* (the store summarizes exactly that
        table), layer/kind tags, and geometry coverage: every queried id
        must be materialized.  Staleness is NOT checked here — the
        planner decides whether a stale store is a miss.
        """
        wanted = set(ids)
        for store in self._preagg_stores:
            if store.moft is not moft:
                continue
            if store.layer != layer or store.kind != kind:
                continue
            if wanted <= store._gid_set:
                return store
        return None

    def poi_store_for(
        self,
        moft: MOFT,
        layer: Optional[str],
        granule_level: str,
        min_dwell: float,
        ids: Iterable[Hashable],
    ):
        """The first registered :class:`~repro.poi.PoiVisitStore` able to
        serve this POI aggregate.

        POI stores register through :meth:`register_preagg` (same
        registry, same lifecycle); matching additionally pins the
        granule level and the ``min_dwell`` threshold, both baked into
        the cells at build time.
        """
        from repro.poi.store import PoiVisitStore

        wanted = set(ids)
        for store in self._preagg_stores:
            if not isinstance(store, PoiVisitStore):
                continue
            if store.moft is not moft:
                continue
            if layer is not None and store.layer != layer:
                continue
            if store.granule_level != granule_level:
                continue
            if store.min_dwell != float(min_dwell):
                continue
            if wanted <= store._gid_set:
                return store
        return None

    def geometry_index(
        self,
        layer: str,
        kind: str,
        ids: Iterable[Hashable],
        obs: Optional[PipelineStats] = None,
    ) -> UniformGridIndex:
        """A grid index over one geometric answer, cached per id set.

        The Section 5 pipeline rebuilds its candidate filter from the
        geometric subquery's answer; answers repeat across queries (the
        subquery is cheap against the overlay and often identical), so
        the index is cached under ``(layer, kind, frozenset(ids))``.
        Cache behavior is counted as ``grid_index_builds`` /
        ``grid_index_cache_hits`` on the context observer (and on ``obs``
        when given); build time lands in the ``index_build`` stage.
        """
        key = (layer, kind, frozenset(ids))
        observers = [self.obs] if obs is None else [self.obs, obs]
        index = self._grid_cache.get(key)
        if index is not None:
            for observer in observers:
                observer.incr("grid_index_cache_hits")
            return index
        for observer in observers:
            observer.incr("grid_index_builds")
        elements = self.gis.layer(layer).elements(kind)
        with self.obs.stage("index_build"):
            index = index_for_geometries(
                {gid: elements[gid] for gid in key[2]}
            )
        self._grid_cache[key] = index
        return index

    # -- geometry relations (overlay vs naive) ------------------------------------

    def geometry_pairs(
        self, layer_a: str, kind_a: str, predicate: str, layer_b: str, kind_b: str
    ) -> Set[Tuple[Hashable, Hashable]]:
        """All id pairs satisfying the predicate between two (layer, kind)s."""
        if self.use_overlay:
            self.stats["overlay_hits"] += 1
            return self.gis.overlay().pairs(
                f"{layer_a}:{kind_a}", f"{layer_b}:{kind_b}", predicate
            )
        from repro.geometry.overlay import geometries_intersect, geometry_contains

        elems_a = self.gis.layer(layer_a).elements(kind_a)
        elems_b = self.gis.layer(layer_b).elements(kind_b)
        result: Set[Tuple[Hashable, Hashable]] = set()
        for id_a, geom_a in elems_a.items():
            for id_b, geom_b in elems_b.items():
                self.stats["geometry_checks"] += 1
                if predicate == "intersects":
                    hit = geometries_intersect(geom_a, geom_b)
                elif predicate == "contains":
                    hit = geometry_contains(geom_a, geom_b)
                elif predicate == "within":
                    hit = geometry_contains(geom_b, geom_a)
                else:
                    raise EvaluationError(f"unknown predicate {predicate!r}")
                if hit:
                    result.add((id_a, id_b))
        return result

    def geometry_related(
        self,
        layer_a: str,
        kind_a: str,
        gid_a: Hashable,
        predicate: str,
        layer_b: str,
        kind_b: str,
        gid_b: Hashable,
    ) -> bool:
        """Decide one geometric predicate between two identified elements."""
        if self.use_overlay:
            self.stats["overlay_hits"] += 1
            pairs = self.gis.overlay().pairs(
                f"{layer_a}:{kind_a}", f"{layer_b}:{kind_b}", predicate
            )
            return (gid_a, gid_b) in pairs
        from repro.geometry.overlay import geometries_intersect, geometry_contains

        geom_a = self.gis.layer(layer_a).element(kind_a, gid_a)
        geom_b = self.gis.layer(layer_b).element(kind_b, gid_b)
        self.stats["geometry_checks"] += 1
        if predicate == "intersects":
            return geometries_intersect(geom_a, geom_b)
        if predicate == "contains":
            return geometry_contains(geom_a, geom_b)
        if predicate == "within":
            return geometry_contains(geom_b, geom_a)
        raise EvaluationError(f"unknown predicate {predicate!r}")

    # -- trajectory atoms ------------------------------------------------------------

    def trajectory(
        self, moft_name: str, oid: Hashable
    ) -> LinearInterpolationTrajectory:
        """Return (cached) the LIT of one object's samples."""
        key = (moft_name, oid)
        if key not in self._trajectory_cache:
            self.stats["trajectory_builds"] += 1
            sample = self.moft(moft_name).trajectory_sample(oid)
            self._trajectory_cache[key] = LinearInterpolationTrajectory(sample)
        return self._trajectory_cache[key]

    def trajectory_intersects(
        self, moft_name: str, oid: Hashable, layer: str, kind: str, gid: Hashable
    ) -> bool:
        """Does the interpolated trajectory of ``oid`` meet the geometry?

        Objects with a single sample degenerate to a point probe.
        """
        from repro.geometry.overlay import geometries_intersect
        from repro.geometry.polygon import Polygon

        geometry = self.gis.layer(layer).element(kind, gid)
        history = self.moft(moft_name).history(oid)
        if len(history) == 1:
            _, x, y = history[0]
            return geometries_intersect(geometry, Point(x, y))
        trajectory = self.trajectory(moft_name, oid)
        if isinstance(geometry, Polygon):
            return passes_through(trajectory, geometry)
        return any(
            geometries_intersect(segment, geometry)
            for _, _, segment in trajectory.pieces()
        )

    def trajectory_within_distance(
        self,
        moft_name: str,
        oid: Hashable,
        layer: str,
        kind: str,
        gid: Hashable,
        radius: float,
    ) -> bool:
        """Does the interpolated trajectory pass within ``radius`` of a node?

        Objects with a single sample degenerate to a point-distance check.
        """
        node = self.gis.layer(layer).element(kind, gid)
        if not isinstance(node, Point):
            raise EvaluationError(
                "trajectory_within_distance expects a node (point) element"
            )
        history = self.moft(moft_name).history(oid)
        if len(history) == 1:
            _, x, y = history[0]
            return node.distance_to(Point(x, y)) <= radius + 1e-12
        return ever_within_distance(
            self.trajectory(moft_name, oid), node, radius
        )

    def trajectory_possibly_through(
        self,
        moft_name: str,
        oid: Hashable,
        layer: str,
        kind: str,
        gid: Hashable,
        max_speed: float,
    ) -> bool:
        """Could the object have entered the geometry, given a speed bound?

        Uses the Hornsby–Egenhofer lifeline-bead model: between consecutive
        observations the object stays within the bead for ``max_speed``;
        the atom holds when some bead footprint meets the geometry.
        Single-sample objects degenerate to a point test.
        """
        from repro.geometry.polygon import Polygon
        from repro.mo.beads import Lifeline

        geometry = self.gis.layer(layer).element(kind, gid)
        moft = self.moft(moft_name)
        history = moft.history(oid)
        if len(history) == 1:
            _, x, y = history[0]
            if isinstance(geometry, Polygon):
                return geometry.contains_point(Point(x, y))
            from repro.geometry.overlay import geometries_intersect

            return geometries_intersect(geometry, Point(x, y))
        lifeline = Lifeline(
            moft.trajectory_sample(oid), max_speed, clamp_to_feasible=True
        )
        if isinstance(geometry, Polygon):
            return lifeline.could_have_entered(geometry)
        if isinstance(geometry, Point):
            return lifeline.could_have_visited(geometry)
        raise EvaluationError(
            "PossiblyThrough supports polygon and node geometries"
        )


class SpatioTemporalRegion:
    """A region ``C = {(outputs) | formula}``.

    ``output_variables`` name the tuple components of the resulting
    relation (typically ``("oid", "t")``); every output variable must occur
    free in the formula.
    """

    def __init__(
        self, output_variables: Sequence[str], formula: ast.Formula
    ) -> None:
        if not output_variables:
            raise QueryError("a region needs at least one output variable")
        free = formula.free_variables()
        missing = [v for v in output_variables if v not in free]
        if missing:
            raise QueryError(
                f"output variables {missing} do not occur free in the "
                f"formula (free: {sorted(free)})"
            )
        self.output_variables = tuple(output_variables)
        self.formula = formula

    def evaluate(self, context: EvaluationContext) -> List[Dict[str, Any]]:
        """Solve the formula; return distinct output rows as dicts."""
        rows: Set[Tuple[Any, ...]] = set()
        for env in _solve(self.formula, context, {}):
            missing = [v for v in self.output_variables if v not in env]
            if missing:
                raise EvaluationError(
                    f"unsafe query: output variables {missing} were never "
                    f"bound by a positive atom"
                )
            rows.add(tuple(env[v] for v in self.output_variables))
        return [
            dict(zip(self.output_variables, row)) for row in sorted(rows, key=repr)
        ]

    def evaluate_tuples(self, context: EvaluationContext) -> Set[Tuple[Any, ...]]:
        """Like :meth:`evaluate` but returning a set of plain tuples."""
        return {
            tuple(row[v] for v in self.output_variables)
            for row in self.evaluate(context)
        }


# ---------------------------------------------------------------------------
# The solver
# ---------------------------------------------------------------------------


def _solve(
    formula: ast.Formula, context: EvaluationContext, env: Dict[str, Any]
) -> Iterator[Dict[str, Any]]:
    """Yield environments (extending ``env``) that satisfy the formula."""
    if isinstance(formula, ast.And):
        yield from _solve_conjunction(list(formula.children), context, env)
    elif isinstance(formula, ast.Or):
        seen: Set[Tuple[Tuple[str, Any], ...]] = set()
        for child in formula.children:
            for result in _solve(child, context, env):
                key = tuple(sorted(result.items(), key=lambda kv: kv[0]))
                if key not in seen:
                    seen.add(key)
                    yield result
    elif isinstance(formula, ast.Not):
        # Negation-as-failure with existential closure: variables unbound
        # at this point are treated as ∃-quantified inside the ¬ — exactly
        # the paper's query-3 pattern ``¬(∃x1 ∃y1 ∃pg1 ∃t1 …)``.  The
        # scheduler runs negations last, so variables shared with positive
        # conjuncts are already bound.
        if not _satisfiable(formula.child, context, env):
            yield env
    elif isinstance(formula, ast.Exists):
        for value in formula.domain.values(context):
            inner = dict(env)
            inner[formula.var.name] = value
            if _satisfiable(formula.child, context, inner):
                yield env
                return
    elif isinstance(formula, ast.ForAll):
        for value in formula.domain.values(context):
            inner = dict(env)
            inner[formula.var.name] = value
            if not _satisfiable(formula.child, context, inner):
                return
        yield env
    elif isinstance(formula, ast.Atom):
        unbound = [v for v in formula.free_variables() if v not in env]
        if not unbound:
            if formula.check(context, env):
                yield env
        else:
            yield from formula.enumerate_bindings(context, env)
    else:
        raise EvaluationError(f"unknown formula node {type(formula).__name__}")


def _satisfiable(
    formula: ast.Formula, context: EvaluationContext, env: Dict[str, Any]
) -> bool:
    """True when the formula has at least one satisfying extension."""
    for _ in _solve(formula, context, env):
        return True
    return False


def _solve_conjunction(
    children: List[ast.Formula],
    context: EvaluationContext,
    env: Dict[str, Any],
) -> Iterator[Dict[str, Any]]:
    """Ordered backtracking with ready-first scheduling.

    At each step, pick the first child whose evaluation is *ready*:
    an atom that is fully bound (cheap check), then an atom that can
    enumerate under the current bindings, then quantifiers/disjunctions,
    and negations only once fully bound.  This keeps the written order of
    the formula meaningful (selective atoms first) while never evaluating
    a node before its inputs exist.
    """
    if not children:
        yield env
        return
    index = _pick_ready(children, env)
    if index is None:
        names = [type(c).__name__ for c in children]
        raise EvaluationError(
            f"no conjunct is evaluable under bindings {sorted(env)}: {names}"
        )
    chosen = children[index]
    rest = children[:index] + children[index + 1 :]
    for extended in _solve(chosen, context, env):
        yield from _solve_conjunction(rest, context, extended)


def _pick_ready(
    children: List[ast.Formula], env: Dict[str, Any]
) -> Optional[int]:
    # 1. Fully-bound atoms and negations (cheap filters).
    for i, child in enumerate(children):
        free = child.free_variables()
        if all(v in env for v in free):
            return i
    # 2. Atoms able to enumerate.
    for i, child in enumerate(children):
        if isinstance(child, ast.Atom) and child.can_enumerate(env):
            return i
    # 3. Quantifiers / disjunctions / nested conjunctions: their inner
    #    solver existentially closes still-unbound variables.  Variables
    #    shared with positive atoms outside the quantifier should be bound
    #    by those atoms first, which stages 1–2 guarantee whenever such an
    #    atom exists.
    for i, child in enumerate(children):
        if isinstance(child, (ast.Exists, ast.ForAll, ast.Or, ast.And)):
            return i
    # 4. Negations run last (negation as failure with ∃-closure).
    for i, child in enumerate(children):
        if isinstance(child, ast.Not):
            return i
    return None
