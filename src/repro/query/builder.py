"""A fluent builder for the paper's query patterns.

Section 4's example queries all share a shape: bind MOFT samples, constrain
the instant through Time rollups, constrain the position through the
geometry and the application part, project to ``(Oid, t, …)`` and
aggregate.  :class:`RegionBuilder` composes that shape without writing AST
nodes by hand::

    region = (
        RegionBuilder()
        .from_moft("FM")
        .during("timeOfDay", "Morning")
        .in_attribute_polygon("neighborhood", value_filter=("income", "<", 1500))
        .build()
    )

The builder produces an ordinary :class:`SpatioTemporalRegion`, so built
queries interoperate with hand-written formulas.
"""

from __future__ import annotations

import itertools
from typing import Any, Hashable, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.query import ast
from repro.query.aggregate import AggregateSpec, MovingObjectAggregateQuery
from repro.query.region import SpatioTemporalRegion


class RegionBuilder:
    """Accumulates conjuncts over the canonical variables ``oid, t, x, y``."""

    def __init__(self) -> None:
        self._conjuncts: List[ast.Formula] = []
        self._outputs: Tuple[str, ...] = ("oid", "t")
        self._has_moft = False
        self._fresh = itertools.count()
        self.oid = ast.Var("oid")
        self.t = ast.Var("t")
        self.x = ast.Var("x")
        self.y = ast.Var("y")

    def _gensym(self, prefix: str) -> ast.Var:
        return ast.Var(f"{prefix}{next(self._fresh)}")

    # -- sources --------------------------------------------------------------

    def from_moft(
        self, moft_name: str = "FM", at_instant: Optional[float] = None
    ) -> "RegionBuilder":
        """Bind ``(oid, t, x, y)`` to MOFT rows.

        ``at_instant`` fixes the instant (Type-6 queries: "how many cars at
        9:15 on Jan 7"); the ``t`` output column then carries the constant.
        """
        t_term: "ast.Var | ast.Const" = self.t
        if at_instant is not None:
            t_term = ast.Const(float(at_instant))
        self._conjuncts.append(
            ast.Moft(self.oid, t_term, self.x, self.y, moft_name)
        )
        if at_instant is not None:
            self._outputs = tuple(c for c in self._outputs if c != "t")
            if not self._outputs:
                self._outputs = ("oid",)
        self._has_moft = True
        return self

    # -- temporal constraints ------------------------------------------------------

    def during(self, level: str, member: Hashable) -> "RegionBuilder":
        """Require ``R^{level}(t) = member`` (e.g. timeOfDay = Morning)."""
        self._conjuncts.append(ast.TimeRollup(self.t, level, ast.Const(member)))
        return self

    def where_time(self, level: str, op: str, value: Any) -> "RegionBuilder":
        """Require ``R^{level}(t) op value`` (e.g. hour >= 8)."""
        self._conjuncts.append(ast.TimeRollupCompare(self.t, level, op, value))
        return self

    # -- spatial constraints ----------------------------------------------------------

    def in_attribute_polygon(
        self,
        attribute: str,
        member: Optional[Hashable] = None,
        value_filter: Optional[Tuple[str, str, Any]] = None,
    ) -> "RegionBuilder":
        """Sample position inside the polygon of an application member.

        Emits the paper's pattern ``r^{Pt,Pg}_L(x, y, pg) ∧ α(n) = pg`` plus
        optionally ``n.field op value`` or ``n = member``.
        """
        from repro.gis import POLYGON

        return self.in_attribute_geometry(
            attribute, POLYGON, member=member, value_filter=value_filter
        )

    def at_poi(
        self,
        attribute: str,
        member: Optional[Hashable] = None,
        value_filter: Optional[Tuple[str, str, Any]] = None,
    ) -> "RegionBuilder":
        """Sample position inside a place-of-interest disc.

        The POI counterpart of :meth:`in_attribute_polygon`: emits the
        containment pattern against a ``poi``-kind placement (closed
        disc membership).  Aggregate POI questions (visits, distinct
        visitors, top-k) live in :class:`repro.query.poi.PoiQueryBuilder`;
        this condition slots POI membership into arbitrary region
        formulas.
        """
        from repro.gis import geometries as gk

        return self.in_attribute_geometry(
            attribute, gk.POI, member=member, value_filter=value_filter
        )

    def in_attribute_geometry(
        self,
        attribute: str,
        kind: str,
        member: Optional[Hashable] = None,
        value_filter: Optional[Tuple[str, str, Any]] = None,
        layer: Optional[str] = None,
    ) -> "RegionBuilder":
        """Generalized containment against any geometry kind.

        ``layer`` is normally inferred from the attribute placement at
        build time and can be passed explicitly only to override.
        """
        gid = self._gensym("g")
        member_term: "ast.Var | ast.Const"
        if member is not None:
            member_term = ast.Const(member)
        else:
            member_term = self._gensym("m")
        self._conjuncts.append(
            _DeferredPlacement(attribute, kind, layer, self.x, self.y, gid)
        )
        self._conjuncts.append(ast.Alpha(attribute, member_term, gid))
        if value_filter is not None:
            field_name, op, value = value_filter
            self._conjuncts.append(
                ast.Compare(
                    ast.MemberValue(attribute, member_term, field_name),
                    op,
                    ast.Const(value),
                )
            )
        return self

    def near_attribute_node(
        self,
        attribute: str,
        radius: float,
        member: Optional[Hashable] = None,
    ) -> "RegionBuilder":
        """Sample position within ``radius`` of a node-placed member.

        Queries 6 and 7: near schools / near the Groenplaats tram stop.
        """
        gid = self._gensym("g")
        member_term: "ast.Var | ast.Const"
        if member is not None:
            member_term = ast.Const(member)
        else:
            member_term = self._gensym("m")
        self._conjuncts.append(ast.Alpha(attribute, member_term, gid))
        self._conjuncts.append(
            _DeferredWithinDistance(attribute, self.x, self.y, gid, radius)
        )
        return self

    def trajectory_through_attribute(
        self,
        attribute: str,
        member: Optional[Hashable] = None,
        value_filter: Optional[Tuple[str, str, Any]] = None,
        moft_name: str = "FM",
    ) -> "RegionBuilder":
        """Interpolated trajectory intersects the member's geometry (Type 7)."""
        gid = self._gensym("g")
        member_term: "ast.Var | ast.Const"
        if member is not None:
            member_term = ast.Const(member)
        else:
            member_term = self._gensym("m")
        self._conjuncts.append(ast.Alpha(attribute, member_term, gid))
        self._conjuncts.append(
            _DeferredTrajectoryIntersects(attribute, self.oid, gid, moft_name)
        )
        if value_filter is not None:
            field_name, op, value = value_filter
            self._conjuncts.append(
                ast.Compare(
                    ast.MemberValue(attribute, member_term, field_name),
                    op,
                    ast.Const(value),
                )
            )
        return self

    def trajectory_near_attribute_node(
        self,
        attribute: str,
        radius: float,
        member: Optional[Hashable] = None,
        moft_name: str = "FM",
    ) -> "RegionBuilder":
        """Interpolated trajectory within ``radius`` of a node member."""
        gid = self._gensym("g")
        member_term: "ast.Var | ast.Const"
        if member is not None:
            member_term = ast.Const(member)
        else:
            member_term = self._gensym("m")
        self._conjuncts.append(ast.Alpha(attribute, member_term, gid))
        self._conjuncts.append(
            _DeferredTrajectoryNear(attribute, self.oid, gid, radius, moft_name)
        )
        return self

    def where_member(
        self, attribute: str, members: Sequence[Hashable], kind: Optional[str] = None
    ) -> "RegionBuilder":
        """Restrict positions to the polygons of an explicit member list."""
        gid = self._gensym("g")
        member_term = self._gensym("m")
        self._conjuncts.append(
            _DeferredPlacement(attribute, kind, None, self.x, self.y, gid)
        )
        self._conjuncts.append(ast.Alpha(attribute, member_term, gid))
        self._conjuncts.append(
            ast.Or(
                *[
                    ast.Compare(member_term, "=", ast.Const(m))
                    for m in members
                ]
            )
        )
        return self

    def filter(self, formula: ast.Formula) -> "RegionBuilder":
        """Append an arbitrary formula conjunct (escape hatch)."""
        self._conjuncts.append(formula)
        return self

    def not_exists(self, formula: ast.Formula) -> "RegionBuilder":
        """Append ``¬ formula`` (query 3's "never sampled elsewhere")."""
        self._conjuncts.append(ast.Not(formula))
        return self

    # -- projection & build ---------------------------------------------------------------

    def output(self, *columns: str) -> "RegionBuilder":
        """Set the region's output columns (default ``oid, t``)."""
        if not columns:
            raise QueryError("output needs at least one column")
        self._outputs = tuple(columns)
        return self

    def build(self, gis=None) -> SpatioTemporalRegion:
        """Finalize into a :class:`SpatioTemporalRegion`.

        When ``gis`` is given, deferred placement lookups (layer inference
        from attribute placements) resolve now; otherwise they resolve on
        first evaluation via the context.
        """
        if not self._has_moft:
            raise QueryError(
                "builder regions are MOFT-based; call from_moft() first "
                "(for purely spatial regions use the AST directly)"
            )
        conjuncts = [
            c.resolve(gis) if isinstance(c, _Deferred) else c
            for c in self._conjuncts
        ]
        return SpatioTemporalRegion(self._outputs, ast.And(*conjuncts))

    def explain(self, context) -> str:
        """Describe the region this builder would evaluate, with rewrites.

        Renders the formula tree (:meth:`~repro.query.ast.Formula
        .describe`) and, when the :func:`~repro.query.optimizer
        .push_down_time` rewrite applies against the given context, the
        rewritten tree next to it.  Purely informational — nothing is
        evaluated.
        """
        from repro.query.optimizer import push_down_time

        region = self.build(context.gis)
        rewritten = push_down_time(region, context)
        lines = [
            f"Region(outputs={', '.join(region.output_variables)})",
            region.formula.describe(1),
        ]
        if rewritten.formula is not region.formula:
            lines.append("Rewritten by push_down_time:")
            lines.append(rewritten.formula.describe(1))
        else:
            lines.append("push_down_time: not applicable")
        return "\n".join(lines)

    def count_query(
        self,
        distinct_objects: bool = False,
        group_by: Tuple[str, ...] = (),
        per_span: Optional[Tuple[str, Hashable]] = None,
        gis=None,
    ) -> MovingObjectAggregateQuery:
        """Build the region and wrap it in a COUNT aggregate."""
        spec = AggregateSpec(
            measure="oid" if distinct_objects else None,
            distinct=distinct_objects,
            group_by=group_by,
            per_span_level=per_span[0] if per_span else None,
            per_span_member=per_span[1] if per_span else None,
        )
        return MovingObjectAggregateQuery(self.build(gis), spec)


class _Deferred:
    """A conjunct needing the GIS schema to resolve (layer inference)."""

    def resolve(self, gis) -> ast.Formula:
        raise NotImplementedError


class _DeferredPlacement(_Deferred, ast.Atom):
    """PointIn whose layer/kind come from an attribute placement."""

    def __init__(self, attribute, kind, layer, x, y, gid) -> None:
        self.attribute = attribute
        self.kind = kind
        self.layer = layer
        self.x, self.y, self.gid = x, y, gid

    def _terms(self):
        return (self.x, self.y, self.gid)

    def check(self, context, env):
        return self.resolve(context.gis).check(context, env)

    def enumerate_bindings(self, context, env):
        return self.resolve(context.gis).enumerate_bindings(context, env)

    def can_enumerate(self, env):
        return ast.is_bound(self.x, env) and ast.is_bound(self.y, env)

    def resolve(self, gis) -> ast.Formula:
        if gis is None:
            return self
        placement = gis.schema.placement(self.attribute)
        kind = self.kind or placement.kind
        layer = self.layer or placement.layer
        return ast.PointIn(self.x, self.y, layer, kind, self.gid)


class _DeferredWithinDistance(_Deferred, ast.Atom):
    """WithinDistance whose layer/kind come from an attribute placement."""

    def __init__(self, attribute, x, y, gid, radius) -> None:
        self.attribute = attribute
        self.x, self.y, self.gid = x, y, gid
        self.radius = radius

    def _terms(self):
        return (self.x, self.y, self.gid)

    def check(self, context, env):
        return self.resolve(context.gis).check(context, env)

    def enumerate_bindings(self, context, env):
        return self.resolve(context.gis).enumerate_bindings(context, env)

    def can_enumerate(self, env):
        return ast.is_bound(self.x, env) and ast.is_bound(self.y, env)

    def resolve(self, gis) -> ast.Formula:
        if gis is None:
            return self
        placement = gis.schema.placement(self.attribute)
        return ast.WithinDistance(
            self.x, self.y, placement.layer, placement.kind, self.gid, self.radius
        )


class _DeferredTrajectoryIntersects(_Deferred, ast.Atom):
    """TrajectoryIntersects with layer/kind from an attribute placement."""

    def __init__(self, attribute, oid, gid, moft_name) -> None:
        self.attribute = attribute
        self.oid, self.gid = oid, gid
        self.moft_name = moft_name

    def _terms(self):
        return (self.oid, self.gid)

    def check(self, context, env):
        return self.resolve(context.gis).check(context, env)

    def enumerate_bindings(self, context, env):
        return self.resolve(context.gis).enumerate_bindings(context, env)

    def can_enumerate(self, env):
        return ast.is_bound(self.oid, env)

    def resolve(self, gis) -> ast.Formula:
        if gis is None:
            return self
        placement = gis.schema.placement(self.attribute)
        return ast.TrajectoryIntersects(
            self.oid, placement.layer, placement.kind, self.gid, self.moft_name
        )


class _DeferredTrajectoryNear(_Deferred, ast.Atom):
    """TrajectoryWithinDistance with layer/kind from a placement."""

    def __init__(self, attribute, oid, gid, radius, moft_name) -> None:
        self.attribute = attribute
        self.oid, self.gid = oid, gid
        self.radius = radius
        self.moft_name = moft_name

    def _terms(self):
        return (self.oid, self.gid)

    def check(self, context, env):
        return self.resolve(context.gis).check(context, env)

    def enumerate_bindings(self, context, env):
        return self.resolve(context.gis).enumerate_bindings(context, env)

    def can_enumerate(self, env):
        return ast.is_bound(self.oid, env)

    def resolve(self, gis) -> ast.Formula:
        if gis is None:
            return self
        placement = gis.schema.placement(self.attribute)
        return ast.TrajectoryWithinDistance(
            self.oid,
            placement.layer,
            placement.kind,
            self.gid,
            self.radius,
            self.moft_name,
        )
