"""The paper's core contribution: spatio-temporal aggregate queries.

FO constraint formulas define regions ``C`` over the MOFT, the GIS
dimension and the Time dimension; γ-aggregation over the evaluated region
answers the query; the taxonomy of Section 3.1 classifies it; the Piet
pipeline of Section 5 evaluates geometry-heavy queries over precomputed
overlays.
"""

from repro.obs import PipelineStats, StageTimer
from repro.query import ast
from repro.query.region import EvaluationContext, SpatioTemporalRegion
from repro.query.aggregate import (
    AggregateSpec,
    MovingObjectAggregateQuery,
    count_distinct_objects,
    count_per_group,
)
from repro.query.classify import QueryType, classify
from repro.query.builder import RegionBuilder
from repro.query.evaluator import (
    EvaluationStats,
    TrajectoryIntersectionCounter,
    count_objects_through,
    geometric_subquery,
)
from repro.query.optimizer import FilteredMoft, push_down_time
from repro.query.planner import (
    CostModel,
    PlanNode,
    QueryPlan,
    explain,
    plan_count_objects_through,
    planned_count_objects_through,
)
from repro.query.vectorized import polygon_contains_batch, samples_in_polygons
from repro.query.trajectory_queries import (
    aggregate_trajectory_measure,
    objects_passing_through,
    presence_intervals,
    time_near_node,
    time_spent_in,
)

__all__ = [
    "ast",
    "EvaluationContext",
    "SpatioTemporalRegion",
    "AggregateSpec",
    "MovingObjectAggregateQuery",
    "count_distinct_objects",
    "count_per_group",
    "QueryType",
    "classify",
    "RegionBuilder",
    "EvaluationStats",
    "PipelineStats",
    "StageTimer",
    "TrajectoryIntersectionCounter",
    "count_objects_through",
    "geometric_subquery",
    "FilteredMoft",
    "push_down_time",
    "CostModel",
    "PlanNode",
    "QueryPlan",
    "explain",
    "plan_count_objects_through",
    "planned_count_objects_through",
    "polygon_contains_batch",
    "samples_in_polygons",
    "aggregate_trajectory_measure",
    "objects_passing_through",
    "presence_intervals",
    "time_near_node",
    "time_spent_in",
]
