"""The constraint language defining spatio-temporal regions ``C``.

The paper expresses every query region as a first-order formula over a
multi-sorted logic with the rollup relations ``r``, the α functions, the
Time-dimension rollups ``R``, the MOFT relation ``FM`` and arithmetic
comparisons (Definition 4 and Sections 3.1/4).  This module provides the
corresponding AST:

* **Terms** — variables and constants.
* **Atoms** — ``Moft`` (the FM relation), ``TimeRollup`` (``R^level(t)``),
  ``PointIn`` (``r^{Pt,G}_L``), ``Alpha`` (``α^{A,G}_L``),
  ``GeometryRelation`` (overlay predicates between layer elements),
  ``WithinDistance`` (the ``(x-x1)² + (y-y1)² ≤ d²`` constraints of
  queries 6/7), ``Compare`` (attribute/value comparisons like
  ``n.income < 1500``) and the trajectory atoms ``TrajectoryIntersects`` /
  ``TrajectoryWithinDistance`` that package the paper's explicit linear-
  interpolation subformulas.
* **Connectives** — ``And``, ``Or``, ``Not``, ``Exists``, ``ForAll`` with
  explicit finite quantifier domains.

Evaluation lives in :mod:`repro.query.region`; atoms implement a
*bind-or-enumerate* protocol so a conjunctive formula is solved by ordered
backtracking over finite domains.
"""

from __future__ import annotations

import abc
import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import QueryError

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """A logical variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class Const:
    """A literal constant."""

    value: Any

    def __repr__(self) -> str:
        return repr(self.value)


Term = "Var | Const"


def as_term(value: Any) -> "Var | Const":
    """Coerce plain Python values to constants; pass terms through."""
    if isinstance(value, (Var, Const)):
        return value
    return Const(value)


def term_value(term: "Var | Const", env: Dict[str, Any]) -> Any:
    """Resolve a term under an environment; unbound variables raise."""
    if isinstance(term, Const):
        return term.value
    if term.name in env:
        return env[term.name]
    raise QueryError(f"variable {term!r} unbound during evaluation")


def is_bound(term, env: Dict[str, Any]) -> bool:
    """True when the term resolves under ``env``.

    Accepts variables, constants and :class:`MemberValue` expressions
    (bound when their member term is bound).
    """
    if isinstance(term, Const):
        return True
    if isinstance(term, MemberValue):
        return is_bound(term.member, env)
    return term.name in env


@dataclass(frozen=True)
class MemberValue:
    """The value expression ``member.field`` (e.g. ``n.income``).

    ``attribute`` names the application category the member belongs to; the
    GIS instance stores the field values (Definition 2's application part).
    """

    attribute: str
    member: "Var | Const"
    field_name: str

    def __repr__(self) -> str:
        return f"{self.member!r}.{self.field_name}"


ValueExpr = "Var | Const | MemberValue"

#: Comparison operators available in formulas.
OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
}


def parse_operator(op: str) -> Callable[[Any, Any], bool]:
    """Look up a comparison operator by symbol."""
    try:
        return OPERATORS[op]
    except KeyError:
        raise QueryError(
            f"unknown operator {op!r}; expected one of {sorted(OPERATORS)}"
        ) from None


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class Formula(abc.ABC):
    """Base class of all formula nodes."""

    @abc.abstractmethod
    def free_variables(self) -> frozenset:
        """Names of the variables occurring free in the formula."""

    def describe(self, indent: int = 0) -> str:
        """Render the formula as an indented one-node-per-line tree.

        Connectives and quantifiers open a level, atoms print their
        :meth:`_describe_line` (default: the dataclass repr).  This is
        the formula half of EXPLAIN output — see
        :meth:`repro.query.builder.RegionBuilder.explain`.
        """
        pad = "  " * indent
        if isinstance(self, (And, Or)):
            lines = [f"{pad}{type(self).__name__}"]
            lines.extend(c.describe(indent + 1) for c in self.children)
            return "\n".join(lines)
        if isinstance(self, Not):
            return "\n".join(
                [f"{pad}Not", self.child.describe(indent + 1)]
            )
        if isinstance(self, (Exists, ForAll)):
            return "\n".join(
                [
                    f"{pad}{type(self).__name__} {self.var!r} "
                    f"in {type(self.domain).__name__}",
                    self.child.describe(indent + 1),
                ]
            )
        return f"{pad}{self._describe_line()}"

    def _describe_line(self) -> str:
        """One-line label of a leaf node (atoms override as needed)."""
        return repr(self)

    def __and__(self, other: "Formula") -> "And":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


def _terms_free(*terms) -> frozenset:
    names = set()
    for term in terms:
        if isinstance(term, Var):
            names.add(term.name)
        elif isinstance(term, MemberValue) and isinstance(term.member, Var):
            names.add(term.member.name)
    return frozenset(names)


@dataclass(frozen=True)
class And(Formula):
    """Conjunction of sub-formulas."""

    children: Tuple[Formula, ...]

    def __init__(self, *children: Formula) -> None:
        flat: List[Formula] = []
        for child in children:
            if isinstance(child, And):
                flat.extend(child.children)
            else:
                flat.append(child)
        if not flat:
            raise QueryError("And needs at least one child")
        object.__setattr__(self, "children", tuple(flat))

    def free_variables(self) -> frozenset:
        result: frozenset = frozenset()
        for child in self.children:
            result |= child.free_variables()
        return result


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction of sub-formulas."""

    children: Tuple[Formula, ...]

    def __init__(self, *children: Formula) -> None:
        if not children:
            raise QueryError("Or needs at least one child")
        object.__setattr__(self, "children", tuple(children))

    def free_variables(self) -> frozenset:
        result: frozenset = frozenset()
        for child in self.children:
            result |= child.free_variables()
        return result


@dataclass(frozen=True)
class Not(Formula):
    """Negation; evaluated only when its free variables are bound."""

    child: Formula

    def free_variables(self) -> frozenset:
        return self.child.free_variables()


class Domain(abc.ABC):
    """A finite quantifier domain, resolved against the evaluation context."""

    @abc.abstractmethod
    def values(self, context) -> Iterable[Any]:
        """Enumerate the domain's values."""


@dataclass(frozen=True)
class AttributeMembers(Domain):
    """All application members with an α for the attribute (``n ∈ neighb``)."""

    attribute: str

    def values(self, context) -> Iterable[Any]:
        return context.gis.alpha_members(self.attribute)


@dataclass(frozen=True)
class LayerElements(Domain):
    """All geometry ids of a (layer, kind)."""

    layer: str
    kind: str

    def values(self, context) -> Iterable[Any]:
        return context.gis.layer(self.layer).elements(self.kind).keys()


@dataclass(frozen=True)
class Instants(Domain):
    """All instants of the time dimension."""

    def values(self, context) -> Iterable[Any]:
        return context.time.instants


@dataclass(frozen=True)
class MovingObjects(Domain):
    """All object identifiers of a MOFT."""

    moft_name: str = "FM"

    def values(self, context) -> Iterable[Any]:
        return context.moft(self.moft_name).objects()


@dataclass(frozen=True)
class ExplicitDomain(Domain):
    """A literal finite domain."""

    items: Tuple[Any, ...]

    def __init__(self, items: Iterable[Any]) -> None:
        object.__setattr__(self, "items", tuple(items))

    def values(self, context) -> Iterable[Any]:
        return self.items


@dataclass(frozen=True)
class Exists(Formula):
    """``∃ var ∈ domain: child``."""

    var: Var
    domain: Domain
    child: Formula

    def free_variables(self) -> frozenset:
        return self.child.free_variables() - {self.var.name}


@dataclass(frozen=True)
class ForAll(Formula):
    """``∀ var ∈ domain: child``."""

    var: Var
    domain: Domain
    child: Formula

    def free_variables(self) -> frozenset:
        return self.child.free_variables() - {self.var.name}


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------


class Atom(Formula):
    """An atomic formula.

    Atoms support two evaluation modes used by the backtracking solver:

    * :meth:`check` — all free variables bound: return a boolean;
    * :meth:`enumerate_bindings` — some variables unbound: yield extensions
      of the environment that satisfy the atom, or raise
      :class:`QueryError` when the atom cannot enumerate in the current
      binding pattern.
    """

    @abc.abstractmethod
    def check(self, context, env: Dict[str, Any]) -> bool:
        """Decide the atom under a fully binding environment."""

    def enumerate_bindings(
        self, context, env: Dict[str, Any]
    ) -> Iterator[Dict[str, Any]]:
        """Yield satisfying extensions of ``env``.

        The default implementation only works when everything is bound.
        """
        if self.check(context, env):
            yield env

    def can_enumerate(self, env: Dict[str, Any]) -> bool:
        """True when the atom can produce bindings under ``env``."""
        return all(is_bound(t, env) for t in self._terms())

    @abc.abstractmethod
    def _terms(self) -> Tuple:
        """The atom's term slots (for free-variable computation)."""

    def free_variables(self) -> frozenset:
        return _terms_free(*self._terms())


@dataclass(frozen=True)
class Moft(Atom):
    """The relation atom ``FM(oid, t, x, y)``.

    Enumerates MOFT rows, binding whichever of the four terms are unbound;
    with all terms bound it checks membership.
    """

    oid: "Var | Const"
    t: "Var | Const"
    x: "Var | Const"
    y: "Var | Const"
    moft_name: str = "FM"

    def _terms(self) -> Tuple:
        return (self.oid, self.t, self.x, self.y)

    def can_enumerate(self, env: Dict[str, Any]) -> bool:
        return True  # the MOFT is always enumerable

    def check(self, context, env: Dict[str, Any]) -> bool:
        moft = context.moft(self.moft_name)
        target = (
            term_value(self.oid, env),
            float(term_value(self.t, env)),
            float(term_value(self.x, env)),
            float(term_value(self.y, env)),
        )
        return target in set(moft.tuples())

    def enumerate_bindings(self, context, env):
        moft = context.moft(self.moft_name)
        slots = self._terms()
        names = ("oid", "t", "x", "y")
        for row in moft.tuples():
            new_env = dict(env)
            ok = True
            for slot, value in zip(slots, row):
                if is_bound(slot, new_env):
                    bound = term_value(slot, new_env)
                    if isinstance(value, float) and not isinstance(bound, str):
                        if float(bound) != value:
                            ok = False
                            break
                    elif bound != value:
                        ok = False
                        break
                else:
                    new_env[slot.name] = value
            if ok:
                yield new_env


@dataclass(frozen=True)
class TimeRollup(Atom):
    """``R^{level}_{timeId}(t) = member`` — a Time-dimension rollup atom."""

    t: "Var | Const"
    level: str
    member: "Var | Const"

    def _terms(self) -> Tuple:
        return (self.t, self.member)

    def can_enumerate(self, env: Dict[str, Any]) -> bool:
        return is_bound(self.t, env)

    def check(self, context, env) -> bool:
        t = term_value(self.t, env)
        member = term_value(self.member, env)
        return context.time.matches(t, self.level, member)

    def enumerate_bindings(self, context, env):
        if not is_bound(self.t, env):
            raise QueryError("TimeRollup cannot enumerate instants; bind t first")
        t = term_value(self.t, env)
        rolled = context.time.try_rollup(t, self.level)
        if rolled is None:
            return
        if is_bound(self.member, env):
            if term_value(self.member, env) == rolled:
                yield env
            return
        new_env = dict(env)
        new_env[self.member.name] = rolled
        yield new_env


@dataclass(frozen=True)
class TimeRollupCompare(Atom):
    """``R^{level}(t) op constant`` — numeric constraints over rollups.

    The paper's query 7 compares the hour rollup: ``h >= 8 ∧ h <= 10``.
    """

    t: "Var | Const"
    level: str
    op: str
    value: Any

    def _terms(self) -> Tuple:
        return (self.t,)

    def check(self, context, env) -> bool:
        t = term_value(self.t, env)
        rolled = context.time.try_rollup(t, self.level)
        if rolled is None:
            return False
        return parse_operator(self.op)(rolled, self.value)


@dataclass(frozen=True)
class PointIn(Atom):
    """``r^{Pt,kind}_{layer}(x, y, g)`` — the infinite point rollup relation.

    With ``(x, y)`` bound it enumerates (or checks) the containing
    geometry ids through the layer's spatial index.
    """

    x: "Var | Const"
    y: "Var | Const"
    layer: str
    kind: str
    gid: "Var | Const"

    def _terms(self) -> Tuple:
        return (self.x, self.y, self.gid)

    def can_enumerate(self, env: Dict[str, Any]) -> bool:
        return is_bound(self.x, env) and is_bound(self.y, env)

    def check(self, context, env) -> bool:
        gids = self._locate(context, env)
        return term_value(self.gid, env) in gids

    def enumerate_bindings(self, context, env):
        if not (is_bound(self.x, env) and is_bound(self.y, env)):
            raise QueryError("PointIn needs x and y bound to enumerate")
        gids = self._locate(context, env)
        if is_bound(self.gid, env):
            if term_value(self.gid, env) in gids:
                yield env
            return
        for gid in gids:
            new_env = dict(env)
            new_env[self.gid.name] = gid
            yield new_env

    def _locate(self, context, env):
        from repro.geometry.point import Point

        point = Point(
            float(term_value(self.x, env)), float(term_value(self.y, env))
        )
        return context.locate_point(self.layer, self.kind, point)


@dataclass(frozen=True)
class Alpha(Atom):
    """``α^{attribute}(member) = gid`` — the application/geometry bridge."""

    attribute: str
    member: "Var | Const"
    gid: "Var | Const"

    def _terms(self) -> Tuple:
        return (self.member, self.gid)

    def can_enumerate(self, env: Dict[str, Any]) -> bool:
        return True  # α is a finite function; enumerable in any pattern

    def check(self, context, env) -> bool:
        member = term_value(self.member, env)
        try:
            gid = context.gis.alpha(self.attribute, member)
        except Exception:
            return False
        return gid == term_value(self.gid, env)

    def enumerate_bindings(self, context, env):
        member_bound = is_bound(self.member, env)
        gid_bound = is_bound(self.gid, env)
        if member_bound:
            member = term_value(self.member, env)
            if member not in context.gis.alpha_members(self.attribute):
                return
            gid = context.gis.alpha(self.attribute, member)
            if gid_bound:
                if gid == term_value(self.gid, env):
                    yield env
                return
            new_env = dict(env)
            new_env[self.gid.name] = gid
            yield new_env
            return
        if gid_bound:
            gid = term_value(self.gid, env)
            for member in context.gis.alpha_inverse(self.attribute, gid):
                new_env = dict(env)
                new_env[self.member.name] = member
                yield new_env
            return
        for member in context.gis.alpha_members(self.attribute):
            gid = context.gis.alpha(self.attribute, member)
            new_env = dict(env)
            new_env[self.member.name] = member
            new_env[self.gid.name] = gid
            yield new_env


@dataclass(frozen=True)
class Compare(Atom):
    """``lhs op rhs`` over values, including member fields (``n.income``)."""

    lhs: Any  # Var | Const | MemberValue
    op: str
    rhs: Any  # Var | Const | MemberValue

    def _terms(self) -> Tuple:
        return (self.lhs, self.rhs)

    def check(self, context, env) -> bool:
        return parse_operator(self.op)(
            self._resolve(self.lhs, context, env),
            self._resolve(self.rhs, context, env),
        )

    @staticmethod
    def _resolve(expr, context, env):
        if isinstance(expr, MemberValue):
            member = term_value(expr.member, env)
            return context.gis.member_value(
                expr.attribute, member, expr.field_name
            )
        return term_value(expr, env)

    def free_variables(self) -> frozenset:
        return _terms_free(self.lhs, self.rhs)


@dataclass(frozen=True)
class GeometryRelation(Atom):
    """A cross-layer geometric predicate between identified elements.

    ``predicate(geom(layer_a, kind_a, gid_a), geom(layer_b, kind_b, gid_b))``
    with predicate ∈ {intersects, contains, within}.  Evaluation goes
    through the context, which routes to either the precomputed overlay
    (Piet strategy) or direct geometry tests (naive strategy).
    """

    layer_a: str
    kind_a: str
    gid_a: "Var | Const"
    predicate: str
    layer_b: str
    kind_b: str
    gid_b: "Var | Const"

    def _terms(self) -> Tuple:
        return (self.gid_a, self.gid_b)

    def can_enumerate(self, env: Dict[str, Any]) -> bool:
        return True  # relation over finite id sets

    def check(self, context, env) -> bool:
        return context.geometry_related(
            self.layer_a,
            self.kind_a,
            term_value(self.gid_a, env),
            self.predicate,
            self.layer_b,
            self.kind_b,
            term_value(self.gid_b, env),
        )

    def enumerate_bindings(self, context, env):
        pairs = context.geometry_pairs(
            self.layer_a, self.kind_a, self.predicate, self.layer_b, self.kind_b
        )
        a_bound = is_bound(self.gid_a, env)
        b_bound = is_bound(self.gid_b, env)
        for id_a, id_b in pairs:
            if a_bound and term_value(self.gid_a, env) != id_a:
                continue
            if b_bound and term_value(self.gid_b, env) != id_b:
                continue
            new_env = dict(env)
            if not a_bound:
                new_env[self.gid_a.name] = id_a
            if not b_bound:
                new_env[self.gid_b.name] = id_b
            yield new_env


@dataclass(frozen=True)
class WithinDistance(Atom):
    """``(x - x_g)² + (y - y_g)² ≤ radius²`` against a node element.

    The proximity constraint of queries 6 and 7 ("within a radius of 100m
    from schools", "less than four meters away from the tram stop"); the
    reference point is the location of node ``gid`` in (layer, kind).
    """

    x: "Var | Const"
    y: "Var | Const"
    layer: str
    kind: str
    gid: "Var | Const"
    radius: float

    def _terms(self) -> Tuple:
        return (self.x, self.y, self.gid)

    def can_enumerate(self, env: Dict[str, Any]) -> bool:
        return is_bound(self.x, env) and is_bound(self.y, env)

    def check(self, context, env) -> bool:
        from repro.geometry.point import Point

        node = context.gis.layer(self.layer).element(
            self.kind, term_value(self.gid, env)
        )
        p = Point(float(term_value(self.x, env)), float(term_value(self.y, env)))
        return node.distance_to(p) <= self.radius + 1e-12

    def enumerate_bindings(self, context, env):
        from repro.geometry.point import Point

        if not (is_bound(self.x, env) and is_bound(self.y, env)):
            raise QueryError("WithinDistance needs x and y bound")
        p = Point(float(term_value(self.x, env)), float(term_value(self.y, env)))
        elements = context.gis.layer(self.layer).elements(self.kind)
        if is_bound(self.gid, env):
            if self.check(context, env):
                yield env
            return
        for gid, node in elements.items():
            if node.distance_to(p) <= self.radius + 1e-12:
                new_env = dict(env)
                new_env[self.gid.name] = gid
                yield new_env


@dataclass(frozen=True)
class TrajectoryIntersects(Atom):
    """The interpolated trajectory of ``oid`` meets geometry ``gid``.

    This packages the paper's explicit interpolation subformula (queries 5
    and 6: ``x = ((t2-t) x1 + (t-t1) x2)/(t2-t1) ∧ …``) into one atom: it
    holds when some point of ``LIT(S_oid)`` lies in the geometry.
    """

    oid: "Var | Const"
    layer: str
    kind: str
    gid: "Var | Const"
    moft_name: str = "FM"

    def _terms(self) -> Tuple:
        return (self.oid, self.gid)

    def can_enumerate(self, env: Dict[str, Any]) -> bool:
        return is_bound(self.oid, env)

    def check(self, context, env) -> bool:
        return context.trajectory_intersects(
            self.moft_name,
            term_value(self.oid, env),
            self.layer,
            self.kind,
            term_value(self.gid, env),
        )

    def enumerate_bindings(self, context, env):
        if not is_bound(self.oid, env):
            raise QueryError("TrajectoryIntersects needs oid bound")
        oid = term_value(self.oid, env)
        if is_bound(self.gid, env):
            if self.check(context, env):
                yield env
            return
        for gid in context.gis.layer(self.layer).elements(self.kind):
            if context.trajectory_intersects(
                self.moft_name, oid, self.layer, self.kind, gid
            ):
                new_env = dict(env)
                new_env[self.gid.name] = gid
                yield new_env


@dataclass(frozen=True)
class PossiblyThrough(Atom):
    """Uncertainty-aware pass-through: the lifeline beads of ``oid`` (for a
    maximum speed) intersect geometry ``gid``.

    Where :class:`TrajectoryIntersects` assumes the linear-interpolation
    reconstruction, this atom uses the Hornsby–Egenhofer uncertainty model
    the paper cites: it holds whenever the object *could* have entered the
    geometry between observations without exceeding ``max_speed``.  It is
    therefore a superset of TrajectoryIntersects for any feasible speed.
    """

    oid: "Var | Const"
    layer: str
    kind: str
    gid: "Var | Const"
    max_speed: float
    moft_name: str = "FM"

    def _terms(self) -> Tuple:
        return (self.oid, self.gid)

    def can_enumerate(self, env: Dict[str, Any]) -> bool:
        return is_bound(self.oid, env)

    def check(self, context, env) -> bool:
        return context.trajectory_possibly_through(
            self.moft_name,
            term_value(self.oid, env),
            self.layer,
            self.kind,
            term_value(self.gid, env),
            self.max_speed,
        )

    def enumerate_bindings(self, context, env):
        if not is_bound(self.oid, env):
            raise QueryError("PossiblyThrough needs oid bound")
        oid = term_value(self.oid, env)
        if is_bound(self.gid, env):
            if self.check(context, env):
                yield env
            return
        for gid in context.gis.layer(self.layer).elements(self.kind):
            if context.trajectory_possibly_through(
                self.moft_name, oid, self.layer, self.kind, gid, self.max_speed
            ):
                new_env = dict(env)
                new_env[self.gid.name] = gid
                yield new_env


@dataclass(frozen=True)
class TrajectoryWithinDistance(Atom):
    """The interpolated trajectory of ``oid`` comes within ``radius`` of node ``gid``."""

    oid: "Var | Const"
    layer: str
    kind: str
    gid: "Var | Const"
    radius: float
    moft_name: str = "FM"

    def _terms(self) -> Tuple:
        return (self.oid, self.gid)

    def can_enumerate(self, env: Dict[str, Any]) -> bool:
        return is_bound(self.oid, env)

    def check(self, context, env) -> bool:
        return context.trajectory_within_distance(
            self.moft_name,
            term_value(self.oid, env),
            self.layer,
            self.kind,
            term_value(self.gid, env),
            self.radius,
        )

    def enumerate_bindings(self, context, env):
        if not is_bound(self.oid, env):
            raise QueryError("TrajectoryWithinDistance needs oid bound")
        oid = term_value(self.oid, env)
        if is_bound(self.gid, env):
            if self.check(context, env):
                yield env
            return
        for gid in context.gis.layer(self.layer).elements(self.kind):
            if context.trajectory_within_distance(
                self.moft_name, oid, self.layer, self.kind, gid, self.radius
            ):
                new_env = dict(env)
                new_env[self.gid.name] = gid
                yield new_env
